//! Cluster-wide aggregation of per-node entropy reports.

use serde::{Deserialize, Serialize};

/// One shared monitoring window, aggregated across the whole fleet. Idle
/// nodes score `E_S = 0` (the entropy model's empty-measurement case) and
/// participate in every statistic — an empty node is usable capacity, not
/// missing data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterWindowStat {
    /// Global window index (across rounds).
    pub window: usize,
    /// The round this window belongs to.
    pub round: usize,
    /// Mean `E_S` across all nodes.
    pub mean_es: f64,
    /// 95th percentile `E_S` across nodes.
    pub p95_es: f64,
    /// Maximum `E_S` across nodes.
    pub max_es: f64,
    /// QoS violations summed over every node's LC apps this window.
    pub violations: u64,
    /// Nodes hosting at least one app this window.
    pub active_nodes: usize,
    /// Active nodes simulated at full discrete-event fidelity.
    #[serde(default)]
    pub hifi_nodes: usize,
    /// Active nodes replayed through the LO-FI surrogate.
    #[serde(default)]
    pub lofi_nodes: usize,
    /// Applications placed cluster-wide this window.
    pub apps: usize,
    /// Migrations executed entering this window's round (placer rebalance
    /// plus controller moves and rollback restores). Identical across the
    /// round's windows — the disturbance is per-round, the stats are
    /// per-window.
    #[serde(default)]
    pub round_migrations: u64,
}

/// Mean thread occupancy of one node over the run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeUtilization {
    /// Node index.
    pub node: usize,
    /// Mean `used threads / cores` over all rounds (can exceed 1 under
    /// oversubscription).
    pub mean_occupancy: f64,
    /// Rounds in which the node hosted at least one app.
    pub rounds_active: usize,
}

/// The aggregated record of one cluster run: the cluster-level analogue
/// of [`ahq_sched::RunResult`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterEntropyReport {
    /// Placement policy name.
    pub placer: String,
    /// Local (per-node) scheduler name.
    pub sched: String,
    /// Global controller name, when one was installed.
    #[serde(default)]
    pub controller: Option<String>,
    /// Fleet size.
    pub nodes: usize,
    /// Rounds simulated.
    pub rounds: usize,
    /// Windows per round.
    pub windows_per_round: usize,
    /// Cluster seed.
    pub seed: u64,
    /// Per-window aggregates, in window order.
    pub window_stats: Vec<ClusterWindowStat>,
    /// Total QoS violations across all nodes and windows.
    pub violations: u64,
    /// Applications placed (arrivals).
    pub placements: u64,
    /// Applications departed.
    pub departures: u64,
    /// Load-level changes applied.
    pub load_changes: u64,
    /// BE migrations performed by the placer's rebalance step.
    pub migrations: u64,
    /// Migrations the global controller executed (committed moves).
    #[serde(default)]
    pub ctrl_migrations: u64,
    /// Controller moves rolled back after an entropy regression.
    #[serde(default)]
    pub ctrl_rollbacks: u64,
    /// LC cold starts charged (controller moves + rollback returns).
    #[serde(default)]
    pub cold_starts: u64,
    /// Cumulative windows of warm-up penalty charged for those cold
    /// starts.
    #[serde(default)]
    pub warmup_windows: u64,
    /// Per-node mean occupancy.
    pub node_utilization: Vec<NodeUtilization>,
}

impl ClusterEntropyReport {
    /// Total windows simulated.
    pub fn windows(&self) -> usize {
        self.window_stats.len()
    }

    /// Mean of the per-window mean `E_S` over the whole run.
    pub fn mean_entropy(&self) -> f64 {
        mean(self.window_stats.iter().map(|w| w.mean_es))
    }

    /// Mean of the per-window mean `E_S` over the last `n` windows — the
    /// steady-state score the cluster experiments compare placers on.
    pub fn steady_mean_entropy(&self, n: usize) -> f64 {
        mean(self.window_stats.iter().rev().take(n).map(|w| w.mean_es))
    }

    /// Mean of the per-window p95 `E_S` over the last `n` windows.
    pub fn steady_p95_entropy(&self, n: usize) -> f64 {
        mean(self.window_stats.iter().rev().take(n).map(|w| w.p95_es))
    }

    /// Mean fleet occupancy: average of the per-node mean occupancies.
    pub fn mean_occupancy(&self) -> f64 {
        mean(self.node_utilization.iter().map(|u| u.mean_occupancy))
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut count = 0u64;
    for v in values {
        sum += v;
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stat(window: usize, mean_es: f64, p95: f64) -> ClusterWindowStat {
        ClusterWindowStat {
            window,
            round: 0,
            mean_es,
            p95_es: p95,
            max_es: p95,
            violations: 0,
            active_nodes: 1,
            hifi_nodes: 1,
            lofi_nodes: 0,
            apps: 1,
            round_migrations: 0,
        }
    }

    #[test]
    fn steady_helpers_average_the_tail() {
        let report = ClusterEntropyReport {
            placer: "first-fit".into(),
            sched: "unmanaged".into(),
            controller: None,
            nodes: 4,
            rounds: 1,
            windows_per_round: 3,
            seed: 0,
            window_stats: vec![stat(0, 0.4, 0.8), stat(1, 0.2, 0.4), stat(2, 0.0, 0.0)],
            violations: 0,
            placements: 0,
            departures: 0,
            load_changes: 0,
            migrations: 0,
            ctrl_migrations: 0,
            ctrl_rollbacks: 0,
            cold_starts: 0,
            warmup_windows: 0,
            node_utilization: vec![NodeUtilization {
                node: 0,
                mean_occupancy: 0.5,
                rounds_active: 1,
            }],
        };
        assert_eq!(report.windows(), 3);
        assert!((report.mean_entropy() - 0.2).abs() < 1e-12);
        assert!((report.steady_mean_entropy(2) - 0.1).abs() < 1e-12);
        assert!((report.steady_p95_entropy(2) - 0.2).abs() < 1e-12);
        assert!((report.mean_occupancy() - 0.5).abs() < 1e-12);
        assert_eq!(report.steady_mean_entropy(0), 0.0);
    }
}
