//! # ahq-cluster — the multi-node datacenter layer
//!
//! The paper evaluates ARQ on a single node but frames the system entropy
//! `E_S` as a datacenter-wide interference metric. This crate consumes the
//! per-node entropy signal above the single-node runner: it simulates a
//! fleet of heterogeneous [`ahq_sim::NodeSim`] nodes under one shared
//! 500 ms window clock, places arriving applications onto nodes with a
//! pluggable [`Placer`] (bin-packing [`FirstFit`], load-spreading
//! [`LeastLoaded`], and the interference-score-driven [`EntropyAware`]),
//! churns the workload with a deterministic seeded event stream
//! ([`ChurnConfig`]), runs each node's *local* scheduler (unmanaged or the
//! paper's ARQ) underneath the placer, and aggregates the per-node
//! [`ahq_core::EntropyReport`]s into a [`ClusterEntropyReport`].
//!
//! ## Execution model
//!
//! Cluster time advances in *rounds* of `windows_per_round` monitoring
//! windows. Between rounds the churn stream and the placer mutate the
//! fleet's app-to-node assignment; within a round every node's run is a
//! *closed job* ([`NodeJob`]) — machine, app specs, initial loads, local
//! scheduler, window count, and a per-`(node, round)` seed derived with
//! [`ahq_core::derive_seed`]. Closed jobs are what make the layer
//! parallel-safe: a [`NodeBatchRunner`] may execute them in any order, on
//! any number of workers, and the cluster's output is byte-identical to
//! the sequential [`SequentialRunner`]. The `ahq-experiments` crate
//! provides a runner that fans node jobs through its memoizing parallel
//! engine, so `repro cluster --jobs N` scales wall-clock with worker
//! count without changing a byte of output.
//!
//! ## Fidelity ladder
//!
//! At 10k nodes a full discrete-event round is too slow for long-horizon
//! experiments, so [`ClusterConfig::fidelity`] can enable a two-rung
//! ladder ([`FidelityMode::Ladder`]): nodes that stay stable for
//! [`FidelityPolicy::stable_rounds`] consecutive rounds are demoted to a
//! closed-form LO-FI surrogate ([`ahq_sim::Surrogate`]) calibrated from
//! their last HI-FI round, and any churn event, migration, or instability
//! signal promotes them straight back. See DESIGN.md §8.
//!
//! ## Determinism
//!
//! Four properties combine to give byte-identical runs for any worker
//! count: the churn stream is generated up front from the cluster seed and
//! never looks at placement state; per-node seeds depend only on
//! `(cluster seed, node index, round)`; placers break every tie by lowest
//! node index; and fidelity-ladder transitions are pure functions of
//! per-node simulation state, with LO-FI rounds computed inline on the
//! coordinator rather than on the worker pool.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod churn;
mod cluster;
pub mod control;
mod fidelity;
mod placement;
mod report;

pub use churn::{AppArrival, ChurnConfig, ChurnEvent, ChurnStream};
pub use cluster::{
    run_cluster, ClusterConfig, ClusterSim, JobFidelity, LocalSched, NodeBatchRunner, NodeJob,
    SequentialRunner, MIGRATION_WARMUP_MS,
};
pub use control::{AppMove, AppliedMove, ControlVerdict, Controller, RoundObservation};
pub use fidelity::{FidelityMode, FidelityPolicy};
pub use placement::{
    static_placers, EntropyAware, FirstFit, LeastLoaded, Migration, NodeView, PlacementWeights,
    Placer, PlacerKind,
};
pub use report::{ClusterEntropyReport, ClusterWindowStat, NodeUtilization};
