//! The churn subsystem: a deterministic, seeded event stream of app
//! arrivals, departures and load-level changes that exercises placement
//! under flux.
//!
//! The stream is generated *up front* from `(config, seed)` and never
//! consults placement state — the generator tracks its own notion of which
//! app ids are alive. That independence is a determinism requirement: the
//! same `(config, seed)` must yield the same events no matter which placer
//! or local scheduler the cluster runs, so that placement policies can be
//! compared on identical workloads.

use ahq_core::derive_seed;
use ahq_sim::{AppKind, AppSpec};
use ahq_workloads::profiles;
use serde::{Deserialize, Serialize};

/// LC profiles the churn stream draws from. Sphinx is excluded: its
/// second-scale requests need minute-scale windows to produce latency
/// samples, which mismatches the shared 500 ms cluster clock.
const LC_POOL: [&str; 5] = ["xapian", "moses", "img-dnn", "masstree", "silo"];

/// BE profiles the churn stream draws from.
const BE_POOL: [&str; 3] = ["fluidanimate", "streamcluster", "stream"];

/// Load fractions (of each LC app's calibrated max load) arrivals and
/// load-change events pick from.
const LOAD_LEVELS: [f64; 5] = [0.2, 0.3, 0.4, 0.5, 0.6];

/// The calibrated [`AppSpec`] for a churn-pool profile name, served from a
/// process-wide pool built once — `spec()` is on the placement hot path
/// and rebuilding calibrated profiles per arrival showed up in 10k-node
/// profiles.
///
/// # Panics
///
/// Panics on names outside [`LC_POOL`] / [`BE_POOL`] — churn streams only
/// ever carry pool names.
pub(crate) fn pool_spec(profile: &str) -> AppSpec {
    static POOL: std::sync::OnceLock<Vec<(&'static str, AppSpec)>> = std::sync::OnceLock::new();
    let pool = POOL.get_or_init(|| {
        vec![
            ("xapian", profiles::xapian()),
            ("moses", profiles::moses()),
            ("img-dnn", profiles::img_dnn()),
            ("masstree", profiles::masstree()),
            ("silo", profiles::silo()),
            ("fluidanimate", profiles::fluidanimate()),
            ("streamcluster", profiles::streamcluster()),
            ("stream", profiles::stream()),
        ]
    });
    pool.iter()
        .find(|(name, _)| *name == profile)
        .unwrap_or_else(|| panic!("unknown churn profile {profile:?}"))
        .1
        .clone()
}

/// One application arrival: which calibrated profile to instantiate, under
/// what cluster-unique id, and (for LC apps) at what initial load.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppArrival {
    /// Cluster-unique application id; instance names are `{profile}#{id}`.
    pub id: u64,
    /// Profile name from the churn pools.
    pub profile: String,
    /// Initial load fraction; `None` for BE profiles.
    pub load: Option<f64>,
}

impl AppArrival {
    /// The unique instance name, `{profile}#{id}`.
    pub fn instance_name(&self) -> String {
        format!("{}#{}", self.profile, self.id)
    }

    /// Instantiates the calibrated profile under the unique instance name.
    pub fn spec(&self) -> AppSpec {
        pool_spec(&self.profile).with_name(self.instance_name())
    }
}

/// One churn event, applied between rounds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ChurnEvent {
    /// A new application arrives and must be placed.
    Arrive(AppArrival),
    /// A running application departs the cluster.
    Depart {
        /// Id of the departing application.
        id: u64,
    },
    /// A running LC application changes its offered load.
    SetLoad {
        /// Id of the application whose load changes.
        id: u64,
        /// New load fraction.
        load: f64,
    },
}

/// Parameters of the churn stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// Applications arriving at round 0 (the initial population).
    pub initial_apps: usize,
    /// Expected arrivals per subsequent round.
    pub arrivals_per_round: f64,
    /// Per-app probability of departing each round.
    pub departure_prob: f64,
    /// Per-LC-app probability of a load change each round.
    pub load_change_prob: f64,
    /// Fraction of arrivals drawn from the BE pool.
    pub be_fraction: f64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            initial_apps: 16,
            arrivals_per_round: 2.0,
            departure_prob: 0.05,
            load_change_prob: 0.15,
            be_fraction: 0.4,
        }
    }
}

/// A tiny deterministic PRNG (SplitMix64) for churn generation. The crate
/// deliberately does not use the `rand` stack here: the stream must stay
/// bit-stable across `rand` versions because tests and `repro` output pin
/// on it.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        // derive_seed(state, 1) is exactly the SplitMix64 step of the
        // stream-1-salted state; advancing the state by the same constant
        // keeps the generator the reference SplitMix64 sequence.
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn pick<'a, T>(&mut self, options: &'a [T]) -> &'a T {
        &options[(self.next_u64() % options.len() as u64) as usize]
    }

    fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

/// The fully materialised churn stream: every event, tagged with the round
/// *before* which it applies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnStream {
    events: Vec<(usize, ChurnEvent)>,
}

impl ChurnStream {
    /// Generates the stream for `rounds` rounds from `(config, seed)`.
    ///
    /// Round 0 carries the `initial_apps` arrivals; every round applies
    /// departures, then arrivals, then load changes — the order the
    /// cluster replays them in.
    pub fn generate(config: &ChurnConfig, rounds: usize, seed: u64) -> Self {
        let mut rng = SplitMix64(derive_seed(seed, 0xC0_FFEE));
        let mut events = Vec::new();
        let mut next_id: u64 = 0;
        // The generator's own live set: (id, kind). Placement-independent.
        let mut live: Vec<(u64, AppKind)> = Vec::new();

        let mut arrive = |rng: &mut SplitMix64,
                          live: &mut Vec<(u64, AppKind)>,
                          events: &mut Vec<(usize, ChurnEvent)>,
                          round: usize| {
            let be = rng.chance(config.be_fraction);
            let (profile, load) = if be {
                ((*rng.pick(&BE_POOL)).to_owned(), None)
            } else {
                (
                    (*rng.pick(&LC_POOL)).to_owned(),
                    Some(*rng.pick(&LOAD_LEVELS)),
                )
            };
            let id = next_id;
            next_id += 1;
            live.push((id, if be { AppKind::Be } else { AppKind::Lc }));
            events.push((round, ChurnEvent::Arrive(AppArrival { id, profile, load })));
        };

        for round in 0..rounds {
            if round == 0 {
                for _ in 0..config.initial_apps {
                    arrive(&mut rng, &mut live, &mut events, 0);
                }
                continue;
            }
            // Departures first: the freed capacity is visible to this
            // round's arrivals.
            live.retain(|&(id, _)| {
                if rng.chance(config.departure_prob) {
                    events.push((round, ChurnEvent::Depart { id }));
                    false
                } else {
                    true
                }
            });
            let mut arrivals = config.arrivals_per_round.floor() as usize;
            if rng.chance(config.arrivals_per_round.fract()) {
                arrivals += 1;
            }
            for _ in 0..arrivals {
                arrive(&mut rng, &mut live, &mut events, round);
            }
            // Load changes on LC apps that were alive before this round's
            // arrivals are indistinguishable from ones including them —
            // the retained order is id order either way.
            for &(id, kind) in &live {
                if kind == AppKind::Lc && rng.chance(config.load_change_prob) {
                    events.push((
                        round,
                        ChurnEvent::SetLoad {
                            id,
                            load: *rng.pick(&LOAD_LEVELS),
                        },
                    ));
                }
            }
        }
        ChurnStream { events }
    }

    /// Every event in application order, tagged with its round.
    pub fn events(&self) -> &[(usize, ChurnEvent)] {
        &self.events
    }

    /// The events applying before `round`, in application order.
    pub fn events_for_round(&self, round: usize) -> impl Iterator<Item = &ChurnEvent> {
        self.events
            .iter()
            .filter(move |(r, _)| *r == round)
            .map(|(_, e)| e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let cfg = ChurnConfig::default();
        let a = ChurnStream::generate(&cfg, 12, 7);
        let b = ChurnStream::generate(&cfg, 12, 7);
        assert_eq!(a, b);
        let c = ChurnStream::generate(&cfg, 12, 8);
        assert_ne!(a, c, "different seeds should diverge");
    }

    #[test]
    fn round_zero_carries_the_initial_population() {
        let cfg = ChurnConfig {
            initial_apps: 10,
            ..ChurnConfig::default()
        };
        let stream = ChurnStream::generate(&cfg, 5, 3);
        let round0: Vec<_> = stream.events_for_round(0).collect();
        assert_eq!(round0.len(), 10);
        assert!(round0.iter().all(|e| matches!(e, ChurnEvent::Arrive(_))));
    }

    #[test]
    fn events_are_internally_consistent() {
        // Departures and load changes only ever target live apps; ids are
        // unique; LC arrivals carry a load and BE arrivals do not.
        let cfg = ChurnConfig {
            initial_apps: 12,
            arrivals_per_round: 3.0,
            departure_prob: 0.2,
            load_change_prob: 0.3,
            be_fraction: 0.5,
        };
        let stream = ChurnStream::generate(&cfg, 20, 11);
        let mut live = std::collections::HashMap::new();
        for (_, event) in stream.events() {
            match event {
                ChurnEvent::Arrive(arrival) => {
                    let spec = arrival.spec();
                    assert_eq!(spec.name(), arrival.instance_name());
                    assert_eq!(arrival.load.is_some(), spec.kind() == AppKind::Lc);
                    assert!(
                        live.insert(arrival.id, spec.kind()).is_none(),
                        "duplicate id {}",
                        arrival.id
                    );
                }
                ChurnEvent::Depart { id } => {
                    assert!(live.remove(id).is_some(), "departing dead app {id}");
                }
                ChurnEvent::SetLoad { id, load } => {
                    assert_eq!(live.get(id), Some(&AppKind::Lc), "load change on {id}");
                    assert!((0.0..=1.0).contains(load));
                }
            }
        }
        assert!(!live.is_empty(), "churn should leave a running population");
    }

    #[test]
    fn pool_specs_resolve() {
        for name in LC_POOL {
            assert_eq!(pool_spec(name).kind(), AppKind::Lc, "{name}");
        }
        for name in BE_POOL {
            assert_eq!(pool_spec(name).kind(), AppKind::Be, "{name}");
        }
    }
}
