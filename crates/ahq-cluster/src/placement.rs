//! The placement subsystem: which node does each arriving application
//! land on, and which BE apps migrate between rounds.
//!
//! Placers are deliberately simple policies over per-node summaries
//! ([`NodeView`]): a slot/bin-packing baseline ([`FirstFit`]), a
//! load-spreading baseline ([`LeastLoaded`]), and the entropy-score-driven
//! [`EntropyAware`] — the cluster-level consumer of the paper's `E_S` /
//! `ReT` interference scores. Every policy breaks ties by lowest node
//! index, which is one of the three determinism legs the crate documents.

use ahq_sim::{AppKind, AppSpec, MachineConfig};
use serde::{Deserialize, Serialize};

/// Per-node summary a placer decides over: static capacity, current
/// occupancy, and the entropy/tolerance history the cluster maintains
/// from prior rounds' [`ahq_core::EntropyReport`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeView {
    /// Node index in the fleet.
    pub index: usize,
    /// The node's machine budget.
    pub machine: MachineConfig,
    /// Threads of the LC apps currently placed here.
    pub lc_threads: u32,
    /// Threads of the BE apps currently placed here.
    pub be_threads: u32,
    /// Applications currently placed here.
    pub apps: usize,
    /// BE applications currently placed here (the migratable ones).
    pub be_apps: usize,
    /// Mean system entropy `E_S` of this node over the previous round;
    /// `None` before the node has run a populated round.
    pub recent_es: Option<f64>,
    /// Mean remaining tolerance `ReT` of the node's LC apps over the
    /// previous round; `None` when the node hosted no LC app.
    pub recent_ret: Option<f64>,
}

impl NodeView {
    /// Total threads currently placed on the node.
    pub fn used_threads(&self) -> u32 {
        self.lc_threads + self.be_threads
    }

    /// Thread occupancy after hypothetically adding `extra` threads,
    /// as a fraction of the node's cores (can exceed 1).
    pub fn occupancy_with(&self, extra: u32) -> f64 {
        (self.used_threads() + extra) as f64 / self.machine.cores as f64
    }
}

/// One BE migration decided by [`Placer::rebalance`]: move one BE app
/// from node `from` to node `to`. The cluster picks the concrete app
/// (deterministically) and refuses moves from nodes without BE apps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Migration {
    /// Source node index.
    pub from: usize,
    /// Destination node index.
    pub to: usize,
}

/// The coefficients of [`EntropyAware`]'s predicted post-placement score.
/// Defaults are the hand-tuned constants the placer shipped with; the
/// cluster controller can learn better ones online (GP + expected
/// improvement over a [`ahq_bayesopt::WeightGrid`]-style candidate set)
/// and install them through [`Placer::set_weights`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlacementWeights {
    /// Weight of the node's observed recent `E_S`.
    pub es: f64,
    /// Weight of the LC fragility term `max(0, 1 - ReT)`.
    pub fragility: f64,
    /// Weight of the post-placement thread occupancy.
    pub occupancy: f64,
    /// Weight of the oversubscription overflow past the physical cores.
    pub overflow: f64,
}

impl Default for PlacementWeights {
    fn default() -> Self {
        PlacementWeights {
            es: 1.0,
            fragility: 0.25,
            occupancy: 1.0,
            overflow: 2.0,
        }
    }
}

impl PlacementWeights {
    /// The weights as a flat vector `[es, fragility, occupancy, overflow]`
    /// — the layout the online tuner optimizes over.
    pub fn to_vec(self) -> Vec<f64> {
        vec![self.es, self.fragility, self.occupancy, self.overflow]
    }

    /// Rebuilds weights from the tuner's flat layout. Returns `None`
    /// unless exactly four finite values are given.
    pub fn from_slice(v: &[f64]) -> Option<Self> {
        match v {
            [es, fragility, occupancy, overflow] if v.iter().all(|w| w.is_finite()) => {
                Some(PlacementWeights {
                    es: *es,
                    fragility: *fragility,
                    occupancy: *occupancy,
                    overflow: *overflow,
                })
            }
            _ => None,
        }
    }
}

/// A placement policy: assigns arriving apps to nodes and optionally
/// migrates BE apps between rounds.
pub trait Placer {
    /// The policy's display name.
    fn name(&self) -> &'static str;

    /// Picks the node for an arriving `app`. `views` is never empty.
    fn place(&mut self, app: &AppSpec, views: &[NodeView]) -> usize;

    /// Proposes BE migrations for the coming round. Default: none.
    fn rebalance(&mut self, views: &[NodeView]) -> Vec<Migration> {
        let _ = views;
        Vec::new()
    }

    /// Installs learned scoring weights. Default: ignored — only policies
    /// that opted into online tuning (the `learned` placer) accept them,
    /// so the static baselines stay exactly what their names promise.
    fn set_weights(&mut self, weights: &PlacementWeights) {
        let _ = weights;
    }
}

/// Index of the minimum score, first (lowest index) on ties — the shared
/// deterministic argmin of every policy here.
fn argmin_by_score(views: &[NodeView], mut score: impl FnMut(&NodeView) -> f64) -> usize {
    let mut best = 0;
    let mut best_score = f64::INFINITY;
    for view in views {
        let s = score(view);
        if s < best_score {
            best_score = s;
            best = view.index;
        }
    }
    best
}

/// Slot-based bin packing: the first node whose thread count stays within
/// `overcommit x cores` after placement; when every node is full, the one
/// with the lowest post-placement occupancy.
#[derive(Debug, Clone)]
pub struct FirstFit {
    /// Thread overcommit factor defining a "slot-fitting" node.
    pub overcommit: f64,
}

impl Default for FirstFit {
    fn default() -> Self {
        // Two hyperthread-style slots per core: the classic CPU-request
        // bin packing that ignores interference entirely.
        FirstFit { overcommit: 2.0 }
    }
}

impl Placer for FirstFit {
    fn name(&self) -> &'static str {
        "first-fit"
    }

    fn place(&mut self, app: &AppSpec, views: &[NodeView]) -> usize {
        for view in views {
            let capacity = view.machine.cores as f64 * self.overcommit;
            if (view.used_threads() + app.threads()) as f64 <= capacity {
                return view.index;
            }
        }
        argmin_by_score(views, |v| v.occupancy_with(app.threads()))
    }
}

/// Load spreading: the node with the lowest post-placement thread
/// occupancy, ties to the lowest index.
#[derive(Debug, Clone, Default)]
pub struct LeastLoaded;

impl Placer for LeastLoaded {
    fn name(&self) -> &'static str {
        "least-loaded"
    }

    fn place(&mut self, app: &AppSpec, views: &[NodeView]) -> usize {
        argmin_by_score(views, |v| v.occupancy_with(app.threads()))
    }
}

/// Entropy-aware placement: scores every node by a predicted
/// post-placement `E_S` built from the node's recent entropy report
/// history, its remaining-tolerance headroom, and the thread pressure the
/// new app adds; places on the minimum. Between rounds it migrates BE
/// apps off nodes whose recent `E_S` exceeds [`EntropyAware::hot_threshold`].
#[derive(Debug, Clone)]
pub struct EntropyAware {
    /// Recent `E_S` above which a node is migration-hot.
    pub hot_threshold: f64,
    /// Maximum BE migrations proposed per round.
    pub max_migrations: usize,
    /// Scoring coefficients (defaults reproduce the original hand-tuned
    /// constants bit-for-bit).
    pub weights: PlacementWeights,
    /// Whether [`Placer::set_weights`] is honoured. `false` for the
    /// classic `entropy-aware` policy, `true` for the `learned` variant.
    pub tunable: bool,
}

impl Default for EntropyAware {
    fn default() -> Self {
        EntropyAware {
            hot_threshold: 0.25,
            max_migrations: 2,
            weights: PlacementWeights::default(),
            tunable: false,
        }
    }
}

impl EntropyAware {
    /// The `learned` variant: identical scoring shape, but the controller
    /// may install GP-learned weights at epoch boundaries.
    pub fn learned() -> Self {
        EntropyAware {
            tunable: true,
            ..EntropyAware::default()
        }
    }

    /// Predicted post-placement `E_S` of placing `extra` threads on the
    /// node: the observed entropy, plus a fragility term for LC apps that
    /// have already burnt their tolerance (`1 - ReT`), plus the thread
    /// pressure — with oversubscription past the physical cores weighted
    /// heavily, since that is where the entropy knee lives. At the default
    /// weights this is bit-identical to the pre-weight formula (IEEE
    /// multiplication by exactly 1.0 is the identity, and the addition
    /// order is unchanged).
    fn score(&self, view: &NodeView, extra: u32) -> f64 {
        let occupancy = view.occupancy_with(extra);
        let overflow = (occupancy - 1.0).max(0.0);
        let observed = view.recent_es.unwrap_or(0.0);
        let fragility = view.recent_ret.map_or(0.0, |ret| (1.0 - ret).max(0.0));
        let w = &self.weights;
        w.es * observed + w.fragility * fragility + w.occupancy * occupancy + w.overflow * overflow
    }
}

impl Placer for EntropyAware {
    fn name(&self) -> &'static str {
        if self.tunable {
            "learned"
        } else {
            "entropy-aware"
        }
    }

    fn place(&mut self, app: &AppSpec, views: &[NodeView]) -> usize {
        argmin_by_score(views, |v| self.score(v, app.threads()))
    }

    fn rebalance(&mut self, views: &[NodeView]) -> Vec<Migration> {
        // Hot nodes with migratable BE work, hottest first (index breaks
        // ties via the stable sort).
        let mut hot: Vec<&NodeView> = views
            .iter()
            .filter(|v| v.be_apps > 0 && v.recent_es.is_some_and(|es| es > self.hot_threshold))
            .collect();
        hot.sort_by(|a, b| {
            b.recent_es
                .partial_cmp(&a.recent_es)
                .expect("recent_es is finite")
        });

        // Running thread deltas so successive migrations see each other.
        let mut delta: Vec<i64> = vec![0; views.len()];
        let mut moves = Vec::new();
        for source in hot.into_iter().take(self.max_migrations) {
            // BE churn-pool apps run at most 10 threads; 4 is typical.
            // The exact count is unknown here, so score the destination
            // with the typical footprint.
            let assumed_threads = 4u32;
            let mut best: Option<(f64, usize)> = None;
            for view in views {
                if view.index == source.index {
                    continue;
                }
                let shifted = NodeView {
                    lc_threads: view.lc_threads,
                    be_threads: (view.be_threads as i64 + delta[view.index]).max(0) as u32,
                    ..view.clone()
                };
                let s = self.score(&shifted, assumed_threads);
                if best.is_none_or(|(bs, _)| s < bs) {
                    best = Some((s, view.index));
                }
            }
            if let Some((score, to)) = best {
                // Only move when the destination is meaningfully calmer
                // than the source reads today.
                if score < source.recent_es.unwrap_or(0.0) + 1.0 {
                    delta[to] += assumed_threads as i64;
                    delta[source.index] -= assumed_threads as i64;
                    moves.push(Migration {
                        from: source.index,
                        to,
                    });
                }
            }
        }
        moves
    }

    fn set_weights(&mut self, weights: &PlacementWeights) {
        if self.tunable {
            self.weights = *weights;
        }
    }
}

/// Declares [`PlacerKind`] and every lookup over it from one table, so a
/// new policy cannot be added without its display name and constructor:
/// each variant row carries both, and `all`/`name`/`build`/`parse` are
/// generated as exhaustive matches over the same list.
macro_rules! placer_registry {
    (
        $( $(#[$vdoc:meta])* $variant:ident => $display:literal, $build:expr; )+
    ) => {
        /// The named placement policies, as a value type experiment grids
        /// can enumerate.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
        pub enum PlacerKind {
            $( $(#[$vdoc])* $variant, )+
        }

        impl PlacerKind {
            /// Number of registered policies.
            pub const COUNT: usize = [$(PlacerKind::$variant),+].len();

            /// All policies, in registry order (baselines first).
            pub fn all() -> [PlacerKind; Self::COUNT] {
                [$(PlacerKind::$variant),+]
            }

            /// The policy's display name.
            pub fn name(&self) -> &'static str {
                match self {
                    $( PlacerKind::$variant => $display, )+
                }
            }

            /// Instantiates a fresh placer with default parameters.
            pub fn build(&self) -> Box<dyn Placer> {
                match self {
                    $( PlacerKind::$variant => $build, )+
                }
            }

            /// Parses a policy from its display name.
            pub fn parse(name: &str) -> Option<PlacerKind> {
                match name.to_ascii_lowercase().as_str() {
                    $( $display => Some(PlacerKind::$variant), )+
                    _ => None,
                }
            }
        }
    };
}

placer_registry! {
    /// Slot/bin-packing baseline.
    FirstFit => "first-fit", Box::new(FirstFit::default());
    /// Occupancy-spreading baseline.
    LeastLoaded => "least-loaded", Box::new(LeastLoaded);
    /// Entropy-score-driven placement and BE migration, fixed hand-tuned
    /// weights.
    EntropyAware => "entropy-aware", Box::new(EntropyAware::default());
    /// Entropy-aware scoring whose weights the cluster controller tunes
    /// online ([`Placer::set_weights`]).
    Learned => "learned", Box::new(EntropyAware::learned());
}

/// The three static policies PR 3 shipped — the grid the `repro cluster`
/// family iterates. `Learned` is excluded: without a controller feeding it
/// weights it is identical to `EntropyAware`, and the cluster tables pin
/// byte-identical output across releases.
pub fn static_placers() -> [PlacerKind; 3] {
    [
        PlacerKind::FirstFit,
        PlacerKind::LeastLoaded,
        PlacerKind::EntropyAware,
    ]
}

/// Whether an app of `kind` may migrate (only BE work moves; LC apps pin
/// where they were placed — live-migrating a latency-critical service is
/// exactly the disruption the paper's scheduling avoids).
pub(crate) fn migratable(kind: AppKind) -> bool {
    kind == AppKind::Be
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahq_workloads::profiles;

    fn view(index: usize, lc: u32, be: u32, es: Option<f64>) -> NodeView {
        NodeView {
            index,
            machine: MachineConfig::paper_xeon(),
            lc_threads: lc,
            be_threads: be,
            apps: ((lc + be) / 4) as usize,
            be_apps: (be / 4) as usize,
            recent_es: es,
            recent_ret: None,
        }
    }

    #[test]
    fn first_fit_packs_low_indices() {
        let mut p = FirstFit::default();
        let app = profiles::xapian();
        let views = vec![view(0, 8, 4, None), view(1, 0, 0, None)];
        // 12 + 4 <= 20: still "fits" under 2x overcommit.
        assert_eq!(p.place(&app, &views), 0);
        let full = vec![view(0, 12, 8, None), view(1, 0, 4, None)];
        // 20 + 4 > 20: overflow to the next slot-fitting node.
        assert_eq!(p.place(&app, &full), 1);
    }

    #[test]
    fn first_fit_falls_back_to_least_occupied_when_all_full() {
        let mut p = FirstFit::default();
        let app = profiles::xapian();
        let views = vec![view(0, 12, 12, None), view(1, 12, 8, None)];
        assert_eq!(p.place(&app, &views), 1);
    }

    #[test]
    fn least_loaded_spreads_and_ties_to_lowest_index() {
        let mut p = LeastLoaded;
        let app = profiles::xapian();
        let views = vec![
            view(0, 4, 0, None),
            view(1, 0, 0, None),
            view(2, 0, 0, None),
        ];
        assert_eq!(p.place(&app, &views), 1);
        let tied = vec![view(0, 4, 0, None), view(1, 4, 0, None)];
        assert_eq!(p.place(&app, &tied), 0);
    }

    #[test]
    fn entropy_aware_avoids_hot_nodes() {
        let mut p = EntropyAware::default();
        let app = profiles::xapian();
        // Node 0 is emptier but ran hot; node 1 is busier but calm.
        let views = vec![view(0, 4, 0, Some(0.9)), view(1, 8, 0, Some(0.0))];
        assert_eq!(p.place(&app, &views), 1);
        // Without history it degenerates to occupancy spreading.
        let cold = vec![view(0, 8, 0, None), view(1, 4, 0, None)];
        assert_eq!(p.place(&app, &cold), 1);
    }

    #[test]
    fn entropy_aware_oversubscription_dominates() {
        let mut p = EntropyAware::default();
        let app = profiles::stream(); // 10 threads
                                      // Node 0 oversubscribes badly with 10 more threads; node 1 has a
                                      // mildly bad history but plenty of headroom.
        let views = vec![view(0, 8, 8, Some(0.1)), view(1, 0, 0, Some(0.3))];
        assert_eq!(p.place(&app, &views), 1);
    }

    #[test]
    fn rebalance_moves_be_off_hot_nodes_boundedly() {
        let mut p = EntropyAware::default();
        let views = vec![
            view(0, 8, 12, Some(0.8)),
            view(1, 8, 8, Some(0.6)),
            view(2, 0, 0, Some(0.0)),
            view(3, 0, 0, None),
        ];
        let moves = p.rebalance(&views);
        assert!(!moves.is_empty());
        assert!(moves.len() <= p.max_migrations);
        for m in &moves {
            assert!(m.from <= 1, "only hot nodes shed work: {m:?}");
            assert!(m.to >= 2, "work lands on calm nodes: {m:?}");
        }
        // Cold clusters never migrate.
        let calm = vec![view(0, 8, 8, Some(0.05)), view(1, 0, 0, Some(0.0))];
        assert!(p.rebalance(&calm).is_empty());
    }

    #[test]
    fn kinds_round_trip() {
        for kind in PlacerKind::all() {
            assert_eq!(PlacerKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.build().name(), kind.name());
        }
        assert_eq!(PlacerKind::parse("nope"), None);
    }

    #[test]
    fn only_be_apps_migrate() {
        assert!(migratable(AppKind::Be));
        assert!(!migratable(AppKind::Lc));
    }
}
