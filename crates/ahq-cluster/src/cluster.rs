//! The cluster runner: a fleet of heterogeneous nodes on a shared window
//! clock, churned and placed between rounds, aggregated into a
//! [`ClusterEntropyReport`].

use std::cell::Cell;
use std::sync::Arc;

use ahq_core::{derive_seed, EntropyModel};
use ahq_sched::{observe, ArqConfig, RunResult, ScheduledRun, Scheduler};
use ahq_sim::{
    percentile, AppKind, AppSpec, MachineConfig, NodeSim, SimPerfStats, SteadyCalibration,
    Surrogate,
};
use serde::{Deserialize, Serialize};

use crate::churn::{ChurnConfig, ChurnEvent, ChurnStream};
use crate::control::{AppliedMove, Controller, RoundObservation};
use crate::fidelity::{FidelityMode, FidelityPolicy};
use crate::placement::{migratable, NodeView, Placer, PlacerKind};
use crate::report::{ClusterEntropyReport, ClusterWindowStat, NodeUtilization};

/// The shared cluster window length in milliseconds — the [`NodeSim`]
/// default window the HI-FI path simulates with, reused by the LO-FI
/// surrogate so both fidelities keep the same clock.
const WINDOW_MS: f64 = 500.0;

/// Cold-start penalty charged to an LC app the controller migrates: the
/// app runs at the warm-up speed factor for this long on its new node.
/// Half a monitoring window — an order of magnitude above the 50 ms
/// repartition refill, reflecting state transfer rather than cache churn.
pub const MIGRATION_WARMUP_MS: f64 = 250.0;

/// The local (per-node) scheduler running underneath the placer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LocalSched {
    /// OS default: everything shared fairly, no management.
    Unmanaged,
    /// The paper's ARQ controller.
    Arq,
}

impl LocalSched {
    /// Both local schedulers, baseline first.
    pub fn all() -> [LocalSched; 2] {
        [LocalSched::Unmanaged, LocalSched::Arq]
    }

    /// The scheduler's display name.
    pub fn name(&self) -> &'static str {
        match self {
            LocalSched::Unmanaged => "unmanaged",
            LocalSched::Arq => "arq",
        }
    }

    /// Instantiates a fresh scheduler for one node job.
    pub fn build(&self) -> Box<dyn Scheduler> {
        match self {
            LocalSched::Unmanaged => Box::new(ahq_sched::Unmanaged),
            LocalSched::Arq => Box::new(ahq_sched::Arq::new()),
        }
    }

    /// Parses a scheduler from its display name.
    pub fn parse(name: &str) -> Option<LocalSched> {
        LocalSched::all()
            .into_iter()
            .find(|k| k.name() == name.to_ascii_lowercase())
    }
}

/// The simulation resolution one [`NodeJob`] runs at.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JobFidelity {
    /// Full discrete-event [`NodeSim`] round.
    HiFi,
    /// Closed-form [`Surrogate`] round, calibrated from the node's last
    /// HI-FI round.
    LoFi(SteadyCalibration),
}

/// One node's work for one round, as a *closed* job: everything that
/// determines its [`RunResult`] is in the value, so a [`NodeBatchRunner`]
/// may execute jobs in any order on any number of workers without
/// changing a byte of output.
///
/// Executing a HI-FI job is definitionally identical to the single-node
/// pipeline: build the simulator against the full paper machine as
/// reference, apply the loads in order, then drive the local scheduler
/// through [`ScheduledRun`] for `windows` windows. A LO-FI job replays
/// the same loop against the closed-form surrogate instead of the event
/// simulator (see DESIGN.md §8).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeJob {
    /// Fleet index of the node (also the seed stream).
    pub node: usize,
    /// The node's machine budget.
    pub machine: MachineConfig,
    /// The apps placed on the node, in placement order. Shared with the
    /// cluster's per-node cache so job construction does not copy specs.
    pub apps: Arc<Vec<AppSpec>>,
    /// Initial per-LC-app load fractions, in app order (order matters:
    /// each `set_load` advances the simulator RNG).
    pub loads: Vec<(String, f64)>,
    /// The node's local scheduler.
    pub sched: LocalSched,
    /// Windows to simulate this round.
    pub windows: usize,
    /// The per-`(node, round)` seed.
    pub seed: u64,
    /// Entropy model the local scheduler is fed with.
    pub model: EntropyModel,
    /// Simulation resolution for the round.
    pub fidelity: JobFidelity,
    /// Names of apps that migrated onto this node right before the round:
    /// each is charged [`MIGRATION_WARMUP_MS`] of cold-start warm-up.
    /// Empty for every job the controller did not touch, which keeps those
    /// job values — and the engine's memo keys — unchanged.
    #[serde(default)]
    pub cold: Vec<String>,
    /// Tuned ARQ knobs for this job; `None` runs [`LocalSched::build`]'s
    /// defaults. Only meaningful with [`LocalSched::Arq`] — trained
    /// policies route their searched thresholds through here.
    #[serde(default)]
    pub arq: Option<ArqConfig>,
}

impl NodeJob {
    /// Executes the job on the calling thread. The result is a pure
    /// function of the job value.
    pub fn execute(&self) -> RunResult {
        match &self.fidelity {
            JobFidelity::HiFi => self.execute_hifi().0,
            JobFidelity::LoFi(calibration) => self.execute_lofi(calibration),
        }
    }

    /// Executes the job and also reports how much simulator work it did.
    /// LO-FI jobs run no discrete events and report empty counters.
    pub fn execute_with_stats(&self) -> (RunResult, SimPerfStats) {
        match &self.fidelity {
            JobFidelity::HiFi => self.execute_hifi(),
            JobFidelity::LoFi(calibration) => {
                (self.execute_lofi(calibration), SimPerfStats::default())
            }
        }
    }

    /// Builds the job's local scheduler, honouring a tuned ARQ config
    /// when one rides along.
    fn build_sched(&self) -> Box<dyn Scheduler> {
        match (self.sched, self.arq) {
            (LocalSched::Arq, Some(config)) => Box::new(ahq_sched::Arq::with_config(config)),
            _ => self.sched.build(),
        }
    }

    fn execute_hifi(&self) -> (RunResult, SimPerfStats) {
        let mut sim = NodeSim::with_reference(
            self.machine,
            MachineConfig::paper_xeon(),
            (*self.apps).clone(),
            self.seed,
        )
        .expect("cluster jobs carry valid app sets");
        for (name, load) in &self.loads {
            sim.set_load(name, *load)
                .expect("cluster loads target placed LC apps");
        }
        // Cold-start charges draw no randomness, so jobs without cold apps
        // keep a bit-identical event stream.
        for name in &self.cold {
            sim.begin_warmup(name, MIGRATION_WARMUP_MS)
                .expect("cold names target placed apps");
        }
        let mut sched = self.build_sched();
        let mut run = ScheduledRun::new(&mut sim, sched.as_mut(), &self.model);
        while run.windows_run() < self.windows {
            run.step();
        }
        let result = run.finish();
        let stats = sim.perf_stats();
        (result, stats)
    }

    /// The LO-FI path: the scheduler contributes only its sharing policy
    /// and initial partition (a demoted node's scheduler made no
    /// adjustment, so the initial partition is the partition in force all
    /// round), and the surrogate stamps out every window from one
    /// steady-state solve. Seed-independent by construction.
    fn execute_lofi(&self, calibration: &SteadyCalibration) -> RunResult {
        let sched = self.build_sched();
        let partition = sched.initial_partition(&self.machine, &self.apps);
        let surrogate = Surrogate::new(
            self.machine,
            MachineConfig::paper_xeon(),
            &self.apps,
            &self.loads,
            &partition,
            sched.policy(),
            WINDOW_MS,
            Some(calibration),
        )
        .expect("cluster jobs carry valid app sets");
        let mut result = RunResult {
            strategy: sched.name().to_owned(),
            observations: Vec::with_capacity(self.windows),
            entropy: Vec::with_capacity(self.windows),
            partitions: Vec::with_capacity(self.windows),
            violations: 0,
            adjustments: 0,
        };
        for w in 0..self.windows {
            let obs = surrogate.window(w as u64);
            let (lc, be) = observe::measurements(&obs);
            let entropy = self.model.evaluate_auto(&lc, &be);
            result.violations += observe::violations(&obs);
            result.observations.push(obs);
            result.entropy.push(entropy);
            result.partitions.push(partition.clone());
        }
        result
    }
}

/// Executes a round's node jobs. Implementations must return results in
/// job order and must not let worker identity or scheduling order leak
/// into any result — both hold trivially for [`SequentialRunner`]; the
/// engine-backed runner in `ahq-experiments` inherits them from the
/// executor's determinism guarantees.
pub trait NodeBatchRunner {
    /// Runs every job, returning results in job order.
    fn run_nodes(&self, jobs: &[NodeJob]) -> Vec<RunResult>;

    /// Aggregated simulator work counters over every job run so far, when
    /// the runner tracks them. Purely informational — results never
    /// depend on these.
    fn perf_stats(&self) -> Option<SimPerfStats> {
        None
    }
}

/// The reference runner: executes jobs one by one on the calling thread,
/// accumulating their simulator work counters.
#[derive(Debug, Default)]
pub struct SequentialRunner {
    stats: Cell<SimPerfStats>,
}

impl SequentialRunner {
    /// A fresh runner with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }
}

impl NodeBatchRunner for SequentialRunner {
    fn run_nodes(&self, jobs: &[NodeJob]) -> Vec<RunResult> {
        jobs.iter()
            .map(|job| {
                let (result, stats) = job.execute_with_stats();
                let mut total = self.stats.get();
                total.events += stats.events;
                total.rate_hits += stats.rate_hits;
                total.rate_misses += stats.rate_misses;
                self.stats.set(total);
                result
            })
            .collect()
    }

    fn perf_stats(&self) -> Option<SimPerfStats> {
        Some(self.stats.get())
    }
}

/// Configuration of one cluster run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Machine budget of each node (the fleet may be heterogeneous).
    pub machines: Vec<MachineConfig>,
    /// Placement policy.
    pub placer: PlacerKind,
    /// Local scheduler run on every node.
    pub sched: LocalSched,
    /// Monitoring windows per round (between churn/placement points).
    pub windows_per_round: usize,
    /// Rounds to simulate.
    pub rounds: usize,
    /// Cluster seed: churn stream and every node seed derive from it.
    pub seed: u64,
    /// Entropy model used on every node and for idle-node scoring.
    pub model: EntropyModel,
    /// Churn stream parameters.
    pub churn: ChurnConfig,
    /// Simulation resolution policy: full fidelity everywhere, or the
    /// HI-FI/LO-FI ladder.
    pub fidelity: FidelityMode,
    /// Ladder promotion/demotion thresholds (ignored under
    /// [`FidelityMode::Full`]).
    pub fidelity_policy: FidelityPolicy,
    /// Tuned ARQ knobs applied to every LC-hosting node when `sched` is
    /// [`LocalSched::Arq`]; `None` keeps the paper's Algorithm 1 defaults
    /// (and the historical job values byte-for-byte).
    #[serde(default)]
    pub arq: Option<ArqConfig>,
}

impl ClusterConfig {
    /// A config over an explicit fleet with the default clock (3 windows
    /// per round, 8 rounds), seed 42, paper entropy model and default
    /// churn.
    pub fn new(machines: Vec<MachineConfig>, placer: PlacerKind, sched: LocalSched) -> Self {
        ClusterConfig {
            machines,
            placer,
            sched,
            windows_per_round: 3,
            rounds: 8,
            seed: 42,
            model: EntropyModel::default(),
            churn: ChurnConfig::default(),
            fidelity: FidelityMode::default(),
            fidelity_policy: FidelityPolicy::default(),
            arq: None,
        }
    }

    /// A config over the standard heterogeneous fleet of `nodes` nodes
    /// (see [`ClusterConfig::fleet`]).
    pub fn heterogeneous(nodes: usize, placer: PlacerKind, sched: LocalSched) -> Self {
        Self::new(Self::fleet(nodes), placer, sched)
    }

    /// The standard heterogeneous fleet: cycling full paper Xeons with
    /// 8-core/16-way and 6-core/12-way budget variants, the same budgeted
    /// machines the single-node resource sweeps use.
    pub fn fleet(nodes: usize) -> Vec<MachineConfig> {
        let full = MachineConfig::paper_xeon();
        let shapes = [full, full.with_budget(8, 16), full.with_budget(6, 12)];
        (0..nodes).map(|i| shapes[i % shapes.len()]).collect()
    }
}

/// One placed application instance.
#[derive(Debug, Clone)]
struct PlacedApp {
    id: u64,
    spec: AppSpec,
    /// Current load fraction; `None` for BE apps.
    load: Option<f64>,
}

/// One node's placement state plus its entropy history and fidelity
/// ladder position.
#[derive(Debug, Clone, Default)]
struct NodeState {
    apps: Vec<PlacedApp>,
    recent_es: Option<f64>,
    recent_ret: Option<f64>,
    /// Consecutive stable rounds (fidelity ladder input).
    streak: u32,
    /// The cached LO-FI round while the node is demoted; `None` = HI-FI.
    lofi: Option<RunResult>,
    /// Shared spec vector handed to every round's job; invalidated by any
    /// churn or migration touching the node.
    spec_cache: Option<Arc<Vec<AppSpec>>>,
    /// Apps that just migrated here and start the coming round cold.
    /// Drained into the round's job and cleared once the round has run.
    cold: Vec<String>,
}

impl NodeState {
    /// Invalidates everything derived from the node's app set: the spec
    /// cache, the stability streak and any LO-FI demotion. Called on
    /// every churn event or migration touching the node — which is what
    /// makes "recent churn" promote a node back to HI-FI.
    fn touch(&mut self) {
        self.streak = 0;
        self.lofi = None;
        self.spec_cache = None;
    }
}

/// Mean per-window system entropy and LC remaining tolerance of one
/// node's round — the placer's history signals and the fidelity ladder's
/// stability inputs.
fn recent_history(result: &RunResult, windows: usize) -> (Option<f64>, Option<f64>) {
    let es = result.entropy.iter().map(|e| e.system).sum::<f64>() / windows as f64;
    let mut ret_sum = 0.0;
    let mut ret_windows = 0u32;
    for entropy in &result.entropy {
        if !entropy.lc_apps.is_empty() {
            ret_sum += entropy
                .lc_apps
                .iter()
                .map(|a| a.remaining_tolerance)
                .sum::<f64>()
                / entropy.lc_apps.len() as f64;
            ret_windows += 1;
        }
    }
    let ret = if ret_windows > 0 {
        Some(ret_sum / ret_windows as f64)
    } else {
        None
    };
    (Some(es), ret)
}

/// Whether a HI-FI round qualifies as stable for the fidelity ladder: no
/// scheduler adjustments, no QoS violations, calm entropy and tolerance
/// signals — and no active MBA throttle in force at round end. A throttle
/// is an ongoing bandwidth intervention the closed-form surrogate would
/// freeze for the whole demotion, so throttled nodes stay at full
/// fidelity no matter how calm they look.
fn round_is_stable(
    policy: &FidelityPolicy,
    result: &RunResult,
    recent_es: Option<f64>,
    recent_ret: Option<f64>,
) -> bool {
    result.adjustments == 0
        && result.violations == 0
        && recent_es.is_some_and(|es| es <= policy.es_threshold)
        && recent_ret.is_none_or(|ret| ret >= policy.ret_margin)
        && result.partitions.last().is_none_or(|p| !p.has_throttle())
}

/// The cluster simulation: applies churn and placement between rounds and
/// fans each round's per-node windows through a [`NodeBatchRunner`].
pub struct ClusterSim {
    config: ClusterConfig,
    stream: ChurnStream,
    placer: Box<dyn Placer>,
    controller: Option<Box<dyn Controller>>,
    nodes: Vec<NodeState>,
    round: usize,
    window_stats: Vec<ClusterWindowStat>,
    violations: u64,
    placements: u64,
    departures: u64,
    load_changes: u64,
    migrations: u64,
    /// Migrations executed since the last round's stats were sealed
    /// (placer rebalance + controller moves + rollback restores).
    round_migrations: u64,
    /// The controller move committed speculatively for the current round.
    last_move: Option<AppliedMove>,
    ctrl_migrations: u64,
    ctrl_rollbacks: u64,
    cold_starts: u64,
    warmup_windows: u64,
    occupancy_sum: Vec<f64>,
    rounds_active: Vec<usize>,
}

impl ClusterSim {
    /// Prepares a run: generates the churn stream and an empty fleet.
    ///
    /// # Panics
    ///
    /// Panics on an empty fleet — a cluster needs at least one node.
    pub fn new(config: ClusterConfig) -> Self {
        assert!(
            !config.machines.is_empty(),
            "cluster needs at least one node"
        );
        let stream = ChurnStream::generate(&config.churn, config.rounds, config.seed);
        let placer = config.placer.build();
        let nodes = vec![NodeState::default(); config.machines.len()];
        let occupancy_sum = vec![0.0; config.machines.len()];
        let rounds_active = vec![0; config.machines.len()];
        ClusterSim {
            config,
            stream,
            placer,
            controller: None,
            nodes,
            round: 0,
            window_stats: Vec::new(),
            violations: 0,
            placements: 0,
            departures: 0,
            load_changes: 0,
            migrations: 0,
            round_migrations: 0,
            last_move: None,
            ctrl_migrations: 0,
            ctrl_rollbacks: 0,
            cold_starts: 0,
            warmup_windows: 0,
            occupancy_sum,
            rounds_active,
        }
    }

    /// Installs a global controller: from the next round on it proposes at
    /// most one speculative migration per round and passes verdict on it
    /// after the round's windows (see [`Controller`]).
    pub fn set_controller(&mut self, controller: Box<dyn Controller>) {
        self.controller = Some(controller);
    }

    /// Replaces the placer built from [`ClusterConfig::placer`] with a
    /// custom instance — how trained policies install their searched
    /// entropy-aware scoring weights. Call before the first round; the
    /// report still carries the configured [`PlacerKind`]'s name.
    pub fn set_placer(&mut self, placer: Box<dyn Placer>) {
        self.placer = placer;
    }

    /// Rounds stepped so far.
    pub fn round(&self) -> usize {
        self.round
    }

    /// Whether every configured round has been stepped.
    pub fn finished(&self) -> bool {
        self.round >= self.config.rounds
    }

    fn view(&self, index: usize) -> NodeView {
        let node = &self.nodes[index];
        let mut lc_threads = 0;
        let mut be_threads = 0;
        let mut be_apps = 0;
        for app in &node.apps {
            match app.spec.kind() {
                AppKind::Lc => lc_threads += app.spec.threads(),
                AppKind::Be => {
                    be_threads += app.spec.threads();
                    be_apps += 1;
                }
            }
        }
        NodeView {
            index,
            machine: self.config.machines[index],
            lc_threads,
            be_threads,
            apps: node.apps.len(),
            be_apps,
            recent_es: node.recent_es,
            recent_ret: node.recent_ret,
        }
    }

    fn views(&self) -> Vec<NodeView> {
        (0..self.nodes.len()).map(|i| self.view(i)).collect()
    }

    fn apply_churn(&mut self) {
        let round = self.round;
        // The stream is applied in generation order: departures, then
        // arrivals (each placed against the fleet as mutated so far), then
        // load changes.
        let events: Vec<ChurnEvent> = self.stream.events_for_round(round).cloned().collect();
        for event in events {
            match event {
                ChurnEvent::Depart { id } => {
                    for node in &mut self.nodes {
                        let before = node.apps.len();
                        node.apps.retain(|a| a.id != id);
                        if node.apps.len() != before {
                            node.touch();
                        }
                    }
                    self.departures += 1;
                }
                ChurnEvent::Arrive(arrival) => {
                    let spec = arrival.spec();
                    let views = self.views();
                    let target = self.placer.place(&spec, &views);
                    assert!(target < self.nodes.len(), "placer returned node {target}");
                    self.nodes[target].apps.push(PlacedApp {
                        id: arrival.id,
                        spec,
                        load: arrival.load,
                    });
                    self.nodes[target].touch();
                    self.placements += 1;
                }
                ChurnEvent::SetLoad { id, load } => {
                    for node in &mut self.nodes {
                        let mut changed = false;
                        for app in &mut node.apps {
                            if app.id == id && app.load.is_some() {
                                app.load = Some(load);
                                self.load_changes += 1;
                                changed = true;
                            }
                        }
                        if changed {
                            node.touch();
                        }
                    }
                }
            }
        }
    }

    fn apply_rebalance(&mut self) {
        let views = self.views();
        for migration in self.placer.rebalance(&views) {
            let (from, to) = (migration.from, migration.to);
            if from >= self.nodes.len() || to >= self.nodes.len() || from == to {
                continue;
            }
            // The concrete app is the cluster's choice, not the placer's:
            // the most recently placed migratable (BE) app — LC apps pin.
            let pick = self.nodes[from]
                .apps
                .iter()
                .enumerate()
                .filter(|(_, a)| migratable(a.spec.kind()))
                .max_by_key(|(_, a)| a.id)
                .map(|(i, _)| i);
            if let Some(i) = pick {
                let app = self.nodes[from].apps.remove(i);
                self.nodes[to].apps.push(app);
                self.nodes[from].touch();
                self.nodes[to].touch();
                self.migrations += 1;
                self.round_migrations += 1;
            }
        }
    }

    /// Asks the controller for this round's move and commits it
    /// speculatively. The concrete app mirrors [`Self::apply_rebalance`]'s
    /// rule — the most recently placed app of the requested kind — and an
    /// LC migrant is marked cold on the recipient so its job charges the
    /// warm-up penalty. Both touched nodes promote back to HI-FI.
    fn apply_controller_plan(&mut self) {
        self.last_move = None;
        if self.controller.is_none() {
            return;
        }
        let views = self.views();
        let round = self.round;
        let proposal = self
            .controller
            .as_mut()
            .expect("checked above")
            .plan(round, &views);
        let Some(mv) = proposal else { return };
        if mv.from >= self.nodes.len() || mv.to >= self.nodes.len() || mv.from == mv.to {
            return;
        }
        let pick = self.nodes[mv.from]
            .apps
            .iter()
            .enumerate()
            .filter(|(_, a)| a.spec.kind() == mv.kind)
            .max_by_key(|(_, a)| a.id)
            .map(|(i, _)| i);
        let Some(slot) = pick else { return };
        let app = self.nodes[mv.from].apps.remove(slot);
        let applied = AppliedMove {
            id: app.id,
            name: app.spec.name().to_owned(),
            from: mv.from,
            to: mv.to,
            kind: mv.kind,
            from_slot: slot,
        };
        self.nodes[mv.to].apps.push(app);
        self.nodes[mv.from].touch();
        self.nodes[mv.to].touch();
        if mv.kind == AppKind::Lc {
            self.nodes[mv.to].cold.push(applied.name.clone());
            self.cold_starts += 1;
            self.warmup_windows += (MIGRATION_WARMUP_MS / WINDOW_MS).ceil() as u64;
        }
        self.ctrl_migrations += 1;
        self.round_migrations += 1;
        self.last_move = Some(applied);
    }

    /// Shows the controller the completed round and executes its verdict:
    /// a rollback restores the migrated app to its pre-move node (and
    /// slot), blacklisting being the controller's own bookkeeping; a
    /// weight update lands on the placer (honoured only by tunable ones).
    fn apply_controller_verdict(&mut self) {
        let Some(mut controller) = self.controller.take() else {
            return;
        };
        let views = self.views();
        let windows = self.config.windows_per_round;
        let start = self.window_stats.len() - windows;
        let obs = RoundObservation {
            round: self.round,
            windows: &self.window_stats[start..],
            views: &views,
            applied: self.last_move.as_ref(),
        };
        let verdict = controller.observe(&obs);
        self.controller = Some(controller);
        if verdict.rollback {
            self.rollback_last_move();
        }
        if let Some(weights) = verdict.weights {
            self.placer.set_weights(&weights);
        }
    }

    /// Restores the speculative move's app to its original node and slot.
    /// The restore is itself a migration: both nodes promote to HI-FI and
    /// an LC app pays a second cold start back home.
    fn rollback_last_move(&mut self) {
        let Some(mv) = self.last_move.take() else {
            return;
        };
        let Some(i) = self.nodes[mv.to].apps.iter().position(|a| a.id == mv.id) else {
            return; // departed mid-round: nothing left to restore
        };
        let app = self.nodes[mv.to].apps.remove(i);
        let slot = mv.from_slot.min(self.nodes[mv.from].apps.len());
        self.nodes[mv.from].apps.insert(slot, app);
        self.nodes[mv.from].touch();
        self.nodes[mv.to].touch();
        if mv.kind == AppKind::Lc {
            self.nodes[mv.from].cold.push(mv.name);
            self.cold_starts += 1;
            self.warmup_windows += (MIGRATION_WARMUP_MS / WINDOW_MS).ceil() as u64;
        }
        self.ctrl_rollbacks += 1;
        self.round_migrations += 1;
    }

    /// Builds the round's closed per-node jobs (non-empty nodes only).
    ///
    /// A node hosting no LC application falls back to the unmanaged
    /// scheduler regardless of the configured one: ARQ's contract requires
    /// at least one LC app to protect, and a BE-only node has nothing to
    /// manage. The fallback is a pure function of the node's app set, so
    /// determinism is unaffected.
    fn node_jobs(&self) -> Vec<NodeJob> {
        (0..self.nodes.len())
            .filter(|&i| !self.nodes[i].apps.is_empty())
            .map(|i| self.node_job(i))
            .collect()
    }

    /// The round's HI-FI jobs: every non-empty node not currently demoted
    /// to the LO-FI surrogate.
    fn hifi_jobs(&self) -> Vec<NodeJob> {
        (0..self.nodes.len())
            .filter(|&i| !self.nodes[i].apps.is_empty() && self.nodes[i].lofi.is_none())
            .map(|i| self.node_job(i))
            .collect()
    }

    /// Builds one node's closed job. The spec vector is shared from the
    /// node's cache when `step_round` has refreshed it; the fallback keeps
    /// the method a pure `&self` function of placement state.
    fn node_job(&self, i: usize) -> NodeJob {
        let node = &self.nodes[i];
        let has_lc = node.apps.iter().any(|a| a.spec.kind() == AppKind::Lc);
        NodeJob {
            node: i,
            machine: self.config.machines[i],
            apps: node
                .spec_cache
                .clone()
                .unwrap_or_else(|| Arc::new(node.apps.iter().map(|a| a.spec.clone()).collect())),
            loads: node
                .apps
                .iter()
                .filter_map(|a| a.load.map(|l| (a.spec.name().to_owned(), l)))
                .collect(),
            sched: if has_lc {
                self.config.sched
            } else {
                LocalSched::Unmanaged
            },
            windows: self.config.windows_per_round,
            seed: derive_seed(derive_seed(self.config.seed, i as u64), self.round as u64),
            model: self.config.model,
            fidelity: JobFidelity::HiFi,
            arq: if has_lc { self.config.arq } else { None },
            // A cold marker can outlive its app: a rollback re-marks the
            // app at home *after* the round, and next round's churn may
            // remove it before this job is built. A departed app owes no
            // warm-up, so only names still placed here are charged.
            cold: node
                .cold
                .iter()
                .filter(|name| node.apps.iter().any(|a| a.spec.name() == name.as_str()))
                .cloned()
                .collect(),
        }
    }

    /// Advances one round: churn, rebalance, controller move, run every
    /// node for `windows_per_round` windows through `runner`, aggregate,
    /// then let the controller judge its move.
    pub fn step_round(&mut self, runner: &dyn NodeBatchRunner) {
        assert!(!self.finished(), "cluster run already finished");
        self.apply_churn();
        if self.round > 0 {
            self.apply_rebalance();
        }
        self.apply_controller_plan();

        // Occupancy accounting for this round's assignment.
        for (i, machine) in self.config.machines.iter().enumerate() {
            let view = self.view(i);
            self.occupancy_sum[i] += view.used_threads() as f64 / machine.cores as f64;
            if view.apps > 0 {
                self.rounds_active[i] += 1;
            }
        }

        // Refresh the per-node spec caches invalidated by churn and
        // migration, so every job this round (and the next, absent churn)
        // shares one spec vector per node instead of rebuilding it.
        for node in &mut self.nodes {
            if node.spec_cache.is_none() && !node.apps.is_empty() {
                node.spec_cache =
                    Some(Arc::new(node.apps.iter().map(|a| a.spec.clone()).collect()));
            }
        }

        let ladder = self.config.fidelity == FidelityMode::Ladder;
        // Demoted nodes replay their cached surrogate round on the
        // coordinator; everyone else runs HI-FI through the runner. Under
        // `Full` the LO-FI set is empty and this is the historical path.
        let lofi_nodes: Vec<usize> = if ladder {
            (0..self.nodes.len())
                .filter(|&i| !self.nodes[i].apps.is_empty() && self.nodes[i].lofi.is_some())
                .collect()
        } else {
            Vec::new()
        };
        let jobs = if ladder {
            self.hifi_jobs()
        } else {
            self.node_jobs()
        };
        let results = runner.run_nodes(&jobs);
        assert_eq!(results.len(), jobs.len(), "runner must answer every job");
        // Cold-start charges apply to exactly one round; the jobs above
        // already carry them.
        for node in &mut self.nodes {
            node.cold.clear();
        }

        let windows = self.config.windows_per_round;
        let total_apps: usize = self.nodes.iter().map(|n| n.apps.len()).sum();
        // Idle nodes score through the entropy model's empty-measurement
        // path: E_S = 0 by construction.
        let idle_es = self.config.model.evaluate_auto(&[], &[]).system;
        let mut es_scratch = vec![idle_es; self.nodes.len()];
        for w in 0..windows {
            es_scratch.iter_mut().for_each(|e| *e = idle_es);
            let mut violations = 0u64;
            for (job, result) in jobs.iter().zip(results.iter()) {
                es_scratch[job.node] = result.entropy[w].system;
                violations += observe::violations(&result.observations[w]);
            }
            for &i in &lofi_nodes {
                let result = self.nodes[i]
                    .lofi
                    .as_ref()
                    .expect("demoted node keeps its surrogate round");
                es_scratch[i] = result.entropy[w].system;
                violations += observe::violations(&result.observations[w]);
            }
            let mean_es = es_scratch.iter().sum::<f64>() / es_scratch.len() as f64;
            let max_es = es_scratch.iter().cloned().fold(0.0, f64::max);
            let p95_es = percentile(&es_scratch, 0.95).expect("fleet is non-empty");
            self.violations += violations;
            self.window_stats.push(ClusterWindowStat {
                window: self.round * windows + w,
                round: self.round,
                mean_es,
                p95_es,
                max_es,
                violations,
                active_nodes: jobs.len() + lofi_nodes.len(),
                hifi_nodes: jobs.len(),
                lofi_nodes: lofi_nodes.len(),
                apps: total_apps,
                round_migrations: self.round_migrations,
            });
        }
        // Sealed into this round's stats; a post-round rollback counts
        // toward the next round it actually disturbs.
        self.round_migrations = 0;

        // Refresh each node's entropy/tolerance history for the placer.
        for (job, result) in jobs.iter().zip(results.iter()) {
            let (es, ret) = recent_history(result, windows);
            let node = &mut self.nodes[job.node];
            node.recent_es = es;
            node.recent_ret = ret;
        }
        for &i in &lofi_nodes {
            let (es, ret) = recent_history(
                self.nodes[i]
                    .lofi
                    .as_ref()
                    .expect("demoted node keeps its surrogate round"),
                windows,
            );
            let node = &mut self.nodes[i];
            node.recent_es = es;
            node.recent_ret = ret;
        }
        // Nodes that went idle this round keep no stale history.
        let mut active = vec![false; self.nodes.len()];
        for job in &jobs {
            active[job.node] = true;
        }
        for &i in &lofi_nodes {
            active[i] = true;
        }
        for (i, node) in self.nodes.iter_mut().enumerate() {
            if !active[i] {
                node.recent_es = Some(idle_es);
                node.recent_ret = None;
            }
        }

        // Ladder transitions, evaluated per HI-FI node in job (= node
        // index) order from this round's results only — a pure function
        // of simulation state, independent of the runner and `--jobs`.
        if ladder {
            let policy = self.config.fidelity_policy;
            for (job, result) in jobs.iter().zip(results.iter()) {
                let node = &mut self.nodes[job.node];
                let stable = round_is_stable(&policy, result, node.recent_es, node.recent_ret);
                if !stable {
                    node.streak = 0;
                    continue;
                }
                node.streak += 1;
                if node.streak < policy.stable_rounds {
                    continue;
                }
                // Demote: snapshot the steady state, run the surrogate
                // round once inline, and accept it only if it reproduces
                // the calm the node is being demoted for — otherwise stay
                // HI-FI and restart the streak.
                let calibration = SteadyCalibration::from_windows(&result.observations);
                let lofi_job = NodeJob {
                    fidelity: JobFidelity::LoFi(calibration),
                    ..job.clone()
                };
                let outcome = lofi_job.execute();
                let (es, ret) = recent_history(&outcome, windows);
                let calm = outcome.violations == 0
                    && es.is_some_and(|e| e <= policy.es_threshold)
                    && ret.is_none_or(|r| r >= policy.ret_margin);
                if calm {
                    node.lofi = Some(outcome);
                } else {
                    node.streak = 0;
                }
            }
        }

        self.apply_controller_verdict();

        self.round += 1;
    }

    /// Steps every remaining round and seals the report.
    pub fn run(mut self, runner: &dyn NodeBatchRunner) -> ClusterEntropyReport {
        while !self.finished() {
            self.step_round(runner);
        }
        self.into_report()
    }

    /// Seals the aggregated report.
    pub fn into_report(self) -> ClusterEntropyReport {
        let rounds = self.round.max(1);
        ClusterEntropyReport {
            placer: self.config.placer.name().to_owned(),
            sched: self.config.sched.name().to_owned(),
            controller: self.controller.as_ref().map(|c| c.name().to_owned()),
            nodes: self.config.machines.len(),
            rounds: self.round,
            windows_per_round: self.config.windows_per_round,
            seed: self.config.seed,
            window_stats: self.window_stats,
            violations: self.violations,
            placements: self.placements,
            departures: self.departures,
            load_changes: self.load_changes,
            migrations: self.migrations,
            ctrl_migrations: self.ctrl_migrations,
            ctrl_rollbacks: self.ctrl_rollbacks,
            cold_starts: self.cold_starts,
            warmup_windows: self.warmup_windows,
            node_utilization: self
                .occupancy_sum
                .iter()
                .enumerate()
                .map(|(node, &sum)| NodeUtilization {
                    node,
                    mean_occupancy: sum / rounds as f64,
                    rounds_active: self.rounds_active[node],
                })
                .collect(),
        }
    }
}

/// Runs one cluster configuration to completion — the one-call entry
/// point `repro cluster` and the integration tests use.
pub fn run_cluster(config: ClusterConfig, runner: &dyn NodeBatchRunner) -> ClusterEntropyReport {
    ClusterSim::new(config).run(runner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::{AppMove, ControlVerdict};

    fn tiny_config(placer: PlacerKind) -> ClusterConfig {
        ClusterConfig {
            windows_per_round: 2,
            rounds: 3,
            seed: 9,
            churn: ChurnConfig {
                initial_apps: 6,
                arrivals_per_round: 1.0,
                departure_prob: 0.1,
                load_change_prob: 0.2,
                be_fraction: 0.4,
            },
            ..ClusterConfig::heterogeneous(8, placer, LocalSched::Unmanaged)
        }
    }

    #[test]
    fn run_is_deterministic() {
        let a = run_cluster(
            tiny_config(PlacerKind::EntropyAware),
            &SequentialRunner::default(),
        );
        let b = run_cluster(
            tiny_config(PlacerKind::EntropyAware),
            &SequentialRunner::default(),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn report_shape_matches_run() {
        let report = run_cluster(
            tiny_config(PlacerKind::FirstFit),
            &SequentialRunner::default(),
        );
        assert_eq!(report.nodes, 8);
        assert_eq!(report.rounds, 3);
        assert_eq!(report.windows(), 6);
        assert!(
            report.placements >= 6,
            "at least the initial population placed"
        );
        assert_eq!(report.node_utilization.len(), 8);
        assert!(report.window_stats.iter().all(|w| w.apps > 0));
        assert!(report
            .window_stats
            .iter()
            .all(|w| w.mean_es <= w.p95_es + 1e-12 || w.active_nodes == 8));
    }

    #[test]
    fn node_jobs_are_closed_and_seeded_per_round() {
        let mut sim = ClusterSim::new(tiny_config(PlacerKind::LeastLoaded));
        sim.apply_churn();
        let jobs_r0 = sim.node_jobs();
        assert!(!jobs_r0.is_empty());
        for job in &jobs_r0 {
            assert_eq!(
                job.seed,
                derive_seed(derive_seed(9, job.node as u64), 0),
                "seed must be a pure function of (cluster seed, node, round)"
            );
        }
        // Distinct nodes get distinct seeds.
        let mut seeds: Vec<u64> = jobs_r0.iter().map(|j| j.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), jobs_r0.len());
    }

    #[test]
    fn be_only_nodes_fall_back_to_unmanaged_under_arq() {
        let mut config = tiny_config(PlacerKind::LeastLoaded);
        config.sched = LocalSched::Arq;
        config.churn.be_fraction = 1.0; // every arrival is a BE app
        let report = run_cluster(config, &SequentialRunner::default());
        assert_eq!(report.sched, "arq", "the configured scheduler is reported");
        assert!(report.windows() > 0);
    }

    #[test]
    fn sequential_runner_reports_aggregate_perf_stats() {
        let runner = SequentialRunner::new();
        let report = run_cluster(tiny_config(PlacerKind::EntropyAware), &runner);
        assert!(report.windows() > 0);
        let stats = runner.perf_stats().expect("sequential runner tracks stats");
        assert!(stats.events > 0, "HI-FI rounds simulate discrete events");
    }

    #[test]
    fn ladder_is_deterministic_and_partitions_active_nodes() {
        let mut config = tiny_config(PlacerKind::EntropyAware);
        config.fidelity = FidelityMode::Ladder;
        let a = run_cluster(config.clone(), &SequentialRunner::default());
        let b = run_cluster(config, &SequentialRunner::default());
        assert_eq!(a, b);
        assert!(a
            .window_stats
            .iter()
            .all(|w| w.hifi_nodes + w.lofi_nodes == w.active_nodes));
    }

    #[test]
    fn calm_ladder_demotes_nodes_until_churn_returns() {
        // A BE-only fleet with no churn after the initial placement is
        // stable by construction (no LC apps, no violations, unmanaged
        // fallback makes no adjustments), so with a permissive policy every
        // active node must reach LO-FI after `stable_rounds` HI-FI rounds.
        let mut config = tiny_config(PlacerKind::FirstFit);
        config.rounds = 4;
        config.churn.be_fraction = 1.0;
        config.churn.arrivals_per_round = 0.0;
        config.churn.departure_prob = 0.0;
        config.churn.load_change_prob = 0.0;
        config.fidelity = FidelityMode::Ladder;
        config.fidelity_policy = FidelityPolicy {
            stable_rounds: 1,
            es_threshold: f64::INFINITY,
            ret_margin: f64::NEG_INFINITY,
        };
        let report = run_cluster(config, &SequentialRunner::default());
        let first = report.window_stats.first().expect("windows recorded");
        let last = report.window_stats.last().expect("windows recorded");
        assert_eq!(first.lofi_nodes, 0, "round 0 runs everything HI-FI");
        assert!(last.active_nodes > 0, "the initial population stays placed");
        assert_eq!(
            last.lofi_nodes, last.active_nodes,
            "a calm fleet is fully demoted to the surrogate"
        );
        assert_eq!(last.hifi_nodes, 0);
    }

    #[test]
    fn ladder_on_calm_fleet_matches_full_shape() {
        // Same calm scenario under both fidelities: the reports agree on
        // placement bookkeeping even though the entropy paths differ.
        let mut config = tiny_config(PlacerKind::FirstFit);
        config.churn.be_fraction = 1.0;
        config.churn.arrivals_per_round = 0.0;
        config.churn.departure_prob = 0.0;
        config.churn.load_change_prob = 0.0;
        let full = run_cluster(config.clone(), &SequentialRunner::default());
        config.fidelity = FidelityMode::Ladder;
        let ladder = run_cluster(config, &SequentialRunner::default());
        assert_eq!(full.placements, ladder.placements);
        assert_eq!(full.windows(), ladder.windows());
        assert_eq!(full.violations, 0);
        assert_eq!(ladder.violations, 0);
    }

    #[test]
    fn active_throttle_blocks_ladder_demotion() {
        use ahq_sim::{MbaLevel, Partition, RegionAlloc};
        let policy = FidelityPolicy {
            stable_rounds: 1,
            es_threshold: f64::INFINITY,
            ret_margin: f64::NEG_INFINITY,
        };
        let calm = RunResult {
            strategy: "arq".to_owned(),
            observations: vec![],
            entropy: vec![],
            partitions: vec![Partition::all_shared(2)],
            violations: 0,
            adjustments: 0,
        };
        assert!(round_is_stable(&policy, &calm, Some(0.0), None));
        let mut throttled = calm.clone();
        let mut p = Partition::all_shared(2);
        p.set_isolated(1.into(), RegionAlloc::EMPTY.with_mba(MbaLevel::new(40)));
        throttled.partitions.push(p);
        assert!(
            !round_is_stable(&policy, &throttled, Some(0.0), None),
            "a node ending its round throttled must stay HI-FI"
        );
    }

    #[test]
    fn fleet_is_heterogeneous_and_cycles() {
        let fleet = ClusterConfig::fleet(7);
        assert_eq!(fleet.len(), 7);
        assert_eq!(fleet[0], MachineConfig::paper_xeon());
        assert_eq!(fleet[3], fleet[0]);
        assert!(fleet[1].cores < fleet[0].cores);
        assert!(fleet[2].cores < fleet[1].cores);
    }

    #[test]
    fn local_sched_round_trips() {
        for kind in LocalSched::all() {
            assert_eq!(LocalSched::parse(kind.name()), Some(kind));
            assert_eq!(kind.build().name(), kind.name());
        }
        assert_eq!(LocalSched::parse("nope"), None);
    }

    /// A scripted controller: one fixed move at a given round, with a
    /// predetermined verdict — the mechanism test double for rollback.
    struct Scripted {
        at: usize,
        mv: AppMove,
        rollback: bool,
    }

    impl Controller for Scripted {
        fn name(&self) -> &'static str {
            "scripted"
        }

        fn plan(&mut self, round: usize, _views: &[NodeView]) -> Option<AppMove> {
            (round == self.at).then_some(self.mv)
        }

        fn observe(&mut self, obs: &RoundObservation<'_>) -> ControlVerdict {
            ControlVerdict {
                rollback: self.rollback && obs.applied.is_some(),
                weights: None,
            }
        }
    }

    /// A churn-free config (after the initial population) so placement
    /// only changes through the controller under test.
    fn frozen_config() -> ClusterConfig {
        ClusterConfig {
            windows_per_round: 2,
            rounds: 3,
            seed: 9,
            churn: ChurnConfig {
                initial_apps: 6,
                arrivals_per_round: 0.0,
                departure_prob: 0.0,
                load_change_prob: 0.0,
                be_fraction: 0.5,
            },
            ..ClusterConfig::heterogeneous(8, PlacerKind::FirstFit, LocalSched::Unmanaged)
        }
    }

    fn placement_snapshot(sim: &ClusterSim) -> Vec<Vec<(u64, String)>> {
        sim.nodes
            .iter()
            .map(|n| {
                n.apps
                    .iter()
                    .map(|a| (a.id, a.spec.name().to_owned()))
                    .collect()
            })
            .collect()
    }

    /// Finds a `(donor, recipient)` pair where the donor hosts a BE app.
    fn be_move(sim: &ClusterSim) -> AppMove {
        let from = (0..sim.nodes.len())
            .find(|&i| {
                sim.nodes[i]
                    .apps
                    .iter()
                    .any(|a| a.spec.kind() == AppKind::Be)
            })
            .expect("some node hosts a BE app");
        let to = (0..sim.nodes.len())
            .find(|&i| i != from)
            .expect("another node exists");
        AppMove {
            from,
            to,
            kind: AppKind::Be,
        }
    }

    #[test]
    fn rolled_back_move_restores_the_exact_placement() {
        let runner = SequentialRunner::default();
        let mut sim = ClusterSim::new(frozen_config());
        sim.step_round(&runner); // round 0: initial population, no move
        let mv = be_move(&sim);
        sim.set_controller(Box::new(Scripted {
            at: 1,
            mv,
            rollback: true,
        }));
        let before = placement_snapshot(&sim);
        sim.step_round(&runner); // round 1: move applied, then rolled back
        assert_eq!(
            placement_snapshot(&sim),
            before,
            "rollback must restore the exact pre-move placement, order included"
        );
        sim.step_round(&runner);
        let report = sim.into_report();
        assert_eq!(report.controller.as_deref(), Some("scripted"));
        assert_eq!(report.ctrl_migrations, 1);
        assert_eq!(report.ctrl_rollbacks, 1);
        assert_eq!(report.cold_starts, 0, "a BE round trip charges no warm-up");
        // The move and its restore each disturb one round's windows.
        let disturbed: Vec<usize> = report
            .window_stats
            .iter()
            .filter(|w| w.round_migrations > 0)
            .map(|w| w.round)
            .collect();
        assert!(
            disturbed.contains(&1) && disturbed.contains(&2),
            "move disturbs round 1, restore disturbs round 2: {disturbed:?}"
        );
    }

    #[test]
    fn committed_move_lands_on_the_recipient() {
        let runner = SequentialRunner::default();
        let mut sim = ClusterSim::new(frozen_config());
        sim.step_round(&runner);
        let mv = be_move(&sim);
        let donor_before = sim.nodes[mv.from].apps.len();
        let recipient_before = sim.nodes[mv.to].apps.len();
        sim.set_controller(Box::new(Scripted {
            at: 1,
            mv,
            rollback: false,
        }));
        sim.step_round(&runner);
        assert_eq!(sim.nodes[mv.from].apps.len(), donor_before - 1);
        assert_eq!(sim.nodes[mv.to].apps.len(), recipient_before + 1);
        sim.step_round(&runner);
        let report = sim.into_report();
        assert_eq!(report.ctrl_migrations, 1);
        assert_eq!(report.ctrl_rollbacks, 0);
    }

    #[test]
    fn lc_controller_move_charges_one_cold_start() {
        let runner = SequentialRunner::default();
        let mut config = frozen_config();
        config.churn.be_fraction = 0.0; // all-LC fleet
        let mut sim = ClusterSim::new(config);
        sim.step_round(&runner);
        let from = (0..sim.nodes.len())
            .find(|&i| !sim.nodes[i].apps.is_empty())
            .expect("populated node");
        let to = (0..sim.nodes.len()).find(|&i| i != from).unwrap();
        sim.set_controller(Box::new(Scripted {
            at: 1,
            mv: AppMove {
                from,
                to,
                kind: AppKind::Lc,
            },
            rollback: false,
        }));
        sim.step_round(&runner);
        sim.step_round(&runner);
        let report = sim.into_report();
        assert_eq!(report.ctrl_migrations, 1);
        assert_eq!(report.cold_starts, 1);
        assert_eq!(
            report.warmup_windows, 1,
            "250 ms of warm-up rounds up to one 500 ms window"
        );
    }
}
