//! The fidelity ladder: which simulation resolution each node runs at and
//! the deterministic rules for moving between resolutions.
//!
//! Every node is either **HI-FI** — the full discrete-event
//! [`ahq_sim::NodeSim`] — or **LO-FI** — the closed-form
//! [`ahq_sim::Surrogate`] that replays a calibrated steady-state window
//! with no event loop. Demotion and promotion are pure functions of
//! simulation state (churn events, entropy history, scheduler activity),
//! never of wall-clock or worker identity, so a ladder run is
//! byte-identical for any `--jobs` count. See DESIGN.md §8.

use serde::{Deserialize, Serialize};

/// How the cluster assigns simulation fidelity to nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum FidelityMode {
    /// Every node runs the full discrete-event simulator every round —
    /// the historical behaviour and the accuracy reference.
    #[default]
    Full,
    /// Nodes that stay stable for [`FidelityPolicy::stable_rounds`]
    /// consecutive rounds are demoted to the LO-FI surrogate until the
    /// next churn event, migration, or instability signal promotes them
    /// back.
    Ladder,
}

impl FidelityMode {
    /// Both modes, reference first.
    pub fn all() -> [FidelityMode; 2] {
        [FidelityMode::Full, FidelityMode::Ladder]
    }

    /// The mode's display name.
    pub fn name(&self) -> &'static str {
        match self {
            FidelityMode::Full => "full",
            FidelityMode::Ladder => "ladder",
        }
    }

    /// Parses a mode from its display name.
    pub fn parse(name: &str) -> Option<FidelityMode> {
        FidelityMode::all()
            .into_iter()
            .find(|m| m.name() == name.to_ascii_lowercase())
    }
}

/// The ladder's promotion/demotion thresholds.
///
/// A HI-FI node round is *stable* when its local scheduler made no
/// partition adjustment, no QoS violation occurred, its mean system
/// entropy stayed at or below `es_threshold`, and its mean LC remaining
/// tolerance (when it hosts LC apps) stayed at or above `ret_margin`.
/// After `stable_rounds` consecutive stable rounds the node is demoted to
/// LO-FI — provided the surrogate round itself reproduces the same calm.
/// Any churn event or migration touching the node promotes it back to
/// HI-FI immediately.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FidelityPolicy {
    /// Consecutive stable rounds required before demotion to LO-FI.
    pub stable_rounds: u32,
    /// Mean system entropy a stable round must not exceed.
    pub es_threshold: f64,
    /// Mean LC remaining tolerance a stable round must not fall below —
    /// nodes near an `ReT` violation stay HI-FI.
    pub ret_margin: f64,
}

impl Default for FidelityPolicy {
    fn default() -> Self {
        FidelityPolicy {
            stable_rounds: 2,
            es_threshold: 0.05,
            ret_margin: 0.2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_round_trips() {
        for mode in FidelityMode::all() {
            assert_eq!(FidelityMode::parse(mode.name()), Some(mode));
        }
        assert_eq!(FidelityMode::parse("LADDER"), Some(FidelityMode::Ladder));
        assert_eq!(FidelityMode::parse("nope"), None);
        assert_eq!(FidelityMode::default(), FidelityMode::Full);
    }

    #[test]
    fn default_policy_is_conservative() {
        let policy = FidelityPolicy::default();
        assert!(policy.stable_rounds >= 1);
        assert!(policy.es_threshold > 0.0 && policy.es_threshold < 0.5);
        assert!(policy.ret_margin > 0.0 && policy.ret_margin < 1.0);
    }
}
