//! The cluster-controller hook: a global decision layer above the placer.
//!
//! A [`Controller`] runs one decision epoch per cluster round, treating
//! nodes the way node-level ARQ treats resource regions: it may propose at
//! most one app migration per round ([`AppMove`]), the cluster commits the
//! move *speculatively* before the round's windows run, and after the
//! round the controller sees what happened ([`RoundObservation`]) and
//! returns a [`ControlVerdict`] — roll the move back (the cluster restores
//! the exact pre-move placement) and/or install new placement-scoring
//! weights for the rounds ahead.
//!
//! The trait lives in `ahq-cluster` so the concrete controller crate
//! (`ahq-ctrl`) can depend on the cluster types without a dependency
//! cycle; [`crate::ClusterSim::set_controller`] accepts any boxed
//! implementation.

use ahq_sim::AppKind;
use serde::{Deserialize, Serialize};

use crate::placement::{NodeView, PlacementWeights};
use crate::report::ClusterWindowStat;

/// A migration the controller proposes: move one app of `kind` from node
/// `from` to node `to`. The cluster picks the concrete app
/// deterministically (highest app id of that kind on the donor, matching
/// the placer's rebalance rule) and ignores the move if the donor hosts
/// no such app.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppMove {
    /// Donor node index.
    pub from: usize,
    /// Recipient node index.
    pub to: usize,
    /// Which kind of app to move. BE moves are cheap; LC moves charge the
    /// migrated app a cold-start warm-up window on the recipient.
    pub kind: AppKind,
}

/// The migration the cluster actually executed for a proposed [`AppMove`]:
/// the concrete app it picked on the donor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppliedMove {
    /// Stable placement id of the migrated app.
    pub id: u64,
    /// Instance name of the migrated app.
    pub name: String,
    /// Donor node index.
    pub from: usize,
    /// Recipient node index.
    pub to: usize,
    /// The migrated app's kind.
    pub kind: AppKind,
    /// The app's position in the donor's placement order before the move,
    /// so a rollback restores the exact pre-move placement.
    pub from_slot: usize,
}

/// Everything the controller sees after a round's windows have run.
#[derive(Debug)]
pub struct RoundObservation<'a> {
    /// The round that just completed (0-based).
    pub round: usize,
    /// The completed round's per-window cluster aggregates.
    pub windows: &'a [ClusterWindowStat],
    /// Post-round node summaries (entropy/tolerance history refreshed).
    pub views: &'a [NodeView],
    /// The move executed this round, if the controller's proposal was
    /// applicable.
    pub applied: Option<&'a AppliedMove>,
}

impl RoundObservation<'_> {
    /// Mean cluster `E_S` across the observed round's windows.
    pub fn mean_entropy(&self) -> f64 {
        if self.windows.is_empty() {
            return 0.0;
        }
        self.windows.iter().map(|w| w.mean_es).sum::<f64>() / self.windows.len() as f64
    }
}

/// What the controller wants done after observing a round.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ControlVerdict {
    /// Restore the pre-move placement of this round's applied move. The
    /// cluster executes the restore before the next round's churn, and
    /// both nodes promote to HI-FI again.
    pub rollback: bool,
    /// New placement-scoring weights to install on the placer (honoured
    /// only by tunable placers; see [`crate::Placer::set_weights`]).
    pub weights: Option<PlacementWeights>,
}

/// A global cluster controller: one proposal before each round's windows,
/// one verdict after them.
pub trait Controller {
    /// The controller's display name (used in experiment output).
    fn name(&self) -> &'static str;

    /// Proposes at most one migration for round `round`, given the
    /// pre-round node summaries (after churn and placer rebalance). The
    /// views reflect history up to the previous round.
    fn plan(&mut self, round: usize, views: &[NodeView]) -> Option<AppMove>;

    /// Observes the completed round and decides whether the speculative
    /// move survives, plus any weight update for the next epoch.
    fn observe(&mut self, obs: &RoundObservation<'_>) -> ControlVerdict;
}
