//! The search space: every knob the offline search may turn, flattened
//! into a fixed-length gene vector with per-gene bounds and repair.

use ahq_cluster::{EntropyAware, PlacementWeights};
use ahq_core::json::{FromJson, JsonError, JsonValue, ToJson};
use ahq_sched::ArqConfig;

/// Number of genes in the flat encoding.
pub const GENES: usize = 11;

/// Human-readable gene names, in [`Genome::to_vec`] order.
pub const GENE_NAMES: [&str; GENES] = [
    "es",
    "fragility",
    "occupancy",
    "overflow",
    "hot_threshold",
    "max_migrations",
    "victim_ret",
    "beneficiary_ret",
    "entropy_epsilon",
    "blacklist_secs",
    "throttle_be",
];

/// A complete tunable policy: the entropy-aware placement scoring
/// weights plus the ARQ adjustment rule thresholds. The incumbent
/// hand-tuned policy is [`Genome::default`]; the trainer searches the
/// box around it defined by [`GenomeBounds`].
#[derive(Debug, Clone, PartialEq)]
pub struct Genome {
    /// Placement scoring weights for the entropy-aware placer.
    pub weights: PlacementWeights,
    /// Rebalance trigger: nodes with observed E_S above this are hot.
    pub hot_threshold: f64,
    /// Migration budget per rebalance pass.
    pub max_migrations: usize,
    /// ARQ: a region donates resources while its ReT exceeds this.
    pub victim_ret: f64,
    /// ARQ: an application below this ReT receives resources.
    pub beneficiary_ret: f64,
    /// ARQ: rollback noise floor on window-to-window entropy deltas.
    pub entropy_epsilon: f64,
    /// ARQ: how long a rolled-back victim is protected, in seconds.
    pub blacklist_secs: f64,
    /// ARQ: whether the BE memory-bandwidth throttle gate is enabled.
    pub throttle_be: bool,
}

impl Default for Genome {
    /// The incumbent hand-tuned policy: `EntropyAware::default()`
    /// placement plus `ArqConfig::default()` adjustment thresholds.
    fn default() -> Self {
        let placer = EntropyAware::default();
        let arq = ArqConfig::default();
        Genome {
            weights: placer.weights,
            hot_threshold: placer.hot_threshold,
            max_migrations: placer.max_migrations,
            victim_ret: arq.victim_ret,
            beneficiary_ret: arq.beneficiary_ret,
            entropy_epsilon: arq.entropy_epsilon,
            blacklist_secs: arq.blacklist_secs,
            throttle_be: arq.throttle_be,
        }
    }
}

impl Genome {
    /// Flatten into the fixed [`GENES`]-length vector ([`GENE_NAMES`]
    /// order). Exact: `from_vec(&g.to_vec())` reproduces `g` for any
    /// genome already inside [`GenomeBounds::default`].
    pub fn to_vec(&self) -> Vec<f64> {
        vec![
            self.weights.es,
            self.weights.fragility,
            self.weights.occupancy,
            self.weights.overflow,
            self.hot_threshold,
            self.max_migrations as f64,
            self.victim_ret,
            self.beneficiary_ret,
            self.entropy_epsilon,
            self.blacklist_secs,
            if self.throttle_be { 1.0 } else { 0.0 },
        ]
    }

    /// Decode a raw gene vector, repairing it into a valid policy:
    /// clamp every gene into `bounds`, round `max_migrations` to an
    /// integer, binarize `throttle_be` at 0.5, and cap
    /// `beneficiary_ret` at `victim_ret` (a beneficiary threshold above
    /// the victim threshold would make every region both donor and
    /// recipient at once).
    pub fn from_vec(raw: &[f64], bounds: &GenomeBounds) -> Genome {
        assert_eq!(raw.len(), GENES, "genome vector must have {GENES} genes");
        let mut v = [0.0f64; GENES];
        for (i, slot) in v.iter_mut().enumerate() {
            let x = if raw[i].is_finite() {
                raw[i]
            } else {
                bounds.lo[i]
            };
            *slot = x.clamp(bounds.lo[i], bounds.hi[i]);
        }
        let max_migrations = v[5].round() as usize;
        let victim_ret = v[6];
        let beneficiary_ret = v[7].min(victim_ret);
        Genome {
            weights: PlacementWeights {
                es: v[0],
                fragility: v[1],
                occupancy: v[2],
                overflow: v[3],
            },
            hot_threshold: v[4],
            max_migrations,
            victim_ret,
            beneficiary_ret,
            entropy_epsilon: v[8],
            blacklist_secs: v[9],
            throttle_be: v[10] > 0.5,
        }
    }

    /// The placer this genome encodes. `tunable` is off: the trained
    /// weights are fixed for the whole run, not re-fit online.
    pub fn placer(&self) -> EntropyAware {
        EntropyAware {
            hot_threshold: self.hot_threshold,
            max_migrations: self.max_migrations,
            weights: self.weights,
            tunable: false,
        }
    }

    /// The ARQ configuration this genome encodes. `smoothing_windows`
    /// and `sharing` stay at their defaults — they are structural
    /// choices pinned by the paper's Algorithm 1, not search knobs.
    pub fn arq_config(&self) -> ArqConfig {
        ArqConfig {
            victim_ret: self.victim_ret,
            beneficiary_ret: self.beneficiary_ret,
            blacklist_secs: self.blacklist_secs,
            entropy_epsilon: self.entropy_epsilon,
            throttle_be: self.throttle_be,
            ..ArqConfig::default()
        }
    }
}

impl ToJson for Genome {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("es", self.weights.es.to_json()),
            ("fragility", self.weights.fragility.to_json()),
            ("occupancy", self.weights.occupancy.to_json()),
            ("overflow", self.weights.overflow.to_json()),
            ("hot_threshold", self.hot_threshold.to_json()),
            ("max_migrations", self.max_migrations.to_json()),
            ("victim_ret", self.victim_ret.to_json()),
            ("beneficiary_ret", self.beneficiary_ret.to_json()),
            ("entropy_epsilon", self.entropy_epsilon.to_json()),
            ("blacklist_secs", self.blacklist_secs.to_json()),
            ("throttle_be", self.throttle_be.to_json()),
        ])
    }
}

impl FromJson for Genome {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(Genome {
            weights: PlacementWeights {
                es: value.req("es")?,
                fragility: value.req("fragility")?,
                occupancy: value.req("occupancy")?,
                overflow: value.req("overflow")?,
            },
            hot_threshold: value.req("hot_threshold")?,
            max_migrations: value.req("max_migrations")?,
            victim_ret: value.req("victim_ret")?,
            beneficiary_ret: value.req("beneficiary_ret")?,
            entropy_epsilon: value.req("entropy_epsilon")?,
            blacklist_secs: value.req("blacklist_secs")?,
            throttle_be: value.req("throttle_be")?,
        })
    }
}

/// Per-gene search box, in [`GENE_NAMES`] order. The defaults bracket
/// every incumbent value with room on both sides; the trainer never
/// leaves the box (decode clamps into it).
#[derive(Debug, Clone, PartialEq)]
pub struct GenomeBounds {
    /// Lower bound per gene.
    pub lo: [f64; GENES],
    /// Upper bound per gene.
    pub hi: [f64; GENES],
}

impl Default for GenomeBounds {
    fn default() -> Self {
        GenomeBounds {
            //    es   frag  occ  over  hot  migr  vict  bene  eps  black throt
            lo: [0.0, 0.0, 0.0, 0.0, 0.05, 0.0, 0.02, 0.0, 0.0, 10.0, 0.0],
            hi: [3.0, 2.0, 3.0, 6.0, 0.80, 4.0, 0.40, 0.20, 0.10, 120.0, 1.0],
        }
    }
}

impl GenomeBounds {
    /// Width of gene `i`'s interval — the scale mutations are sized by.
    pub fn range(&self, i: usize) -> f64 {
        self.hi[i] - self.lo[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_genome_matches_incumbents() {
        let g = Genome::default();
        assert_eq!(g.weights, PlacementWeights::default());
        assert_eq!(g.hot_threshold, 0.25);
        assert_eq!(g.max_migrations, 2);
        assert_eq!(g.victim_ret, 0.1);
        assert_eq!(g.beneficiary_ret, 0.05);
        assert!(!g.throttle_be);
    }

    #[test]
    fn vector_round_trip_is_exact() {
        let bounds = GenomeBounds::default();
        let g = Genome::default();
        assert_eq!(Genome::from_vec(&g.to_vec(), &bounds), g);
        let tuned = Genome {
            weights: PlacementWeights {
                es: 1.75,
                fragility: 0.5,
                occupancy: 0.25,
                overflow: 3.0,
            },
            hot_threshold: 0.4,
            max_migrations: 3,
            victim_ret: 0.2,
            beneficiary_ret: 0.08,
            entropy_epsilon: 0.05,
            blacklist_secs: 30.0,
            throttle_be: true,
        };
        assert_eq!(Genome::from_vec(&tuned.to_vec(), &bounds), tuned);
    }

    #[test]
    fn repair_clamps_quantizes_and_orders_thresholds() {
        let bounds = GenomeBounds::default();
        let raw = [9.0, -1.0, 0.5, 0.5, 0.5, 2.4, 0.05, 0.19, 0.5, 1.0, 0.3];
        let g = Genome::from_vec(&raw, &bounds);
        assert_eq!(g.weights.es, 3.0);
        assert_eq!(g.weights.fragility, 0.0);
        assert_eq!(g.max_migrations, 2);
        // beneficiary capped at victim
        assert_eq!(g.beneficiary_ret, g.victim_ret);
        assert_eq!(g.entropy_epsilon, 0.1);
        assert_eq!(g.blacklist_secs, 10.0);
        assert!(!g.throttle_be);
        // NaN genes land on the lower bound rather than poisoning the policy.
        let g = Genome::from_vec(&[f64::NAN; GENES], &bounds);
        assert_eq!(g.weights.es, 0.0);
        assert_eq!(g.blacklist_secs, 10.0);
    }

    #[test]
    fn derived_policy_objects_carry_the_genes() {
        let g = Genome {
            hot_threshold: 0.33,
            throttle_be: true,
            victim_ret: 0.17,
            ..Genome::default()
        };
        let placer = g.placer();
        assert_eq!(placer.hot_threshold, 0.33);
        assert!(!placer.tunable);
        let arq = g.arq_config();
        assert_eq!(arq.victim_ret, 0.17);
        assert!(arq.throttle_be);
        assert_eq!(
            arq.smoothing_windows,
            ArqConfig::default().smoothing_windows
        );
    }

    #[test]
    fn json_round_trip_is_exact() {
        let mut g = Genome::default();
        g.weights.es = 1.2345678901234567;
        g.throttle_be = true;
        let text = ahq_core::json::to_string(&g);
        let back: Genome = ahq_core::json::from_str(&text).unwrap();
        assert_eq!(back, g);
    }
}
