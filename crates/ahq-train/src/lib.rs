//! # ahq-train — offline policy search for placement and ARQ
//!
//! The entropy-aware placer and the ARQ adjustment loop ship with
//! hand-tuned constants (scoring weights, tighten/relax ReT thresholds,
//! the BE-throttle gate, rollback margins). This crate searches that
//! space offline: every knob is flattened into an 11-gene [`Genome`],
//! candidate genomes are scored on a deterministic portfolio of
//! churned-cluster scenarios ([`portfolio`]), and a seeded generational
//! genetic algorithm — optionally refined by the CLITE-style GP/EI
//! machinery in `ahq-bayesopt` — selects on the multi-objective
//! [`Fitness`] tuple (steady-state mean E_S, p95 E_S, SLO violations,
//! migration cost). The winner is emitted as a [`PolicyArtifact`]:
//! a JSON file (via `ahq_core::json`) that loads back bit-exactly and
//! can be replayed against the static incumbent on fleets the search
//! never saw.
//!
//! Evaluation is abstracted behind `ahq_cluster::NodeBatchRunner`, so
//! the search composes with the memoized parallel run engine in
//! `ahq-experiments` — shared node jobs across candidates hit the run
//! cache, and training output is byte-identical for any worker count.
//!
//! ```
//! use ahq_cluster::SequentialRunner;
//! use ahq_train::{portfolio, train, TrainConfig};
//!
//! let mut config = TrainConfig::new(7, vec![portfolio::churned(6, 3, 2, 5)]);
//! config.population = 4;
//! config.generations = 2;
//! config.refine_iters = 0;
//! let out = train(&config, &SequentialRunner::new());
//! assert!(out.artifact.fitness.scalar() <= out.artifact.baseline.scalar());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod artifact;
mod evaluate;
mod genome;
pub mod portfolio;
mod trainer;

pub use artifact::{ArtifactError, PolicyArtifact};
pub use evaluate::{evaluate, evaluate_screen, Fitness};
pub use genome::{Genome, GenomeBounds, GENES, GENE_NAMES};
pub use portfolio::Scenario;
pub use trainer::{train, GenerationStat, LadderSpec, TrainConfig, TrainOutcome};
