//! The offline search itself: a seeded generational genetic algorithm
//! over [`Genome`] vectors, with an optional Gaussian-process /
//! expected-improvement refinement pass around the GA winner. Every
//! random draw comes from one `StdRng` seeded by the caller, and every
//! evaluation goes through the caller's [`NodeBatchRunner`], so the
//! whole search is a pure function of `(TrainConfig, portfolio)` —
//! byte-identical however many workers the runner fans out over.
//!
//! # The evaluation ladder
//!
//! With [`TrainConfig::ladder`] set (the default), each generation is
//! first *ranked* on a cheap screening rung — every portfolio scenario
//! at a shortened horizon with the HI-FI/LO-FI fidelity ladder enabled
//! ([`Scenario::screened`]), scored over all windows
//! ([`evaluate_screen`]) — and only the top [`LadderSpec`] fraction
//! is promoted to full-fidelity evaluation. Successive halving for a
//! GA: most candidates are eliminated for a fraction of the cost, and
//! the full-fidelity budget concentrates on plausible winners. The
//! promotion rule is deterministic (screen fitness with submission
//! index as tie-break), the best-ever policy and the reported baseline
//! come from *full* evaluations only, and every random draw count is
//! independent of rung outcomes — so artifacts stay byte-identical for
//! any worker count, with or without a warm run cache.

use std::collections::HashMap;

use ahq_bayesopt::{BayesOpt, RbfKernel};
use ahq_cluster::NodeBatchRunner;
use ahq_core::derive_seed;
use ahq_core::json::{FromJson, JsonError, JsonValue, ToJson};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::artifact::PolicyArtifact;
use crate::evaluate::{evaluate, evaluate_screen, Fitness};
use crate::genome::{Genome, GenomeBounds, GENES};
use crate::portfolio::Scenario;

/// Knobs of the search procedure (not of the policies it searches).
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Master seed; every stochastic choice derives from it.
    pub seed: u64,
    /// Individuals per generation.
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Top individuals copied unchanged into the next generation.
    pub elites: usize,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Probability a child mixes two parents (else clones the first).
    pub crossover_prob: f64,
    /// Per-gene mutation probability.
    pub mutation_prob: f64,
    /// Mutation step as a fraction of the gene's bound range.
    pub mutation_sigma: f64,
    /// GP/EI refinement evaluations after the GA (0 disables).
    pub refine_iters: usize,
    /// Candidate neighborhood size the refinement scores EI over.
    pub refine_candidates: usize,
    /// Multi-fidelity evaluation ladder; `None` evaluates every
    /// candidate at full fidelity (the pre-ladder behavior).
    pub ladder: Option<LadderSpec>,
    /// Scenarios every candidate is evaluated on.
    pub portfolio: Vec<Scenario>,
}

/// Successive-halving knobs of the evaluation ladder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LadderSpec {
    /// Fraction of each generation promoted from the screening rung to
    /// full-fidelity evaluation (rounded up).
    pub promote_fraction: f64,
    /// Promotion floor — at least this many candidates reach full
    /// fidelity each generation, so the best-ever update never starves.
    pub min_promote: usize,
}

impl Default for LadderSpec {
    fn default() -> Self {
        LadderSpec {
            promote_fraction: 1.0 / 3.0,
            min_promote: 1,
        }
    }
}

impl LadderSpec {
    /// How many of `population` candidates are promoted to full
    /// fidelity: `max(min_promote, ceil(population × fraction))`,
    /// clamped to the population and never below one.
    pub fn promote_count(&self, population: usize) -> usize {
        let by_fraction = (population as f64 * self.promote_fraction).ceil() as usize;
        by_fraction.max(self.min_promote).clamp(1, population)
    }
}

impl TrainConfig {
    /// A search sized for the default portfolio: small population,
    /// mostly-local mutation around the incumbent, and a short EI
    /// refinement pass.
    pub fn new(seed: u64, portfolio: Vec<Scenario>) -> Self {
        TrainConfig {
            seed,
            population: 10,
            generations: 6,
            elites: 2,
            tournament: 3,
            crossover_prob: 0.9,
            mutation_prob: 0.35,
            mutation_sigma: 0.2,
            refine_iters: 6,
            refine_candidates: 24,
            ladder: Some(LadderSpec::default()),
            portfolio,
        }
    }
}

/// One generation's summary, kept in the artifact so training curves
/// can be compared across seeds and search budgets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenerationStat {
    /// Generation index (0-based; the refinement pass appends one more).
    pub generation: usize,
    /// Best scalarized fitness seen up to and including this generation.
    pub best: f64,
    /// Mean scalarized fitness of this generation's population.
    pub mean: f64,
}

impl ToJson for GenerationStat {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("generation", self.generation.to_json()),
            ("best", self.best.to_json()),
            ("mean", self.mean.to_json()),
        ])
    }
}

impl FromJson for GenerationStat {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(GenerationStat {
            generation: value.req("generation")?,
            best: value.req("best")?,
            mean: value.req("mean")?,
        })
    }
}

/// What [`train`] returns beyond the artifact: evaluation accounting
/// for cache-effectiveness and ladder-efficiency reporting.
#[derive(Debug, Clone)]
pub struct TrainOutcome {
    /// The trained policy plus its provenance, ready to save.
    pub artifact: PolicyArtifact,
    /// Evaluations requested by the search (incl. memoized repeats).
    pub evaluations: usize,
    /// Distinct (rung, genome) pairs actually simulated.
    pub unique_genomes: usize,
    /// Distinct genomes simulated at full portfolio fidelity — the
    /// expensive count the evaluation ladder exists to shrink.
    pub full_evaluations: usize,
    /// Distinct genomes simulated on the screening rung only.
    pub screen_evaluations: usize,
}

/// Which rung of the evaluation ladder a memo entry belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Rung {
    /// Cheap ranking rung: shortened horizon, fidelity ladder on.
    Screen,
    /// The real objective: the full portfolio at full fidelity.
    Full,
}

/// Memoizes fitness per `(rung, genome)` (genomes keyed on exact gene
/// bit patterns) so elites and re-suggested candidates cost nothing the
/// second time. Screen and full scores never mix: the same genome is a
/// separate entry per rung.
struct Memo {
    cache: HashMap<(Rung, Vec<u64>), Fitness>,
    requested: usize,
    /// Unique full-fidelity evaluations in execution order — the
    /// deterministic seed set for the GP refinement pass.
    full_log: Vec<(Genome, Fitness)>,
}

impl Memo {
    fn new() -> Self {
        Memo {
            cache: HashMap::new(),
            requested: 0,
            full_log: Vec::new(),
        }
    }

    fn key(genome: &Genome) -> Vec<u64> {
        genome.to_vec().iter().map(|x| x.to_bits()).collect()
    }

    /// Full-fidelity fitness (memoized).
    fn fitness(
        &mut self,
        genome: &Genome,
        portfolio: &[Scenario],
        runner: &dyn NodeBatchRunner,
    ) -> Fitness {
        self.requested += 1;
        let key = (Rung::Full, Self::key(genome));
        if let Some(&hit) = self.cache.get(&key) {
            return hit;
        }
        let fit = evaluate(genome, portfolio, runner);
        self.cache.insert(key, fit);
        self.full_log.push((genome.clone(), fit));
        fit
    }

    /// Screening-rung fitness (memoized separately from full).
    fn screen_fitness(
        &mut self,
        genome: &Genome,
        screen_portfolio: &[Scenario],
        runner: &dyn NodeBatchRunner,
    ) -> Fitness {
        self.requested += 1;
        let key = (Rung::Screen, Self::key(genome));
        if let Some(&hit) = self.cache.get(&key) {
            return hit;
        }
        let fit = evaluate_screen(genome, screen_portfolio, runner);
        self.cache.insert(key, fit);
        fit
    }

    fn screen_count(&self) -> usize {
        self.cache
            .keys()
            .filter(|(r, _)| *r == Rung::Screen)
            .count()
    }
}

fn tournament_pick<'a>(
    rng: &mut StdRng,
    scored: &'a [(Genome, Fitness)],
    size: usize,
) -> &'a Genome {
    let mut best = rng.gen_range(0..scored.len());
    for _ in 1..size.max(1) {
        let challenger = rng.gen_range(0..scored.len());
        if scored[challenger].1.cmp_key(&scored[best].1).is_lt() {
            best = challenger;
        }
    }
    &scored[best].0
}

/// Tournament over an already-ranked list (index 0 is best): the lowest
/// drawn index wins. Used on the ladder path, where entries mix full
/// and screen fitness values — ranks compare cleanly across rungs where
/// raw scalars would not. Draws exactly as many RNG values as
/// [`tournament_pick`], so the evaluation mode never shifts the
/// downstream random stream structure.
fn tournament_pick_ranked<'a>(
    rng: &mut StdRng,
    ranked: &'a [(Genome, Fitness)],
    size: usize,
) -> &'a Genome {
    let mut best = rng.gen_range(0..ranked.len());
    for _ in 1..size.max(1) {
        let challenger = rng.gen_range(0..ranked.len());
        if challenger < best {
            best = challenger;
        }
    }
    &ranked[best].0
}

fn crossover(rng: &mut StdRng, a: &Genome, b: &Genome) -> Vec<f64> {
    let (va, vb) = (a.to_vec(), b.to_vec());
    (0..GENES)
        .map(|i| if rng.gen::<bool>() { va[i] } else { vb[i] })
        .collect()
}

fn mutate(rng: &mut StdRng, genes: &mut [f64], bounds: &GenomeBounds, prob: f64, sigma: f64) {
    for (i, gene) in genes.iter_mut().enumerate() {
        if rng.gen::<f64>() < prob {
            let step = (rng.gen::<f64>() * 2.0 - 1.0) * sigma * bounds.range(i);
            *gene += step;
        }
    }
}

/// A uniform sample of the search box.
fn random_genome(rng: &mut StdRng, bounds: &GenomeBounds) -> Genome {
    let genes: Vec<f64> = (0..GENES)
        .map(|i| bounds.lo[i] + rng.gen::<f64>() * bounds.range(i))
        .collect();
    Genome::from_vec(&genes, bounds)
}

/// Normalize a genome into the unit cube the GP kernel sees.
fn normalize(genome: &Genome, bounds: &GenomeBounds) -> Vec<f64> {
    genome
        .to_vec()
        .iter()
        .enumerate()
        .map(|(i, &x)| (x - bounds.lo[i]) / bounds.range(i).max(f64::MIN_POSITIVE))
        .collect()
}

/// Run the offline search. Returns the best genome ever evaluated, its
/// fitness, the incumbent baseline fitness on the same portfolio, and
/// the per-generation training curve, packaged as a [`PolicyArtifact`].
pub fn train(config: &TrainConfig, runner: &dyn NodeBatchRunner) -> TrainOutcome {
    assert!(config.population >= 2, "population must be at least 2");
    assert!(config.generations >= 1, "need at least one generation");
    assert!(
        !config.portfolio.is_empty(),
        "training portfolio must not be empty"
    );
    let bounds = GenomeBounds::default();
    let mut rng = StdRng::seed_from_u64(derive_seed(config.seed, 0x54_52_41_49_4e)); // "TRAIN"
    let mut memo = Memo::new();

    // The incumbent is both the baseline we report against and the
    // anchor of the initial population: half the seeds are local
    // perturbations of it, the rest uniform samples of the box.
    let incumbent = Genome::default();
    let baseline = memo.fitness(&incumbent, &config.portfolio, runner);

    let mut population = vec![incumbent.clone()];
    while population.len() < config.population {
        let genome = if population.len() <= config.population / 2 {
            let mut genes = incumbent.to_vec();
            mutate(&mut rng, &mut genes, &bounds, 0.8, config.mutation_sigma);
            Genome::from_vec(&genes, &bounds)
        } else {
            random_genome(&mut rng, &bounds)
        };
        population.push(genome);
    }

    let mut best: (Genome, Fitness) = (incumbent.clone(), baseline);
    let mut history = Vec::new();

    // The screening rung of every scenario, precomputed once; `None`
    // means every candidate pays full fidelity (the pre-ladder path).
    let screen_portfolio: Option<Vec<Scenario>> = config
        .ladder
        .as_ref()
        .map(|_| config.portfolio.iter().map(Scenario::screened).collect());

    for generation in 0..config.generations {
        // `scored` is ranked best-first. On the ladder path the top
        // `promote` entries carry full-fidelity fitness and the tail
        // carries screen fitness; on the full path everything is full.
        let scored: Vec<(Genome, Fitness)> = match (&config.ladder, &screen_portfolio) {
            (Some(ladder), Some(screen)) => {
                // Rung 1: rank the whole generation cheaply. Submission
                // index breaks exact-score ties, so promotion is a pure
                // function of the (deterministic) screen scores.
                let mut by_screen: Vec<(usize, Fitness)> = population
                    .iter()
                    .enumerate()
                    .map(|(i, g)| (i, memo.screen_fitness(g, screen, runner)))
                    .collect();
                by_screen.sort_by(|a, b| a.1.cmp_key(&b.1).then(a.0.cmp(&b.0)));
                // Rung 2: promote the top fraction to the real objective.
                let promote = ladder.promote_count(config.population);
                let mut promoted: Vec<(Genome, Fitness)> = by_screen
                    .iter()
                    .take(promote)
                    .map(|&(i, _)| {
                        let genome = population[i].clone();
                        let fit = memo.fitness(&genome, &config.portfolio, runner);
                        (genome, fit)
                    })
                    .collect();
                promoted.sort_by(|a, b| a.1.cmp_key(&b.1));
                promoted.extend(
                    by_screen
                        .iter()
                        .skip(promote)
                        .map(|&(i, f)| (population[i].clone(), f)),
                );
                promoted
            }
            _ => {
                let mut scored: Vec<(Genome, Fitness)> = population
                    .iter()
                    .map(|g| (g.clone(), memo.fitness(g, &config.portfolio, runner)))
                    .collect();
                scored.sort_by(|a, b| a.1.cmp_key(&b.1));
                scored
            }
        };
        // `scored[0]` holds full-fidelity fitness on both paths, so the
        // best-ever policy is only ever claimed from full evaluations.
        if scored[0].1.cmp_key(&best.1).is_lt() {
            best = scored[0].clone();
        }
        let mean = scored.iter().map(|(_, f)| f.scalar()).sum::<f64>() / scored.len() as f64;
        history.push(GenerationStat {
            generation,
            best: best.1.scalar(),
            mean,
        });
        if generation + 1 == config.generations {
            break;
        }
        let mut next: Vec<Genome> = scored
            .iter()
            .take(config.elites.min(scored.len()))
            .map(|(g, _)| g.clone())
            .collect();
        while next.len() < config.population {
            let (a, b) = if config.ladder.is_some() {
                // Mixed-rung list: select by rank, not by raw scalar.
                let a = tournament_pick_ranked(&mut rng, &scored, config.tournament).clone();
                let b = tournament_pick_ranked(&mut rng, &scored, config.tournament).clone();
                (a, b)
            } else {
                let a = tournament_pick(&mut rng, &scored, config.tournament).clone();
                let b = tournament_pick(&mut rng, &scored, config.tournament).clone();
                (a, b)
            };
            let mut genes = if rng.gen::<f64>() < config.crossover_prob {
                crossover(&mut rng, &a, &b)
            } else {
                a.to_vec()
            };
            mutate(
                &mut rng,
                &mut genes,
                &bounds,
                config.mutation_prob,
                config.mutation_sigma,
            );
            next.push(Genome::from_vec(&genes, &bounds));
        }
        population = next;
    }

    // GP/EI refinement: model the scalar fitness over the unit cube
    // from everything the GA already evaluated, then spend a few more
    // evaluations where expected improvement is highest among a local
    // neighborhood of the GA winner. BayesOpt maximizes, so it sees
    // the negated scalar.
    let refined = config.refine_iters > 0 && config.refine_candidates > 0;
    if refined {
        let mut opt = BayesOpt::new(
            RbfKernel::new(0.25, 1.0, 1e-4),
            1,
            derive_seed(config.seed, 0x5245_4649), // "REFI"
        );
        // HashMap iteration order is unspecified; seed the GP from the
        // memo's full-fidelity evaluation log instead — every unique
        // full evaluation in execution order. Deterministic, and on the
        // ladder path it costs nothing extra: screen-only genomes are
        // *not* promoted just to feed the surrogate model.
        for (genome, fit) in memo.full_log.clone() {
            opt.observe(normalize(&genome, &bounds), -fit.scalar());
        }
        let mut candidates: Vec<Vec<f64>> = Vec::new();
        let mut candidate_genomes: Vec<Genome> = Vec::new();
        for _ in 0..config.refine_candidates {
            let mut genes = best.0.to_vec();
            mutate(
                &mut rng,
                &mut genes,
                &bounds,
                0.6,
                config.mutation_sigma * 0.5,
            );
            let genome = Genome::from_vec(&genes, &bounds);
            candidates.push(normalize(&genome, &bounds));
            candidate_genomes.push(genome);
        }
        for _ in 0..config.refine_iters {
            let pick = opt.suggest(&candidates).to_vec();
            let idx = candidates
                .iter()
                .position(|c| c == &pick)
                .expect("suggestion comes from the candidate set");
            let genome = candidate_genomes[idx].clone();
            let fit = memo.fitness(&genome, &config.portfolio, runner);
            opt.observe(pick, -fit.scalar());
            if fit.cmp_key(&best.1).is_lt() {
                best = (genome, fit);
            }
        }
        history.push(GenerationStat {
            generation: config.generations,
            best: best.1.scalar(),
            mean: best.1.scalar(),
        });
    }

    let artifact = PolicyArtifact {
        version: PolicyArtifact::FORMAT_VERSION,
        seed: config.seed,
        population: config.population,
        generations: config.generations,
        refined,
        ladder: config.ladder.is_some(),
        portfolio: config.portfolio.iter().map(|s| s.name.clone()).collect(),
        genome: best.0,
        fitness: best.1,
        baseline,
        history,
    };
    let screen_evaluations = memo.screen_count();
    TrainOutcome {
        artifact,
        evaluations: memo.requested,
        unique_genomes: memo.cache.len(),
        full_evaluations: memo.full_log.len(),
        screen_evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::portfolio::churned;
    use ahq_cluster::SequentialRunner;

    fn tiny_config(seed: u64) -> TrainConfig {
        let mut config = TrainConfig::new(seed, vec![churned(6, 3, 2, 5)]);
        config.population = 4;
        config.generations = 2;
        config.refine_iters = 2;
        config.refine_candidates = 4;
        config
    }

    #[test]
    fn training_is_deterministic_for_a_seed() {
        let a = train(&tiny_config(9), &SequentialRunner::new());
        let b = train(&tiny_config(9), &SequentialRunner::new());
        assert_eq!(a.artifact.genome, b.artifact.genome);
        assert_eq!(a.artifact.history, b.artifact.history);
        assert_eq!(a.evaluations, b.evaluations);
        let c = train(&tiny_config(10), &SequentialRunner::new());
        // A different seed explores a different population; the search
        // trace must reflect it.
        assert_ne!(a.artifact.history, c.artifact.history);
    }

    #[test]
    fn best_never_loses_to_the_baseline() {
        let out = train(&tiny_config(3), &SequentialRunner::new());
        assert!(out.artifact.fitness.scalar() <= out.artifact.baseline.scalar());
        assert!(out.unique_genomes <= out.evaluations);
        // History is monotone in the best column.
        for pair in out.artifact.history.windows(2) {
            assert!(pair[1].best <= pair[0].best);
        }
    }

    #[test]
    fn ladder_cuts_full_evaluations_and_keeps_the_invariants() {
        let mut full_cfg = tiny_config(5);
        full_cfg.ladder = None;
        let ladder_cfg = tiny_config(5); // TrainConfig::new defaults the ladder on
        assert!(ladder_cfg.ladder.is_some());
        let runner = SequentialRunner::new();
        let full = train(&full_cfg, &runner);
        let lad = train(&ladder_cfg, &runner);
        assert_eq!(full.screen_evaluations, 0);
        assert!(lad.screen_evaluations > 0);
        assert!(
            lad.full_evaluations < full.full_evaluations,
            "the ladder must shrink the full-fidelity evaluation count \
             ({} vs {})",
            lad.full_evaluations,
            full.full_evaluations,
        );
        // The expensive invariants survive the cheap rung: the winner is
        // claimed from full evaluations only and never loses to the
        // (full-fidelity) baseline.
        assert!(lad.artifact.fitness.scalar() <= lad.artifact.baseline.scalar());
        assert!(lad.artifact.ladder && !full.artifact.ladder);
        // Determinism holds on the ladder path too.
        let again = train(&ladder_cfg, &runner);
        assert_eq!(lad.artifact.genome, again.artifact.genome);
        assert_eq!(lad.full_evaluations, again.full_evaluations);
    }

    #[test]
    fn promote_count_is_clamped_and_floored() {
        let spec = LadderSpec::default();
        assert_eq!(spec.promote_count(6), 2); // ceil(6/3)
        assert_eq!(spec.promote_count(10), 4); // ceil(10/3)
        assert_eq!(spec.promote_count(1), 1);
        let tiny = LadderSpec {
            promote_fraction: 0.01,
            min_promote: 1,
        };
        assert_eq!(tiny.promote_count(4), 1, "floor of one full eval");
        let all = LadderSpec {
            promote_fraction: 2.0,
            min_promote: 1,
        };
        assert_eq!(all.promote_count(4), 4, "clamped to the population");
    }

    #[test]
    fn memo_dedupes_repeat_evaluations() {
        let mut memo = Memo::new();
        let runner = SequentialRunner::new();
        let portfolio = vec![churned(4, 2, 2, 7)];
        let g = Genome::default();
        let a = memo.fitness(&g, &portfolio, &runner);
        let b = memo.fitness(&g, &portfolio, &runner);
        assert_eq!(a, b);
        assert_eq!(memo.requested, 2);
        assert_eq!(memo.cache.len(), 1);
    }
}
