//! The scenario portfolio candidate genomes are scored on: a small set
//! of deterministic churned-cluster configurations. Every candidate
//! sees the same scenarios with the same seeds, so fitness differences
//! come from the policy alone, and identical node jobs across
//! candidates hit the shared run cache.

use ahq_cluster::{ChurnConfig, ClusterConfig, FidelityMode, LocalSched, PlacerKind};
use ahq_core::derive_seed;

/// One member of the training portfolio: a named, fully closed cluster
/// configuration (the placer/ARQ knobs are overridden per candidate at
/// evaluation time).
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Stable display name, recorded in the policy artifact.
    pub name: String,
    /// The closed cluster configuration.
    pub config: ClusterConfig,
}

impl Scenario {
    /// The cheap screening rung of this scenario for the multi-fidelity
    /// evaluation ladder: a shortened horizon — half the rounds, but
    /// never below three, because churn pressure (and with it the
    /// policy-sensitive entropy signal) only builds up from round two —
    /// with the HI-FI/LO-FI fidelity ladder enabled, so a generation can
    /// be *ranked* at a fraction of the full-fidelity cost. Still fully
    /// deterministic — a pure function of the parent scenario.
    pub fn screened(&self) -> Scenario {
        let mut config = self.config.clone();
        config.rounds = (self.config.rounds / 2).max(3).min(self.config.rounds);
        config.fidelity = FidelityMode::Ladder;
        Scenario {
            name: format!("{}#screen", self.name),
            config,
        }
    }
}

/// The standard churned scenario at `nodes` nodes — same fleet and churn
/// pressure as the `repro cluster` experiment family: roughly one app
/// per node initially, arrivals scaled to fleet size, 40 % best-effort.
pub fn churned(nodes: usize, rounds: usize, windows_per_round: usize, seed: u64) -> Scenario {
    let mut config = ClusterConfig::heterogeneous(nodes, PlacerKind::EntropyAware, LocalSched::Arq);
    config.seed = seed;
    config.rounds = rounds;
    config.windows_per_round = windows_per_round;
    config.churn = ChurnConfig {
        initial_apps: nodes,
        arrivals_per_round: nodes as f64 / 4.0,
        departure_prob: 0.05,
        load_change_prob: 0.15,
        be_fraction: 0.4,
    };
    Scenario {
        name: format!("churn-{nodes}n-{rounds}r@{seed:x}"),
        config,
    }
}

/// The default training portfolio. Quick mode trains on two small
/// seeds (16 nodes); full mode adds scale diversity up to 64 nodes so
/// the learned policy transfers to the 256-node replay instead of
/// overfitting one fleet size. Seeds are derived from `seed` with
/// distinct streams so scenarios never share churn traces.
pub fn default_portfolio(seed: u64, quick: bool) -> Vec<Scenario> {
    if quick {
        vec![
            churned(16, 4, 2, derive_seed(seed, 0x7261_494e)),
            churned(16, 4, 2, derive_seed(seed, 0x7261_494f)),
        ]
    } else {
        vec![
            churned(16, 8, 3, derive_seed(seed, 0x7261_494e)),
            churned(32, 8, 3, derive_seed(seed, 0x7261_494f)),
            churned(64, 8, 3, derive_seed(seed, 0x7261_4950)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn screened_rung_is_shorter_laddered_and_deterministic() {
        let full = churned(16, 8, 3, 7);
        let screen = full.screened();
        assert_eq!(screen.name, format!("{}#screen", full.name));
        assert_eq!(screen.config.rounds, 4, "half the horizon");
        assert_eq!(screen.config.fidelity, FidelityMode::Ladder);
        assert_eq!(screen.config.seed, full.config.seed);
        // The floor: the screen keeps at least three rounds (the entropy
        // signal needs churn pressure), but never exceeds the parent.
        assert_eq!(churned(8, 2, 2, 7).screened().config.rounds, 2);
        assert_eq!(churned(8, 3, 2, 7).screened().config.rounds, 3);
        assert_eq!(churned(8, 4, 2, 7).screened().config.rounds, 3);
    }

    #[test]
    fn portfolio_scenarios_are_distinct_and_deterministic() {
        let a = default_portfolio(42, false);
        let b = default_portfolio(42, false);
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.config.seed, y.config.seed);
        }
        let seeds: Vec<u64> = a.iter().map(|s| s.config.seed).collect();
        assert!(seeds[0] != seeds[1] && seeds[1] != seeds[2]);
        let quick = default_portfolio(42, true);
        assert_eq!(quick.len(), 2);
        assert!(quick.iter().all(|s| s.config.rounds == 4));
    }
}
