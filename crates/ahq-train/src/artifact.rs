//! The on-disk policy artifact: the trained genome plus enough
//! provenance (seed, budget, portfolio, training curve, baseline) to
//! reproduce or audit the search. Serialized with `ahq_core::json` so
//! artifacts written by `repro train` load back bit-exactly.

use std::fmt;
use std::path::Path;

use ahq_core::json::{self, FromJson, JsonError, JsonValue, ToJson};

use crate::evaluate::Fitness;
use crate::genome::Genome;
use crate::trainer::GenerationStat;

/// A trained policy with its provenance. See [`PolicyArtifact::save`]
/// / [`PolicyArtifact::load`] for the disk round-trip.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyArtifact {
    /// Artifact format version ([`PolicyArtifact::FORMAT_VERSION`]).
    pub version: u32,
    /// Master seed the search ran under.
    pub seed: u64,
    /// GA population size.
    pub population: usize,
    /// GA generation count.
    pub generations: usize,
    /// Whether the GP/EI refinement pass ran after the GA.
    pub refined: bool,
    /// Whether generations were ranked on the multi-fidelity screening
    /// rung, with only the top fraction promoted to full evaluation.
    pub ladder: bool,
    /// Names of the portfolio scenarios the policy was scored on.
    pub portfolio: Vec<String>,
    /// The trained policy.
    pub genome: Genome,
    /// The trained policy's fitness on the portfolio.
    pub fitness: Fitness,
    /// The incumbent hand-tuned policy's fitness on the same portfolio.
    pub baseline: Fitness,
    /// Per-generation training curve (refinement appends one entry).
    pub history: Vec<GenerationStat>,
}

impl PolicyArtifact {
    /// Current artifact format version.
    pub const FORMAT_VERSION: u32 = 1;

    /// Render as pretty JSON — the exact bytes [`PolicyArtifact::save`]
    /// writes, exposed so determinism tests can compare artifacts
    /// without touching the filesystem.
    pub fn to_json_string(&self) -> String {
        json::to_string_pretty(self)
    }

    /// Write the artifact to `path` as pretty JSON.
    pub fn save(&self, path: &Path) -> Result<(), ArtifactError> {
        std::fs::write(path, self.to_json_string() + "\n")
            .map_err(|e| ArtifactError::Io(path.display().to_string(), e.to_string()))
    }

    /// Load an artifact from `path`, rejecting unknown format versions.
    pub fn load(path: &Path) -> Result<Self, ArtifactError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ArtifactError::Io(path.display().to_string(), e.to_string()))?;
        let artifact: PolicyArtifact = json::from_str(&text).map_err(ArtifactError::Json)?;
        if artifact.version != Self::FORMAT_VERSION {
            return Err(ArtifactError::Version(artifact.version));
        }
        Ok(artifact)
    }
}

impl ToJson for PolicyArtifact {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("version", self.version.to_json()),
            ("seed", self.seed.to_json()),
            ("population", self.population.to_json()),
            ("generations", self.generations.to_json()),
            ("refined", self.refined.to_json()),
            ("ladder", self.ladder.to_json()),
            ("portfolio", self.portfolio.to_json()),
            ("genome", self.genome.to_json()),
            ("fitness", self.fitness.to_json()),
            ("baseline", self.baseline.to_json()),
            ("history", self.history.to_json()),
        ])
    }
}

impl FromJson for PolicyArtifact {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(PolicyArtifact {
            version: value.req("version")?,
            seed: value.req("seed")?,
            population: value.req("population")?,
            generations: value.req("generations")?,
            refined: value.req("refined")?,
            // Absent in artifacts written before the evaluation ladder
            // landed; those trained at full fidelity.
            ladder: value.opt("ladder")?.unwrap_or(false),
            portfolio: value.req("portfolio")?,
            genome: value.req("genome")?,
            fitness: value.req("fitness")?,
            baseline: value.req("baseline")?,
            history: value.req("history")?,
        })
    }
}

/// Why saving or loading a policy artifact failed.
#[derive(Debug)]
pub enum ArtifactError {
    /// Filesystem error (path, OS message).
    Io(String, String),
    /// The file is not valid artifact JSON.
    Json(JsonError),
    /// The file's format version is not supported.
    Version(u32),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Io(path, err) => write!(f, "{path}: {err}"),
            ArtifactError::Json(err) => write!(f, "invalid policy artifact: {err}"),
            ArtifactError::Version(v) => write!(
                f,
                "unsupported policy artifact version {v} (supported: {})",
                PolicyArtifact::FORMAT_VERSION
            ),
        }
    }
}

impl std::error::Error for ArtifactError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PolicyArtifact {
        PolicyArtifact {
            version: PolicyArtifact::FORMAT_VERSION,
            seed: 42,
            population: 8,
            generations: 4,
            refined: true,
            ladder: true,
            portfolio: vec!["churn-16n-8r@2a".into()],
            genome: Genome::default(),
            fitness: Fitness {
                mean_es: 0.11,
                p95_es: 0.3,
                violations: 0.02,
                migration_cost: 1.25,
            },
            baseline: Fitness {
                mean_es: 0.14,
                p95_es: 0.35,
                violations: 0.03,
                migration_cost: 1.0,
            },
            history: vec![
                GenerationStat {
                    generation: 0,
                    best: 0.3,
                    mean: 0.5,
                },
                GenerationStat {
                    generation: 1,
                    best: 0.27,
                    mean: 0.4,
                },
            ],
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let a = sample();
        let back: PolicyArtifact = json::from_str(&a.to_json_string()).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn disk_round_trip_and_version_gate() {
        let dir = std::env::temp_dir().join("ahq-train-artifact-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("policy.json");
        let a = sample();
        a.save(&path).unwrap();
        assert_eq!(PolicyArtifact::load(&path).unwrap(), a);

        let mut wrong = a;
        wrong.version = 99;
        wrong.save(&path).unwrap();
        match PolicyArtifact::load(&path) {
            Err(ArtifactError::Version(99)) => {}
            other => panic!("expected version error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let missing = Path::new("/nonexistent/ahq-train/policy.json");
        assert!(matches!(
            PolicyArtifact::load(missing),
            Err(ArtifactError::Io(..))
        ));
    }
}
