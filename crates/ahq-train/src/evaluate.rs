//! Scoring a candidate genome: run it over the whole portfolio and fold
//! the cluster reports into one multi-objective [`Fitness`] tuple.

use ahq_cluster::{ClusterSim, NodeBatchRunner};
use ahq_core::json::{FromJson, JsonError, JsonValue, ToJson};

use crate::genome::Genome;
use crate::portfolio::Scenario;

/// The multi-objective score of one genome over the portfolio — all
/// components averaged across scenarios, lower is better for every
/// component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fitness {
    /// Steady-state mean system entropy E_S (last half of each run).
    pub mean_es: f64,
    /// Steady-state p95 system entropy — the tail the paper optimizes.
    pub p95_es: f64,
    /// SLO violations per window.
    pub violations: f64,
    /// Placement plus control-plane migrations per round — the cost a
    /// migration-happy policy pays for its entropy gains.
    pub migration_cost: f64,
}

impl Fitness {
    /// Weight of the p95 tail relative to the steady-state mean.
    pub const W_P95: f64 = 0.5;
    /// Penalty per SLO violation per window.
    pub const W_VIOLATIONS: f64 = 0.05;
    /// Penalty per migration per round.
    pub const W_MIGRATIONS: f64 = 0.01;

    /// Scalarization the search minimizes: steady-state mean E_S, plus
    /// the p95 tail at half weight, plus small penalties for SLO
    /// violations and migration churn. The entropy terms dominate (they
    /// are the paper's objective); the penalties only break ties
    /// between policies with indistinguishable entropy.
    pub fn scalar(&self) -> f64 {
        self.mean_es
            + Self::W_P95 * self.p95_es
            + Self::W_VIOLATIONS * self.violations
            + Self::W_MIGRATIONS * self.migration_cost
    }

    /// Total order used for selection: scalar first, then each
    /// component in declaration order as a deterministic tie-break.
    pub fn cmp_key(&self, other: &Fitness) -> std::cmp::Ordering {
        self.scalar()
            .total_cmp(&other.scalar())
            .then(self.mean_es.total_cmp(&other.mean_es))
            .then(self.p95_es.total_cmp(&other.p95_es))
            .then(self.violations.total_cmp(&other.violations))
            .then(self.migration_cost.total_cmp(&other.migration_cost))
    }
}

impl ToJson for Fitness {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("mean_es", self.mean_es.to_json()),
            ("p95_es", self.p95_es.to_json()),
            ("violations", self.violations.to_json()),
            ("migration_cost", self.migration_cost.to_json()),
            ("scalar", self.scalar().to_json()),
        ])
    }
}

impl FromJson for Fitness {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(Fitness {
            mean_es: value.req("mean_es")?,
            p95_es: value.req("p95_es")?,
            violations: value.req("violations")?,
            migration_cost: value.req("migration_cost")?,
        })
    }
}

/// Evaluate one genome over the portfolio: each scenario runs with the
/// genome's placer and ARQ configuration swapped in, then the per-run
/// steady-state statistics are averaged. Runs execute through `runner`,
/// so a memoizing engine dedupes node jobs shared between candidates.
pub fn evaluate(genome: &Genome, portfolio: &[Scenario], runner: &dyn NodeBatchRunner) -> Fitness {
    evaluate_inner(genome, portfolio, runner, false)
}

/// Screening-rung variant of [`evaluate`] for the multi-fidelity ladder:
/// identical runs, but the entropy statistics cover *every* window
/// instead of only the steady-state half. Under [`FidelityMode::Ladder`]
/// the tail windows are LO-FI surrogate replays of a demoted node's
/// frozen partition — policy-blind by construction — so a steady-half
/// score would collapse to a genome-independent constant. The HI-FI
/// warm-up round carries the genome signal; including it keeps the
/// screen informative enough to *rank* a generation.
///
/// [`FidelityMode::Ladder`]: ahq_cluster::FidelityMode::Ladder
pub fn evaluate_screen(
    genome: &Genome,
    portfolio: &[Scenario],
    runner: &dyn NodeBatchRunner,
) -> Fitness {
    evaluate_inner(genome, portfolio, runner, true)
}

fn evaluate_inner(
    genome: &Genome,
    portfolio: &[Scenario],
    runner: &dyn NodeBatchRunner,
    screen: bool,
) -> Fitness {
    assert!(!portfolio.is_empty(), "portfolio must not be empty");
    let mut total = Fitness {
        mean_es: 0.0,
        p95_es: 0.0,
        violations: 0.0,
        migration_cost: 0.0,
    };
    for scenario in portfolio {
        let mut config = scenario.config.clone();
        config.arq = Some(genome.arq_config());
        let mut sim = ClusterSim::new(config);
        sim.set_placer(Box::new(genome.placer()));
        let report = sim.run(runner);
        // `steady` counts the trailing windows the entropy statistics
        // cover: the steady-state half normally, every window on the
        // screening rung (see [`evaluate_screen`]).
        let all = report.rounds * report.windows_per_round;
        let steady = if screen { all } else { all / 2 };
        total.mean_es += report.steady_mean_entropy(steady);
        total.p95_es += report.steady_p95_entropy(steady);
        total.violations += report.violations as f64 / report.windows().max(1) as f64;
        total.migration_cost +=
            (report.migrations + report.ctrl_migrations) as f64 / report.rounds.max(1) as f64;
    }
    let n = portfolio.len() as f64;
    Fitness {
        mean_es: total.mean_es / n,
        p95_es: total.p95_es / n,
        violations: total.violations / n,
        migration_cost: total.migration_cost / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::portfolio::churned;
    use ahq_cluster::SequentialRunner;

    #[test]
    fn scalar_weights_the_components() {
        let f = Fitness {
            mean_es: 0.2,
            p95_es: 0.4,
            violations: 2.0,
            migration_cost: 3.0,
        };
        assert!((f.scalar() - (0.2 + 0.2 + 0.1 + 0.03)).abs() < 1e-12);
    }

    #[test]
    fn cmp_key_orders_by_scalar_then_components() {
        let a = Fitness {
            mean_es: 0.1,
            p95_es: 0.2,
            violations: 0.0,
            migration_cost: 0.0,
        };
        let mut b = a;
        b.mean_es = 0.2;
        assert_eq!(a.cmp_key(&b), std::cmp::Ordering::Less);
        assert_eq!(a.cmp_key(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn fitness_json_round_trips() {
        let f = Fitness {
            mean_es: 0.123456789,
            p95_es: 0.4,
            violations: 0.25,
            migration_cost: 1.5,
        };
        let back: Fitness = ahq_core::json::from_str(&ahq_core::json::to_string(&f)).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn evaluation_is_deterministic_and_finite() {
        let portfolio = vec![churned(8, 3, 2, 11)];
        let runner = SequentialRunner::new();
        let g = Genome::default();
        let a = evaluate(&g, &portfolio, &runner);
        let b = evaluate(&g, &portfolio, &runner);
        assert_eq!(a, b);
        assert!(a.mean_es.is_finite() && a.p95_es.is_finite());
        assert!(a.mean_es >= 0.0);
    }
}
