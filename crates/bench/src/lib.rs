//! # ahq-bench — benchmark fixtures
//!
//! Shared fixtures for the Criterion benches in `benches/`: prebuilt
//! simulations, measurement sets, and scheduler contexts. The benches
//! themselves are organised as
//!
//! * `theory` — entropy algebra, series interpolation, percentiles;
//! * `simulator` — monitoring-window throughput, the contention model,
//!   the space-time model (Fig. 4);
//! * `schedulers` — a scheduling round per strategy (Table II / Fig. 8
//!   scale), covering ARQ's Algorithm 1, PARTIES' FSM and CLITE's BO;
//! * `bayesopt` — GP fit/predict and candidate suggestion (CLITE's inner
//!   loop);
//! * `figures` — one reduced-scale regeneration step per paper artifact
//!   (Table II row, Fig. 2 budget point, Fig. 8 sweep cell, Fig. 13
//!   trace slice).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ahq_core::{BeMeasurement, LcMeasurement};
use ahq_sim::{MachineConfig, NodeSim};
use ahq_workloads::mixes;

/// A standard measurement population of `n` LC and `n` BE applications.
pub fn measurement_population(n: usize) -> (Vec<LcMeasurement>, Vec<BeMeasurement>) {
    let lc = (0..n)
        .map(|i| {
            let ideal = 1.0 + i as f64 * 0.1;
            let observed = ideal * (1.0 + (i % 7) as f64 * 0.35);
            LcMeasurement::new(format!("lc{i}"), ideal, observed, ideal * 2.5)
                .expect("valid synthetic measurement")
        })
        .collect();
    let be = (0..n)
        .map(|i| {
            let solo = 1.0 + i as f64 * 0.2;
            BeMeasurement::new(format!("be{i}"), solo, solo / (1.0 + (i % 5) as f64 * 0.4))
                .expect("valid synthetic measurement")
        })
        .collect();
    (lc, be)
}

/// The standard benchmark simulation: the paper's Fluidanimate mix at
/// moderate load.
pub fn standard_sim(seed: u64) -> NodeSim {
    let mix = mixes::fluidanimate_mix();
    let mut sim =
        NodeSim::new(MachineConfig::paper_xeon(), mix.apps.clone(), seed).expect("valid mix");
    sim.set_load("xapian", 0.5).expect("LC app");
    sim.set_load("moses", 0.2).expect("LC app");
    sim.set_load("img-dnn", 0.2).expect("LC app");
    sim
}

/// The paper-pair scenario of the node benches: 2 LC + 2 BE on the paper
/// machine, the configuration the `BENCH_node.json` ns/window baseline is
/// pinned against. Exercises the memoized rate cache exactly as the event
/// loop does (a handful of busy-thread vectors cycling between
/// repartitions).
pub fn paper_pair_sim(seed: u64) -> NodeSim {
    use ahq_sim::{AppSpec, CacheProfile};
    let lc = |name: &str, mean_ms: f64, qps: f64| {
        AppSpec::lc(name)
            .threads(4)
            .mean_service_ms(mean_ms)
            .service_sigma(0.6)
            .qos_threshold_ms(mean_ms * 5.0)
            .max_load_qps(qps)
            .cache(CacheProfile::balanced())
            .build()
            .expect("valid LC spec")
    };
    let be = |name: &str, profile: CacheProfile| {
        AppSpec::be(name)
            .threads(4)
            .ipc_solo(1.5)
            .cache(profile)
            .build()
            .expect("valid BE spec")
    };
    let specs = vec![
        lc("lc-a", 1.0, 2000.0),
        lc("lc-b", 2.0, 800.0),
        be("be-a", CacheProfile::compute()),
        be("be-b", CacheProfile::streaming()),
    ];
    let mut sim = NodeSim::new(MachineConfig::paper_xeon(), specs, seed).expect("valid sim");
    sim.set_load("lc-a", 0.6).expect("LC app");
    sim.set_load("lc-b", 0.3).expect("LC app");
    sim
}

/// A heavy-interference simulation: the STREAM mix at high load.
pub fn stream_sim(seed: u64) -> NodeSim {
    let mix = mixes::stream_mix();
    let mut sim =
        NodeSim::new(MachineConfig::paper_xeon(), mix.apps.clone(), seed).expect("valid mix");
    sim.set_load("xapian", 0.9).expect("LC app");
    sim.set_load("moses", 0.4).expect("LC app");
    sim.set_load("img-dnn", 0.4).expect("LC app");
    sim
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let (lc, be) = measurement_population(8);
        assert_eq!(lc.len(), 8);
        assert_eq!(be.len(), 8);
        let mut sim = standard_sim(1);
        let obs = sim.run_window();
        assert_eq!(obs.lc.len(), 3);
        let mut sim = stream_sim(1);
        let obs = sim.run_window();
        assert_eq!(obs.be.len(), 1);
    }
}
