//! Perf smoke check for CI: re-times the pinned `BENCH_node.json`
//! scenario with the same methodology the baseline was measured with
//! (best-of-5 x 200-window timing after 50 warm-up windows) and fails
//! when the measured ns/window exceeds the pinned figure by more than a
//! tolerance factor.
//!
//! The tolerance absorbs shared-runner noise — the check is meant to
//! catch an accidental 2x event-path regression, not a 10 % wobble.
//! Override with `AHQ_PERF_SMOKE_FACTOR` (default 1.5), or skip
//! entirely with `AHQ_PERF_SMOKE_SKIP=1` on known-noisy hardware.

use std::process::ExitCode;
use std::time::Instant;

use ahq_bench::paper_pair_sim;

const WARMUP_WINDOWS: usize = 50;
const TIMED_WINDOWS: usize = 200;
const REPS: usize = 5;

/// Pulls `"ns_per_window": <integer>` out of the baseline JSON by hand:
/// the value is the only thing this check needs, and a scanner keeps the
/// binary free of any JSON-crate dependency.
fn pinned_ns_per_window(json: &str) -> Option<u64> {
    let key = "\"ns_per_window\"";
    let rest = &json[json.find(key)? + key.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

fn main() -> ExitCode {
    if std::env::var("AHQ_PERF_SMOKE_SKIP").is_ok_and(|v| v == "1") {
        println!("perf-smoke: skipped (AHQ_PERF_SMOKE_SKIP=1)");
        return ExitCode::SUCCESS;
    }
    let factor: f64 = std::env::var("AHQ_PERF_SMOKE_FACTOR")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.5);

    let baseline = include_str!("../../BENCH_node.json");
    let Some(pinned) = pinned_ns_per_window(baseline) else {
        eprintln!("perf-smoke: BENCH_node.json has no ns_per_window field");
        return ExitCode::FAILURE;
    };

    let mut best = u64::MAX;
    for rep in 1..=REPS {
        let mut sim = paper_pair_sim(7);
        for _ in 0..WARMUP_WINDOWS {
            sim.run_window();
        }
        let start = Instant::now();
        for _ in 0..TIMED_WINDOWS {
            sim.run_window();
        }
        let ns = start.elapsed().as_nanos() as u64 / TIMED_WINDOWS as u64;
        println!("perf-smoke: rep {rep}/{REPS}: {ns} ns/window");
        best = best.min(ns);
    }

    let limit = (pinned as f64 * factor) as u64;
    println!("perf-smoke: best {best} ns/window, pinned {pinned}, limit {limit} ({factor:.2}x)");
    if best > limit {
        eprintln!(
            "perf-smoke: FAIL — run_window_paper_pair regressed past {factor:.2}x of the \
             BENCH_node.json baseline; rerun on an idle machine and, if real, find the \
             regression (or re-pin the baseline alongside an intentional model change)"
        );
        return ExitCode::FAILURE;
    }
    println!("perf-smoke: OK");
    ExitCode::SUCCESS
}
