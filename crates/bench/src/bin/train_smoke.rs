//! Measures the multi-fidelity evaluation ladder against full-fidelity
//! training on the standard quick search (seed 42, population 6, three
//! generations — the `tests/train.rs` budget) and prints the JSON pinned
//! in `BENCH_train.json`: full-fidelity evaluation counts for both
//! modes, wall-clock, and the 256-churned-node replay margin of the
//! ladder-trained policy over the hand-tuned incumbent.
//!
//! ```text
//! cargo run --release -p ahq-bench --bin train_smoke
//! ```

use std::time::Instant;

use ahq_experiments::train::{run_replay_arm, run_search};
use ahq_experiments::{ExpConfig, ExpContext};

fn ctx(ladder: Option<bool>) -> ExpContext {
    let mut cfg = ExpContext::with_jobs(
        ExpConfig {
            quick: true,
            seed: 42,
        },
        4,
    );
    cfg.train.population = Some(6);
    cfg.train.generations = Some(3);
    cfg.train.ladder = ladder;
    cfg
}

fn main() {
    let full_cfg = ctx(Some(false));
    let t0 = Instant::now();
    let full = run_search(&full_cfg);
    let full_secs = t0.elapsed().as_secs_f64();

    let ladder_cfg = ctx(Some(true));
    let t1 = Instant::now();
    let ladder = run_search(&ladder_cfg);
    let ladder_secs = t1.elapsed().as_secs_f64();

    // The acceptance margin: the ladder-trained policy replayed on a
    // fleet size the search never saw, against the hand-tuned incumbent.
    let nodes = 256;
    let hand_tuned = run_replay_arm(&ladder_cfg, nodes, None);
    let trained = run_replay_arm(&ladder_cfg, nodes, Some(&ladder.artifact.genome));
    let steady = (hand_tuned.rounds * hand_tuned.windows_per_round) / 2;
    let base_es = hand_tuned.steady_mean_entropy(steady);
    let trained_es = trained.steady_mean_entropy(steady);

    println!("{{");
    println!("  \"bench\": \"train_ladder_vs_full\",");
    println!(
        "  \"full_eval_count_full_mode\": {},",
        full.full_evaluations
    );
    println!(
        "  \"full_eval_count_ladder_mode\": {},",
        ladder.full_evaluations
    );
    println!(
        "  \"screen_eval_count_ladder_mode\": {},",
        ladder.screen_evaluations
    );
    println!(
        "  \"full_eval_ratio\": {:.4},",
        ladder.full_evaluations as f64 / full.full_evaluations.max(1) as f64
    );
    println!("  \"full_mode_secs\": {full_secs:.2},");
    println!("  \"ladder_mode_secs\": {ladder_secs:.2},");
    println!("  \"replay_nodes\": {nodes},");
    println!("  \"hand_tuned_steady_mean_es_256\": {base_es},");
    println!("  \"ladder_trained_steady_mean_es_256\": {trained_es},");
    println!(
        "  \"ladder_fitness_scalar\": {},",
        ladder.artifact.fitness.scalar()
    );
    println!(
        "  \"full_fitness_scalar\": {}",
        full.artifact.fitness.scalar()
    );
    println!("}}");
}
