//! Benchmarks of the cluster layer: one full round step (churn +
//! placement + every node's windows + aggregation) at 16 and 64 nodes
//! with the sequential reference runner, pinned in `BENCH_cluster.json`.

use ahq_cluster::{
    ChurnConfig, ClusterConfig, ClusterSim, LocalSched, PlacerKind, SequentialRunner,
};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

/// The benched scenario: the standard heterogeneous fleet under
/// entropy-aware placement with roughly one app per node, matching the
/// `repro cluster` quick grid shape.
fn bench_config(nodes: usize) -> ClusterConfig {
    let mut config =
        ClusterConfig::heterogeneous(nodes, PlacerKind::EntropyAware, LocalSched::Unmanaged);
    config.windows_per_round = 2;
    config.seed = 7;
    config.churn = ChurnConfig {
        initial_apps: nodes,
        arrivals_per_round: nodes as f64 / 4.0,
        departure_prob: 0.05,
        load_change_prob: 0.15,
        be_fraction: 0.4,
    };
    config
}

fn bench_round_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_round_step");
    group.sample_size(10);
    for nodes in [16usize, 64] {
        group.bench_function(format!("{nodes}_nodes"), |b| {
            // Iterations re-run round 0 on a fresh cluster so every
            // measurement covers the same work: initial churn, placement
            // of ~`nodes` apps, and `nodes x 2` simulated windows.
            b.iter(|| {
                let mut sim = ClusterSim::new(bench_config(nodes));
                sim.step_round(&SequentialRunner);
                black_box(sim.round())
            })
        });
    }
    group.finish();
}

/// A time-boxed Criterion configuration, matching the other benches in
/// the suite.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10)
}

criterion_group!(
    name = benches;
    config = quick();
    targets = bench_round_step);
criterion_main!(benches);
