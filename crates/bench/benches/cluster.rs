//! Benchmarks of the cluster layer: one full round step (churn +
//! placement + every node's windows + aggregation) at 16 and 64 nodes
//! with the sequential reference runner, pinned in `BENCH_cluster.json`,
//! plus ladder-vs-full fidelity round steps at 256/1024 nodes pinned in
//! `BENCH_cluster_10k.json`.

use ahq_cluster::{
    ChurnConfig, ClusterConfig, ClusterSim, FidelityMode, LocalSched, PlacerKind, SequentialRunner,
};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

/// The benched scenario: the standard heterogeneous fleet under
/// entropy-aware placement with roughly one app per node, matching the
/// `repro cluster` quick grid shape.
fn bench_config(nodes: usize) -> ClusterConfig {
    let mut config =
        ClusterConfig::heterogeneous(nodes, PlacerKind::EntropyAware, LocalSched::Unmanaged);
    config.windows_per_round = 2;
    config.seed = 7;
    config.churn = ChurnConfig {
        initial_apps: nodes,
        arrivals_per_round: nodes as f64 / 4.0,
        departure_prob: 0.05,
        load_change_prob: 0.15,
        be_fraction: 0.4,
    };
    config
}

fn bench_round_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_round_step");
    group.sample_size(10);
    for nodes in [16usize, 64] {
        group.bench_function(format!("{nodes}_nodes"), |b| {
            // Iterations re-run round 0 on a fresh cluster so every
            // measurement covers the same work: initial churn, placement
            // of ~`nodes` apps, and `nodes x 2` simulated windows.
            b.iter(|| {
                let mut sim = ClusterSim::new(bench_config(nodes));
                sim.step_round(&SequentialRunner::default());
                black_box(sim.round())
            })
        });
    }
    group.finish();
}

/// The fidelity-ladder scenario: half-occupied fleet under gentle churn
/// (the `repro cluster --nodes N` shape), where most nodes stay calm long
/// enough to demote. `rounds` is set far beyond what Criterion will step
/// so one warmed simulation serves every iteration.
fn fidelity_config(nodes: usize, fidelity: FidelityMode) -> ClusterConfig {
    let mut config =
        ClusterConfig::heterogeneous(nodes, PlacerKind::EntropyAware, LocalSched::Unmanaged);
    config.windows_per_round = 2;
    config.seed = 7;
    config.rounds = 50_000;
    config.fidelity = fidelity;
    config.churn = ChurnConfig {
        initial_apps: (nodes / 2).max(1),
        arrivals_per_round: (nodes as f64 / 256.0).max(1.0),
        departure_prob: 0.005,
        load_change_prob: 0.01,
        be_fraction: 0.4,
    };
    config
}

fn bench_fidelity_round_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_fidelity_round_step");
    group.sample_size(10);
    for nodes in [256usize, 1024] {
        for fidelity in [FidelityMode::Full, FidelityMode::Ladder] {
            group.bench_function(format!("{nodes}_nodes_{}", fidelity.name()), |b| {
                // Warm outside the timing loop: the first rounds place the
                // initial population and (under the ladder) let stable
                // nodes demote, so iterations measure the steady regime.
                let runner = SequentialRunner::default();
                let mut sim = ClusterSim::new(fidelity_config(nodes, fidelity));
                for _ in 0..6 {
                    sim.step_round(&runner);
                }
                b.iter(|| {
                    sim.step_round(&runner);
                    black_box(sim.round())
                })
            });
        }
    }
    group.finish();
}

/// A time-boxed Criterion configuration, matching the other benches in
/// the suite.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10)
}

criterion_group!(
    name = benches;
    config = quick();
    targets = bench_round_step, bench_fidelity_round_step);
criterion_main!(benches);
