//! Microbenchmark of the tail-estimator quantile: the selection-based
//! `percentile_in_place` against the former copy-and-full-sort
//! implementation, at the ring sizes the simulator actually uses.

use ahq_sim::percentile_in_place;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

/// The pre-optimization implementation, kept here as the baseline.
fn percentile_by_sort(samples: &[f64], p: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = p.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        return Some(sorted[lo]);
    }
    let t = rank - lo as f64;
    Some(sorted[lo] + t * (sorted[hi] - sorted[lo]))
}

/// Deterministic pseudo-random latencies (SplitMix64 bits mapped to
/// positive millisecond-scale floats).
fn samples(n: usize, mut state: u64) -> Vec<f64> {
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 53) as f64 * 50.0
        })
        .collect()
}

fn bench_quantile(c: &mut Criterion) {
    let mut group = c.benchmark_group("tail_quantile_p95");
    for n in [64usize, 512, 4096] {
        let data = samples(n, 7 + n as u64);
        group.bench_function(format!("sort_n{n}"), |b| {
            b.iter(|| black_box(percentile_by_sort(black_box(&data), 0.95)))
        });
        group.bench_function(format!("select_n{n}"), |b| {
            let mut scratch = Vec::with_capacity(n);
            b.iter(|| {
                scratch.clear();
                scratch.extend_from_slice(black_box(&data));
                black_box(percentile_in_place(&mut scratch, 0.95))
            })
        });
    }
    group.finish();
}

/// A time-boxed Criterion configuration matching the other suites.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10)
}

criterion_group!(
    name = benches;
    config = quick();
    targets = bench_quantile);
criterion_main!(benches);
