//! Benchmarks of the Bayesian-optimization substrate: GP fitting and
//! prediction at CLITE's working sizes, and candidate suggestion over the
//! standard 300-candidate pool.

use ahq_bayesopt::{BayesOpt, GaussianProcess, RbfKernel};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn training_set(n: usize, dim: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..dim)
                .map(|d| (((i * 31 + d * 17) % 97) as f64) / 97.0)
                .collect()
        })
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| x.iter().map(|v| (v - 0.5).powi(2)).sum::<f64>())
        .collect();
    (xs, ys)
}

fn bench_gp_fit(c: &mut Criterion) {
    let kernel = RbfKernel::new(0.5, 1.0, 1e-3);
    let mut group = c.benchmark_group("gp_fit");
    for n in [10usize, 20, 40] {
        let (xs, ys) = training_set(n, 8);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                black_box(GaussianProcess::fit(kernel, xs.clone(), ys.clone()).expect("PD kernel"))
            })
        });
    }
    group.finish();
}

fn bench_gp_predict(c: &mut Criterion) {
    let kernel = RbfKernel::new(0.5, 1.0, 1e-3);
    let (xs, ys) = training_set(20, 8);
    let gp = GaussianProcess::fit(kernel, xs, ys).expect("PD kernel");
    let x = vec![0.3; 8];
    c.bench_function("gp_predict_n20_d8", |b| {
        b.iter(|| black_box(gp.predict(black_box(&x))))
    });
}

fn bench_suggest(c: &mut Criterion) {
    let candidates: Vec<Vec<f64>> = (0..300)
        .map(|i| {
            (0..8)
                .map(|d| (((i * 13 + d * 7) % 89) as f64) / 89.0)
                .collect()
        })
        .collect();
    c.bench_function("bayesopt_suggest_300_candidates", |b| {
        b.iter(|| {
            let mut opt = BayesOpt::new(RbfKernel::new(0.5, 1.0, 1e-3), 4, 9);
            for i in 0..12 {
                let x = opt.suggest(&candidates).to_vec();
                opt.observe(x, (i as f64 * 0.37).sin());
            }
            black_box(opt.best().map(|(_, y)| y))
        })
    });
}

/// A time-boxed Criterion configuration: the suite covers many benches,
/// so each one gets a short warm-up and measurement window.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10)
}

criterion_group!(
    name = benches;
    config = quick();
    targets = bench_gp_fit, bench_gp_predict, bench_suggest);
criterion_main!(benches);
