//! One benchmark per paper artifact: the cost of regenerating each
//! table/figure's basic unit at reduced scale. Together with the `repro`
//! binary (which regenerates the full artifacts) these keep every
//! experiment's machinery exercised and timed.

use ahq_core::EntropyModel;
use ahq_experiments::{fig2, fig7, StrategyKind};
use ahq_experiments::{ExpConfig, ExpContext};
use ahq_sched::{run, run_with_hook};
use ahq_sim::{MachineConfig, NodeSim};
use ahq_workloads::load::fig13_xapian_trace;
use ahq_workloads::{mixes, profiles};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn tiny_cfg() -> ExpContext {
    ExpContext::new(ExpConfig {
        quick: true,
        seed: 9,
    })
}

/// A reduced run: `windows` monitoring windows of `mix` at the given loads
/// under one strategy.
fn run_cell(strategy: StrategyKind, cores: u32, xapian_load: f64, windows: usize) -> f64 {
    let mix = mixes::fluidanimate_mix();
    let mut sim = NodeSim::with_reference(
        MachineConfig::paper_xeon().with_budget(cores, 20),
        MachineConfig::paper_xeon(),
        mix.apps.clone(),
        13,
    )
    .expect("valid mix");
    sim.set_load("xapian", xapian_load).expect("LC app");
    sim.set_load("moses", 0.2).expect("LC app");
    sim.set_load("img-dnn", 0.2).expect("LC app");
    let mut sched = strategy.build();
    let result = run(&mut sim, sched.as_mut(), windows, &EntropyModel::default());
    result.steady_entropy(windows / 2)
}

fn bench_artifacts(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure_units");
    group.sample_size(10);

    // Table II: one Unmanaged row at 6 cores.
    group.bench_function("table2_row_6cores", |b| {
        b.iter(|| black_box(run_cell(StrategyKind::Unmanaged, 6, 0.2, 12)))
    });
    // Fig. 2 / Fig. 3: one budget point for ARQ.
    group.bench_function("fig2_budget_point_arq", |b| {
        b.iter(|| black_box(run_cell(StrategyKind::Arq, 8, 0.2, 12)))
    });
    // Fig. 7: one solo load-latency point. A fresh context per iteration
    // so the run cache cannot short-circuit the measurement.
    group.bench_function("fig7_solo_point", |b| {
        let spec = profiles::xapian();
        b.iter(|| {
            let cfg = tiny_cfg();
            black_box(fig7::solo_p95(&cfg, &spec, 4, 0.8))
        })
    });
    // Fig. 8 / 9 / 10 / 11 / 12: one sweep cell (strategy x load).
    group.bench_function("fig8_sweep_cell_arq", |b| {
        b.iter(|| black_box(run_cell(StrategyKind::Arq, 10, 0.7, 12)))
    });
    group.bench_function("fig9_sweep_cell_parties", |b| {
        b.iter(|| black_box(run_cell(StrategyKind::Parties, 10, 0.7, 12)))
    });
    // Fig. 13: a 12-window slice of the fluctuating trace under ARQ.
    group.bench_function("fig13_trace_slice_arq", |b| {
        let trace = fig13_xapian_trace();
        b.iter(|| {
            let mix = mixes::stream_mix();
            let mut sim =
                NodeSim::new(MachineConfig::paper_xeon(), mix.apps.clone(), 17).expect("mix");
            sim.set_load("moses", 0.2).expect("LC app");
            sim.set_load("img-dnn", 0.2).expect("LC app");
            let mut sched = StrategyKind::Arq.build();
            let trace = trace.clone();
            black_box(run_with_hook(
                &mut sim,
                sched.as_mut(),
                12,
                &EntropyModel::default(),
                move |sim, w| {
                    let _ = sim.set_load("xapian", trace.load_at(w as f64 * 0.5 * 10.0));
                },
            ))
        })
    });
    group.finish();

    // Fig. 2's helper end to end at a tiny budget (covers the experiment
    // module itself).
    let mut exp = c.benchmark_group("experiment_helpers");
    exp.sample_size(10);
    exp.bench_function("fig2_entropy_at_budget", |b| {
        b.iter(|| {
            let cfg = tiny_cfg();
            black_box(fig2::entropy_at_budget(
                &cfg,
                8,
                12,
                StrategyKind::Unmanaged,
            ))
        })
    });
    exp.finish();
}

/// A time-boxed Criterion configuration: the suite covers many benches,
/// so each one gets a short warm-up and measurement window.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10)
}

criterion_group!(
    name = benches;
    config = quick();
    targets = bench_artifacts);
criterion_main!(benches);
