//! Benchmarks of the datacenter-node simulator: monitoring-window
//! throughput under light and heavy interference, and the Fig. 4
//! space-time model.

use ahq_bench::{standard_sim, stream_sim};
use ahq_sim::spacetime::{evaluate, figure4_patterns, Discipline};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_window(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_window");
    group.sample_size(20);
    group.bench_function("fluidanimate_mix_50pct", |b| {
        let mut sim = standard_sim(7);
        b.iter(|| black_box(sim.run_window()))
    });
    group.bench_function("stream_mix_90pct", |b| {
        let mut sim = stream_sim(7);
        b.iter(|| black_box(sim.run_window()))
    });
    group.finish();
}

fn bench_spacetime(c: &mut Criterion) {
    let patterns = figure4_patterns();
    c.bench_function("spacetime_fig4_all_disciplines", |b| {
        b.iter(|| {
            for d in [
                Discipline::NoManagement,
                Discipline::IsolatedTo(0),
                Discipline::SharedLcPriority,
            ] {
                black_box(evaluate(black_box(&patterns), d));
            }
        })
    });
}

/// A time-boxed Criterion configuration: the suite covers many benches,
/// so each one gets a short warm-up and measurement window.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10)
}

criterion_group!(
    name = benches;
    config = quick();
    targets = bench_window, bench_spacetime);
criterion_main!(benches);
