//! Benchmarks of the parallel run engine at Fig. 8 scale: the same grid
//! of (load x strategy) jobs executed sequentially and with all available
//! workers. A fresh engine is built inside every iteration so the run
//! cache cannot short-circuit the measurement.

use ahq_experiments::{Engine, ExpConfig, ExpContext, RunSpec, StrategyKind};
use ahq_sim::MachineConfig;
use ahq_workloads::mixes;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

/// The Fig. 8 quick grid: Xapian swept over five loads, the other LC apps
/// pinned at 20 %, all five strategies — 25 jobs.
fn fig8_scale_grid() -> Vec<RunSpec> {
    let cfg = ExpContext::new(ExpConfig {
        quick: true,
        seed: 11,
    });
    let mix = mixes::fluidanimate_mix();
    let mut specs = Vec::new();
    for load in [0.1, 0.3, 0.5, 0.7, 0.9] {
        for strategy in StrategyKind::all() {
            specs.push(RunSpec::strategy(
                &cfg,
                MachineConfig::paper_xeon(),
                &mix,
                &[("xapian", load), ("moses", 0.2), ("img-dnn", 0.2)],
                strategy,
            ));
        }
    }
    specs
}

fn bench_executor(c: &mut Criterion) {
    let specs = fig8_scale_grid();
    let mut group = c.benchmark_group("executor_fig8_grid");
    group.sample_size(10);

    group.bench_function("sequential_1_worker", |b| {
        b.iter(|| {
            let engine = Engine::new(1);
            black_box(engine.run_all(black_box(&specs)))
        })
    });
    group.bench_function("parallel_auto_workers", |b| {
        b.iter(|| {
            let engine = Engine::new(0);
            black_box(engine.run_all(black_box(&specs)))
        })
    });
    // The memoized path: every job a cache hit.
    group.bench_function("fully_cached", |b| {
        let engine = Engine::new(0);
        engine.run_all(&specs);
        b.iter(|| black_box(engine.run_all(black_box(&specs))))
    });
    group.finish();
}

/// A time-boxed Criterion configuration matching the other suites.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10)
}

criterion_group!(
    name = benches;
    config = quick();
    targets = bench_executor);
criterion_main!(benches);
