//! Benchmarks of the entropy theory (`ahq-core`): the per-window scoring
//! cost a scheduler pays, series interpolation (Fig. 3 machinery), and
//! percentile estimation.

use ahq_bench::measurement_population;
use ahq_core::{resource_equivalence, EntropyModel, EntropySeries};
use ahq_sim::percentile;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_entropy_evaluate(c: &mut Criterion) {
    let model = EntropyModel::default();
    let mut group = c.benchmark_group("entropy_evaluate");
    for n in [4usize, 16, 64, 256] {
        let (lc, be) = measurement_population(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(model.evaluate(black_box(&lc), black_box(&be))))
        });
    }
    group.finish();
}

fn bench_series_interpolation(c: &mut Criterion) {
    let points: Vec<(f64, f64)> = (0..64)
        .map(|i| (i as f64, 1.0 / (1.0 + i as f64 * 0.3)))
        .collect();
    let a = EntropySeries::from_points("a", points.clone());
    let b_series =
        EntropySeries::from_points("b", points.iter().map(|&(r, e)| (r, e * 0.7)).collect());
    c.bench_function("resource_equivalence", |b| {
        b.iter(|| black_box(resource_equivalence(&a, &b_series, black_box(0.2))))
    });
}

fn bench_percentile(c: &mut Criterion) {
    let mut group = c.benchmark_group("percentile_p95");
    for n in [128usize, 1024, 8192] {
        let samples: Vec<f64> = (0..n).map(|i| ((i * 2654435761) % 1000) as f64).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(percentile(black_box(&samples), 0.95)))
        });
    }
    group.finish();
}

/// A time-boxed Criterion configuration: the suite covers many benches,
/// so each one gets a short warm-up and measurement window.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10)
}

criterion_group!(
    name = benches;
    config = quick();
    targets =
    bench_entropy_evaluate,
    bench_series_interpolation,
    bench_percentile
);
criterion_main!(benches);
