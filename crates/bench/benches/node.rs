//! Benchmarks of the node event path introduced with the memoized
//! fluid-rate cache: end-to-end `run_window` throughput on the pinned
//! 2LC+2BE paper-machine scenario (the `BENCH_node.json` baseline), and
//! the rate-lookup microbench comparing a cache hit against the direct
//! solver with and without scratch buffers.

use ahq_bench::paper_pair_sim;
use ahq_sim::{
    compute_rates, compute_rates_into, AppDemand, AppKind, BandwidthModel, CacheProfile,
    MachineConfig, Partition, RateCache, RateScratch, SharingPolicy,
};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_run_window(c: &mut Criterion) {
    let mut group = c.benchmark_group("node_event_path");
    group.sample_size(20);
    group.bench_function("run_window_paper_pair", |b| {
        let mut sim = paper_pair_sim(7);
        b.iter(|| black_box(sim.run_window()))
    });
    group.finish();
}

/// The demand vector of the paper-pair scenario at one representative
/// busy state (both LC apps at 2 in-service requests, BE fully busy).
fn paper_pair_demands(machine: &MachineConfig) -> Vec<AppDemand> {
    let balanced = CacheProfile::balanced();
    let compute = CacheProfile::compute();
    let streaming = CacheProfile::streaming();
    let mk = |kind: AppKind, busy: u32, profile: &CacheProfile| AppDemand {
        kind,
        busy,
        curve: profile.curve(machine.llc_ways),
        bw_per_thread: profile.bw_gbps_per_thread,
    };
    vec![
        mk(AppKind::Lc, 2, &balanced),
        mk(AppKind::Lc, 2, &balanced),
        mk(AppKind::Be, 4, &compute),
        mk(AppKind::Be, 4, &streaming),
    ]
}

fn bench_rate_lookup(c: &mut Criterion) {
    let machine = MachineConfig::paper_xeon();
    let bw = BandwidthModel::new(machine.membw_gbps);
    let partition = Partition::all_shared(4);
    let demands = paper_pair_demands(&machine);

    let mut group = c.benchmark_group("rate_lookup");
    group.bench_function("cache_hit", |b| {
        let mut cache = RateCache::new();
        // The layout NodeSim declares for this scenario: keys pack into
        // one u64 and hits take the packed-probe path.
        cache.set_layout(&[4, 4, 4, 4]);
        let mut out = Vec::new();
        // Prime the single entry the loop will keep hitting.
        cache.rates_for(
            &machine,
            &partition,
            &demands,
            0,
            SharingPolicy::Fair,
            &bw,
            &mut out,
        );
        b.iter(|| {
            cache.rates_for(
                black_box(&machine),
                black_box(&partition),
                black_box(&demands),
                0,
                SharingPolicy::Fair,
                &bw,
                &mut out,
            );
            black_box(&out);
        })
    });
    group.bench_function("cache_hit_wide", |b| {
        // No layout declared: the same lookup through the fallback
        // `Vec<u32>`-keyed map, for comparison with the packed path.
        let mut cache = RateCache::new();
        let mut out = Vec::new();
        cache.rates_for(
            &machine,
            &partition,
            &demands,
            0,
            SharingPolicy::Fair,
            &bw,
            &mut out,
        );
        b.iter(|| {
            cache.rates_for(
                black_box(&machine),
                black_box(&partition),
                black_box(&demands),
                0,
                SharingPolicy::Fair,
                &bw,
                &mut out,
            );
            black_box(&out);
        })
    });
    group.bench_function("solver_scratch", |b| {
        let mut scratch = RateScratch::new();
        let mut out = Vec::new();
        b.iter(|| {
            compute_rates_into(
                black_box(&machine),
                black_box(&partition),
                black_box(&demands),
                SharingPolicy::Fair,
                &bw,
                &mut scratch,
                &mut out,
            );
            black_box(&out);
        })
    });
    group.bench_function("solver_alloc", |b| {
        b.iter(|| {
            black_box(compute_rates(
                black_box(&machine),
                black_box(&partition),
                black_box(&demands),
                SharingPolicy::Fair,
                &bw,
            ))
        })
    });
    group.finish();
}

/// A time-boxed Criterion configuration, matching the other benches in
/// the suite.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10)
}

criterion_group!(
    name = benches;
    config = quick();
    targets = bench_run_window, bench_rate_lookup);
criterion_main!(benches);
