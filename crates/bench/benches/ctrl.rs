//! Benchmarks of the cluster control plane: one round step at 64 nodes
//! with no controller, the global ARQ controller, and the controller with
//! GP weight learning, pinned in `BENCH_ctrl.json`. The interesting
//! number is the *overhead* of the controller's epoch — aggregation,
//! donor/recipient scoring, speculative move bookkeeping and (for the
//! learned arm) the per-epoch GP update — over the plain cluster round.

use ahq_cluster::{
    ChurnConfig, ClusterConfig, ClusterSim, Controller, LocalSched, PlacerKind, SequentialRunner,
};
use ahq_ctrl::{CtrlConfig, GlobalArq, TuneConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

/// The `repro gctrl` scenario shape at `nodes` nodes: heterogeneous
/// fleet, ~1 app per node, ARQ local scheduler. `rounds` is set far
/// beyond what Criterion will step so one warmed simulation serves every
/// iteration.
fn bench_config(nodes: usize, placer: PlacerKind) -> ClusterConfig {
    let mut config = ClusterConfig::heterogeneous(nodes, placer, LocalSched::Arq);
    config.windows_per_round = 2;
    config.seed = 7;
    config.rounds = 50_000;
    config.churn = ChurnConfig {
        initial_apps: nodes,
        arrivals_per_round: nodes as f64 / 4.0,
        departure_prob: 0.05,
        load_change_prob: 0.15,
        be_fraction: 0.4,
    };
    config
}

/// One benchmark arm: display name, placer, and an optional controller
/// factory (a fresh controller per warmed simulation).
type Arm = (
    &'static str,
    PlacerKind,
    Option<fn() -> Box<dyn Controller>>,
);

fn bench_ctrl_round_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("ctrl_round_step");
    group.sample_size(10);
    let arms: [Arm; 3] = [
        ("none", PlacerKind::EntropyAware, None),
        (
            "ctrl",
            PlacerKind::EntropyAware,
            Some(|| Box::new(GlobalArq::new(CtrlConfig::default()))),
        ),
        (
            "ctrl_learned",
            PlacerKind::Learned,
            Some(|| {
                Box::new(GlobalArq::new(CtrlConfig {
                    tune: Some(TuneConfig::default()),
                    ..CtrlConfig::default()
                }))
            }),
        ),
    ];
    for (name, placer, make_ctrl) in arms {
        group.bench_function(format!("64_nodes_{name}"), |b| {
            // Warm past the controller's history requirement and first
            // tuning epochs, so iterations measure the steady decision
            // loop rather than the idle warm-up rounds.
            let runner = SequentialRunner::default();
            let mut sim = ClusterSim::new(bench_config(64, placer));
            if let Some(make) = make_ctrl {
                sim.set_controller(make());
            }
            for _ in 0..8 {
                sim.step_round(&runner);
            }
            b.iter(|| {
                sim.step_round(&runner);
                black_box(sim.round())
            })
        });
    }
    group.finish();
}

/// A time-boxed Criterion configuration, matching the other benches in
/// the suite.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10)
}

criterion_group!(
    name = benches;
    config = quick();
    targets = bench_ctrl_round_step);
criterion_main!(benches);
