//! Benchmarks of the five scheduling strategies: the cost of a full
//! 10-window scheduled run (simulation + decisions) per strategy.
//!
//! The paper's overhead discussion (§IV-D) argues ARQ's decision cost is
//! negligible against ML-based schedulers; the relative widths of these
//! benches quantify that claim for this reproduction — CLITE's GP fits
//! dominate its decision time.

use ahq_bench::standard_sim;
use ahq_core::EntropyModel;
use ahq_experiments::StrategyKind;
use ahq_sched::run;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_scheduled_runs(c: &mut Criterion) {
    let model = EntropyModel::default();
    let mut group = c.benchmark_group("scheduled_run_10_windows");
    group.sample_size(10);
    for strategy in StrategyKind::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.name()),
            &strategy,
            |b, strategy| {
                b.iter(|| {
                    let mut sim = standard_sim(11);
                    let mut sched = strategy.build();
                    black_box(run(&mut sim, sched.as_mut(), 10, &model))
                })
            },
        );
    }
    group.finish();
}

/// A time-boxed Criterion configuration: the suite covers many benches,
/// so each one gets a short warm-up and measurement window.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(10)
}

criterion_group!(
    name = benches;
    config = quick();
    targets = bench_scheduled_runs);
criterion_main!(benches);
