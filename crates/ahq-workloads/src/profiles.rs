//! Calibrated application profiles for the paper's nine applications.
//!
//! LC profiles take `M_i` (QoS threshold) and the nominal max load from
//! Table IV verbatim. The service-demand distribution (mean, sigma) is
//! solved per application so that its ideal tail latency `TL_i0` matches
//! the paper's Table II values (where given) and the load-latency knee
//! falls near the nominal max load on the core counts the paper uses:
//!
//! | app      | threads | M_i (ms) | max load (sim / paper) | mean svc (ms) | sigma | TL_i0 (ms) |
//! |----------|---------|----------|------------------------|---------------|-------|------------|
//! | xapian   | 4       | 4.22     | 3034 / 3400 QPS        | 1.000         | 0.82  | ≈2.76      |
//! | moses    | 4       | 10.53    | 2107 / 1800 QPS        | 1.778         | 0.30  | ≈2.78      |
//! | img-dnn  | 4       | 3.98     | 5637 / 5300 QPS        | 0.642         | 0.58  | ≈1.41      |
//! | masstree | 4       | 1.05     | 4884 / 4420 QPS        | 0.543         | 0.25  | ≈0.79      |
//! | sphinx   | 4       | 2682     | 6.0 / 4.8 QPS          | 667           | 0.50  | ≈1341      |
//! | silo     | 4       | 1.27     | 220 / 220 QPS          | 0.447         | 0.30  | ≈0.70      |
//!
//! The *max load* column is the simulator's measured knee — the QPS at
//! which the solo p95 crosses `M_i` on the full machine, found by a load
//! sweep exactly as the paper's Fig. 7 methodology prescribes. It sits
//! within 6–25 % of Table IV's hardware numbers; experiments express load
//! as a fraction of this calibrated knee, matching the paper's
//! "% of max load" semantics. [`paper_max_load_qps`] reports the paper's
//! hardware values for the Table IV reproduction.
//!
//! (The paper's Table II gives `TL_i0` = 2.77 / 2.80 / 1.41 for Xapian /
//! Moses / Img-dnn; Masstree, Sphinx and Silo have no published `TL_i0`,
//! so a tolerance `A_i` in the 0.25–0.5 range was assumed.)
//!
//! Cache/memory behaviour is assigned qualitatively from the workloads'
//! published characterisations: Moses and Masstree are cache- and
//! memory-hungry, Sphinx is compute-bound, STREAM is a pure bandwidth hog,
//! and so on. These drive the miss-ratio curves in `ahq-sim`.

use ahq_sim::{AppSpec, CacheProfile};

/// Xapian — the Tailbench web-search engine (Zipfian query popularity is
/// what fattens its service-time tail; see [`crate::zipf`]).
pub fn xapian() -> AppSpec {
    AppSpec::lc("xapian")
        .threads(4)
        .mean_service_ms(1.0)
        .service_sigma(0.82)
        .qos_threshold_ms(4.22)
        .max_load_qps(3034.0)
        .cache(CacheProfile {
            miss_floor: 0.08,
            footprint_ways: 7.0,
            intensity: 1.0,
            bw_gbps_per_thread: 1.2,
        })
        .build()
        .expect("xapian profile is valid")
}

/// Moses — statistical machine translation; uniform sentence cost but a
/// large phrase-table working set.
pub fn moses() -> AppSpec {
    AppSpec::lc("moses")
        .threads(4)
        .mean_service_ms(1.778)
        .service_sigma(0.30)
        .qos_threshold_ms(10.53)
        .max_load_qps(2107.0)
        .cache(CacheProfile {
            miss_floor: 0.12,
            footprint_ways: 8.0,
            intensity: 1.1,
            bw_gbps_per_thread: 1.8,
        })
        .build()
        .expect("moses profile is valid")
}

/// Img-dnn — handwriting recognition on MNIST; compute-heavy with a
/// modest working set.
pub fn img_dnn() -> AppSpec {
    AppSpec::lc("img-dnn")
        .threads(4)
        .mean_service_ms(0.642)
        .service_sigma(0.58)
        .qos_threshold_ms(3.98)
        .max_load_qps(5637.0)
        .cache(CacheProfile {
            miss_floor: 0.08,
            footprint_ways: 4.0,
            intensity: 0.6,
            bw_gbps_per_thread: 1.0,
        })
        .build()
        .expect("img-dnn profile is valid")
}

/// Masstree — scalable in-memory key-value store; pointer-chasing makes it
/// memory-latency bound with a large footprint and a tight QoS target.
pub fn masstree() -> AppSpec {
    AppSpec::lc("masstree")
        .threads(4)
        .mean_service_ms(0.543)
        .service_sigma(0.25)
        .qos_threshold_ms(1.05)
        .max_load_qps(4884.0)
        .cache(CacheProfile {
            miss_floor: 0.15,
            footprint_ways: 9.0,
            intensity: 1.3,
            bw_gbps_per_thread: 2.0,
        })
        .build()
        .expect("masstree profile is valid")
}

/// Sphinx — speech recognition; second-scale requests, compute-bound.
pub fn sphinx() -> AppSpec {
    AppSpec::lc("sphinx")
        .threads(4)
        .mean_service_ms(667.0)
        .service_sigma(0.50)
        .qos_threshold_ms(2682.0)
        .max_load_qps(6.0)
        .cache(CacheProfile {
            miss_floor: 0.06,
            footprint_ways: 3.0,
            intensity: 0.4,
            bw_gbps_per_thread: 0.8,
        })
        .build()
        .expect("sphinx profile is valid")
}

/// Silo — in-memory transactional database; sub-millisecond transactions
/// with a small cache footprint.
pub fn silo() -> AppSpec {
    AppSpec::lc("silo")
        .threads(4)
        .mean_service_ms(0.447)
        .service_sigma(0.30)
        .qos_threshold_ms(1.27)
        .max_load_qps(220.0)
        .cache(CacheProfile {
            miss_floor: 0.10,
            footprint_ways: 3.0,
            intensity: 0.6,
            bw_gbps_per_thread: 1.0,
        })
        .build()
        .expect("silo profile is valid")
}

/// Fluidanimate — PARSEC fluid-dynamics simulation; mostly compute-bound
/// with a moderate cache appetite. Solo IPC calibrated to the ~2.6 the
/// paper's Fig. 1 shows when unconstrained.
pub fn fluidanimate() -> AppSpec {
    AppSpec::be("fluidanimate")
        .threads(4)
        .ipc_solo(2.8)
        .cache(CacheProfile {
            miss_floor: 0.15,
            footprint_ways: 4.0,
            intensity: 0.7,
            bw_gbps_per_thread: 1.5,
        })
        .build()
        .expect("fluidanimate profile is valid")
}

/// Streamcluster — PARSEC online clustering; memory-bound, bandwidth
/// sensitive.
pub fn streamcluster() -> AppSpec {
    AppSpec::be("streamcluster")
        .threads(4)
        .ipc_solo(1.2)
        .cache(CacheProfile {
            miss_floor: 0.30,
            footprint_ways: 6.0,
            intensity: 1.2,
            bw_gbps_per_thread: 3.0,
        })
        .build()
        .expect("streamcluster profile is valid")
}

/// STREAM — the memory-bandwidth benchmark, instantiated with 10 threads
/// as in the paper "to generate severe interference ... on the processing
/// units, LLC and memory bandwidth".
pub fn stream() -> AppSpec {
    AppSpec::be("stream")
        .threads(10)
        .ipc_solo(0.5)
        .cache(CacheProfile {
            miss_floor: 0.85,
            footprint_ways: 1.5,
            intensity: 2.2,
            bw_gbps_per_thread: 9.0,
        })
        .build()
        .expect("stream profile is valid")
}

/// The paper's Table IV values for one LC application:
/// `(tail latency threshold ms, max load QPS)` as measured on the authors'
/// hardware. Returns `None` for unknown names.
pub fn paper_max_load_qps(name: &str) -> Option<(f64, f64)> {
    match name {
        "xapian" => Some((4.22, 3400.0)),
        "moses" => Some((10.53, 1800.0)),
        "img-dnn" => Some((3.98, 5300.0)),
        "masstree" => Some((1.05, 4420.0)),
        "sphinx" => Some((2682.0, 4.8)),
        "silo" => Some((1.27, 220.0)),
        _ => None,
    }
}

/// All six LC profiles in the paper's order.
pub fn all_lc() -> Vec<AppSpec> {
    vec![xapian(), moses(), img_dnn(), masstree(), sphinx(), silo()]
}

/// All three BE profiles.
pub fn all_be() -> Vec<AppSpec> {
    vec![fluidanimate(), streamcluster(), stream()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahq_sim::AppKind;

    #[test]
    fn table4_thresholds_are_verbatim_and_knees_close() {
        // QoS thresholds come verbatim from Table IV; calibrated max loads
        // stay within 30 % of the paper's hardware numbers.
        for spec in all_lc() {
            let (qos, max_load) = paper_max_load_qps(spec.name()).unwrap();
            assert_eq!(spec.qos_threshold_ms(), Some(qos), "{}", spec.name());
            let calibrated = spec.max_load_qps().unwrap();
            let ratio = calibrated / max_load;
            assert!(
                (0.7..=1.3).contains(&ratio),
                "{}: calibrated {calibrated} vs paper {max_load}",
                spec.name()
            );
        }
    }

    #[test]
    fn table2_ideal_tails_are_matched() {
        assert!((xapian().ideal_tail_ms().unwrap() - 2.77).abs() < 0.15);
        assert!((moses().ideal_tail_ms().unwrap() - 2.80).abs() < 0.15);
        assert!((img_dnn().ideal_tail_ms().unwrap() - 1.41).abs() < 0.10);
    }

    #[test]
    fn every_lc_profile_has_positive_tolerance() {
        for spec in all_lc() {
            let a = 1.0 - spec.ideal_tail_ms().unwrap() / spec.qos_threshold_ms().unwrap();
            assert!(
                (0.1..0.9).contains(&a),
                "{}: tolerance {a} outside plausible band",
                spec.name()
            );
        }
    }

    #[test]
    fn kinds_and_threads_match_paper() {
        for spec in all_lc() {
            assert_eq!(spec.kind(), AppKind::Lc);
            assert_eq!(spec.threads(), 4, "LC apps are instantiated with 4 threads");
        }
        assert_eq!(stream().threads(), 10, "STREAM uses 10 threads");
        assert_eq!(fluidanimate().threads(), 4);
        assert_eq!(streamcluster().threads(), 4);
        for spec in all_be() {
            assert_eq!(spec.kind(), AppKind::Be);
        }
    }

    #[test]
    fn stream_is_the_bandwidth_hog() {
        let stream_bw = stream().cache_profile().bw_gbps_per_thread * stream().threads() as f64;
        for spec in all_lc()
            .iter()
            .chain([fluidanimate(), streamcluster()].iter())
        {
            let bw = spec.cache_profile().bw_gbps_per_thread * spec.threads() as f64;
            assert!(stream_bw > 3.0 * bw, "{} out-draws stream?", spec.name());
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names = std::collections::HashSet::new();
        for spec in all_lc().iter().chain(all_be().iter()) {
            assert!(
                names.insert(spec.name().to_owned()),
                "duplicate {}",
                spec.name()
            );
        }
        assert_eq!(names.len(), 9);
    }
}
