//! Load shapes: constant, stepped, and the fluctuating trace of Fig. 13.
//!
//! A [`LoadTrace`] maps simulation time to an offered-load fraction (of
//! the application's nominal max load). Experiment runners sample the
//! trace at every monitoring window and feed
//! [`ahq_sim::NodeSim::set_load`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A piecewise-constant load trace.
///
/// ```
/// use ahq_workloads::load::LoadTrace;
///
/// let trace = LoadTrace::steps(&[(0.0, 0.1), (10.0, 0.7), (20.0, 0.3)]);
/// assert_eq!(trace.load_at(5.0), 0.1);
/// assert_eq!(trace.load_at(10.0), 0.7);
/// assert_eq!(trace.load_at(99.0), 0.3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadTrace {
    /// `(start_time_s, load_fraction)` segments, sorted by start time;
    /// each segment lasts until the next one begins (the last is open-ended).
    segments: Vec<(f64, f64)>,
}

impl LoadTrace {
    /// A constant load.
    pub fn constant(load: f64) -> Self {
        LoadTrace {
            segments: vec![(0.0, load.max(0.0))],
        }
    }

    /// Builds a trace from `(start_time_s, load_fraction)` steps. Steps
    /// are sorted by time; negative loads are clamped to zero. An empty
    /// slice yields a zero-load trace.
    pub fn steps(steps: &[(f64, f64)]) -> Self {
        let mut segments: Vec<(f64, f64)> = steps
            .iter()
            .map(|&(t, l)| (t.max(0.0), l.max(0.0)))
            .collect();
        segments.sort_by(|a, b| a.0.total_cmp(&b.0));
        if segments.is_empty() {
            segments.push((0.0, 0.0));
        }
        LoadTrace { segments }
    }

    /// The load fraction at time `t_s` (seconds). Before the first
    /// segment, the first segment's load applies.
    pub fn load_at(&self, t_s: f64) -> f64 {
        let mut load = self.segments[0].1;
        for &(start, l) in &self.segments {
            if t_s >= start {
                load = l;
            } else {
                break;
            }
        }
        load
    }

    /// The final time at which the trace changes (useful for sizing a
    /// simulation horizon).
    pub fn last_change_s(&self) -> f64 {
        self.segments.last().map(|s| s.0).unwrap_or(0.0)
    }

    /// The distinct load levels in the trace, in time order.
    pub fn levels(&self) -> Vec<f64> {
        self.segments.iter().map(|s| s.1).collect()
    }
}

/// The Fig. 13 fluctuating Xapian load over 250 s: low at first, stepping
/// up through the day-time peak (70 % at 100 s, 90 % at 120 s) and back
/// down. The paper plots the exact trace in Fig. 13(a); this is its
/// piecewise reconstruction, preserving the timing of the two peaks the
/// text calls out ("during 100 s–120 s ... increased to 70 %", "during
/// 120 s–140 s ... increased to 90 %").
pub fn fig13_xapian_trace() -> LoadTrace {
    LoadTrace::steps(&[
        (0.0, 0.10),
        (40.0, 0.30),
        (60.0, 0.50),
        (80.0, 0.30),
        (100.0, 0.70),
        (120.0, 0.90),
        (140.0, 0.50),
        (160.0, 0.20),
        (180.0, 0.40),
        (210.0, 0.10),
    ])
}

/// A smooth diurnal (day/night) load shape sampled into a step trace:
/// `base + amplitude * sin²(π t / period)`, clamped to `[0, 1.5]`.
///
/// ```
/// use ahq_workloads::load::diurnal_trace;
///
/// let t = diurnal_trace(0.2, 0.6, 100.0, 20);
/// assert!(t.load_at(0.0) < 0.3);            // trough at t = 0
/// assert!(t.load_at(50.0) > 0.7);           // peak mid-period
/// ```
pub fn diurnal_trace(base: f64, amplitude: f64, period_s: f64, steps: usize) -> LoadTrace {
    let steps = steps.max(2);
    let period_s = if period_s.is_finite() && period_s > 0.0 {
        period_s
    } else {
        60.0
    };
    let pts: Vec<(f64, f64)> = (0..steps)
        .map(|i| {
            let t = i as f64 / steps as f64 * period_s;
            let phase = (std::f64::consts::PI * t / period_s).sin();
            (t, (base + amplitude * phase * phase).clamp(0.0, 1.5))
        })
        .collect();
    LoadTrace::steps(&pts)
}

/// A seeded bounded-random-walk load trace: each step moves the load by a
/// uniform increment in `±max_step`, reflecting at `lo` and `hi`.
/// Deterministic for a given seed — usable in reproducible experiments.
///
/// ```
/// use ahq_workloads::load::random_walk_trace;
///
/// let a = random_walk_trace(0.5, 0.1, 0.1, 0.9, 1.0, 50, 7);
/// let b = random_walk_trace(0.5, 0.1, 0.1, 0.9, 1.0, 50, 7);
/// assert_eq!(a, b); // same seed, same trace
/// ```
#[allow(clippy::too_many_arguments)]
pub fn random_walk_trace(
    start: f64,
    max_step: f64,
    lo: f64,
    hi: f64,
    step_s: f64,
    steps: usize,
    seed: u64,
) -> LoadTrace {
    let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut load = start.clamp(lo, hi);
    let step_s = if step_s.is_finite() && step_s > 0.0 {
        step_s
    } else {
        1.0
    };
    let pts: Vec<(f64, f64)> = (0..steps.max(1))
        .map(|i| {
            let delta = rng.gen_range(-max_step.abs()..=max_step.abs());
            load = (load + delta).clamp(lo, hi);
            (i as f64 * step_s, load)
        })
        .collect();
    LoadTrace::steps(&pts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_trace_is_flat() {
        let t = LoadTrace::constant(0.4);
        assert_eq!(t.load_at(0.0), 0.4);
        assert_eq!(t.load_at(1e9), 0.4);
        assert_eq!(t.levels(), vec![0.4]);
    }

    #[test]
    fn steps_are_sorted_and_clamped() {
        let t = LoadTrace::steps(&[(10.0, 0.5), (0.0, -0.2), (5.0, 0.3)]);
        assert_eq!(t.load_at(0.0), 0.0);
        assert_eq!(t.load_at(7.0), 0.3);
        assert_eq!(t.load_at(10.0), 0.5);
        assert_eq!(t.last_change_s(), 10.0);
    }

    #[test]
    fn before_first_segment_uses_first_level() {
        let t = LoadTrace::steps(&[(5.0, 0.8)]);
        assert_eq!(t.load_at(0.0), 0.8);
    }

    #[test]
    fn empty_steps_mean_silence() {
        let t = LoadTrace::steps(&[]);
        assert_eq!(t.load_at(42.0), 0.0);
    }

    #[test]
    fn diurnal_trace_peaks_mid_period() {
        let t = diurnal_trace(0.1, 0.8, 200.0, 40);
        let trough = t.load_at(1.0);
        let peak = t.load_at(100.0);
        assert!(peak > trough + 0.5, "peak {peak} vs trough {trough}");
        // Every level respects the clamp.
        assert!(t.levels().iter().all(|&l| (0.0..=1.5).contains(&l)));
    }

    #[test]
    fn random_walk_stays_in_bounds_and_is_seeded() {
        let t = random_walk_trace(0.5, 0.2, 0.2, 0.8, 0.5, 200, 11);
        assert!(t.levels().iter().all(|&l| (0.2..=0.8).contains(&l)));
        assert_ne!(
            random_walk_trace(0.5, 0.2, 0.2, 0.8, 0.5, 200, 11),
            random_walk_trace(0.5, 0.2, 0.2, 0.8, 0.5, 200, 12),
            "different seeds differ"
        );
        // Swapped bounds are tolerated.
        let t = random_walk_trace(0.5, 0.2, 0.8, 0.2, 0.5, 10, 1);
        assert!(t.levels().iter().all(|&l| (0.2..=0.8).contains(&l)));
    }

    #[test]
    fn fig13_trace_has_the_papers_peaks() {
        let t = fig13_xapian_trace();
        assert_eq!(t.load_at(110.0), 0.70);
        assert_eq!(t.load_at(130.0), 0.90);
        assert!(t.load_at(10.0) <= 0.2, "starts low");
        assert!(t.load_at(240.0) <= 0.2, "ends low");
        assert!(t.last_change_s() < 250.0);
    }
}
