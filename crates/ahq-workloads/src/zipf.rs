//! Zipfian query-popularity model.
//!
//! The paper drives Xapian with "query terms chosen randomly, following a
//! Zipfian distribution". In the simulator, request cost is drawn from a
//! log-normal; this module documents and validates that link: queries are
//! drawn Zipf-ranked, each rank maps to a service cost (popular queries
//! hit warm posting lists and are cheap; rare queries are expensive), and
//! the resulting cost distribution is well approximated by a log-normal
//! whose sigma matches the one used in
//! [`crate::profiles::xapian`].

use rand::Rng;
use rand_distr::{Distribution, Zipf};

/// Generates Zipf-ranked queries and maps each rank to a service cost.
///
/// Rank `r` (1-based) costs `base_cost_ms * r^cost_exponent`: popular
/// queries are cheap, the long tail is expensive.
///
/// ```
/// use ahq_workloads::zipf::QueryPopularity;
/// use rand::SeedableRng;
///
/// let model = QueryPopularity::new(10_000, 0.9, 0.35, 0.5).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let cost = model.sample_cost_ms(&mut rng);
/// assert!(cost >= 0.35);
/// ```
#[derive(Debug, Clone)]
pub struct QueryPopularity {
    zipf: Zipf<f64>,
    base_cost_ms: f64,
    cost_exponent: f64,
}

impl QueryPopularity {
    /// Creates a model over `num_queries` distinct queries with Zipf
    /// exponent `s`, base cost `base_cost_ms`, and rank-to-cost exponent
    /// `cost_exponent`.
    ///
    /// # Errors
    ///
    /// Returns a description of the invalid parameter when `num_queries`
    /// is zero, `s` is not positive, or the costs are not positive finite.
    pub fn new(
        num_queries: u64,
        s: f64,
        base_cost_ms: f64,
        cost_exponent: f64,
    ) -> Result<Self, String> {
        if num_queries == 0 {
            return Err("num_queries must be positive".into());
        }
        if !(base_cost_ms.is_finite() && base_cost_ms > 0.0) {
            return Err(format!("base_cost_ms must be positive, got {base_cost_ms}"));
        }
        if !(cost_exponent.is_finite() && cost_exponent >= 0.0) {
            return Err(format!(
                "cost_exponent must be non-negative, got {cost_exponent}"
            ));
        }
        let zipf = Zipf::new(num_queries, s).map_err(|e| format!("invalid Zipf: {e}"))?;
        Ok(QueryPopularity {
            zipf,
            base_cost_ms,
            cost_exponent,
        })
    }

    /// Samples a query rank (1 = most popular).
    pub fn sample_rank<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        self.zipf.sample(rng) as u64
    }

    /// Samples the service cost of one query in milliseconds.
    pub fn sample_cost_ms<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let rank = self.sample_rank(rng) as f64;
        self.base_cost_ms * rank.powf(self.cost_exponent)
    }

    /// Estimates the log-normal sigma that best fits the cost
    /// distribution, from `n` Monte-Carlo samples — the bridge to the
    /// profile's `service_sigma`.
    pub fn fitted_lognormal_sigma<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> f64 {
        let n = n.max(2);
        let logs: Vec<f64> = (0..n).map(|_| self.sample_cost_ms(rng).ln()).collect();
        let mean = logs.iter().sum::<f64>() / n as f64;
        let var = logs.iter().map(|l| (l - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        var.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn popular_queries_dominate() {
        let model = QueryPopularity::new(10_000, 1.0, 1.0, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let top10 = (0..20_000)
            .filter(|_| model.sample_rank(&mut rng) <= 10)
            .count();
        // With s = 1 over 10k items, the top-10 hold a large share.
        assert!(top10 > 4_000, "top-10 queries drew only {top10}/20000");
    }

    #[test]
    fn cost_grows_with_rank_exponent() {
        let flat = QueryPopularity::new(1000, 0.9, 1.0, 0.0).unwrap();
        let steep = QueryPopularity::new(1000, 0.9, 1.0, 0.8).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mean_flat: f64 = (0..5000)
            .map(|_| flat.sample_cost_ms(&mut rng))
            .sum::<f64>()
            / 5000.0;
        let mean_steep: f64 = (0..5000)
            .map(|_| steep.sample_cost_ms(&mut rng))
            .sum::<f64>()
            / 5000.0;
        assert!((mean_flat - 1.0).abs() < 1e-9);
        assert!(mean_steep > 1.5 * mean_flat);
    }

    #[test]
    fn xapian_sigma_is_in_the_profiles_ballpark() {
        // The profile uses sigma = 0.82; a Zipfian popularity model with a
        // plausible rank-cost mapping lands in the same region, which is
        // the justification for that calibration.
        let model = QueryPopularity::new(100_000, 0.8, 0.4, 0.35).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let sigma = model.fitted_lognormal_sigma(&mut rng, 50_000);
        assert!(
            (0.5..1.2).contains(&sigma),
            "fitted sigma {sigma} far from profile's 0.82"
        );
    }

    #[test]
    fn constructor_validates() {
        assert!(QueryPopularity::new(0, 1.0, 1.0, 0.5).is_err());
        assert!(QueryPopularity::new(10, -1.0, 1.0, 0.5).is_err());
        assert!(QueryPopularity::new(10, 1.0, 0.0, 0.5).is_err());
        assert!(QueryPopularity::new(10, 1.0, 1.0, -0.1).is_err());
    }
}
