//! Named collocation mixes — one per experiment family in the paper.

use ahq_sim::AppSpec;

use crate::profiles;

/// A named collocation: which applications run together, LC apps first.
#[derive(Debug, Clone)]
pub struct Mix {
    /// A short identifier used in experiment output.
    pub name: &'static str,
    /// The application specs, LC applications first.
    pub apps: Vec<AppSpec>,
}

impl Mix {
    /// Names of the LC applications in this mix.
    pub fn lc_names(&self) -> Vec<&str> {
        self.apps
            .iter()
            .filter(|a| a.kind() == ahq_sim::AppKind::Lc)
            .map(|a| a.name())
            .collect()
    }

    /// Names of the BE applications in this mix.
    pub fn be_names(&self) -> Vec<&str> {
        self.apps
            .iter()
            .filter(|a| a.kind() == ahq_sim::AppKind::Be)
            .map(|a| a.name())
            .collect()
    }
}

/// Xapian + Moses + Img-dnn with Fluidanimate — Table II, Fig. 2, Fig. 3
/// and Fig. 8.
pub fn fluidanimate_mix() -> Mix {
    Mix {
        name: "xapian+moses+img-dnn/fluidanimate",
        apps: vec![
            profiles::xapian(),
            profiles::moses(),
            profiles::img_dnn(),
            profiles::fluidanimate(),
        ],
    }
}

/// Xapian + Moses + Img-dnn with the 10-thread STREAM hog — Fig. 5, 6, 9,
/// 10 and 13.
pub fn stream_mix() -> Mix {
    Mix {
        name: "xapian+moses+img-dnn/stream",
        apps: vec![
            profiles::xapian(),
            profiles::moses(),
            profiles::img_dnn(),
            profiles::stream(),
        ],
    }
}

/// Img-dnn + Moses + Sphinx with STREAM — Fig. 11 ("another application
/// collocation").
pub fn sphinx_mix() -> Mix {
    Mix {
        name: "img-dnn+moses+sphinx/stream",
        apps: vec![
            profiles::img_dnn(),
            profiles::moses(),
            profiles::sphinx(),
            profiles::stream(),
        ],
    }
}

/// All six LC applications with Fluidanimate and Streamcluster — Fig. 12
/// ("collocation of even larger number of applications").
pub fn large_mix() -> Mix {
    Mix {
        name: "6lc/2be",
        apps: vec![
            profiles::moses(),
            profiles::xapian(),
            profiles::img_dnn(),
            profiles::sphinx(),
            profiles::masstree(),
            profiles::silo(),
            profiles::fluidanimate(),
            profiles::streamcluster(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixes_have_expected_shapes() {
        assert_eq!(fluidanimate_mix().lc_names().len(), 3);
        assert_eq!(fluidanimate_mix().be_names(), vec!["fluidanimate"]);
        assert_eq!(stream_mix().be_names(), vec!["stream"]);
        assert_eq!(sphinx_mix().lc_names(), vec!["img-dnn", "moses", "sphinx"]);
        assert_eq!(large_mix().lc_names().len(), 6);
        assert_eq!(large_mix().be_names().len(), 2);
    }

    #[test]
    fn mixes_build_into_simulations() {
        use ahq_sim::{MachineConfig, NodeSim};
        for mix in [fluidanimate_mix(), stream_mix(), sphinx_mix(), large_mix()] {
            let sim = NodeSim::new(MachineConfig::paper_xeon(), mix.apps.clone(), 1);
            assert!(sim.is_ok(), "mix {} should build", mix.name);
        }
    }
}
