//! # ahq-workloads — the paper's application zoo and load generators
//!
//! The Ah-Q paper evaluates on six latency-critical (LC) applications from
//! Tailbench — **Xapian** (search), **Moses** (statistical MT), **Img-dnn**
//! (handwriting recognition), **Masstree** (in-memory KV), **Sphinx**
//! (speech recognition) and **Silo** (in-memory OLTP) — plus three
//! best-effort (BE) applications: **Fluidanimate** and **Streamcluster**
//! from PARSEC and the **STREAM** bandwidth benchmark.
//!
//! This crate provides calibrated [`ahq_sim::AppSpec`] profiles for all
//! nine ([`profiles`]), the named collocation mixes used by each figure of
//! the paper ([`mixes`]), and load-shape generators ([`load`]) including
//! the fluctuating trace of Fig. 13 and a Zipfian popularity model
//! ([`zipf`]) documenting how the service-time variability parameters were
//! chosen.
//!
//! ## Calibration
//!
//! Each LC profile reproduces the application's row of Table IV:
//! the QoS threshold `M_i` is taken verbatim, and the mean service demand
//! and log-normal sigma are solved so that (a) the interference-free p95
//! (`TL_i0`) lands on the value implied by Table II, and (b) the
//! load-latency knee (Fig. 7) appears near the paper's max-load when the
//! application saturates its cores. See [`profiles`] for the per-app
//! numbers.
//!
//! ```
//! use ahq_workloads::profiles;
//!
//! let xapian = profiles::xapian();
//! assert_eq!(xapian.qos_threshold_ms(), Some(4.22)); // Table IV
//! let tl0 = xapian.ideal_tail_ms().unwrap();
//! assert!((tl0 - 2.77).abs() < 0.15);                // Table II
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod load;
pub mod mixes;
pub mod profiles;
pub mod zipf;
