//! Property-based tests of the simulator's invariants: resource
//! conservation, monotone model components, and bookkeeping identities
//! that must hold for any workload and any valid partition.

use ahq_sim::{
    AppSpec, BandwidthModel, CacheProfile, MachineConfig, MissRatioCurve, NodeSim, Partition,
    RegionAlloc, SharingPolicy,
};
use proptest::prelude::*;

fn cache_profile() -> impl Strategy<Value = CacheProfile> {
    (0.01f64..0.9, 1.0f64..12.0, 0.0f64..3.0, 0.1f64..10.0).prop_map(
        |(miss_floor, footprint_ways, intensity, bw)| CacheProfile {
            miss_floor,
            footprint_ways,
            intensity,
            bw_gbps_per_thread: bw,
        },
    )
}

proptest! {
    /// Miss-ratio curves are monotone decreasing in ways and bounded.
    #[test]
    fn mrc_monotone_and_bounded(profile in cache_profile(), full in 4u32..32) {
        let curve = profile.curve(full);
        let mut prev = curve.miss_ratio(0.0);
        prop_assert!(prev <= 1.0 + 1e-12);
        for w in 1..=full {
            let m = curve.miss_ratio(w as f64);
            prop_assert!(m <= prev + 1e-12, "miss ratio rose at {w} ways");
            prop_assert!(m >= 0.0);
            prev = m;
        }
        // Speed factor is monotone increasing and 1 at the full budget.
        let mut prev = curve.speed_factor(0.0);
        for w in 1..=full {
            let s = curve.speed_factor(w as f64);
            prop_assert!(s + 1e-12 >= prev);
            prev = s;
        }
        prop_assert!((curve.speed_factor(full as f64) - 1.0).abs() < 1e-12);
    }

    /// Bandwidth saturation and slowdown live in (0, 1] and are monotone.
    #[test]
    fn bandwidth_model_bounds(capacity in 1.0f64..200.0, demand in 0.0f64..500.0, mf in 0.0f64..1.0) {
        let model = BandwidthModel::new(capacity);
        let s = model.saturation(demand);
        prop_assert!(s > 0.0 && s <= 1.0);
        let slow = BandwidthModel::memory_slowdown(s, mf);
        prop_assert!(slow > 0.0 && slow <= 1.0 + 1e-12);
        // More demand never increases the saturation fraction.
        prop_assert!(model.saturation(demand * 2.0) <= s + 1e-12);
    }

    /// Partition arithmetic conserves resources for any valid allocation.
    #[test]
    fn partition_conservation(
        cores in prop::collection::vec(0u32..4, 1..6),
        ways in prop::collection::vec(0u32..6, 1..6),
    ) {
        let n = cores.len().min(ways.len());
        let machine = MachineConfig::paper_xeon();
        let allocs: Vec<RegionAlloc> = cores
            .iter()
            .zip(ways.iter())
            .take(n)
            .map(|(&c, &w)| RegionAlloc::new(c, w))
            .collect();
        let p = Partition::strict(allocs);
        prop_assume!(p.validate(&machine).is_ok());
        prop_assert_eq!(
            p.isolated_cores() + p.shared_cores(&machine),
            machine.cores
        );
        prop_assert_eq!(
            p.isolated_ways() + p.shared_ways(&machine),
            machine.llc_ways
        );
    }

    /// The end-to-end bookkeeping identity: over any run,
    /// `arrivals = completions + drops + backlog_at_end`, per application.
    #[test]
    fn request_conservation(
        load in 0.05f64..1.4,
        seed in 0u64..32,
        windows in 2usize..8,
    ) {
        let lc = AppSpec::lc("svc")
            .threads(4)
            .mean_service_ms(1.0)
            .service_sigma(0.6)
            .qos_threshold_ms(5.0)
            .max_load_qps(2000.0)
            .build()
            .expect("valid");
        let be = AppSpec::be("batch").ipc_solo(2.0).build().expect("valid");
        let mut sim = NodeSim::new(MachineConfig::paper_xeon().with_budget(3, 20), vec![lc, be], seed)
            .expect("valid sim");
        sim.set_load("svc", load).expect("LC app");
        let obs = sim.run_windows(windows);
        let arrivals: u64 = obs.iter().map(|o| o.lc[0].arrivals).sum();
        let completions: u64 = obs.iter().map(|o| o.lc[0].completions).sum();
        let drops: u64 = obs.iter().map(|o| o.lc[0].drops).sum();
        let backlog = obs.last().unwrap().lc[0].backlog as u64;
        prop_assert_eq!(arrivals, completions + drops + backlog);
    }

    /// Latency and IPC observations stay physical for any load and policy.
    #[test]
    fn observations_stay_physical(
        load in 0.0f64..1.5,
        seed in 0u64..16,
        lc_priority in any::<bool>(),
        iso_cores in 0u32..4,
        iso_ways in 0u32..8,
    ) {
        let lc = AppSpec::lc("svc")
            .threads(4)
            .mean_service_ms(0.8)
            .service_sigma(0.5)
            .qos_threshold_ms(4.0)
            .max_load_qps(2500.0)
            .build()
            .expect("valid");
        let be = AppSpec::be("batch").threads(6).ipc_solo(1.8).build().expect("valid");
        let mut sim = NodeSim::new(MachineConfig::paper_xeon(), vec![lc, be], seed)
            .expect("valid sim");
        sim.set_policy(if lc_priority {
            SharingPolicy::LcPriority
        } else {
            SharingPolicy::Fair
        });
        let mut p = Partition::all_shared(2);
        p.set_isolated(0.into(), RegionAlloc::new(iso_cores, iso_ways));
        sim.set_partition(p).expect("valid partition");
        sim.set_load("svc", load).expect("LC app");
        for obs in sim.run_windows(4) {
            let s = &obs.lc[0];
            if let Some(p95) = s.p95_ms {
                prop_assert!(p95 > 0.0 && p95.is_finite());
            }
            prop_assert!(s.mean_core_capacity >= -1e-9);
            prop_assert!(s.mean_core_capacity <= 10.0 + 1e-9);
            let b = &obs.be[0];
            prop_assert!(b.ipc >= 0.0 && b.ipc <= b.ipc_solo * 1.05,
                "BE IPC {} exceeds solo {}", b.ipc, b.ipc_solo);
        }
    }

    /// More isolated cache for an app never makes it slower (solo).
    #[test]
    fn isolated_ways_never_hurt_their_owner(
        profile in cache_profile(),
        ways_a in 0u32..10,
        ways_b in 10u32..20,
    ) {
        let curve = MissRatioCurve::new(
            profile.miss_floor,
            profile.footprint_ways,
            profile.intensity,
            20,
        );
        prop_assert!(curve.speed_factor(ways_b as f64) + 1e-12 >= curve.speed_factor(ways_a as f64));
    }
}
