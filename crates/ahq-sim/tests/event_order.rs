//! Property tests pinning the tie-break contract of [`scan_next_event`].
//!
//! The window loop's determinism — and therefore the byte-identity of
//! every golden trace in this repository — rests on the scan examining
//! event sources in a fixed order (window end, then per application in
//! index order: arrival, completion, warm-up expiry) with every
//! comparison strict. These tests encode that contract twice over: a
//! deliberately naive reference scan that materializes every candidate
//! and picks the lexicographic minimum of `(time, source priority)`,
//! and a permutation property showing the *time* of the winning event
//! is invariant under reordering of the application arrays.

use ahq_sim::{scan_next_event, ScanEvent, SimTime};
use proptest::prelude::*;

/// Priority of an event source under the documented examination order:
/// lower wins a timestamp tie. The window end is examined first, then
/// for each application `i` its arrival, completion and warm-up expiry.
fn source_priority(event: ScanEvent) -> u64 {
    match event {
        ScanEvent::WindowEnd => 0,
        ScanEvent::Arrival(i) => 3 * i as u64 + 1,
        ScanEvent::Completion(i) => 3 * i as u64 + 2,
        // The scan does not carry an index for warm-up expiries, so the
        // reference assigns priorities positionally and maps the winner
        // back to the shared `WarmupExpiry` variant before comparing.
        ScanEvent::WarmupExpiry => unreachable!("reference tracks warmups per index"),
    }
}

/// A naive re-implementation of the scan: build the full candidate
/// list, then take the minimum by `(time, source priority)`. Agreement
/// with the production single-pass strict-`<` scan on every input is
/// exactly the statement that first-examined sources keep contested
/// timestamps.
fn reference_scan(
    time: SimTime,
    window_end: SimTime,
    next_arrival: &[SimTime],
    min_remaining_ms: &[f64],
    speed: &[f64],
    warmup_until: &[SimTime],
) -> (SimTime, ScanEvent) {
    // (time, priority, event); priority for warm-ups computed inline.
    let mut candidates: Vec<(SimTime, u64, ScanEvent)> =
        vec![(window_end, 0, ScanEvent::WindowEnd)];
    for i in 0..next_arrival.len() {
        candidates.push((
            next_arrival[i],
            source_priority(ScanEvent::Arrival(i)),
            ScanEvent::Arrival(i),
        ));
        if min_remaining_ms[i] < f64::INFINITY && speed[i] > 1e-12 {
            let dt_us = ((min_remaining_ms[i] / speed[i]).max(0.0) * 1_000.0).ceil() as u64;
            let t = time + SimTime::from_us(dt_us.max(1));
            candidates.push((
                t,
                source_priority(ScanEvent::Completion(i)),
                ScanEvent::Completion(i),
            ));
        }
        if warmup_until[i] > time {
            candidates.push((warmup_until[i], 3 * i as u64 + 3, ScanEvent::WarmupExpiry));
        }
    }
    let (t, _, event) = candidates
        .into_iter()
        .min_by_key(|&(t, priority, _)| (t, priority))
        .expect("the window end is always a candidate");
    (t.max(time), event)
}

/// Per-application event-source state the strategies below generate.
#[derive(Debug, Clone)]
struct AppSources {
    next_arrival: SimTime,
    min_remaining_ms: f64,
    speed: f64,
    warmup_until: SimTime,
}

/// Times drawn from a small µs grid so that cross-source collisions —
/// the interesting case — are common rather than vanishingly rare.
fn gridded_time(base_us: u64) -> impl Strategy<Value = SimTime> {
    (0u64..30).prop_map(move |offset| SimTime::from_us(base_us + offset))
}

fn app_sources(now_us: u64) -> impl Strategy<Value = AppSources> {
    (
        prop_oneof![gridded_time(now_us), Just(SimTime::NEVER)],
        prop_oneof![
            // Remaining work in ms on a coarse grid: with speed 1.0 a
            // value of k lands the completion exactly k µs out * 1000,
            // and fractional speeds exercise the ceil.
            (0u64..20).prop_map(|k| k as f64 * 0.001),
            Just(f64::INFINITY),
        ],
        prop_oneof![
            Just(1.0f64),
            Just(0.5f64),
            Just(0.0f64),
            // Below the 1e-12 floor: the source must be ignored, not
            // scheduled astronomically far out.
            Just(1e-13f64),
            (1u32..8).prop_map(|d| 1.0 / d as f64),
        ],
        // Straddle `now`: expired warm-ups (<= now) must be invisible.
        (0u64..30).prop_map(move |offset| SimTime::from_us(now_us.saturating_sub(10) + offset)),
    )
        .prop_map(
            |(next_arrival, min_remaining_ms, speed, warmup_until)| AppSources {
                next_arrival,
                min_remaining_ms,
                speed,
                warmup_until,
            },
        )
}

fn scan_inputs() -> impl Strategy<Value = (SimTime, SimTime, Vec<AppSources>)> {
    (5u64..40).prop_flat_map(|now_us| {
        (
            Just(SimTime::from_us(now_us)),
            (0u64..40).prop_map(move |w| SimTime::from_us(now_us + w)),
            prop::collection::vec(app_sources(now_us), 1..=8usize),
        )
    })
}

fn split(apps: &[AppSources]) -> (Vec<SimTime>, Vec<f64>, Vec<f64>, Vec<SimTime>) {
    (
        apps.iter().map(|a| a.next_arrival).collect(),
        apps.iter().map(|a| a.min_remaining_ms).collect(),
        apps.iter().map(|a| a.speed).collect(),
        apps.iter().map(|a| a.warmup_until).collect(),
    )
}

proptest! {
    /// The single-pass scan agrees exactly — time bits and event kind —
    /// with the naive minimum over the full candidate list.
    #[test]
    fn scan_matches_reference_candidate_list((time, window_end, apps) in scan_inputs()) {
        let (arrivals, remaining, speed, warmups) = split(&apps);
        let got = scan_next_event(time, window_end, &arrivals, &remaining, &speed, &warmups);
        let want = reference_scan(time, window_end, &arrivals, &remaining, &speed, &warmups);
        prop_assert_eq!(got.0.as_us(), want.0.as_us());
        prop_assert_eq!(got.1, want.1);
    }

    /// Permuting the application order never changes *when* the next
    /// event fires, bit for bit. (The winning *category* may flip on a
    /// cross-application tie — completion of app A versus arrival of
    /// app B — which is exactly why the loop keys dispatch off indices
    /// resolved under one fixed order, not off re-scans.)
    #[test]
    fn permuted_app_order_preserves_event_time(
        (time, window_end, apps) in scan_inputs(),
        seed in any::<u64>(),
    ) {
        let (arrivals, remaining, speed, warmups) = split(&apps);
        let base = scan_next_event(time, window_end, &arrivals, &remaining, &speed, &warmups);

        // Fisher-Yates driven by a splitmix so the permutation is a
        // pure function of `seed` (proptest shrinks it like any input).
        let mut order: Vec<usize> = (0..apps.len()).collect();
        let mut state = seed;
        for i in (1..order.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (state >> 33) as usize % (i + 1));
        }
        let permuted: Vec<AppSources> = order.iter().map(|&i| apps[i].clone()).collect();
        let (arrivals, remaining, speed, warmups) = split(&permuted);
        let shuffled = scan_next_event(time, window_end, &arrivals, &remaining, &speed, &warmups);

        prop_assert_eq!(base.0.as_us(), shuffled.0.as_us());
    }
}

// Handcrafted ties pinning the examination order itself. Each case
// would still pass a "some minimum-time event" spec; only the fixed
// window-end / arrival / completion / warm-up order passes all four.

#[test]
fn window_end_wins_tied_arrival() {
    let t = SimTime::from_us(10);
    let got = scan_next_event(
        SimTime::from_us(5),
        t,
        &[t],
        &[f64::INFINITY],
        &[1.0],
        &[SimTime::ZERO],
    );
    assert_eq!(got, (t, ScanEvent::WindowEnd));
}

#[test]
fn arrival_wins_tied_same_app_completion() {
    // Arrival at now+3µs; 0.003ms of work at speed 1.0 completes at the
    // same instant. Arrival is examined first for the same index.
    let now = SimTime::from_us(5);
    let got = scan_next_event(
        now,
        SimTime::from_us(100),
        &[SimTime::from_us(8)],
        &[0.003],
        &[1.0],
        &[SimTime::ZERO],
    );
    assert_eq!(got, (SimTime::from_us(8), ScanEvent::Arrival(0)));
}

#[test]
fn earlier_app_completion_wins_tied_later_app_arrival() {
    let now = SimTime::from_us(5);
    let got = scan_next_event(
        now,
        SimTime::from_us(100),
        &[SimTime::NEVER, SimTime::from_us(8)],
        &[0.003, f64::INFINITY],
        &[1.0, 1.0],
        &[SimTime::ZERO, SimTime::ZERO],
    );
    assert_eq!(got, (SimTime::from_us(8), ScanEvent::Completion(0)));
}

#[test]
fn warmup_wins_tied_later_app_arrival() {
    let now = SimTime::from_us(5);
    let got = scan_next_event(
        now,
        SimTime::from_us(100),
        &[SimTime::NEVER, SimTime::from_us(8)],
        &[f64::INFINITY, f64::INFINITY],
        &[1.0, 1.0],
        &[SimTime::from_us(8), SimTime::ZERO],
    );
    assert_eq!(got, (SimTime::from_us(8), ScanEvent::WarmupExpiry));
}

#[test]
fn zero_remaining_completion_clamps_to_now() {
    // 0ms remaining rounds up to a 1µs step; nothing clamps here, but a
    // window end already in the past must clamp to `now` and the event
    // fire "immediately" without the clock moving backwards.
    let now = SimTime::from_us(50);
    let got = scan_next_event(
        now,
        SimTime::from_us(10),
        &[SimTime::NEVER],
        &[f64::INFINITY],
        &[1.0],
        &[SimTime::ZERO],
    );
    assert_eq!(got, (now, ScanEvent::WindowEnd));
}
