//! Pinned end-to-end test of the event path: a 20-window 2LC+2BE run on
//! the paper machine, with mid-run load, partition and policy changes,
//! rendered to a canonical text form and compared against a golden file.
//! The pin was first generated before the memoized rate cache and
//! zero-alloc solver landed (which intentionally preserved it), and last
//! regenerated after the struct-of-arrays hot path and scheduled memory
//! bandwidth intentionally changed the per-event arithmetic.
//!
//! Any change to the per-event arithmetic, the RNG draw sequence, the
//! completion dispatch order or the rate solver shows up here as a diff.
//!
//! Regenerate (only when an *intentional* model change lands) with:
//!
//! ```text
//! GOLDEN_WRITE=1 cargo test -p ahq-sim --test event_path
//! ```

use ahq_sim::{
    AppSpec, CacheProfile, MachineConfig, NodeSim, Partition, RegionAlloc, SharingPolicy,
    WindowObservation,
};

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_run20.txt");

fn lc_spec(name: &str, mean_ms: f64, qps: f64) -> AppSpec {
    AppSpec::lc(name)
        .threads(4)
        .mean_service_ms(mean_ms)
        .service_sigma(0.6)
        .qos_threshold_ms(mean_ms * 5.0)
        .max_load_qps(qps)
        .cache(CacheProfile::balanced())
        .build()
        .expect("valid LC spec")
}

fn be_spec(name: &str, profile: CacheProfile) -> AppSpec {
    AppSpec::be(name)
        .threads(4)
        .ipc_solo(1.5)
        .cache(profile)
        .build()
        .expect("valid BE spec")
}

/// The pinned scenario: 2 LC + 2 BE on the paper machine, exercising
/// arrivals, completions, drops, repartitions (warm-up penalties), policy
/// flips and load changes — every event kind and invalidation path.
fn pinned_run() -> Vec<WindowObservation> {
    let specs = vec![
        lc_spec("lc-a", 1.0, 2000.0),
        lc_spec("lc-b", 2.0, 800.0),
        be_spec("be-a", CacheProfile::compute()),
        be_spec("be-b", CacheProfile::streaming()),
    ];
    let mut sim = NodeSim::new(MachineConfig::paper_xeon(), specs, 42).expect("valid sim");
    sim.set_load("lc-a", 0.6).expect("LC app");
    sim.set_load("lc-b", 0.3).expect("LC app");

    let mut obs = sim.run_windows(5);

    let mut p = Partition::all_shared(4);
    p.set_isolated(0.into(), RegionAlloc::new(3, 6));
    p.set_isolated(1.into(), RegionAlloc::new(2, 4));
    sim.set_partition(p).expect("valid partition");
    sim.set_policy(SharingPolicy::LcPriority);
    obs.extend(sim.run_windows(5));

    // Overload the first application: drops and queue growth.
    sim.set_load("lc-a", 1.2).expect("LC app");
    obs.extend(sim.run_windows(5));

    sim.set_partition(Partition::all_shared(4))
        .expect("valid partition");
    sim.set_policy(SharingPolicy::Fair);
    sim.set_load("lc-b", 0.0).expect("LC app");
    obs.extend(sim.run_windows(5));
    obs
}

/// Canonical, serializer-independent rendering: Rust's `{:?}` for floats
/// is the shortest round-trip form, so two runs render identically iff
/// every observed value is bit-identical.
fn render(observations: &[WindowObservation]) -> String {
    let mut out = String::new();
    for o in observations {
        out.push_str(&format!(
            "window {} [{:?}, {:?}]\n",
            o.window_index, o.start_ms, o.end_ms
        ));
        for lc in &o.lc {
            out.push_str(&format!(
                "  lc {} p95={:?} load={:?} arrivals={} completions={} drops={} backlog={} capacity={:?}\n",
                lc.name,
                lc.p95_ms,
                lc.load,
                lc.arrivals,
                lc.completions,
                lc.drops,
                lc.backlog,
                lc.mean_core_capacity,
            ));
        }
        for be in &o.be {
            out.push_str(&format!(
                "  be {} ipc={:?} solo={:?} capacity={:?}\n",
                be.name, be.ipc, be.ipc_solo, be.mean_core_capacity,
            ));
        }
    }
    out
}

#[test]
fn run20_observation_stream_is_pinned() {
    let rendered = render(&pinned_run());
    if std::env::var_os("GOLDEN_WRITE").is_some() {
        std::fs::write(GOLDEN_PATH, &rendered).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file present; regenerate with GOLDEN_WRITE=1");
    if rendered != golden {
        // Locate the first diverging line for a readable failure.
        let mut line = 0usize;
        for (a, b) in rendered.lines().zip(golden.lines()) {
            line += 1;
            assert_eq!(a, b, "observation stream diverges at line {line}");
        }
        assert_eq!(
            rendered.lines().count(),
            golden.lines().count(),
            "observation stream length changed"
        );
    }
}

#[test]
fn pinned_run_is_deterministic() {
    assert_eq!(render(&pinned_run()), render(&pinned_run()));
}
