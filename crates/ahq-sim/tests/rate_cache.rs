//! Property tests of the memoized fluid-rate cache: across randomized
//! demand/partition/policy sequences, a [`RateCache`] lookup must return
//! exactly (bit-for-bit) what a direct [`compute_rates`] call returns,
//! and a repeated lookup must be answered from memory with the same
//! bits. This is the contract that lets the node's event loop swap the
//! solver for a cache without perturbing a single observation.

use ahq_sim::{
    compute_rates, AppDemand, AppKind, BandwidthModel, CacheProfile, MachineConfig, Partition,
    RateCache, RegionAlloc, SharingPolicy,
};
use proptest::prelude::*;

fn cache_profile() -> impl Strategy<Value = CacheProfile> {
    (0.01f64..0.9, 1.0f64..12.0, 0.0f64..3.0, 0.1f64..10.0).prop_map(
        |(miss_floor, footprint_ways, intensity, bw)| CacheProfile {
            miss_floor,
            footprint_ways,
            intensity,
            bw_gbps_per_thread: bw,
        },
    )
}

proptest! {
    /// Interleave busy-vector changes, repartitions and policy flips
    /// (invalidating exactly as the node does) and check every cached
    /// answer against the solver.
    #[test]
    fn cached_rates_equal_direct_solver(
        profiles in prop::collection::vec(cache_profile(), 2..5),
        steps in prop::collection::vec((0u32..4, 0u32..16, 0u32..16, 0u32..16), 1..25),
    ) {
        let machine = MachineConfig::paper_xeon();
        let bw = BandwidthModel::new(machine.membw_gbps);
        let n = profiles.len();
        let mut demands: Vec<AppDemand> = profiles
            .iter()
            .enumerate()
            .map(|(i, p)| AppDemand {
                kind: if i % 2 == 0 { AppKind::Lc } else { AppKind::Be },
                busy: 0,
                curve: p.curve(machine.llc_ways),
                bw_per_thread: p.bw_gbps_per_thread,
            })
            .collect();
        let mut partition = Partition::all_shared(n);
        let mut policy = SharingPolicy::Fair;
        let mut cache = RateCache::new();
        let mut out = Vec::new();
        let mut epoch = cache.epoch();

        for &(op, a, b, c) in &steps {
            match op {
                // Mutate the busy-thread vector (the common event-loop case).
                0 | 1 => {
                    for (j, d) in demands.iter_mut().enumerate() {
                        d.busy = a.wrapping_add(j as u32 * b).wrapping_add(c) % 9;
                    }
                }
                // Repartition: entries were computed under the old layout.
                2 => {
                    let mut p = Partition::all_shared(n);
                    p.set_isolated(
                        (a as usize % n).into(),
                        RegionAlloc::new(b % 4, c % 8),
                    );
                    if p.validate(&machine).is_ok() {
                        partition = p;
                        cache.invalidate();
                    }
                }
                // Policy flip: also an invalidation event in the node.
                _ => {
                    policy = if a % 2 == 0 {
                        SharingPolicy::Fair
                    } else {
                        SharingPolicy::LcPriority
                    };
                    cache.invalidate();
                }
            }
            // The solver ignores warm-up (it scales speeds after the
            // solve), so any mask must leave the answer unchanged.
            let warm_mask = (a as u64) & ((1u64 << n) - 1);
            let direct = compute_rates(&machine, &partition, &demands, policy, &bw);
            cache.rates_for(&machine, &partition, &demands, warm_mask, policy, &bw, &mut out);
            prop_assert_eq!(out.as_slice(), direct.as_slice());
            // A same-key repeat must be served from memory, bit-identical.
            let hit = cache.rates_for(&machine, &partition, &demands, warm_mask, policy, &bw, &mut out);
            prop_assert!(hit, "repeated lookup missed the cache");
            prop_assert_eq!(out.as_slice(), direct.as_slice());
        }

        // Epoch only ever advances, one bump per invalidation.
        prop_assert!(cache.epoch() >= epoch);
        epoch = cache.epoch();
        let _ = epoch;
    }

    /// Hit/miss accounting: lookups = hits + misses, and distinct busy
    /// vectors under a fixed partition populate distinct entries.
    #[test]
    fn cache_accounting_is_consistent(
        profiles in prop::collection::vec(cache_profile(), 2..4),
        busy_seq in prop::collection::vec(0u32..6, 1..40),
    ) {
        let machine = MachineConfig::paper_xeon();
        let bw = BandwidthModel::new(machine.membw_gbps);
        let n = profiles.len();
        let mut demands: Vec<AppDemand> = profiles
            .iter()
            .enumerate()
            .map(|(i, p)| AppDemand {
                kind: if i % 2 == 0 { AppKind::Lc } else { AppKind::Be },
                busy: 0,
                curve: p.curve(machine.llc_ways),
                bw_per_thread: p.bw_gbps_per_thread,
            })
            .collect();
        let partition = Partition::all_shared(n);
        let mut cache = RateCache::new();
        let mut out = Vec::new();
        let mut distinct = std::collections::HashSet::new();
        for &busy in &busy_seq {
            for d in demands.iter_mut() {
                d.busy = busy;
            }
            distinct.insert(busy);
            cache.rates_for(&machine, &partition, &demands, 0, SharingPolicy::Fair, &bw, &mut out);
        }
        prop_assert_eq!(cache.hits() + cache.misses(), busy_seq.len() as u64);
        prop_assert_eq!(cache.misses(), distinct.len() as u64);
        prop_assert_eq!(cache.entries(), distinct.len());
        prop_assert!((0.0..=1.0).contains(&cache.hit_rate()));
    }
}
