use serde::{Deserialize, Serialize};

use crate::app::AppKind;
use crate::bandwidth::BandwidthModel;
use crate::cache::MissRatioCurve;
use crate::partition::Partition;
use crate::resources::MachineConfig;

/// How the shared region's cores are divided among the threads that spill
/// into it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SharingPolicy {
    /// CFS-like fair sharing: every runnable thread gets an equal slice.
    /// This is the paper's *Unmanaged* strategy.
    Fair,
    /// Strict LC priority: LC threads are served first (preempting BE), BE
    /// threads share what remains. This is the paper's *LC-first* strategy
    /// and the shared-region discipline of ARQ.
    LcPriority,
}

/// One application's instantaneous demand on the fluid contention model.
#[derive(Debug, Clone)]
pub struct AppDemand {
    /// LC or BE.
    pub kind: AppKind,
    /// Currently runnable threads: in-service requests for LC, all threads
    /// for BE.
    pub busy: u32,
    /// Miss-ratio curve (normalised against the reference machine).
    pub curve: MissRatioCurve,
    /// Bandwidth appetite per running thread at the full-cache miss ratio,
    /// GB/s.
    pub bw_per_thread: f64,
}

/// The instantaneous rates granted to one application by
/// [`compute_rates`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppRates {
    /// Fractional cores granted (isolated cores actually used plus the
    /// shared-region grant). Never exceeds `busy`.
    pub core_capacity: f64,
    /// Effective LLC ways (isolated plus pressure-weighted shared share).
    pub effective_ways: f64,
    /// Cache speed factor in `(0, 1]` (relative to the full machine).
    pub cache_factor: f64,
    /// Memory-bandwidth speed factor in `(0, 1]`.
    pub membw_factor: f64,
    /// Service progress per running thread: `min(1, capacity/busy) *
    /// cache_factor * membw_factor`. Equals `cache * membw` when idle.
    pub speed_per_thread: f64,
}

/// Mild extra conflict pressure per additional sharer of the shared LLC
/// ways: beyond the capacity split, co-runners also cause conflict misses
/// and coherence traffic.
const SHARED_WAY_CONFLICT: f64 = 0.08;

/// Reusable scratch buffers for [`compute_rates_into`]: every intermediate
/// vector of the three solver phases lives here, so a caller that keeps a
/// `RateScratch` alive pays zero heap allocations per solve after the
/// first call at a given application count.
///
/// The buffers are an implementation detail — callers only construct the
/// scratch and hand it back in; contents between calls are unspecified.
#[derive(Debug, Default)]
pub struct RateScratch {
    iso_use: Vec<f64>,
    overflow: Vec<f64>,
    grants: Vec<f64>,
    lc_overflow: Vec<f64>,
    be_overflow: Vec<f64>,
    pressures: Vec<f64>,
    effective_ways: Vec<f64>,
    cache_factors: Vec<f64>,
    capacities: Vec<f64>,
    bw_demand: Vec<f64>,
    eff_demand: Vec<f64>,
    reserved: Vec<f64>,
    unmet: Vec<f64>,
    saturations: Vec<f64>,
}

impl RateScratch {
    /// Creates an empty scratch; buffers grow to the application count on
    /// first use and are reused afterwards.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Computes every application's instantaneous resource rates under the
/// fluid contention model. Pure function of the current demands,
/// partition, policy and machine; the node calls it whenever the set of
/// busy threads or the partition changes.
///
/// Thin allocating wrapper around [`compute_rates_into`]; hot callers
/// (the node's event loop via [`crate::RateCache`]) keep a [`RateScratch`]
/// and an output buffer alive instead.
pub fn compute_rates(
    machine: &MachineConfig,
    partition: &Partition,
    demands: &[AppDemand],
    policy: SharingPolicy,
    bw: &BandwidthModel,
) -> Vec<AppRates> {
    let mut scratch = RateScratch::new();
    let mut out = Vec::with_capacity(demands.len());
    compute_rates_into(
        machine,
        partition,
        demands,
        policy,
        bw,
        &mut scratch,
        &mut out,
    );
    out
}

/// [`compute_rates`] with caller-provided buffers: all intermediate
/// vectors live in `scratch` and the result is written into `out`
/// (cleared first). The arithmetic is element-for-element identical to
/// the historical allocating implementation — reductions run in the same
/// order — so results are bit-identical.
pub fn compute_rates_into(
    machine: &MachineConfig,
    partition: &Partition,
    demands: &[AppDemand],
    policy: SharingPolicy,
    bw: &BandwidthModel,
    scratch: &mut RateScratch,
    out: &mut Vec<AppRates>,
) {
    assert_eq!(
        partition.num_apps(),
        demands.len(),
        "partition and demand vector must cover the same applications"
    );

    let shared_cores = partition.shared_cores(machine) as f64;
    let shared_ways = partition.shared_ways(machine) as f64;

    // --- Phase 1: core allocation -------------------------------------
    // Isolated cores are used up to the owner's busy thread count; the
    // spill (busy threads beyond isolated cores) competes in the shared
    // region according to the sharing policy.
    scratch.iso_use.clear();
    scratch.iso_use.extend(
        demands
            .iter()
            .enumerate()
            .map(|(i, d)| (d.busy as f64).min(partition.isolated(i.into()).cores as f64)),
    );
    let iso_use = &scratch.iso_use;
    scratch.overflow.clear();
    scratch.overflow.extend(
        demands
            .iter()
            .enumerate()
            .map(|(i, d)| (d.busy as f64 - iso_use[i]).max(0.0)),
    );

    match policy {
        SharingPolicy::Fair => grant_fairly(&scratch.overflow, shared_cores, &mut scratch.grants),
        SharingPolicy::LcPriority => grant_with_priority(
            demands,
            &scratch.overflow,
            shared_cores,
            &mut scratch.lc_overflow,
            &mut scratch.be_overflow,
            &mut scratch.grants,
        ),
    };

    // --- Phase 2: LLC way division -------------------------------------
    // Every application's CLOS covers its isolated ways plus the shared
    // ways; the shared ways are divided by footprint-weighted pressure,
    // with a mild conflict penalty per extra sharer.
    scratch.pressures.clear();
    scratch.pressures.extend(demands.iter().map(|d| {
        // Idle applications keep warm data in the cache, so they retain
        // some pressure even with zero busy threads.
        d.curve.footprint_ways() * (d.busy as f64).max(0.5)
    }));
    let total_pressure: f64 = scratch.pressures.iter().sum();
    let sharers = demands.iter().filter(|d| d.busy > 0).count().max(1);
    let conflict = 1.0 / (1.0 + SHARED_WAY_CONFLICT * (sharers as f64 - 1.0));

    let pressures = &scratch.pressures;
    scratch.effective_ways.clear();
    scratch
        .effective_ways
        .extend(demands.iter().enumerate().map(|(i, _)| {
            let iso = partition.isolated(i.into()).ways as f64;
            let share = if total_pressure > 0.0 {
                shared_ways * pressures[i] / total_pressure * conflict
            } else {
                0.0
            };
            iso + share
        }));
    let effective_ways = &scratch.effective_ways;

    // --- Phase 3: bandwidth saturation ---------------------------------
    // Each application's bandwidth is its MBA-style reservation plus a
    // demand-proportional share of the unreserved pool; its individual
    // saturation is what it was granted over what it asked for. With no
    // reservations this reduces to the global-pool model.
    scratch.cache_factors.clear();
    scratch.cache_factors.extend(
        demands
            .iter()
            .enumerate()
            .map(|(i, d)| d.curve.speed_factor(effective_ways[i])),
    );
    scratch.capacities.clear();
    scratch.capacities.extend(
        iso_use
            .iter()
            .zip(scratch.grants.iter())
            .map(|(iso, grant)| iso + grant),
    );
    let capacities = &scratch.capacities;
    scratch.bw_demand.clear();
    scratch.bw_demand.extend(
        demands.iter().enumerate().map(|(i, d)| {
            d.bw_per_thread * capacities[i] * d.curve.traffic_factor(effective_ways[i])
        }),
    );
    // MBA throttle: a throttled region may not *pull* more than its
    // level's share of peak bandwidth, so its effective demand on the
    // memory system is capped. Unthrottled levels map to an infinite cap,
    // making `min` a bit-identical no-op for legacy partitions. The
    // throttled app's own saturation (below) stays relative to its uncapped
    // appetite — the cap slows it down — while its capped demand stops
    // draining the shared pool, relieving every co-runner.
    scratch.eff_demand.clear();
    scratch.eff_demand.extend((0..demands.len()).map(|i| {
        let cap = partition.isolated(i.into()).mba.cap_fraction() * bw.capacity_gbps();
        scratch.bw_demand[i].min(cap)
    }));
    scratch.reserved.clear();
    scratch.reserved.extend(
        (0..demands.len())
            .map(|i| partition.isolated(i.into()).membw_pct as f64 / 100.0 * bw.capacity_gbps()),
    );
    let pool = partition.shared_membw_pct() as f64 / 100.0 * bw.capacity_gbps();
    scratch.unmet.clear();
    scratch.unmet.extend(
        scratch
            .eff_demand
            .iter()
            .zip(scratch.reserved.iter())
            .map(|(d, r)| (d - r).max(0.0)),
    );
    let total_unmet: f64 = scratch.unmet.iter().sum();
    let pool_fraction = if total_unmet <= pool {
        1.0
    } else {
        pool / total_unmet
    };
    let bw_demand = &scratch.bw_demand;
    let eff_demand = &scratch.eff_demand;
    let reserved = &scratch.reserved;
    let unmet = &scratch.unmet;
    scratch.saturations.clear();
    scratch.saturations.extend((0..demands.len()).map(|i| {
        if bw_demand[i] <= 1e-12 {
            return 1.0;
        }
        let granted = eff_demand[i].min(reserved[i]) + unmet[i] * pool_fraction;
        (granted / bw_demand[i]).clamp(1e-6, 1.0)
    }));

    let cache_factors = &scratch.cache_factors;
    let saturations = &scratch.saturations;
    out.clear();
    out.extend(demands.iter().enumerate().map(|(i, d)| {
        let membw_factor = BandwidthModel::memory_slowdown(
            saturations[i],
            d.curve.memory_fraction(effective_ways[i]),
        );
        let core_share = if d.busy > 0 {
            (capacities[i] / d.busy as f64).min(1.0)
        } else {
            1.0
        };
        AppRates {
            core_capacity: capacities[i],
            effective_ways: effective_ways[i],
            cache_factor: cache_factors[i],
            membw_factor,
            speed_per_thread: core_share * cache_factors[i] * membw_factor,
        }
    }));
}

/// Fair division: every overflowing thread gets the same share of the
/// shared cores, capped at one core per thread.
fn grant_fairly(overflow: &[f64], shared_cores: f64, grants: &mut Vec<f64>) {
    grants.clear();
    grants.extend_from_slice(overflow);
    proportional_in_place(grants, shared_cores);
}

/// Priority division: LC overflow is served first, BE shares the rest.
fn grant_with_priority(
    demands: &[AppDemand],
    overflow: &[f64],
    shared_cores: f64,
    lc_overflow: &mut Vec<f64>,
    be_overflow: &mut Vec<f64>,
    grants: &mut Vec<f64>,
) {
    lc_overflow.clear();
    lc_overflow.extend(demands.iter().zip(overflow.iter()).map(|(d, &o)| {
        if d.kind == AppKind::Lc {
            o
        } else {
            0.0
        }
    }));
    be_overflow.clear();
    be_overflow.extend(demands.iter().zip(overflow.iter()).map(|(d, &o)| {
        if d.kind == AppKind::Be {
            o
        } else {
            0.0
        }
    }));
    proportional_in_place(lc_overflow, shared_cores);
    let lc_used: f64 = lc_overflow.iter().sum();
    proportional_in_place(be_overflow, (shared_cores - lc_used).max(0.0));
    grants.clear();
    grants.extend(
        lc_overflow
            .iter()
            .zip(be_overflow.iter())
            .map(|(a, b)| a + b),
    );
}

/// Divides `budget` cores across per-application thread demands, scaling
/// the demand vector in place. Every thread asks for exactly one core, so
/// CFS-style equal-per-thread sharing is the same as granting each
/// application `demand * min(1, budget / total)` — no application ever
/// receives more cores than it has runnable threads.
fn proportional_in_place(demands: &mut [f64], budget: f64) {
    let total: f64 = demands.iter().sum();
    if total <= budget || total <= 0.0 {
        return;
    }
    let scale = budget / total;
    for d in demands {
        *d *= scale;
    }
}

/// Allocating form of [`proportional_in_place`], kept for the unit tests
/// that document the sharing semantics.
#[cfg(test)]
fn proportional(demands: &[f64], budget: f64) -> Vec<f64> {
    let mut v = demands.to_vec();
    proportional_in_place(&mut v, budget);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::RegionAlloc;

    fn demand(kind: AppKind, _threads: u32, busy: u32) -> AppDemand {
        AppDemand {
            kind,
            busy,
            curve: MissRatioCurve::new(0.1, 5.0, 0.8, 20),
            bw_per_thread: 1.0,
        }
    }

    fn machine() -> MachineConfig {
        MachineConfig::paper_xeon()
    }

    fn bw() -> BandwidthModel {
        BandwidthModel::new(machine().membw_gbps)
    }

    #[test]
    fn proportional_respects_demand_caps() {
        let grants = proportional(&[2.0, 4.0, 0.0], 10.0);
        assert_eq!(grants, vec![2.0, 4.0, 0.0]); // budget exceeds demand
        let grants = proportional(&[2.0, 2.0], 2.0);
        assert!((grants[0] - 1.0).abs() < 1e-9);
        assert!((grants[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn proportional_is_per_thread_fair() {
        // 6 threads share 4 cores: each thread gets 2/3 of a core.
        let grants = proportional(&[1.0, 5.0], 4.0);
        assert!((grants[0] - 2.0 / 3.0).abs() < 1e-9);
        assert!((grants[1] - 10.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn fair_sharing_splits_evenly() {
        let demands = vec![demand(AppKind::Lc, 4, 4), demand(AppKind::Be, 4, 4)];
        let p = Partition::all_shared(2);
        let rates = compute_rates(&machine(), &p, &demands, SharingPolicy::Fair, &bw());
        // 10 cores for 8 busy threads: everyone fully served.
        assert!((rates[0].core_capacity - 4.0).abs() < 1e-9);
        assert!((rates[1].core_capacity - 4.0).abs() < 1e-9);
    }

    #[test]
    fn fair_sharing_scales_down_when_oversubscribed() {
        let demands = vec![demand(AppKind::Lc, 8, 8), demand(AppKind::Be, 8, 8)];
        let m = machine().with_budget(8, 20);
        let p = Partition::all_shared(2);
        let rates = compute_rates(&m, &p, &demands, SharingPolicy::Fair, &bw());
        assert!((rates[0].core_capacity - 4.0).abs() < 1e-9);
        assert!((rates[1].core_capacity - 4.0).abs() < 1e-9);
        assert!(rates[0].speed_per_thread < rates[0].cache_factor);
    }

    #[test]
    fn lc_priority_starves_be_first() {
        let demands = vec![demand(AppKind::Lc, 8, 8), demand(AppKind::Be, 8, 8)];
        let m = machine().with_budget(8, 20);
        let p = Partition::all_shared(2);
        let rates = compute_rates(&m, &p, &demands, SharingPolicy::LcPriority, &bw());
        assert!((rates[0].core_capacity - 8.0).abs() < 1e-9);
        assert!(rates[1].core_capacity < 1e-9);
    }

    #[test]
    fn isolated_cores_are_exclusive_even_when_idle() {
        // LC app holds 4 isolated cores but is idle; BE wants 8 threads on
        // the 6 remaining shared cores: the idle isolated cores are wasted,
        // exactly the Fig. 4(b) phenomenon.
        let demands = vec![demand(AppKind::Lc, 4, 0), demand(AppKind::Be, 8, 8)];
        let mut p = Partition::all_shared(2);
        p.set_isolated(0.into(), RegionAlloc::new(4, 0));
        let rates = compute_rates(&machine(), &p, &demands, SharingPolicy::Fair, &bw());
        assert_eq!(rates[0].core_capacity, 0.0);
        assert!((rates[1].core_capacity - 6.0).abs() < 1e-9);
    }

    #[test]
    fn isolated_ways_add_to_effective_ways() {
        let demands = vec![demand(AppKind::Lc, 4, 4), demand(AppKind::Be, 4, 4)];
        let mut p = Partition::all_shared(2);
        p.set_isolated(0.into(), RegionAlloc::new(0, 10));
        let rates = compute_rates(&machine(), &p, &demands, SharingPolicy::Fair, &bw());
        assert!(rates[0].effective_ways > 10.0);
        assert!(rates[1].effective_ways < 10.0);
        // Conservation (up to the deliberate conflict penalty).
        let total = rates[0].effective_ways + rates[1].effective_ways;
        assert!(total <= 20.0 + 1e-9);
    }

    #[test]
    fn busy_app_pressures_cache_harder() {
        let demands = vec![demand(AppKind::Lc, 4, 4), demand(AppKind::Lc, 4, 1)];
        let p = Partition::all_shared(2);
        let rates = compute_rates(&machine(), &p, &demands, SharingPolicy::Fair, &bw());
        assert!(rates[0].effective_ways > rates[1].effective_ways);
    }

    #[test]
    fn bandwidth_hog_triggers_saturation() {
        let mut hog = demand(AppKind::Be, 10, 10);
        hog.bw_per_thread = 7.0;
        hog.curve = MissRatioCurve::new(0.85, 1.5, 2.2, 20);
        let victim = demand(AppKind::Lc, 4, 4);
        let p = Partition::all_shared(2);
        // A memory system sized so the hog's demand clearly exceeds it.
        let tight_bw = BandwidthModel::new(30.0);
        let rates = compute_rates(
            &machine(),
            &p,
            &[victim.clone(), hog],
            SharingPolicy::Fair,
            &tight_bw,
        );
        assert!(
            rates[0].membw_factor < 1.0,
            "victim should feel bandwidth pressure, got {}",
            rates[0].membw_factor
        );
        // Without the hog there is no pressure.
        let solo = compute_rates(
            &machine(),
            &Partition::all_shared(1),
            &[victim],
            SharingPolicy::Fair,
            &bw(),
        );
        assert!((solo[0].membw_factor - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mba_throttle_slows_hog_and_relieves_victim() {
        use crate::partition::MbaLevel;
        let mut hog = demand(AppKind::Be, 10, 10);
        hog.bw_per_thread = 7.0;
        hog.curve = MissRatioCurve::new(0.85, 1.5, 2.2, 20);
        let victim = demand(AppKind::Lc, 4, 4);
        let demands = [victim, hog];
        let tight_bw = BandwidthModel::new(30.0);
        let free = Partition::all_shared(2);
        let unthrottled =
            compute_rates(&machine(), &free, &demands, SharingPolicy::Fair, &tight_bw);
        let mut p = free.clone();
        p.set_isolated(1.into(), RegionAlloc::EMPTY.with_mba(MbaLevel::new(30)));
        let throttled = compute_rates(&machine(), &p, &demands, SharingPolicy::Fair, &tight_bw);
        assert!(
            throttled[1].membw_factor < unthrottled[1].membw_factor,
            "the throttled hog must slow down: {} !< {}",
            throttled[1].membw_factor,
            unthrottled[1].membw_factor
        );
        assert!(
            throttled[0].membw_factor > unthrottled[0].membw_factor,
            "capping the hog must relieve the victim: {} !> {}",
            throttled[0].membw_factor,
            unthrottled[0].membw_factor
        );
        // An unthrottled level is bit-identical to no throttle at all.
        let mut q = free.clone();
        q.set_isolated(1.into(), RegionAlloc::EMPTY.with_mba(MbaLevel::UNTHROTTLED));
        let same = compute_rates(&machine(), &q, &demands, SharingPolicy::Fair, &tight_bw);
        for (a, b) in unthrottled.iter().zip(same.iter()) {
            assert_eq!(a.speed_per_thread.to_bits(), b.speed_per_thread.to_bits());
            assert_eq!(a.membw_factor.to_bits(), b.membw_factor.to_bits());
        }
    }

    #[test]
    fn mba_throttle_sensitivity_tracks_memory_fraction() {
        use crate::partition::MbaLevel;
        // Two identical-load apps, one memory-bound and one cache-friendly:
        // the same throttle level must hurt the memory-bound app more,
        // because the cap acts through `memory_slowdown`'s memory fraction.
        let mut membound = demand(AppKind::Be, 4, 4);
        membound.bw_per_thread = 6.0;
        membound.curve = MissRatioCurve::new(0.9, 1.0, 2.0, 20);
        let mut cachey = demand(AppKind::Be, 4, 4);
        cachey.bw_per_thread = 6.0;
        cachey.curve = MissRatioCurve::new(0.1, 6.0, 0.5, 20);
        let level = MbaLevel::new(20);
        let mut p = Partition::all_shared(2);
        p.set_isolated(0.into(), RegionAlloc::EMPTY.with_mba(level));
        p.set_isolated(1.into(), RegionAlloc::EMPTY.with_mba(level));
        let free = Partition::all_shared(2);
        let demands = [membound, cachey];
        let base = compute_rates(&machine(), &free, &demands, SharingPolicy::Fair, &bw());
        let capped = compute_rates(&machine(), &p, &demands, SharingPolicy::Fair, &bw());
        let drop0 = capped[0].speed_per_thread / base[0].speed_per_thread;
        let drop1 = capped[1].speed_per_thread / base[1].speed_per_thread;
        assert!(
            drop0 < drop1,
            "memory-bound app must be more throttle-sensitive: {drop0} !< {drop1}"
        );
    }

    #[test]
    fn idle_app_has_neutral_thread_speed() {
        let demands = vec![demand(AppKind::Lc, 4, 0)];
        let p = Partition::all_shared(1);
        let rates = compute_rates(&machine(), &p, &demands, SharingPolicy::Fair, &bw());
        assert!(rates[0].speed_per_thread > 0.9);
    }

    #[test]
    #[should_panic(expected = "same applications")]
    fn mismatched_lengths_panic() {
        let demands = vec![demand(AppKind::Lc, 4, 4)];
        let p = Partition::all_shared(2);
        compute_rates(&machine(), &p, &demands, SharingPolicy::Fair, &bw());
    }
}
