use std::fmt;

use serde::{Deserialize, Serialize};

use crate::cache::MissRatioCurve;
use crate::error::SimError;

/// Index of an application within one simulation. Assigned in registration
/// order by [`crate::NodeSim::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AppId(usize);

impl AppId {
    /// The underlying index.
    pub fn index(&self) -> usize {
        self.0
    }
}

impl From<usize> for AppId {
    fn from(value: usize) -> Self {
        AppId(value)
    }
}

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "app#{}", self.0)
    }
}

/// Whether an application is latency-critical or best-effort.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AppKind {
    /// Latency-critical: measured by tail latency against a QoS target.
    Lc,
    /// Best-effort: measured by IPC.
    Be,
}

/// Cache and memory behaviour of an application: its miss-ratio-curve
/// parameters plus per-thread bandwidth appetite.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheProfile {
    /// Asymptotic miss ratio (compulsory misses), `[0, 1]`.
    pub miss_floor: f64,
    /// Working-set knee in LLC ways.
    pub footprint_ways: f64,
    /// Memory intensity: how strongly misses inflate CPI.
    pub intensity: f64,
    /// Bandwidth drawn per active thread at the full-cache miss ratio, GB/s.
    pub bw_gbps_per_thread: f64,
}

impl CacheProfile {
    /// A balanced server application: moderate footprint, moderate
    /// memory intensity.
    pub fn balanced() -> Self {
        CacheProfile {
            miss_floor: 0.10,
            footprint_ways: 5.0,
            intensity: 0.8,
            bw_gbps_per_thread: 1.5,
        }
    }

    /// A cache-hungry application (large working set, hurt badly by losing
    /// ways).
    pub fn cache_hungry() -> Self {
        CacheProfile {
            miss_floor: 0.05,
            footprint_ways: 9.0,
            intensity: 1.4,
            bw_gbps_per_thread: 2.0,
        }
    }

    /// A compute-bound application that barely notices the cache.
    pub fn compute() -> Self {
        CacheProfile {
            miss_floor: 0.05,
            footprint_ways: 2.0,
            intensity: 0.25,
            bw_gbps_per_thread: 0.6,
        }
    }

    /// A streaming application: the cache cannot hold its working set
    /// (STREAM-like); extremely bandwidth hungry.
    pub fn streaming() -> Self {
        CacheProfile {
            miss_floor: 0.85,
            footprint_ways: 1.5,
            intensity: 2.2,
            bw_gbps_per_thread: 7.0,
        }
    }

    /// A small-footprint latency application (in-memory KV store style).
    pub fn small_footprint() -> Self {
        CacheProfile {
            miss_floor: 0.12,
            footprint_ways: 3.0,
            intensity: 0.6,
            bw_gbps_per_thread: 1.0,
        }
    }

    /// Builds the miss-ratio curve normalised against `full_ways`.
    pub fn curve(&self, full_ways: u32) -> MissRatioCurve {
        MissRatioCurve::new(
            self.miss_floor,
            self.footprint_ways,
            self.intensity,
            full_ways,
        )
    }
}

/// Latency-critical behavioural parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct LcParams {
    /// Mean per-request service demand at full speed, milliseconds of one
    /// core's time.
    pub mean_service_ms: f64,
    /// Log-normal sigma of the service demand.
    pub sigma: f64,
    /// QoS threshold `M_i` in milliseconds.
    pub qos_threshold_ms: f64,
    /// Nominal maximum load in QPS (Table IV); experiments express load as
    /// a fraction of this.
    pub max_load_qps: f64,
    /// Maximum outstanding requests (in service + queued). Tailbench-style
    /// load generators are finitely concurrent, so the backlog an
    /// overloaded service can build is bounded; further arrivals are
    /// dropped. `None` derives a default from the max load.
    pub max_outstanding: Option<u32>,
}

/// Best-effort behavioural parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct BeParams {
    /// Aggregate IPC when running alone on the full machine.
    pub ipc_solo: f64,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) enum KindParams {
    Lc(LcParams),
    Be(BeParams),
}

/// Full static description of one application in the simulation.
///
/// Construct via the builders: [`AppSpec::lc`] for latency-critical
/// applications, [`AppSpec::be`] for best-effort ones.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppSpec {
    name: String,
    threads: u32,
    cache: CacheProfile,
    pub(crate) params: KindParams,
}

impl AppSpec {
    /// Starts building a latency-critical application.
    pub fn lc(name: impl Into<String>) -> LcSpecBuilder {
        LcSpecBuilder {
            name: name.into(),
            threads: 4,
            cache: CacheProfile::balanced(),
            mean_service_ms: 1.0,
            sigma: 0.6,
            qos_threshold_ms: 5.0,
            max_load_qps: 1000.0,
            max_outstanding: None,
        }
    }

    /// Starts building a best-effort application.
    pub fn be(name: impl Into<String>) -> BeSpecBuilder {
        BeSpecBuilder {
            name: name.into(),
            threads: 4,
            cache: CacheProfile::balanced(),
            ipc_solo: 1.0,
        }
    }

    /// The application's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Latency-critical or best-effort.
    pub fn kind(&self) -> AppKind {
        match self.params {
            KindParams::Lc(_) => AppKind::Lc,
            KindParams::Be(_) => AppKind::Be,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> u32 {
        self.threads
    }

    /// Cache/memory behaviour.
    pub fn cache_profile(&self) -> &CacheProfile {
        &self.cache
    }

    /// QoS threshold `M_i` in milliseconds. `None` for BE applications.
    pub fn qos_threshold_ms(&self) -> Option<f64> {
        match &self.params {
            KindParams::Lc(p) => Some(p.qos_threshold_ms),
            KindParams::Be(_) => None,
        }
    }

    /// Nominal maximum load in QPS. `None` for BE applications.
    pub fn max_load_qps(&self) -> Option<f64> {
        match &self.params {
            KindParams::Lc(p) => Some(p.max_load_qps),
            KindParams::Be(_) => None,
        }
    }

    /// Mean per-request service demand in core-milliseconds. `None` for BE
    /// applications.
    pub fn mean_service_ms(&self) -> Option<f64> {
        match &self.params {
            KindParams::Lc(p) => Some(p.mean_service_ms),
            KindParams::Be(_) => None,
        }
    }

    /// The maximum outstanding requests for an LC application: the
    /// configured cap, or a default of `max(32, 40 ms worth of max-load
    /// arrivals)` — roughly a Tailbench client pool. `None` for BE
    /// applications.
    pub fn max_outstanding(&self) -> Option<u32> {
        match &self.params {
            KindParams::Lc(p) => Some(
                p.max_outstanding
                    .unwrap_or(((p.max_load_qps * 0.04) as u32).max(32)),
            ),
            KindParams::Be(_) => None,
        }
    }

    /// Solo IPC. `None` for LC applications.
    pub fn ipc_solo(&self) -> Option<f64> {
        match &self.params {
            KindParams::Lc(_) => None,
            KindParams::Be(p) => Some(p.ipc_solo),
        }
    }

    /// The ideal (interference-free) p95 tail latency `TL_i0` in
    /// milliseconds: the analytic p95 of the service-demand distribution,
    /// i.e. the latency a request sees on an idle, fully provisioned node.
    /// `None` for BE applications.
    pub fn ideal_tail_ms(&self) -> Option<f64> {
        match &self.params {
            KindParams::Lc(p) => {
                Some(p.mean_service_ms * (1.645 * p.sigma - p.sigma * p.sigma / 2.0).exp())
            }
            KindParams::Be(_) => None,
        }
    }

    /// Returns a copy with the thread count replaced — Fig. 7 runs the LC
    /// applications with as many threads as cores under test.
    pub fn with_threads(mut self, threads: u32) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Returns a copy with the name replaced — the cluster layer stamps
    /// profile instances with unique names (`xapian#17`) so one node can
    /// host several instances of the same calibrated profile.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}

/// Builder for latency-critical [`AppSpec`]s. See [`AppSpec::lc`].
#[derive(Debug, Clone)]
pub struct LcSpecBuilder {
    name: String,
    threads: u32,
    cache: CacheProfile,
    mean_service_ms: f64,
    sigma: f64,
    qos_threshold_ms: f64,
    max_load_qps: f64,
    max_outstanding: Option<u32>,
}

impl LcSpecBuilder {
    /// Sets the worker-thread count (paper default: 4).
    pub fn threads(mut self, threads: u32) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the cache/memory behaviour.
    pub fn cache(mut self, cache: CacheProfile) -> Self {
        self.cache = cache;
        self
    }

    /// Sets the mean per-request service demand (core-milliseconds at full
    /// speed).
    pub fn mean_service_ms(mut self, ms: f64) -> Self {
        self.mean_service_ms = ms;
        self
    }

    /// Sets the log-normal sigma of the service demand (request-size
    /// variability; larger values fatten the latency tail).
    pub fn service_sigma(mut self, sigma: f64) -> Self {
        self.sigma = sigma;
        self
    }

    /// Sets the QoS threshold `M_i` in milliseconds.
    pub fn qos_threshold_ms(mut self, ms: f64) -> Self {
        self.qos_threshold_ms = ms;
        self
    }

    /// Sets the nominal maximum load in QPS; experiment load fractions are
    /// relative to this.
    pub fn max_load_qps(mut self, qps: f64) -> Self {
        self.max_load_qps = qps;
        self
    }

    /// Caps the outstanding requests (in service + queued); arrivals beyond
    /// the cap are dropped, modelling a finitely concurrent client.
    pub fn max_outstanding(mut self, cap: u32) -> Self {
        self.max_outstanding = Some(cap);
        self
    }

    /// Validates and builds the spec.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when a parameter is
    /// non-positive/non-finite, or when the QoS threshold does not exceed
    /// the ideal tail latency implied by the service distribution
    /// (the entropy theory requires `TL_i0 < M_i`).
    pub fn build(self) -> Result<AppSpec, SimError> {
        check_positive("threads", self.threads as f64)?;
        check_positive("mean_service_ms", self.mean_service_ms)?;
        check_positive("qos_threshold_ms", self.qos_threshold_ms)?;
        check_positive("max_load_qps", self.max_load_qps)?;
        if !self.sigma.is_finite() || self.sigma < 0.0 {
            return Err(SimError::InvalidConfig {
                what: "service_sigma",
                reason: format!("must be finite and non-negative, got {}", self.sigma),
            });
        }
        let spec = AppSpec {
            name: self.name,
            threads: self.threads,
            cache: self.cache,
            params: KindParams::Lc(LcParams {
                mean_service_ms: self.mean_service_ms,
                sigma: self.sigma,
                qos_threshold_ms: self.qos_threshold_ms,
                max_load_qps: self.max_load_qps,
                max_outstanding: self.max_outstanding,
            }),
        };
        let ideal = spec.ideal_tail_ms().expect("LC spec has an ideal tail");
        if ideal >= self.qos_threshold_ms {
            return Err(SimError::InvalidConfig {
                what: "qos_threshold_ms",
                reason: format!(
                    "threshold {} must exceed the ideal tail latency {ideal:.3} implied by \
                     the service distribution",
                    self.qos_threshold_ms
                ),
            });
        }
        Ok(spec)
    }
}

/// Builder for best-effort [`AppSpec`]s. See [`AppSpec::be`].
#[derive(Debug, Clone)]
pub struct BeSpecBuilder {
    name: String,
    threads: u32,
    cache: CacheProfile,
    ipc_solo: f64,
}

impl BeSpecBuilder {
    /// Sets the worker-thread count.
    pub fn threads(mut self, threads: u32) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the cache/memory behaviour.
    pub fn cache(mut self, cache: CacheProfile) -> Self {
        self.cache = cache;
        self
    }

    /// Sets the aggregate IPC measured when running alone on the full
    /// machine.
    pub fn ipc_solo(mut self, ipc: f64) -> Self {
        self.ipc_solo = ipc;
        self
    }

    /// Validates and builds the spec.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the thread count or the
    /// solo IPC is non-positive or non-finite.
    pub fn build(self) -> Result<AppSpec, SimError> {
        check_positive("threads", self.threads as f64)?;
        check_positive("ipc_solo", self.ipc_solo)?;
        Ok(AppSpec {
            name: self.name,
            threads: self.threads,
            cache: self.cache,
            params: KindParams::Be(BeParams {
                ipc_solo: self.ipc_solo,
            }),
        })
    }
}

fn check_positive(what: &'static str, value: f64) -> Result<(), SimError> {
    if value.is_finite() && value > 0.0 {
        Ok(())
    } else {
        Err(SimError::InvalidConfig {
            what,
            reason: format!("must be positive and finite, got {value}"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lc() -> AppSpec {
        AppSpec::lc("xapian")
            .threads(4)
            .mean_service_ms(1.0)
            .service_sigma(0.8)
            .qos_threshold_ms(4.22)
            .max_load_qps(3400.0)
            .cache(CacheProfile::balanced())
            .build()
            .unwrap()
    }

    #[test]
    fn lc_builder_round_trips() {
        let spec = lc();
        assert_eq!(spec.name(), "xapian");
        assert_eq!(spec.kind(), AppKind::Lc);
        assert_eq!(spec.threads(), 4);
        assert_eq!(spec.qos_threshold_ms(), Some(4.22));
        assert_eq!(spec.max_load_qps(), Some(3400.0));
        assert_eq!(spec.ipc_solo(), None);
    }

    #[test]
    fn ideal_tail_is_analytic_lognormal_p95() {
        let spec = lc();
        // mean 1.0, sigma 0.8: p95 = exp(1.645*0.8 - 0.32) = e^0.996.
        let expected = (1.645f64 * 0.8 - 0.32).exp();
        assert!((spec.ideal_tail_ms().unwrap() - expected).abs() < 1e-12);
        assert!(spec.ideal_tail_ms().unwrap() < spec.qos_threshold_ms().unwrap());
    }

    #[test]
    fn qos_must_exceed_ideal_tail() {
        let err = AppSpec::lc("tight")
            .mean_service_ms(2.0)
            .service_sigma(0.8)
            .qos_threshold_ms(2.0) // below the ~5.4ms ideal tail
            .build();
        assert!(matches!(err, Err(SimError::InvalidConfig { .. })));
    }

    #[test]
    fn be_builder_round_trips() {
        let spec = AppSpec::be("stream")
            .threads(10)
            .ipc_solo(0.9)
            .cache(CacheProfile::streaming())
            .build()
            .unwrap();
        assert_eq!(spec.kind(), AppKind::Be);
        assert_eq!(spec.threads(), 10);
        assert_eq!(spec.ipc_solo(), Some(0.9));
        assert_eq!(spec.qos_threshold_ms(), None);
        assert_eq!(spec.ideal_tail_ms(), None);
    }

    #[test]
    fn builders_validate_inputs() {
        assert!(AppSpec::lc("x").mean_service_ms(0.0).build().is_err());
        assert!(AppSpec::lc("x").max_load_qps(-1.0).build().is_err());
        assert!(AppSpec::lc("x").service_sigma(f64::NAN).build().is_err());
        assert!(AppSpec::be("x").ipc_solo(0.0).build().is_err());
        assert!(AppSpec::be("x").threads(0).build().is_err());
    }

    #[test]
    fn with_threads_overrides() {
        let spec = lc().with_threads(8);
        assert_eq!(spec.threads(), 8);
        assert_eq!(lc().with_threads(0).threads(), 1);
    }

    #[test]
    fn with_name_overrides_only_the_name() {
        let spec = lc().with_name("xapian#3");
        assert_eq!(spec.name(), "xapian#3");
        assert_eq!(spec.kind(), AppKind::Lc);
        assert_eq!(spec.qos_threshold_ms(), lc().qos_threshold_ms());
    }

    #[test]
    fn cache_presets_are_distinct() {
        let presets = [
            CacheProfile::balanced(),
            CacheProfile::cache_hungry(),
            CacheProfile::compute(),
            CacheProfile::streaming(),
            CacheProfile::small_footprint(),
        ];
        for (i, a) in presets.iter().enumerate() {
            for b in presets.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
        // Streaming is the bandwidth hog of the set.
        assert!(
            CacheProfile::streaming().bw_gbps_per_thread
                > CacheProfile::cache_hungry().bw_gbps_per_thread
        );
    }

    #[test]
    fn app_id_display_and_index() {
        let id: AppId = 3.into();
        assert_eq!(id.index(), 3);
        assert_eq!(id.to_string(), "app#3");
    }
}
