//! # ahq-sim — a datacenter-node simulator for interference studies
//!
//! The Ah-Q paper evaluates its system-entropy theory and the ARQ scheduler
//! on a real 10-core Xeon with Intel CAT. This crate is the substitute
//! substrate for that testbed: a deterministic, discrete-event simulator of
//! one datacenter node with three contended resource dimensions —
//! **processor cores**, **LLC ways** (CAT-style) and **memory bandwidth** —
//! exposing exactly the observation/actuation surface the paper's
//! schedulers use:
//!
//! * *observe*, once per monitoring window (500 ms by default): the p95
//!   tail latency of every latency-critical (LC) application and the IPC of
//!   every best-effort (BE) application;
//! * *actuate*: repartition cores and LLC ways between per-application
//!   isolated regions and one shared region.
//!
//! ## Model
//!
//! LC applications are simulated at request granularity: open-loop Poisson
//! arrivals, log-normally distributed service demands, FCFS admission into
//! at most `threads` in-service slots, processor-sharing of the cores the
//! application can reach. BE applications are fluid: their IPC integrates
//! the same per-window speed factors. Speed factors combine
//!
//! * **core share** — isolated cores are exclusive; the shared region is
//!   divided either fairly (CFS-like) or with strict LC priority,
//! * **cache factor** — a per-application miss-ratio curve over its
//!   *effective* ways (isolated ways plus a pressure-weighted share of the
//!   shared ways) feeding a CPI model,
//! * **bandwidth factor** — when aggregate demand exceeds the node's
//!   memory bandwidth, each application's memory-bound fraction stalls
//!   proportionally.
//!
//! Repartitioning is not free: applications whose allocation changed run
//! with a degraded cache factor for a warm-up period, which is what makes
//! "ping-ponging" strategies visibly costly, as in the paper.
//!
//! ## Quick example
//!
//! ```
//! use ahq_sim::{AppSpec, CacheProfile, MachineConfig, NodeSim, Partition};
//!
//! # fn main() -> Result<(), ahq_sim::SimError> {
//! let machine = MachineConfig::paper_xeon();
//! let lc = AppSpec::lc("toy-lc")
//!     .threads(4)
//!     .mean_service_ms(1.0)
//!     .service_sigma(0.6)
//!     .qos_threshold_ms(4.0)
//!     .max_load_qps(2000.0)
//!     .cache(CacheProfile::balanced())
//!     .build()?;
//! let be = AppSpec::be("toy-be")
//!     .threads(4)
//!     .ipc_solo(1.5)
//!     .cache(CacheProfile::streaming())
//!     .build()?;
//!
//! let mut sim = NodeSim::new(machine, vec![lc, be], 42)?;
//! sim.set_load("toy-lc", 0.5)?;
//! let obs = sim.run_window();
//! assert_eq!(obs.lc.len(), 1);
//! assert_eq!(obs.be.len(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod app;
mod bandwidth;
mod cache;
mod contention;
mod error;
mod jsonio;
mod node;
mod observation;
mod partition;
mod quantile;
mod resources;
pub mod spacetime;
mod surrogate;
mod time;
mod trace;

pub use app::{AppId, AppKind, AppSpec, BeSpecBuilder, CacheProfile, LcSpecBuilder};
pub use bandwidth::BandwidthModel;
pub use cache::MissRatioCurve;
pub use contention::{
    compute_rates, compute_rates_into, AppDemand, AppRates, RateScratch, SharingPolicy,
};
pub use error::SimError;
pub use node::{scan_next_event, NodeSim, OverheadModel, RateCache, ScanEvent, SimPerfStats};
pub use observation::{BeWindowStats, LcWindowStats, WindowObservation};
pub use partition::{MbaLevel, Partition, PartitionDimension, RegionAlloc};
pub use quantile::{percentile, percentile_in_place, TailEstimator};
pub use resources::MachineConfig;
pub use surrogate::{BeCalibration, LcCalibration, SteadyCalibration, Surrogate};
pub use time::SimTime;
pub use trace::{HistogramSummary, LatencyHistogram};
