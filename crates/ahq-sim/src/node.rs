use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Exp, LogNormal};
use serde::{Deserialize, Serialize};

use crate::app::{AppId, AppKind, AppSpec, KindParams};
use crate::bandwidth::BandwidthModel;
use crate::cache::MissRatioCurve;
use crate::contention::{
    compute_rates, compute_rates_into, AppDemand, AppRates, RateScratch, SharingPolicy,
};
use crate::error::SimError;
use crate::observation::{BeWindowStats, LcWindowStats, WindowObservation};
use crate::partition::Partition;
use crate::quantile::{percentile_in_place, TailEstimator};
use crate::resources::MachineConfig;
use crate::time::SimTime;
use crate::trace::LatencyHistogram;

/// Costs charged when the scheduler repartitions resources: every
/// application whose allocation changed runs with a degraded speed factor
/// for a warm-up period (cache refill, thread migration, context switches).
///
/// This is what makes "ping-ponging" strategies visibly expensive in the
/// simulation, mirroring the overhead discussion in §IV-D of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverheadModel {
    /// How long the degradation lasts after a reallocation (ms).
    pub warmup_ms: f64,
    /// Speed multiplier applied during warm-up, in `(0, 1]`.
    pub warmup_penalty: f64,
}

impl Default for OverheadModel {
    fn default() -> Self {
        OverheadModel {
            warmup_ms: 50.0,
            warmup_penalty: 0.85,
        }
    }
}

/// One outstanding request of an LC application.
#[derive(Debug, Clone, Copy)]
struct Request {
    arrival: SimTime,
    /// Remaining service demand in core-milliseconds at speed 1.
    remaining_ms: f64,
}

/// A request counts as complete when this much work (core-ms) remains —
/// absorbs the float dust left by the subtract-and-clamp in `advance`.
const COMPLETION_EPS_MS: f64 = 1e-9;

/// Slab storage for every LC application's in-service requests: one
/// contiguous allocation partitioned into fixed per-application slabs
/// (capacity = the application's thread count), replacing one `Vec` per
/// application. Push and swap-remove reproduce `Vec` semantics exactly —
/// order matters, because completion order feeds the order-sensitive
/// [`TailEstimator`] ring.
#[derive(Debug)]
struct RequestArena {
    slots: Vec<Request>,
    offset: Vec<usize>,
    cap: Vec<usize>,
    len: Vec<usize>,
}

impl RequestArena {
    fn new(caps: &[usize]) -> Self {
        let mut offset = Vec::with_capacity(caps.len());
        let mut total = 0usize;
        for &c in caps {
            offset.push(total);
            total += c;
        }
        RequestArena {
            slots: vec![
                Request {
                    arrival: SimTime::ZERO,
                    remaining_ms: 0.0,
                };
                total
            ],
            offset,
            cap: caps.to_vec(),
            len: vec![0; caps.len()],
        }
    }

    fn len(&self, i: usize) -> usize {
        self.len[i]
    }

    fn cap(&self, i: usize) -> usize {
        self.cap[i]
    }

    fn slab(&self, i: usize) -> &[Request] {
        &self.slots[self.offset[i]..self.offset[i] + self.len[i]]
    }

    fn slab_mut(&mut self, i: usize) -> &mut [Request] {
        &mut self.slots[self.offset[i]..self.offset[i] + self.len[i]]
    }

    fn push(&mut self, i: usize, req: Request) {
        debug_assert!(self.len[i] < self.cap[i], "slab overflow for app {i}");
        self.slots[self.offset[i] + self.len[i]] = req;
        self.len[i] += 1;
    }

    /// Removes slot `j` of app `i` by moving the last slot into its place
    /// — element-for-element what `Vec::swap_remove` does.
    fn swap_remove(&mut self, i: usize, j: usize) -> Request {
        let o = self.offset[i];
        let last = self.len[i] - 1;
        let removed = self.slots[o + j];
        self.slots[o + j] = self.slots[o + last];
        self.len[i] = last;
        removed
    }

    /// Fold-min over the slab, `f64::INFINITY` when empty — the same fold
    /// the old per-app `refresh_min_remaining` ran.
    fn min_remaining(&self, i: usize) -> f64 {
        self.slab(i)
            .iter()
            .map(|r| r.remaining_ms)
            .fold(f64::INFINITY, f64::min)
    }
}

#[derive(Debug)]
struct LcState {
    queue: VecDeque<Request>,
    /// Arrival rate in requests per millisecond; zero means no load.
    lambda_per_ms: f64,
    /// Offered load as a fraction of the nominal max load.
    load_fraction: f64,
    /// The inter-arrival distribution for the current `lambda_per_ms`,
    /// built once per `set_load` instead of once per arrival. `None`
    /// while the application is silenced.
    inter_arrival: Option<Exp<f64>>,
    service: LogNormal<f64>,
    tail: TailEstimator,
    window_samples: Vec<f64>,
    window_arrivals: u64,
    window_completions: u64,
    window_drops: u64,
    max_outstanding: usize,
}

#[derive(Debug)]
struct BeState {
    /// The per-thread speed factor the application achieves alone on the
    /// reference machine — used to normalise reported IPC.
    solo_speed: f64,
}

#[derive(Debug)]
struct AppRuntime {
    spec: AppSpec,
    curve: MissRatioCurve,
    lc: Option<LcState>,
    be: Option<BeState>,
}

/// The per-application state the event loop touches on *every* event, in
/// struct-of-arrays layout: `next_event`'s scan and `advance`'s
/// integration walk parallel contiguous slices instead of chasing
/// `Option`s through an enum-per-app layout. The encodings make the scans
/// branch-free:
///
/// * `min_remaining_ms` is `f64::INFINITY` for BE applications and idle
///   LC applications, so "has a pending completion" is a float compare;
/// * `next_arrival` is [`SimTime::NEVER`] for BE applications, so the
///   arrival comparison needs no kind check;
/// * `be_threads` is `0.0` for LC applications, so the BE speed integral
///   accumulates an exact `0.0` for them instead of branching.
#[derive(Debug)]
struct HotState {
    /// Exact minimum of in-service remaining work (core-ms); INFINITY
    /// when nothing is in service. Maintained with the same
    /// subtract-and-clamp arithmetic as the requests themselves, so it
    /// stays bit-identical to a fresh scan over the slab.
    min_remaining_ms: Vec<f64>,
    next_arrival: Vec<SimTime>,
    warmup_until: Vec<SimTime>,
    /// Cached per-thread speed *including* the warm-up penalty; refreshed
    /// by `recompute_rates`, which runs whenever anything the speed
    /// depends on changes (see `next_warm_expiry`).
    speed: Vec<f64>,
    /// Cached `core_capacity` of the current rate vector.
    capacity: Vec<f64>,
    /// Thread count as f64 for BE applications, 0.0 otherwise.
    be_threads: Vec<f64>,
    /// Busy-thread count for non-LC applications (LC busy counts live in
    /// the arena lengths).
    static_busy: Vec<u32>,
    is_lc: Vec<bool>,
    /// ∫ core_capacity dt over the current window, core-ms.
    window_capacity_integral: Vec<f64>,
    /// ∫ speed · threads dt over the current window for BE apps, thread-ms.
    window_speed_integral: Vec<f64>,
}

/// Minimum samples in the current window before the per-window percentile
/// is preferred over the streaming ring estimate.
const WINDOW_P95_MIN_SAMPLES: usize = 50;

/// Entry cap of the [`RateCache`] maps — a defensive bound far above any
/// reachable key population (busy counts are bounded by per-application
/// thread counts); the maps are dropped wholesale if it is ever hit.
const RATE_CACHE_MAX_ENTRIES: usize = 1 << 16;

/// The multiplier of the FxHash-style mixing step — the same constant the
/// rustc hasher uses (a 64-bit truncation of π's digits).
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A minimal FxHash-style hasher: one rotate-xor-multiply per word. Not
/// collision-resistant against adversaries — which is fine for the rate
/// cache, whose keys are tiny simulator-internal states — and an order of
/// magnitude cheaper than the default SipHash on the per-event lookup.
#[derive(Debug, Default, Clone)]
struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_ne_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_ne_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A memoizing front-end to the fluid contention solver
/// ([`compute_rates`]): between repartitions the busy-thread vector
/// cycles through a handful of values, so almost every solver call can be
/// answered by copying a previously computed rate vector.
///
/// The lookup key is the busy-thread count of every application combined
/// with its warm-up-active flag, plus the sharing policy; the machine,
/// partition, miss-ratio curves and bandwidth model are *not* part of the
/// key — the owner must call [`RateCache::invalidate`] whenever any of
/// those change (the node does so in `set_partition`/`set_policy`, which
/// also advances the partition epoch).
///
/// After [`RateCache::set_layout`] declares each application's maximum
/// busy count, keys whose bit widths fit are packed into a single `u64`
/// (policy bit, one warm bit per app, then each busy count in its own bit
/// field) and probed in an FxHash-keyed map: the hot-path lookup hashes
/// one machine word instead of SipHashing a heap `Vec<u32>`. Keys that do
/// not fit — more than ~60 busy bits, or no layout declared — fall back
/// to the original `Vec<u32>` key, also Fx-hashed. Both paths perform
/// zero heap allocations on a hit.
///
/// The warm-up flag is included defensively: the solver's output does not
/// currently depend on it (warm-up scales thread speed *after* the
/// solve), so including it only splits entries, never falsifies them —
/// and it keeps the cache correct if warm-up ever moves into the solver.
#[derive(Debug, Default)]
pub struct RateCache {
    packed: HashMap<u64, Vec<AppRates>, FxBuildHasher>,
    wide: HashMap<Vec<u32>, Vec<AppRates>, FxBuildHasher>,
    key: Vec<u32>,
    /// Bit width of each application's busy field in the packed key.
    bits: Vec<u32>,
    packable: bool,
    scratch: RateScratch,
    epoch: u64,
    hits: u64,
    misses: u64,
}

impl RateCache {
    /// Creates an empty cache at epoch zero. Until [`RateCache::
    /// set_layout`] is called, every lookup uses the wide-key path.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares each application's maximum busy-thread count so lookup
    /// keys can be packed into a single `u64` when the per-app bit widths
    /// fit alongside the policy and warm bits. Safe to call repeatedly; a
    /// layout change drops previously packed entries.
    pub fn set_layout(&mut self, max_busy: &[u32]) {
        let bits: Vec<u32> = max_busy.iter().map(|&t| 32 - t.leading_zeros()).collect();
        let total: u32 = 1 + max_busy.len() as u32 + bits.iter().sum::<u32>();
        let packable = total <= 64 && max_busy.len() <= 63;
        if bits != self.bits || packable != self.packable {
            self.packed.clear();
            self.bits = bits;
            self.packable = packable;
        }
    }

    /// The partition epoch: how many times the cache has been invalidated
    /// (the node bumps it on every accepted repartition or policy
    /// change).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Lookups answered from memory.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that ran the solver.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Fraction of lookups answered from memory, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Number of distinct rate vectors currently memoized (both key
    /// representations).
    pub fn entries(&self) -> usize {
        self.packed.len() + self.wide.len()
    }

    /// Drops every memoized entry and advances the epoch. Must be called
    /// whenever the machine, partition, curves or bandwidth model change;
    /// hit/miss counters survive.
    pub fn invalidate(&mut self) {
        self.packed.clear();
        self.wide.clear();
        self.epoch += 1;
    }

    /// Packs a busy-count sequence into the single-`u64` key of the
    /// declared layout: the policy bit, one warm bit per application,
    /// then each busy count in its own bit field. Returns `None` when no
    /// packable layout is declared, `count` does not match it, or a busy
    /// count overflows its field (a caller exceeding the layout it set).
    ///
    /// Exposed so the node can key its own derived-state memo by the
    /// exact same value that indexes this cache.
    #[inline(always)]
    pub fn pack_scan_key<I: IntoIterator<Item = u32>>(
        &self,
        busy: I,
        count: usize,
        warm_mask: u64,
        policy: SharingPolicy,
    ) -> Option<u64> {
        if !self.packable || count != self.bits.len() {
            return None;
        }
        let mut key: u64 = match policy {
            SharingPolicy::Fair => 0,
            SharingPolicy::LcPriority => 1,
        };
        let n = count as u32;
        key |= (warm_mask & ((1u64 << n) - 1)) << 1;
        let mut shift = 1 + n;
        let mut overflow = 0u64;
        for (v, &b) in busy.into_iter().zip(self.bits.iter()) {
            // `busy >> b` is non-zero exactly when the count does not fit
            // in its field (with b = 0 that is any non-zero count).
            overflow |= (v as u64) >> b;
            if b > 0 {
                key |= (v as u64) << shift;
                shift += b;
            }
        }
        (overflow == 0).then_some(key)
    }

    /// The declared packed layout: per-application busy-field bit widths,
    /// `None` when keys do not fit in a `u64`. Lets the node derive the
    /// field positions for its incrementally maintained scan key from the
    /// exact same layout this cache packs with.
    fn layout(&self) -> Option<&[u32]> {
        self.packable.then_some(self.bits.as_slice())
    }

    /// [`RateCache::pack_scan_key`] over a demand vector.
    #[inline]
    fn pack_key(
        &self,
        demands: &[AppDemand],
        warm_mask: u64,
        policy: SharingPolicy,
    ) -> Option<u64> {
        self.pack_scan_key(
            demands.iter().map(|d| d.busy),
            demands.len(),
            warm_mask,
            policy,
        )
    }

    /// Computes (or recalls) the rate vector for `demands` under the
    /// current partition epoch, writing it into `out` (cleared first).
    /// Bit `i` of `warm_mask` marks application `i` as inside its warm-up
    /// window (applications past index 63 share the last bit — harmless,
    /// see the type docs). Returns `true` on a cache hit.
    #[allow(clippy::too_many_arguments)]
    pub fn rates_for(
        &mut self,
        machine: &MachineConfig,
        partition: &Partition,
        demands: &[AppDemand],
        warm_mask: u64,
        policy: SharingPolicy,
        bw: &BandwidthModel,
        out: &mut Vec<AppRates>,
    ) -> bool {
        if self.packable && demands.len() == self.bits.len() {
            if let Some(key) = self.pack_key(demands, warm_mask, policy) {
                if let Some(cached) = self.packed.get(&key) {
                    self.hits += 1;
                    out.clear();
                    out.extend_from_slice(cached);
                    return true;
                }
                self.misses += 1;
                compute_rates_into(
                    machine,
                    partition,
                    demands,
                    policy,
                    bw,
                    &mut self.scratch,
                    out,
                );
                if self.entries() >= RATE_CACHE_MAX_ENTRIES {
                    self.packed.clear();
                    self.wide.clear();
                }
                self.packed.insert(key, out.clone());
                return false;
            }
        }
        self.key.clear();
        self.key.push(match policy {
            SharingPolicy::Fair => 0,
            SharingPolicy::LcPriority => 1,
        });
        self.key.push(warm_mask as u32);
        self.key.push((warm_mask >> 32) as u32);
        self.key.extend(demands.iter().map(|d| d.busy));
        if let Some(cached) = self.wide.get(self.key.as_slice()) {
            self.hits += 1;
            out.clear();
            out.extend_from_slice(cached);
            return true;
        }
        self.misses += 1;
        compute_rates_into(
            machine,
            partition,
            demands,
            policy,
            bw,
            &mut self.scratch,
            out,
        );
        if self.entries() >= RATE_CACHE_MAX_ENTRIES {
            self.packed.clear();
            self.wide.clear();
        }
        self.wide.insert(self.key.clone(), out.clone());
        false
    }
}

/// Entry bound of the [`DerivedCache`]: the reachable key population is
/// the busy-count cross product actually visited between repartitions
/// (tens of keys), so hitting this bound means something degenerate is
/// going on and the memo is dropped wholesale.
const DERIVED_CACHE_MAX_ENTRIES: usize = 4096;

/// An open-addressed memo of the *derived* per-application rate state —
/// the post-warm-up-penalty thread speeds and core capacities — keyed by
/// the same packed `u64` the [`RateCache`] uses.
///
/// The rate cache answers "what did the fluid solver say for this busy
/// vector"; on top of that the event loop still pays, per lookup, the
/// `HashMap` probe, the `AppRates` vector copy, and the penalty-scaling
/// pass. Between repartitions the busy vector cycles through a handful
/// of values, so those derived speeds are themselves pure functions of
/// the packed key (the warm bits encode exactly the penalty condition,
/// and re-multiplying the same two floats is bit-stable) — one flat
/// linear-probe table short-circuits all three costs down to a key pack,
/// one probe and a `2n`-float copy. Invalidated wherever the rate cache
/// is, plus on overhead-model changes (the stored speeds embed the
/// penalty factor).
#[derive(Debug)]
struct DerivedCache {
    /// Slot keys; meaningful only where `used` is set.
    keys: Vec<u64>,
    used: Vec<bool>,
    /// Slot payloads at stride `2n`: `[speed_0, capacity_0, speed_1, ...]`.
    vals: Vec<f64>,
    /// Apps per entry (payload stride is `2 * n`).
    n: usize,
    len: usize,
}

impl DerivedCache {
    fn new(n: usize) -> Self {
        let slots = 64;
        DerivedCache {
            keys: vec![0; slots],
            used: vec![false; slots],
            vals: vec![0.0; slots * 2 * n],
            n,
            len: 0,
        }
    }

    fn clear(&mut self) {
        self.used.fill(false);
        self.len = 0;
    }

    /// Maps a key to its preferred slot: one multiplicative hash, high
    /// bits folded down to the (power-of-two) table size.
    #[inline(always)]
    fn slot_of(&self, key: u64) -> usize {
        (key.wrapping_mul(FX_SEED) >> 32) as usize & (self.keys.len() - 1)
    }

    /// Returns the payload offset for `key`, or `None` on a miss.
    #[inline(always)]
    fn lookup(&self, key: u64) -> Option<usize> {
        let mut s = self.slot_of(key);
        loop {
            if !self.used[s] {
                return None;
            }
            if self.keys[s] == key {
                return Some(s * 2 * self.n);
            }
            s = (s + 1) & (self.keys.len() - 1);
        }
    }

    /// Inserts the interleaved `(speed, capacity)` state under `key`,
    /// growing (or, past the defensive bound, dropping) the table as
    /// needed. The caller looks up before inserting, so `key` is absent.
    fn insert(&mut self, key: u64, speed: &[f64], capacity: &[f64]) {
        if self.len >= DERIVED_CACHE_MAX_ENTRIES {
            self.clear();
        }
        if (self.len + 1) * 2 >= self.keys.len() {
            self.grow();
        }
        let mut s = self.slot_of(key);
        while self.used[s] {
            s = (s + 1) & (self.keys.len() - 1);
        }
        self.used[s] = true;
        self.keys[s] = key;
        let off = s * 2 * self.n;
        for i in 0..self.n {
            self.vals[off + 2 * i] = speed[i];
            self.vals[off + 2 * i + 1] = capacity[i];
        }
        self.len += 1;
    }

    /// Doubles the table, re-probing every live entry into the new slots.
    fn grow(&mut self) {
        let old_slots = self.keys.len();
        let old_keys = std::mem::replace(&mut self.keys, vec![0; old_slots * 2]);
        let old_used = std::mem::replace(&mut self.used, vec![false; old_slots * 2]);
        let old_vals = std::mem::replace(&mut self.vals, vec![0.0; old_slots * 2 * 2 * self.n]);
        self.len = 0;
        for s in 0..old_slots {
            if old_used[s] {
                let off = s * 2 * self.n;
                let (speeds, caps): (Vec<f64>, Vec<f64>) = (0..self.n)
                    .map(|i| (old_vals[off + 2 * i], old_vals[off + 2 * i + 1]))
                    .unzip();
                self.insert(old_keys[s], &speeds, &caps);
            }
        }
    }
}

/// Counters describing how much work one [`NodeSim`] has done — used by
/// the experiment engine to report simulated-events/sec and rate-cache
/// effectiveness in `repro --timings`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimPerfStats {
    /// Discrete events processed (arrivals, completions, warm-up
    /// expiries); window boundaries are not counted.
    pub events: u64,
    /// Rate-cache lookups answered from memory.
    pub rate_hits: u64,
    /// Rate-cache lookups that ran the fluid solver.
    pub rate_misses: u64,
}

/// The event kinds the node's window loop dispatches, as found by
/// [`scan_next_event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanEvent {
    /// The monitoring window boundary was reached first.
    WindowEnd,
    /// The next arrival of the carried LC application.
    Arrival(usize),
    /// A request of the carried application reaches zero remaining work;
    /// the index lets completion processing skip straight to the owner.
    Completion(usize),
    /// Some application's warm-up penalty expires.
    WarmupExpiry,
}

/// Scans the flat per-application event-source arrays for the earliest
/// next event. Pure function over the SoA slices so its tie-break
/// behaviour can be pinned by property tests.
///
/// Event sources are examined in a fixed order — the window end, then per
/// application in index order: arrival, completion, warm-up expiry — and
/// every comparison is strict (`<`), so the *first* source examined keeps
/// a contested timestamp. `to_bits`-level determinism of the returned
/// time follows from the comparisons being exact float/integer compares.
///
/// Encodings: `next_arrival[i]` is [`SimTime::NEVER`] when app `i` never
/// arrives (BE apps, silenced LC apps); `min_remaining_ms[i]` is
/// `f64::INFINITY` when app `i` has nothing in service, which doubles as
/// the "no completion pending" test; `warmup_until[i]` in the past means
/// no expiry is pending.
#[inline(always)]
pub fn scan_next_event(
    time: SimTime,
    window_end: SimTime,
    next_arrival: &[SimTime],
    min_remaining_ms: &[f64],
    speed: &[f64],
    warmup_until: &[SimTime],
) -> (SimTime, ScanEvent) {
    let mut best = (window_end, ScanEvent::WindowEnd);
    for i in 0..next_arrival.len() {
        if next_arrival[i] < best.0 {
            best = (next_arrival[i], ScanEvent::Arrival(i));
        }
        let min_remaining = min_remaining_ms[i];
        if min_remaining < f64::INFINITY && speed[i] > 1e-12 {
            // Round *up* to the clock's microsecond resolution: rounding
            // down would schedule a zero-length step that never completes
            // the request (a livelock).
            let dt_us = ((min_remaining / speed[i]).max(0.0) * 1_000.0).ceil() as u64;
            let t = time + SimTime::from_us(dt_us.max(1));
            if t < best.0 {
                best = (t, ScanEvent::Completion(i));
            }
        }
        if warmup_until[i] > time && warmup_until[i] < best.0 {
            best = (warmup_until[i], ScanEvent::WarmupExpiry);
        }
    }
    // Guarantee forward progress: an event computed for "now" (e.g. a
    // zero-remaining completion) is processed without advancing time.
    (best.0.max(time), best.1)
}

/// The simulated datacenter node.
///
/// Owns the clock, the applications, the current [`Partition`] and the
/// [`SharingPolicy`], and advances in monitoring windows. See the crate
/// docs for the model and a usage example.
#[derive(Debug)]
pub struct NodeSim {
    machine: MachineConfig,
    reference: MachineConfig,
    bw: BandwidthModel,
    apps: Vec<AppRuntime>,
    hot: HotState,
    arena: RequestArena,
    partition: Partition,
    policy: SharingPolicy,
    overhead: OverheadModel,
    window: SimTime,
    time: SimTime,
    window_index: u64,
    rng: StdRng,
    rates: Vec<AppRates>,
    rates_dirty: bool,
    /// The earliest `warmup_until` strictly after the last rate
    /// recomputation, [`SimTime::NEVER`] if none. Crossing it forces a
    /// recomputation even when no event dirtied the rates: an event
    /// landing exactly on a warm-up boundary (e.g. an arrival that only
    /// queues) swallows the `WarmupExpiry` event, and the cached speeds
    /// would otherwise keep the stale penalty.
    next_warm_expiry: SimTime,
    /// Persistent demand vector handed to the solver; only the `busy`
    /// fields change between calls (kind, curve and bandwidth appetite
    /// are fixed per application).
    demands: Vec<AppDemand>,
    rate_cache: RateCache,
    /// Memo of post-penalty speed/capacity vectors by packed key; lets
    /// most rate recomputations skip the rate cache entirely.
    derived: DerivedCache,
    /// Rate recomputations answered by `derived` (they never reach the
    /// rate cache, so they are invisible to its own hit counter).
    derived_hits: u64,
    /// The packed busy/warm/policy key, maintained *incrementally*: busy
    /// bit fields are patched at the arrival/completion sites that change
    /// them, warm bits and the policy bit are rebuilt only when
    /// `warm_stale` is raised. `None` when the layout does not pack.
    packed_key: Option<u64>,
    /// Bit offset of each application's busy field in `packed_key`.
    busy_shift: Vec<u32>,
    /// Bit mask of each application's busy field in `packed_key`.
    busy_mask: Vec<u64>,
    /// Raised whenever a warm bit of `packed_key` may have flipped: on
    /// repartitions (new warm-up deadlines), policy changes, and when the
    /// clock crosses `next_warm_expiry`.
    warm_stale: bool,
    /// Discrete events processed since construction.
    events: u64,
    adjustments: u64,
    tail_quantile: f64,
    /// Per-app whole-run latency histograms, populated when tracing is on.
    histograms: Option<Vec<LatencyHistogram>>,
}

impl NodeSim {
    /// Creates a node where the reference machine (against which cache
    /// factors and solo IPC are normalised) is the machine itself.
    ///
    /// # Errors
    ///
    /// Propagates machine validation failures and rejects duplicate
    /// application names.
    pub fn new(machine: MachineConfig, specs: Vec<AppSpec>, seed: u64) -> Result<Self, SimError> {
        Self::with_reference(machine, machine, specs, seed)
    }

    /// Creates a node whose resources are `machine` but whose performance
    /// normalisation point is `reference` — used by the resource-scaling
    /// experiments, which shrink the core/way budget while keeping solo
    /// performance defined on the full paper machine.
    ///
    /// # Errors
    ///
    /// Propagates machine validation failures and rejects duplicate
    /// application names.
    pub fn with_reference(
        machine: MachineConfig,
        reference: MachineConfig,
        specs: Vec<AppSpec>,
        seed: u64,
    ) -> Result<Self, SimError> {
        machine.validate()?;
        reference.validate()?;
        for (i, a) in specs.iter().enumerate() {
            if specs[..i].iter().any(|b| b.name() == a.name()) {
                return Err(SimError::DuplicateApp {
                    name: a.name().to_owned(),
                });
            }
        }
        let bw = BandwidthModel::new(machine.membw_gbps);
        let ref_bw = BandwidthModel::new(reference.membw_gbps);
        let apps: Vec<AppRuntime> = specs
            .into_iter()
            .map(|spec| {
                let curve = spec.cache_profile().curve(reference.llc_ways);
                let (lc, be) = match &spec.params {
                    KindParams::Lc(p) => {
                        let sigma = p.sigma.max(1e-6);
                        let mu = p.mean_service_ms.ln() - sigma * sigma / 2.0;
                        let service = LogNormal::new(mu, sigma)
                            .expect("validated service distribution parameters");
                        (
                            Some(LcState {
                                queue: VecDeque::new(),
                                lambda_per_ms: 0.0,
                                load_fraction: 0.0,
                                inter_arrival: None,
                                service,
                                tail: TailEstimator::new(512),
                                window_samples: Vec::new(),
                                window_arrivals: 0,
                                window_completions: 0,
                                window_drops: 0,
                                max_outstanding: spec.max_outstanding().expect("LC spec has a cap")
                                    as usize,
                            }),
                            None,
                        )
                    }
                    KindParams::Be(_) => {
                        // Solo speed: the application alone on the reference
                        // machine with every thread busy.
                        let demand = AppDemand {
                            kind: AppKind::Be,
                            busy: spec.threads(),
                            curve,
                            bw_per_thread: spec.cache_profile().bw_gbps_per_thread,
                        };
                        let solo = compute_rates(
                            &reference,
                            &Partition::all_shared(1),
                            &[demand],
                            SharingPolicy::Fair,
                            &ref_bw,
                        );
                        (
                            None,
                            Some(BeState {
                                solo_speed: solo[0].speed_per_thread.max(1e-9),
                            }),
                        )
                    }
                };
                AppRuntime {
                    spec,
                    curve,
                    lc,
                    be,
                }
            })
            .collect();
        let n = apps.len();
        let partition = Partition::all_shared(n);
        let slab_caps: Vec<usize> = apps
            .iter()
            .map(|a| {
                if a.lc.is_some() {
                    a.spec.threads() as usize
                } else {
                    0
                }
            })
            .collect();
        let arena = RequestArena::new(&slab_caps);
        let hot = HotState {
            min_remaining_ms: vec![f64::INFINITY; n],
            next_arrival: vec![SimTime::NEVER; n],
            warmup_until: vec![SimTime::ZERO; n],
            speed: vec![0.0; n],
            capacity: vec![0.0; n],
            be_threads: apps
                .iter()
                .map(|a| {
                    if a.be.is_some() {
                        a.spec.threads() as f64
                    } else {
                        0.0
                    }
                })
                .collect(),
            static_busy: apps
                .iter()
                .map(|a| match (&a.lc, &a.be) {
                    (Some(_), _) => 0,
                    (None, Some(_)) => a.spec.threads(),
                    (None, None) => 0,
                })
                .collect(),
            is_lc: apps.iter().map(|a| a.lc.is_some()).collect(),
            window_capacity_integral: vec![0.0; n],
            window_speed_integral: vec![0.0; n],
        };
        let demands: Vec<AppDemand> = apps
            .iter()
            .enumerate()
            .map(|(i, a)| AppDemand {
                kind: a.spec.kind(),
                busy: if hot.is_lc[i] {
                    arena.len(i) as u32
                } else {
                    hot.static_busy[i]
                },
                curve: a.curve,
                bw_per_thread: a.spec.cache_profile().bw_gbps_per_thread,
            })
            .collect();
        let mut rate_cache = RateCache::new();
        let max_busy: Vec<u32> = apps.iter().map(|a| a.spec.threads()).collect();
        rate_cache.set_layout(&max_busy);
        // Field positions of the incremental scan key, derived from the
        // cache's own layout so the two can never disagree: fields start
        // after the policy bit and the `n` warm bits.
        let (busy_shift, busy_mask): (Vec<u32>, Vec<u64>) = match rate_cache.layout() {
            Some(bits) => {
                let mut shift = 1 + n as u32;
                bits.iter()
                    .map(|&b| {
                        let s = shift;
                        shift += b;
                        // Zero-width fields (apps that are never busy) get
                        // shift 0 and mask 0: the patch becomes a no-op
                        // instead of a potentially overflowing shift.
                        if b == 0 {
                            (0, 0)
                        } else {
                            (s, ((1u64 << b) - 1) << s)
                        }
                    })
                    .unzip()
            }
            None => (vec![0; n], vec![0; n]),
        };
        let mut sim = NodeSim {
            machine,
            reference,
            bw,
            apps,
            hot,
            arena,
            partition,
            policy: SharingPolicy::Fair,
            overhead: OverheadModel::default(),
            window: SimTime::from_ms(500.0),
            time: SimTime::ZERO,
            window_index: 0,
            rng: StdRng::seed_from_u64(seed),
            rates: Vec::new(),
            rates_dirty: true,
            next_warm_expiry: SimTime::NEVER,
            demands,
            rate_cache,
            derived: DerivedCache::new(n),
            derived_hits: 0,
            packed_key: None,
            busy_shift,
            busy_mask,
            warm_stale: true,
            events: 0,
            adjustments: 0,
            tail_quantile: 0.95,
            histograms: None,
        };
        sim.recompute_rates();
        Ok(sim)
    }

    /// The machine being simulated.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// The reference machine against which cache factors and solo IPC are
    /// normalised.
    pub fn reference(&self) -> &MachineConfig {
        &self.reference
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// The current partition.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The number of partition adjustments applied so far.
    pub fn adjustments(&self) -> u64 {
        self.adjustments
    }

    /// The current partition epoch: bumped on every accepted repartition
    /// or sharing-policy change, i.e. whenever the rate cache is
    /// invalidated.
    pub fn partition_epoch(&self) -> u64 {
        self.rate_cache.epoch()
    }

    /// Work counters of this simulation: events processed and rate-cache
    /// hit/miss totals.
    pub fn perf_stats(&self) -> SimPerfStats {
        SimPerfStats {
            events: self.events,
            // Derived-memo answers are memory hits from the event loop's
            // point of view; the rate cache never sees those lookups.
            rate_hits: self.rate_cache.hits() + self.derived_hits,
            rate_misses: self.rate_cache.misses(),
        }
    }

    /// The application specs, in registration order.
    pub fn specs(&self) -> impl Iterator<Item = &AppSpec> {
        self.apps.iter().map(|a| &a.spec)
    }

    /// Resolves an application name to its [`AppId`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownApp`] for unregistered names.
    pub fn app_id(&self, name: &str) -> Result<AppId, SimError> {
        self.apps
            .iter()
            .position(|a| a.spec.name() == name)
            .map(AppId::from)
            .ok_or_else(|| SimError::UnknownApp {
                name: name.to_owned(),
            })
    }

    /// Sets the shared-region sharing policy.
    pub fn set_policy(&mut self, policy: SharingPolicy) {
        if self.policy != policy {
            self.policy = policy;
            self.rates_dirty = true;
            // The policy is part of the rate-cache key, so entries under
            // the old policy stay valid — but a policy flip is a
            // partition-epoch event for observers, and dropping the map
            // keeps the entry population tied to the current regime.
            self.rate_cache.invalidate();
            self.derived.clear();
            // The policy bit sits in the packed key too.
            self.warm_stale = true;
        }
    }

    /// Overrides the monitoring-window length (default 500 ms, the paper's
    /// interval).
    pub fn set_window_ms(&mut self, ms: f64) {
        self.window = SimTime::from_ms(ms.max(1.0));
    }

    /// Overrides the repartitioning overhead model.
    pub fn set_overhead(&mut self, overhead: OverheadModel) {
        self.overhead = overhead;
        // The cached per-thread speeds — and every derived-memo entry —
        // embed the warm-up penalty factor.
        self.rates_dirty = true;
        self.derived.clear();
    }

    /// Overrides the reported tail quantile (default 0.95, the paper's
    /// p95; e.g. 0.99 for studies of deeper tails). Clamped to
    /// `[0.5, 0.999]`.
    pub fn set_tail_quantile(&mut self, q: f64) {
        self.tail_quantile = if q.is_finite() {
            q.clamp(0.5, 0.999)
        } else {
            0.95
        };
    }

    /// Enables whole-run latency tracing: every completed request's
    /// latency is recorded in a per-application [`LatencyHistogram`]
    /// retrievable via [`NodeSim::latency_histogram`].
    pub fn enable_tracing(&mut self) {
        if self.histograms.is_none() {
            self.histograms = Some(vec![LatencyHistogram::new(); self.apps.len()]);
        }
    }

    /// The whole-run latency histogram of an LC application, if tracing
    /// is enabled.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownApp`] for unregistered names.
    pub fn latency_histogram(&self, name: &str) -> Result<Option<&LatencyHistogram>, SimError> {
        let id = self.app_id(name)?;
        Ok(self.histograms.as_ref().map(|h| &h[id.index()]))
    }

    /// Sets an LC application's offered load as a fraction of its nominal
    /// maximum load (Table IV style). A fraction of zero silences the
    /// application.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownApp`] for unregistered names and
    /// [`SimError::WrongKind`] for BE applications.
    pub fn set_load(&mut self, name: &str, fraction: f64) -> Result<(), SimError> {
        let id = self.app_id(name)?;
        let app = &mut self.apps[id.index()];
        let max_load = app.spec.max_load_qps().ok_or(SimError::WrongKind {
            name: name.to_owned(),
            operation: "set_load",
        })?;
        let lc = app.lc.as_mut().expect("LC app has LC state");
        let fraction = fraction.clamp(0.0, 10.0);
        lc.load_fraction = fraction;
        lc.lambda_per_ms = fraction * max_load / 1000.0;
        // Build the inter-arrival distribution once here; `process_arrival`
        // reuses it for every subsequent draw (construction is
        // deterministic, so the draw sequence is unchanged).
        lc.inter_arrival = if lc.lambda_per_ms > 0.0 {
            Some(Exp::new(lc.lambda_per_ms).expect("positive rate"))
        } else {
            None
        };
        self.hot.next_arrival[id.index()] = if let Some(inter) = lc.inter_arrival {
            self.time + SimTime::from_ms(inter.sample(&mut self.rng))
        } else {
            SimTime::NEVER
        };
        // Size the tail ring to roughly three windows of completions so the
        // estimate tracks load changes with bounded lag even for low-QPS
        // applications.
        let per_window = lc.lambda_per_ms * self.window.as_ms();
        let capacity = ((per_window * 3.0) as usize).clamp(64, 4096);
        // Re-target in place: behaviourally a fresh estimator at the new
        // capacity, but the ring and scratch allocations are reused.
        let previous_median = lc.tail.quantile(0.5);
        lc.tail.reset(capacity);
        // Seed with the previous median so the estimator is not empty right
        // after a resize; real samples quickly dominate.
        if let Some(p) = previous_median {
            lc.tail.record(p);
        }
        // Pre-size the per-window sample buffer for the expected completion
        // count, so enabling histograms or raising the load never grows it
        // mid-window.
        let expected = (per_window.ceil() as usize).min(4096);
        if lc.window_samples.capacity() < expected {
            let additional = expected - lc.window_samples.len();
            lc.window_samples.reserve(additional);
        }
        Ok(())
    }

    /// Applies a new partition, validating capacity and that no application
    /// is left without any reachable core. Applications whose isolated
    /// allocation changed (and everyone touching the shared region when its
    /// size changed) pay the configured warm-up penalty.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidPartition`] on capacity violation,
    /// starvation, or an application-count mismatch.
    pub fn set_partition(&mut self, partition: Partition) -> Result<(), SimError> {
        if partition.num_apps() != self.apps.len() {
            return Err(SimError::InvalidPartition {
                reason: format!(
                    "partition covers {} apps, simulation has {}",
                    partition.num_apps(),
                    self.apps.len()
                ),
            });
        }
        partition.validate(&self.machine)?;
        let shared_cores = partition.shared_cores(&self.machine);
        for (id, alloc) in partition.iter() {
            if alloc.cores == 0 && shared_cores == 0 {
                return Err(SimError::InvalidPartition {
                    reason: format!(
                        "application {:?} has no isolated cores and the shared region is empty",
                        self.apps[id.index()].spec.name()
                    ),
                });
            }
        }
        if partition == self.partition {
            return Ok(());
        }
        let changed = self.partition.changed_apps(&partition);
        let shared_changed = partition.shared_cores(&self.machine)
            != self.partition.shared_cores(&self.machine)
            || partition.shared_ways(&self.machine) != self.partition.shared_ways(&self.machine);
        let until = self.time + SimTime::from_ms(self.overhead.warmup_ms);
        for i in 0..self.apps.len() {
            let touched = changed.contains(&AppId::from(i))
                || (shared_changed && partition.isolated(i.into()).cores == 0);
            if touched {
                self.hot.warmup_until[i] = until;
            }
        }
        self.partition = partition;
        self.adjustments += 1;
        self.rates_dirty = true;
        // Fresh warm-up deadlines change the packed key's warm mask.
        self.warm_stale = true;
        // Memoized rate vectors were computed under the old partition.
        self.rate_cache.invalidate();
        self.derived.clear();
        Ok(())
    }

    /// Charges one application a cold-start penalty of `ms` milliseconds
    /// without touching the partition: until the deadline passes, its
    /// threads run at the warm-up speed factor, exactly as after a
    /// repartition. This is the cost model for an application that just
    /// migrated onto this node — its working set arrives cold, which is
    /// typically far more expensive than the cache refill after a local
    /// allocation change, so callers pass a duration rather than reusing
    /// [`OverheadModel::warmup_ms`] implicitly.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownApp`] for unregistered names.
    pub fn begin_warmup(&mut self, name: &str, ms: f64) -> Result<(), SimError> {
        let id = self.app_id(name)?;
        self.hot.warmup_until[id.index()] = self.time + SimTime::from_ms(ms.max(0.0));
        self.rates_dirty = true;
        // The warm mask is part of the packed scan key, so memoized rate /
        // derived entries stay valid under their own keys; only the mask
        // needs repacking.
        self.warm_stale = true;
        Ok(())
    }

    /// Advances the simulation by one monitoring window and reports what a
    /// scheduler would observe.
    pub fn run_window(&mut self) -> WindowObservation {
        let start = self.time;
        let end = start + self.window;
        self.reset_window_accumulators();

        while self.time < end {
            // Crossing a warm-up boundary changes the cached speeds even
            // when no event dirtied the rates (see `next_warm_expiry`).
            if self.time >= self.next_warm_expiry {
                self.rates_dirty = true;
                // Warm bits of the packed key flip at the boundary; the
                // next recompute must rebuild rather than trust the
                // incrementally patched key.
                self.warm_stale = true;
            }
            if self.rates_dirty {
                self.recompute_rates();
            }
            #[cfg(debug_assertions)]
            self.debug_assert_min_consistency();
            let (next, kind) = scan_next_event(
                self.time,
                end,
                &self.hot.next_arrival,
                &self.hot.min_remaining_ms,
                &self.hot.speed,
                &self.hot.warmup_until,
            );
            let dt_ms = next.since(self.time).as_ms();
            if dt_ms > 0.0 {
                self.advance(dt_ms);
            }
            self.time = next;
            match kind {
                ScanEvent::WindowEnd => break,
                ScanEvent::Arrival(app) => self.process_arrival(app),
                ScanEvent::Completion(app) => self.process_completions(app),
                ScanEvent::WarmupExpiry => {
                    // Speeds change when warm-up ends, and so does the
                    // key's warm mask.
                    self.rates_dirty = true;
                    self.warm_stale = true;
                }
            }
            self.events += 1;
        }

        self.window_index += 1;
        self.collect_observation(start, end)
    }

    /// Runs `n` consecutive windows.
    pub fn run_windows(&mut self, n: usize) -> Vec<WindowObservation> {
        let mut observations = Vec::with_capacity(n);
        for _ in 0..n {
            observations.push(self.run_window());
        }
        observations
    }

    // --- internals ------------------------------------------------------

    fn reset_window_accumulators(&mut self) {
        for i in 0..self.apps.len() {
            self.hot.window_capacity_integral[i] = 0.0;
            self.hot.window_speed_integral[i] = 0.0;
            if let Some(lc) = &mut self.apps[i].lc {
                lc.window_samples.clear();
                lc.window_arrivals = 0;
                lc.window_completions = 0;
                lc.window_drops = 0;
            }
        }
    }

    /// Rebuilds `packed_key` from scratch: warm bits from the current
    /// clock, busy fields from the arena, the policy bit. Runs only when
    /// `warm_stale` is raised (construction, repartitions, policy flips,
    /// warm-boundary crossings) — between those, the busy fields are
    /// patched in place at the sites that change them.
    fn rebuild_packed_key(&mut self) {
        let n = self.apps.len();
        let mut warm_mask = 0u64;
        for i in 0..n {
            if self.time < self.hot.warmup_until[i] {
                warm_mask |= 1 << i.min(63);
            }
        }
        self.packed_key = self.rate_cache.pack_scan_key(
            (0..n).map(|i| {
                if self.hot.is_lc[i] {
                    self.arena.len(i) as u32
                } else {
                    self.hot.static_busy[i]
                }
            }),
            n,
            warm_mask,
            self.policy,
        );
        self.warm_stale = false;
    }

    /// Patches app `i`'s busy bit field of `packed_key` after its
    /// in-service count changed (mask is zero — a no-op — for layouts
    /// that do not pack).
    #[inline]
    fn patch_busy_key(&mut self, i: usize) {
        if let Some(key) = self.packed_key.as_mut() {
            *key = (*key & !self.busy_mask[i]) | ((self.arena.len[i] as u64) << self.busy_shift[i]);
        }
    }

    #[inline]
    fn recompute_rates(&mut self) {
        if self.warm_stale {
            self.rebuild_packed_key();
        }
        // Fast path: the derived memo answers with the final speed and
        // capacity vectors — no demand-vector update, no rate-cache probe,
        // no penalty pass. The stored floats are the exact values the slow
        // path computed the first time this key was seen, so the fast path
        // is bit-identical to it.
        if let Some(key) = self.packed_key {
            #[cfg(debug_assertions)]
            self.debug_assert_key_consistency(key);
            if let Some(off) = self.derived.lookup(key) {
                self.derived_hits += 1;
                let n = self.apps.len();
                for i in 0..n {
                    self.hot.speed[i] = self.derived.vals[off + 2 * i];
                    self.hot.capacity[i] = self.derived.vals[off + 2 * i + 1];
                }
                self.refresh_next_warm_expiry();
                self.rates_dirty = false;
                return;
            }
        }
        let key = self.packed_key;
        let mut warm_mask = 0u64;
        for (i, d) in self.demands.iter_mut().enumerate() {
            d.busy = if self.hot.is_lc[i] {
                self.arena.len(i) as u32
            } else {
                self.hot.static_busy[i]
            };
            if self.time < self.hot.warmup_until[i] {
                warm_mask |= 1 << i.min(63);
            }
        }
        self.rate_cache.rates_for(
            &self.machine,
            &self.partition,
            &self.demands,
            warm_mask,
            self.policy,
            &self.bw,
            &mut self.rates,
        );
        // Refresh the cached per-thread speeds — the same arithmetic the
        // event loop used to run per call (`speed_per_thread`, scaled by
        // the warm-up penalty while inside the warm-up window) — and the
        // earliest future warm-up boundary that will invalidate them.
        let mut next_expiry = SimTime::NEVER;
        for i in 0..self.rates.len() {
            let until = self.hot.warmup_until[i];
            self.hot.speed[i] = if self.time < until {
                self.rates[i].speed_per_thread * self.overhead.warmup_penalty
            } else {
                self.rates[i].speed_per_thread
            };
            self.hot.capacity[i] = self.rates[i].core_capacity;
            if until > self.time && until < next_expiry {
                next_expiry = until;
            }
        }
        self.next_warm_expiry = next_expiry;
        if let Some(key) = key {
            self.derived
                .insert(key, &self.hot.speed, &self.hot.capacity);
        }
        self.rates_dirty = false;
    }

    /// Recomputes `next_warm_expiry` from the warm-up deadlines — the
    /// derived-memo fast path needs it without the slow path's fused loop.
    fn refresh_next_warm_expiry(&mut self) {
        let mut next_expiry = SimTime::NEVER;
        for &until in &self.hot.warmup_until {
            if until > self.time && until < next_expiry {
                next_expiry = until;
            }
        }
        self.next_warm_expiry = next_expiry;
    }

    /// Debug-build check that the incrementally patched packed key still
    /// equals a fresh pack of the current busy counts, warm mask and
    /// policy — the invariant that lets `recompute_rates` skip the
    /// per-call repack.
    #[cfg(debug_assertions)]
    fn debug_assert_key_consistency(&self, key: u64) {
        let n = self.apps.len();
        let mut warm_mask = 0u64;
        for i in 0..n {
            if self.time < self.hot.warmup_until[i] {
                warm_mask |= 1 << i.min(63);
            }
        }
        let fresh = self.rate_cache.pack_scan_key(
            (0..n).map(|i| {
                if self.hot.is_lc[i] {
                    self.arena.len(i) as u32
                } else {
                    self.hot.static_busy[i]
                }
            }),
            n,
            warm_mask,
            self.policy,
        );
        debug_assert_eq!(
            Some(key),
            fresh,
            "incrementally patched packed key drifted from a fresh pack"
        );
    }

    /// Debug-build check that the incrementally maintained minimums still
    /// equal a fresh fold over each slab — the invariant that lets
    /// `scan_next_event` and completion batching skip the rescans.
    #[cfg(debug_assertions)]
    fn debug_assert_min_consistency(&self) {
        for i in 0..self.apps.len() {
            debug_assert_eq!(
                self.hot.min_remaining_ms[i].to_bits(),
                self.arena.min_remaining(i).to_bits(),
                "cached min-remaining drifted from the in-service slab of app {i}"
            );
        }
    }

    #[inline]
    fn advance(&mut self, dt_ms: f64) {
        for i in 0..self.hot.speed.len() {
            let speed = self.hot.speed[i];
            let step = speed * dt_ms;
            self.hot.window_capacity_integral[i] += self.hot.capacity[i] * dt_ms;
            for req in self.arena.slab_mut(i) {
                req.remaining_ms = (req.remaining_ms - step).max(0.0);
            }
            // Same subtract-and-clamp as the requests: the cached minimum
            // is one of the request values and the update is monotone, so
            // it tracks the true minimum bit-for-bit. Branch-free for the
            // idle case too: `INFINITY - step` stays `INFINITY` and
            // `.max(0.0)` keeps it.
            self.hot.min_remaining_ms[i] = (self.hot.min_remaining_ms[i] - step).max(0.0);
            // `be_threads` is 0.0 for LC apps, so their integral
            // accumulates an exact 0.0 — no kind branch needed.
            self.hot.window_speed_integral[i] += speed * self.hot.be_threads[i] * dt_ms;
        }
    }

    fn process_arrival(&mut self, app_index: usize) {
        let work: f64;
        let next: SimTime;
        {
            let lc = self.apps[app_index].lc.as_ref().expect("arrival on LC app");
            if lc.lambda_per_ms <= 0.0 {
                // Load was zeroed while an arrival was in flight.
                self.hot.next_arrival[app_index] = SimTime::NEVER;
                return;
            }
            work = lc.service.sample(&mut self.rng).max(1e-6);
            // The distribution is cached by `set_load`; constructing it is
            // draw-free, so reusing it leaves the RNG stream untouched.
            let exp = lc
                .inter_arrival
                .as_ref()
                .expect("cached inter-arrival distribution for positive rate");
            // Floor at the clock resolution (1 µs) so time always advances.
            let gap: f64 = exp.sample(&mut self.rng).max(1e-3);
            next = self.time + SimTime::from_ms(gap);
        }
        let lc = self.apps[app_index].lc.as_mut().unwrap();
        lc.window_arrivals += 1;
        self.hot.next_arrival[app_index] = next;
        let request = Request {
            arrival: self.time,
            remaining_ms: work,
        };
        if self.arena.len(app_index) < self.arena.cap(app_index) {
            self.arena.push(app_index, request);
            // `min(work)` equals a fresh fold over the slab: the other
            // entries already fold to the cached value.
            self.hot.min_remaining_ms[app_index] = self.hot.min_remaining_ms[app_index].min(work);
            self.rates_dirty = true; // busy count changed
            self.patch_busy_key(app_index);
        } else if self.arena.len(app_index) + lc.queue.len() < lc.max_outstanding {
            lc.queue.push_back(request);
        } else {
            // The client pool is exhausted: the request is dropped (a
            // timeout from the user's point of view).
            lc.window_drops += 1;
        }
    }

    /// Processes the `Completion` event dispatched for `primary`, batching
    /// every application whose work finished at the same instant.
    ///
    /// The event carries the owning app, but requests of *other* apps can
    /// reach zero remaining work at the same microsecond (their event is
    /// still queued for this instant). The cached per-app minimum reduces
    /// the due-test to one float compare per app — `min_remaining_ms[i]`
    /// is `INFINITY` unless app `i` is an LC app with work in service, so
    /// no kind or emptiness check is needed — and only due apps pay the
    /// completion loop (one `swap_remove` sweep and one min refresh each).
    /// Apps are visited in index order, exactly as before.
    fn process_completions(&mut self, primary: usize) {
        debug_assert!(
            self.hot.min_remaining_ms[primary] <= COMPLETION_EPS_MS,
            "completion dispatched for an app with no finished request"
        );
        for i in 0..self.apps.len() {
            if i == primary || self.hot.min_remaining_ms[i] <= COMPLETION_EPS_MS {
                self.complete_app(i);
            }
        }
    }

    /// Retires every finished request of app `i` and promotes queued work
    /// onto the freed threads — byte-for-byte the per-app body of the old
    /// all-apps completion scan, with the slab standing in for the
    /// per-app `Vec`.
    fn complete_app(&mut self, i: usize) {
        let now = self.time;
        let Some(lc) = self.apps[i].lc.as_mut() else {
            return;
        };
        let mut completed_any = false;
        let mut j = 0;
        while j < self.arena.len(i) {
            if self.arena.slab(i)[j].remaining_ms <= COMPLETION_EPS_MS {
                let req = self.arena.swap_remove(i, j);
                let latency = now.since(req.arrival).as_ms();
                lc.tail.record(latency);
                lc.window_samples.push(latency);
                lc.window_completions += 1;
                if let Some(hists) = &mut self.histograms {
                    hists[i].record(latency);
                }
                completed_any = true;
            } else {
                j += 1;
            }
        }
        if completed_any {
            while self.arena.len(i) < self.arena.cap(i) {
                match lc.queue.pop_front() {
                    Some(req) => self.arena.push(i, req),
                    None => break,
                }
            }
            self.hot.min_remaining_ms[i] = self.arena.min_remaining(i);
            self.rates_dirty = true;
            self.patch_busy_key(i);
        }
    }

    fn collect_observation(&mut self, start: SimTime, end: SimTime) -> WindowObservation {
        let window_ms = end.since(start).as_ms().max(1e-9);
        let now = self.time;
        let tail_quantile = self.tail_quantile;
        let mut lc_stats = Vec::with_capacity(self.apps.len());
        let mut be_stats = Vec::with_capacity(self.apps.len());
        for (i, app) in self.apps.iter_mut().enumerate() {
            let mean_capacity = self.hot.window_capacity_integral[i] / window_ms;
            if let Some(lc) = &mut app.lc {
                // Selection reorders `window_samples` in place; the buffer
                // is a window-local multiset cleared at the next window
                // start, so the order is free to give away.
                let mut p95 = if lc.window_samples.len() >= WINDOW_P95_MIN_SAMPLES {
                    percentile_in_place(&mut lc.window_samples, tail_quantile)
                } else {
                    lc.tail.quantile(tail_quantile)
                };
                // Starvation floor: with zero completions this window and
                // work outstanding, a latency monitor would report at least
                // the age of the oldest outstanding request.
                if lc.window_completions == 0 {
                    let oldest = self
                        .arena
                        .slab(i)
                        .iter()
                        .chain(lc.queue.iter())
                        .map(|r| r.arrival)
                        .min();
                    if let Some(arrival) = oldest {
                        let age = now.since(arrival).as_ms();
                        p95 = Some(p95.map_or(age, |v| v.max(age)));
                    }
                }
                lc_stats.push(LcWindowStats {
                    name: app.spec.name().to_owned(),
                    p95_ms: p95,
                    ideal_ms: app.spec.ideal_tail_ms().expect("LC app"),
                    qos_ms: app.spec.qos_threshold_ms().expect("LC app"),
                    load: lc.load_fraction,
                    arrivals: lc.window_arrivals,
                    completions: lc.window_completions,
                    drops: lc.window_drops,
                    backlog: self.arena.len(i) + lc.queue.len(),
                    mean_core_capacity: mean_capacity,
                });
            }
            if let Some(be) = &app.be {
                let mean_speed =
                    self.hot.window_speed_integral[i] / (window_ms * app.spec.threads() as f64);
                let ipc_solo = app.spec.ipc_solo().expect("BE app");
                be_stats.push(BeWindowStats {
                    name: app.spec.name().to_owned(),
                    ipc: ipc_solo * mean_speed / be.solo_speed,
                    ipc_solo,
                    mean_core_capacity: mean_capacity,
                });
            }
        }
        WindowObservation {
            window_index: self.window_index - 1,
            start_ms: start.as_ms(),
            end_ms: end.as_ms(),
            lc: lc_stats,
            be: be_stats,
        }
    }

    /// Draws a uniform sample — exposed for deterministic experiment
    /// harness code that wants to share the node's RNG stream.
    pub fn rng_uniform(&mut self) -> f64 {
        self.rng.gen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::CacheProfile;
    use crate::partition::RegionAlloc;

    fn lc_spec(name: &str) -> AppSpec {
        AppSpec::lc(name)
            .threads(4)
            .mean_service_ms(1.0)
            .service_sigma(0.6)
            .qos_threshold_ms(5.0)
            .max_load_qps(2000.0)
            .cache(CacheProfile::balanced())
            .build()
            .unwrap()
    }

    fn be_spec(name: &str) -> AppSpec {
        AppSpec::be(name)
            .threads(4)
            .ipc_solo(1.5)
            .cache(CacheProfile::compute())
            .build()
            .unwrap()
    }

    fn sim() -> NodeSim {
        NodeSim::new(
            MachineConfig::paper_xeon(),
            vec![lc_spec("lc"), be_spec("be")],
            7,
        )
        .unwrap()
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let err = NodeSim::new(
            MachineConfig::paper_xeon(),
            vec![lc_spec("x"), lc_spec("x")],
            1,
        );
        assert!(matches!(err, Err(SimError::DuplicateApp { .. })));
    }

    #[test]
    fn unknown_app_errors() {
        let mut s = sim();
        assert!(matches!(
            s.set_load("nope", 0.5),
            Err(SimError::UnknownApp { .. })
        ));
        assert!(matches!(
            s.set_load("be", 0.5),
            Err(SimError::WrongKind { .. })
        ));
    }

    #[test]
    fn idle_lc_app_reports_no_latency() {
        let mut s = sim();
        let obs = s.run_window();
        assert_eq!(obs.lc[0].arrivals, 0);
        assert_eq!(obs.lc[0].p95_ms, None);
        assert!(obs.lc[0].meets_qos());
    }

    #[test]
    fn low_load_latency_close_to_ideal() {
        let mut s = sim();
        s.set_load("lc", 0.1).unwrap();
        let obs = s.run_windows(6);
        let last = obs.last().unwrap();
        let p95 = last.lc[0].p95_ms.unwrap();
        let ideal = last.lc[0].ideal_ms;
        assert!(
            p95 < ideal * 1.8,
            "low-load p95 {p95} should be near ideal {ideal}"
        );
        assert!(p95 >= ideal * 0.5);
    }

    #[test]
    fn latency_grows_with_load() {
        let mut lows = Vec::new();
        let mut highs = Vec::new();
        // On 2 cores the app's capacity is ~2000 QPS; 120 % of the nominal
        // 2000 QPS max load (2400 QPS) is a genuine overload.
        for seed in 0..3 {
            let mut s = NodeSim::new(
                MachineConfig::paper_xeon().with_budget(2, 20),
                vec![lc_spec("lc")],
                seed,
            )
            .unwrap();
            s.set_load("lc", 0.3).unwrap();
            lows.push(avg_p95(&s.run_windows(8)[4..]));
            let mut s = NodeSim::new(
                MachineConfig::paper_xeon().with_budget(2, 20),
                vec![lc_spec("lc")],
                seed,
            )
            .unwrap();
            s.set_load("lc", 1.2).unwrap();
            highs.push(avg_p95(&s.run_windows(8)[4..]));
        }
        let low: f64 = lows.iter().sum::<f64>() / lows.len() as f64;
        let high: f64 = highs.iter().sum::<f64>() / highs.len() as f64;
        assert!(
            high > low * 2.0,
            "overload p95 {high} should dwarf low-load p95 {low}"
        );
    }

    fn avg_p95(obs: &[WindowObservation]) -> f64 {
        let vals: Vec<f64> = obs.iter().filter_map(|o| o.lc[0].p95_ms).collect();
        vals.iter().sum::<f64>() / vals.len() as f64
    }

    #[test]
    fn be_ipc_near_solo_when_alone_and_unconstrained() {
        let mut s = NodeSim::new(MachineConfig::paper_xeon(), vec![be_spec("be")], 3).unwrap();
        let obs = s.run_window();
        assert!((obs.be[0].ipc - 1.5).abs() < 0.01, "ipc {}", obs.be[0].ipc);
    }

    #[test]
    fn be_ipc_halves_with_half_the_cores() {
        // A 4-thread BE app on a 2-core machine (normalised against the
        // full paper machine) should achieve about half its solo IPC.
        let mut s = NodeSim::new(MachineConfig::paper_xeon(), vec![be_spec("be")], 3).unwrap();
        let mut s2 = NodeSim::with_reference(
            MachineConfig::paper_xeon().with_budget(2, 20),
            MachineConfig::paper_xeon(),
            vec![be_spec("be")],
            3,
        )
        .unwrap();
        let full = s.run_window().be[0].ipc;
        let half = s2.run_window().be[0].ipc;
        assert!(
            (half / full - 0.5).abs() < 0.05,
            "expected ~half IPC, got {half} vs {full}"
        );
    }

    #[test]
    fn partition_validation_rejects_starvation() {
        let mut s = sim();
        // All 10 cores isolated to the LC app leaves BE without any core.
        let p = Partition::strict(vec![RegionAlloc::new(10, 10), RegionAlloc::EMPTY]);
        assert!(s.set_partition(p).is_err());
    }

    #[test]
    fn partition_change_counts_and_charges_warmup() {
        let mut s = sim();
        let mut p = Partition::all_shared(2);
        p.set_isolated(0.into(), RegionAlloc::new(2, 4));
        s.set_partition(p.clone()).unwrap();
        assert_eq!(s.adjustments(), 1);
        // Identical partition is a no-op.
        s.set_partition(p).unwrap();
        assert_eq!(s.adjustments(), 1);
    }

    #[test]
    fn determinism_same_seed_same_results() {
        let run = |seed: u64| {
            let mut s = NodeSim::new(
                MachineConfig::paper_xeon(),
                vec![lc_spec("lc"), be_spec("be")],
                seed,
            )
            .unwrap();
            s.set_load("lc", 0.6).unwrap();
            s.run_windows(4)
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn starved_app_reports_growing_latency() {
        let mut s = NodeSim::new(
            MachineConfig::paper_xeon().with_budget(1, 20),
            vec![lc_spec("greedy"), lc_spec("victim")],
            5,
        )
        .unwrap();
        // Greedy holds the single core; victim only has the (empty) shared
        // region... that would be rejected, so give victim load on the same
        // shared core and greedy an isolated core—victim starves fully.
        s.set_load("victim", 0.5).unwrap();
        let mut p = Partition::all_shared(2);
        p.set_isolated(0.into(), RegionAlloc::new(0, 0));
        s.set_partition(p).unwrap();
        // Saturate the core with greedy traffic at overload.
        s.set_load("greedy", 3.0).unwrap();
        let obs = s.run_windows(8);
        let last = obs.last().unwrap().lc_by_name("victim").unwrap();
        assert!(
            last.p95_ms.unwrap() > last.qos_ms,
            "starved victim should violate QoS, got {:?}",
            last.p95_ms
        );
    }

    #[test]
    fn tracing_collects_full_run_histograms() {
        let mut s = sim();
        s.enable_tracing();
        s.set_load("lc", 0.5).unwrap();
        s.run_windows(4);
        let h = s.latency_histogram("lc").unwrap().expect("tracing on");
        assert!(h.count() > 100, "completions recorded: {}", h.count());
        let summary = h.summary().unwrap();
        assert!(summary.p99_ms >= summary.p50_ms);
        // BE apps have no latencies; the histogram exists but stays empty.
        let be = s.latency_histogram("be").unwrap().expect("tracing on");
        assert_eq!(be.count(), 0);
        assert!(s.latency_histogram("nope").is_err());
        // Without tracing, None.
        let s2 = sim();
        assert!(s2.latency_histogram("lc").unwrap().is_none());
    }

    #[test]
    fn deeper_tail_quantiles_report_higher_latency() {
        let run = |q: f64| {
            let mut s = NodeSim::new(MachineConfig::paper_xeon(), vec![lc_spec("lc")], 3).unwrap();
            s.set_tail_quantile(q);
            s.set_load("lc", 0.6).unwrap();
            let obs = s.run_windows(6);
            obs.last().unwrap().lc[0].p95_ms.unwrap()
        };
        assert!(run(0.99) > run(0.5), "p99 must exceed the median");
    }

    #[test]
    fn window_length_is_respected() {
        let mut s = sim();
        s.set_window_ms(250.0);
        let obs = s.run_window();
        assert!((obs.end_ms - obs.start_ms - 250.0).abs() < 1e-6);
        assert!((s.now().as_ms() - 250.0).abs() < 1e-6);
    }

    #[test]
    fn request_arena_matches_vec_semantics() {
        let mut arena = RequestArena::new(&[3, 0, 2]);
        let req = |ms: f64| Request {
            arrival: SimTime::from_ms(ms),
            remaining_ms: ms,
        };
        let mut shadow: Vec<Request> = Vec::new();
        for v in [5.0, 1.0, 3.0] {
            arena.push(0, req(v));
            shadow.push(req(v));
        }
        assert_eq!(arena.len(0), 3);
        assert_eq!(arena.cap(1), 0);
        assert_eq!(
            arena.min_remaining(0).to_bits(),
            1.0f64.to_bits(),
            "fold-min over the slab"
        );
        assert_eq!(arena.min_remaining(1), f64::INFINITY);
        // swap_remove mirrors Vec::swap_remove element-for-element.
        let a = arena.swap_remove(0, 0);
        let b = shadow.swap_remove(0);
        assert_eq!(a.remaining_ms.to_bits(), b.remaining_ms.to_bits());
        let order: Vec<f64> = arena.slab(0).iter().map(|r| r.remaining_ms).collect();
        let shadow_order: Vec<f64> = shadow.iter().map(|r| r.remaining_ms).collect();
        assert_eq!(order, shadow_order);
        // Apps are independent slabs.
        arena.push(2, req(9.0));
        assert_eq!(arena.len(0), 2);
        assert_eq!(arena.len(2), 1);
    }

    #[test]
    fn packed_and_wide_cache_paths_agree() {
        let machine = MachineConfig::paper_xeon();
        let bw = BandwidthModel::new(machine.membw_gbps);
        let partition = Partition::all_shared(3);
        let profile = CacheProfile::balanced();
        let mut demands: Vec<AppDemand> = (0..3)
            .map(|i| AppDemand {
                kind: if i == 2 { AppKind::Be } else { AppKind::Lc },
                busy: 0,
                curve: profile.curve(machine.llc_ways),
                bw_per_thread: profile.bw_gbps_per_thread,
            })
            .collect();
        let mut packed = RateCache::new();
        packed.set_layout(&[4, 4, 4]);
        let mut wide = RateCache::new(); // no layout: wide path only
        let mut out_p = Vec::new();
        let mut out_w = Vec::new();
        for step in 0..40u32 {
            for (j, d) in demands.iter_mut().enumerate() {
                d.busy = (step + j as u32) % 5;
            }
            let warm = u64::from(step % 8);
            let policy = if step % 2 == 0 {
                SharingPolicy::Fair
            } else {
                SharingPolicy::LcPriority
            };
            let hit_p = packed.rates_for(
                &machine, &partition, &demands, warm, policy, &bw, &mut out_p,
            );
            let hit_w = wide.rates_for(
                &machine, &partition, &demands, warm, policy, &bw, &mut out_w,
            );
            assert_eq!(hit_p, hit_w, "hit/miss patterns must agree at step {step}");
            assert_eq!(
                out_p.as_slice(),
                out_w.as_slice(),
                "rates diverge at {step}"
            );
        }
        assert_eq!(packed.hits(), wide.hits());
        assert_eq!(packed.entries(), wide.entries());
        // A busy count overflowing its declared bit field must not alias a
        // packed entry: it falls back to the wide path and stays correct.
        demands[0].busy = 31;
        let direct = compute_rates(&machine, &partition, &demands, SharingPolicy::Fair, &bw);
        packed.rates_for(
            &machine,
            &partition,
            &demands,
            0,
            SharingPolicy::Fair,
            &bw,
            &mut out_p,
        );
        assert_eq!(out_p.as_slice(), direct.as_slice());
    }

    #[test]
    fn cache_layout_packs_large_mixes() {
        // Fig. 12's shape: 8 apps × 4 threads → 1 + 8 + 8·3 = 33 bits.
        let mut c = RateCache::new();
        c.set_layout(&[4; 8]);
        assert!(c.packable, "8×4-thread mix must pack into u64");
        // A pathological layout that cannot pack falls back cleanly.
        c.set_layout(&[u32::MAX; 8]);
        assert!(!c.packable);
    }

    #[test]
    fn warm_boundary_crossing_refreshes_cached_speeds() {
        // After a repartition the node runs penalised for warmup_ms; the
        // cached-speed refresh must drop the penalty once the boundary
        // passes even if no event dirties the rates at that exact tick.
        let mut s = sim();
        let mut p = Partition::all_shared(2);
        p.set_isolated(0.into(), RegionAlloc::new(2, 4));
        s.set_partition(p).unwrap();
        // BE-only progress: window 1 overlaps the 50 ms warm-up, later
        // windows do not; IPC must recover to the steady value.
        let first = s.run_window().be[0].ipc;
        s.run_window();
        let steady = s.run_window().be[0].ipc;
        assert!(
            steady > first,
            "post-warm-up IPC {steady} must exceed the penalised {first}"
        );
    }
}
