use std::collections::{HashMap, VecDeque};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Exp, LogNormal};
use serde::{Deserialize, Serialize};

use crate::app::{AppId, AppKind, AppSpec, KindParams};
use crate::bandwidth::BandwidthModel;
use crate::cache::MissRatioCurve;
use crate::contention::{
    compute_rates, compute_rates_into, AppDemand, AppRates, RateScratch, SharingPolicy,
};
use crate::error::SimError;
use crate::observation::{BeWindowStats, LcWindowStats, WindowObservation};
use crate::partition::Partition;
use crate::quantile::{percentile_in_place, TailEstimator};
use crate::resources::MachineConfig;
use crate::time::SimTime;
use crate::trace::LatencyHistogram;

/// Costs charged when the scheduler repartitions resources: every
/// application whose allocation changed runs with a degraded speed factor
/// for a warm-up period (cache refill, thread migration, context switches).
///
/// This is what makes "ping-ponging" strategies visibly expensive in the
/// simulation, mirroring the overhead discussion in §IV-D of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverheadModel {
    /// How long the degradation lasts after a reallocation (ms).
    pub warmup_ms: f64,
    /// Speed multiplier applied during warm-up, in `(0, 1]`.
    pub warmup_penalty: f64,
}

impl Default for OverheadModel {
    fn default() -> Self {
        OverheadModel {
            warmup_ms: 50.0,
            warmup_penalty: 0.85,
        }
    }
}

/// One outstanding request of an LC application.
#[derive(Debug, Clone)]
struct Request {
    arrival: SimTime,
    /// Remaining service demand in core-milliseconds at speed 1.
    remaining_ms: f64,
}

/// A request counts as complete when this much work (core-ms) remains —
/// absorbs the float dust left by the subtract-and-clamp in `advance`.
const COMPLETION_EPS_MS: f64 = 1e-9;

#[derive(Debug)]
struct LcState {
    in_service: Vec<Request>,
    queue: VecDeque<Request>,
    next_arrival: SimTime,
    /// Arrival rate in requests per millisecond; zero means no load.
    lambda_per_ms: f64,
    /// Offered load as a fraction of the nominal max load.
    load_fraction: f64,
    /// The inter-arrival distribution for the current `lambda_per_ms`,
    /// built once per `set_load` instead of once per arrival. `None`
    /// while the application is silenced.
    inter_arrival: Option<Exp<f64>>,
    service: LogNormal<f64>,
    /// Exact minimum of `in_service[..].remaining_ms`, `f64::INFINITY`
    /// when nothing is in service. Maintained incrementally so
    /// `next_event` never rescans the in-service set; updated with the
    /// same subtract-and-clamp arithmetic as the requests themselves, so
    /// it stays bit-identical to a fresh scan.
    min_remaining_ms: f64,
    tail: TailEstimator,
    window_samples: Vec<f64>,
    window_arrivals: u64,
    window_completions: u64,
    window_drops: u64,
    max_outstanding: usize,
}

impl LcState {
    /// Recomputes the cached in-service minimum from scratch — called
    /// after completions remove requests (the only shrink path).
    fn refresh_min_remaining(&mut self) {
        self.min_remaining_ms = self
            .in_service
            .iter()
            .map(|r| r.remaining_ms)
            .fold(f64::INFINITY, f64::min);
    }
}

#[derive(Debug)]
struct BeState {
    /// ∫ speed_per_thread dt over the current window, in thread-ms.
    window_speed_integral: f64,
    /// The per-thread speed factor the application achieves alone on the
    /// reference machine — used to normalise reported IPC.
    solo_speed: f64,
}

#[derive(Debug)]
struct AppRuntime {
    spec: AppSpec,
    curve: MissRatioCurve,
    lc: Option<LcState>,
    be: Option<BeState>,
    warmup_until: SimTime,
    window_capacity_integral: f64,
}

impl AppRuntime {
    fn busy_threads(&self) -> u32 {
        match (&self.lc, &self.be) {
            (Some(lc), _) => lc.in_service.len() as u32,
            (None, Some(_)) => self.spec.threads(),
            (None, None) => 0,
        }
    }
}

/// Minimum samples in the current window before the per-window percentile
/// is preferred over the streaming ring estimate.
const WINDOW_P95_MIN_SAMPLES: usize = 50;

/// Entry cap of the [`RateCache`] map — a defensive bound far above any
/// reachable key population (busy counts are bounded by per-application
/// thread counts); the map is dropped wholesale if it is ever hit.
const RATE_CACHE_MAX_ENTRIES: usize = 1 << 16;

/// A memoizing front-end to the fluid contention solver
/// ([`compute_rates`]): between repartitions the busy-thread vector
/// cycles through a handful of values, so almost every solver call can be
/// answered by copying a previously computed rate vector.
///
/// The lookup key is the busy-thread count of every application combined
/// with its warm-up-active flag, plus the sharing policy; the machine,
/// partition, miss-ratio curves and bandwidth model are *not* part of the
/// key — the owner must call [`RateCache::invalidate`] whenever any of
/// those change (the node does so in `set_partition`/`set_policy`, which
/// also advances the partition epoch). Keys are packed into a reusable
/// `Vec<u32>` so a cache hit performs zero heap allocations.
///
/// The warm-up flag is included defensively: the solver's output does not
/// currently depend on it (warm-up scales thread speed *after* the
/// solve), so including it only splits entries, never falsifies them —
/// and it keeps the cache correct if warm-up ever moves into the solver.
#[derive(Debug, Default)]
pub struct RateCache {
    map: HashMap<Vec<u32>, Vec<AppRates>>,
    key: Vec<u32>,
    scratch: RateScratch,
    epoch: u64,
    hits: u64,
    misses: u64,
}

impl RateCache {
    /// Creates an empty cache at epoch zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The partition epoch: how many times the cache has been invalidated
    /// (the node bumps it on every accepted repartition or policy
    /// change).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Lookups answered from memory.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that ran the solver.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Fraction of lookups answered from memory, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Number of distinct rate vectors currently memoized.
    pub fn entries(&self) -> usize {
        self.map.len()
    }

    /// Drops every memoized entry and advances the epoch. Must be called
    /// whenever the machine, partition, curves or bandwidth model change;
    /// hit/miss counters survive.
    pub fn invalidate(&mut self) {
        self.map.clear();
        self.epoch += 1;
    }

    /// Computes (or recalls) the rate vector for `demands` under the
    /// current partition epoch, writing it into `out` (cleared first).
    /// Bit `i` of `warm_mask` marks application `i` as inside its warm-up
    /// window (applications past index 63 share the last bit — harmless,
    /// see the type docs). Returns `true` on a cache hit.
    #[allow(clippy::too_many_arguments)]
    pub fn rates_for(
        &mut self,
        machine: &MachineConfig,
        partition: &Partition,
        demands: &[AppDemand],
        warm_mask: u64,
        policy: SharingPolicy,
        bw: &BandwidthModel,
        out: &mut Vec<AppRates>,
    ) -> bool {
        self.key.clear();
        self.key.push(match policy {
            SharingPolicy::Fair => 0,
            SharingPolicy::LcPriority => 1,
        });
        self.key.push(warm_mask as u32);
        self.key.push((warm_mask >> 32) as u32);
        self.key.extend(demands.iter().map(|d| d.busy));
        if let Some(cached) = self.map.get(self.key.as_slice()) {
            self.hits += 1;
            out.clear();
            out.extend_from_slice(cached);
            return true;
        }
        self.misses += 1;
        compute_rates_into(
            machine,
            partition,
            demands,
            policy,
            bw,
            &mut self.scratch,
            out,
        );
        if self.map.len() >= RATE_CACHE_MAX_ENTRIES {
            self.map.clear();
        }
        self.map.insert(self.key.clone(), out.clone());
        false
    }
}

/// Counters describing how much work one [`NodeSim`] has done — used by
/// the experiment engine to report simulated-events/sec and rate-cache
/// effectiveness in `repro --timings`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimPerfStats {
    /// Discrete events processed (arrivals, completions, warm-up
    /// expiries); window boundaries are not counted.
    pub events: u64,
    /// Rate-cache lookups answered from memory.
    pub rate_hits: u64,
    /// Rate-cache lookups that ran the fluid solver.
    pub rate_misses: u64,
}

/// The simulated datacenter node.
///
/// Owns the clock, the applications, the current [`Partition`] and the
/// [`SharingPolicy`], and advances in monitoring windows. See the crate
/// docs for the model and a usage example.
#[derive(Debug)]
pub struct NodeSim {
    machine: MachineConfig,
    reference: MachineConfig,
    bw: BandwidthModel,
    apps: Vec<AppRuntime>,
    partition: Partition,
    policy: SharingPolicy,
    overhead: OverheadModel,
    window: SimTime,
    time: SimTime,
    window_index: u64,
    rng: StdRng,
    rates: Vec<AppRates>,
    rates_dirty: bool,
    /// Persistent demand vector handed to the solver; only the `busy`
    /// fields change between calls (kind, curve and bandwidth appetite
    /// are fixed per application).
    demands: Vec<AppDemand>,
    rate_cache: RateCache,
    /// Discrete events processed since construction.
    events: u64,
    adjustments: u64,
    tail_quantile: f64,
    /// Per-app whole-run latency histograms, populated when tracing is on.
    histograms: Option<Vec<LatencyHistogram>>,
}

impl NodeSim {
    /// Creates a node where the reference machine (against which cache
    /// factors and solo IPC are normalised) is the machine itself.
    ///
    /// # Errors
    ///
    /// Propagates machine validation failures and rejects duplicate
    /// application names.
    pub fn new(machine: MachineConfig, specs: Vec<AppSpec>, seed: u64) -> Result<Self, SimError> {
        Self::with_reference(machine, machine, specs, seed)
    }

    /// Creates a node whose resources are `machine` but whose performance
    /// normalisation point is `reference` — used by the resource-scaling
    /// experiments, which shrink the core/way budget while keeping solo
    /// performance defined on the full paper machine.
    ///
    /// # Errors
    ///
    /// Propagates machine validation failures and rejects duplicate
    /// application names.
    pub fn with_reference(
        machine: MachineConfig,
        reference: MachineConfig,
        specs: Vec<AppSpec>,
        seed: u64,
    ) -> Result<Self, SimError> {
        machine.validate()?;
        reference.validate()?;
        for (i, a) in specs.iter().enumerate() {
            if specs[..i].iter().any(|b| b.name() == a.name()) {
                return Err(SimError::DuplicateApp {
                    name: a.name().to_owned(),
                });
            }
        }
        let bw = BandwidthModel::new(machine.membw_gbps);
        let ref_bw = BandwidthModel::new(reference.membw_gbps);
        let apps: Vec<AppRuntime> = specs
            .into_iter()
            .map(|spec| {
                let curve = spec.cache_profile().curve(reference.llc_ways);
                let (lc, be) = match &spec.params {
                    KindParams::Lc(p) => {
                        let sigma = p.sigma.max(1e-6);
                        let mu = p.mean_service_ms.ln() - sigma * sigma / 2.0;
                        let service = LogNormal::new(mu, sigma)
                            .expect("validated service distribution parameters");
                        (
                            Some(LcState {
                                in_service: Vec::new(),
                                queue: VecDeque::new(),
                                next_arrival: SimTime::NEVER,
                                lambda_per_ms: 0.0,
                                load_fraction: 0.0,
                                inter_arrival: None,
                                service,
                                min_remaining_ms: f64::INFINITY,
                                tail: TailEstimator::new(512),
                                window_samples: Vec::new(),
                                window_arrivals: 0,
                                window_completions: 0,
                                window_drops: 0,
                                max_outstanding: spec.max_outstanding().expect("LC spec has a cap")
                                    as usize,
                            }),
                            None,
                        )
                    }
                    KindParams::Be(_) => {
                        // Solo speed: the application alone on the reference
                        // machine with every thread busy.
                        let demand = AppDemand {
                            kind: AppKind::Be,
                            busy: spec.threads(),
                            curve,
                            bw_per_thread: spec.cache_profile().bw_gbps_per_thread,
                        };
                        let solo = compute_rates(
                            &reference,
                            &Partition::all_shared(1),
                            &[demand],
                            SharingPolicy::Fair,
                            &ref_bw,
                        );
                        (
                            None,
                            Some(BeState {
                                window_speed_integral: 0.0,
                                solo_speed: solo[0].speed_per_thread.max(1e-9),
                            }),
                        )
                    }
                };
                AppRuntime {
                    spec,
                    curve,
                    lc,
                    be,
                    warmup_until: SimTime::ZERO,
                    window_capacity_integral: 0.0,
                }
            })
            .collect();
        let partition = Partition::all_shared(apps.len());
        let demands: Vec<AppDemand> = apps
            .iter()
            .map(|a| AppDemand {
                kind: a.spec.kind(),
                busy: a.busy_threads(),
                curve: a.curve,
                bw_per_thread: a.spec.cache_profile().bw_gbps_per_thread,
            })
            .collect();
        let mut sim = NodeSim {
            machine,
            reference,
            bw,
            apps,
            partition,
            policy: SharingPolicy::Fair,
            overhead: OverheadModel::default(),
            window: SimTime::from_ms(500.0),
            time: SimTime::ZERO,
            window_index: 0,
            rng: StdRng::seed_from_u64(seed),
            rates: Vec::new(),
            rates_dirty: true,
            demands,
            rate_cache: RateCache::new(),
            events: 0,
            adjustments: 0,
            tail_quantile: 0.95,
            histograms: None,
        };
        sim.recompute_rates();
        Ok(sim)
    }

    /// The machine being simulated.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// The reference machine against which cache factors and solo IPC are
    /// normalised.
    pub fn reference(&self) -> &MachineConfig {
        &self.reference
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// The current partition.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The number of partition adjustments applied so far.
    pub fn adjustments(&self) -> u64 {
        self.adjustments
    }

    /// The current partition epoch: bumped on every accepted repartition
    /// or sharing-policy change, i.e. whenever the rate cache is
    /// invalidated.
    pub fn partition_epoch(&self) -> u64 {
        self.rate_cache.epoch()
    }

    /// Work counters of this simulation: events processed and rate-cache
    /// hit/miss totals.
    pub fn perf_stats(&self) -> SimPerfStats {
        SimPerfStats {
            events: self.events,
            rate_hits: self.rate_cache.hits(),
            rate_misses: self.rate_cache.misses(),
        }
    }

    /// The application specs, in registration order.
    pub fn specs(&self) -> impl Iterator<Item = &AppSpec> {
        self.apps.iter().map(|a| &a.spec)
    }

    /// Resolves an application name to its [`AppId`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownApp`] for unregistered names.
    pub fn app_id(&self, name: &str) -> Result<AppId, SimError> {
        self.apps
            .iter()
            .position(|a| a.spec.name() == name)
            .map(AppId::from)
            .ok_or_else(|| SimError::UnknownApp {
                name: name.to_owned(),
            })
    }

    /// Sets the shared-region sharing policy.
    pub fn set_policy(&mut self, policy: SharingPolicy) {
        if self.policy != policy {
            self.policy = policy;
            self.rates_dirty = true;
            // The policy is part of the rate-cache key, so entries under
            // the old policy stay valid — but a policy flip is a
            // partition-epoch event for observers, and dropping the map
            // keeps the entry population tied to the current regime.
            self.rate_cache.invalidate();
        }
    }

    /// Overrides the monitoring-window length (default 500 ms, the paper's
    /// interval).
    pub fn set_window_ms(&mut self, ms: f64) {
        self.window = SimTime::from_ms(ms.max(1.0));
    }

    /// Overrides the repartitioning overhead model.
    pub fn set_overhead(&mut self, overhead: OverheadModel) {
        self.overhead = overhead;
    }

    /// Overrides the reported tail quantile (default 0.95, the paper's
    /// p95; e.g. 0.99 for studies of deeper tails). Clamped to
    /// `[0.5, 0.999]`.
    pub fn set_tail_quantile(&mut self, q: f64) {
        self.tail_quantile = if q.is_finite() {
            q.clamp(0.5, 0.999)
        } else {
            0.95
        };
    }

    /// Enables whole-run latency tracing: every completed request's
    /// latency is recorded in a per-application [`LatencyHistogram`]
    /// retrievable via [`NodeSim::latency_histogram`].
    pub fn enable_tracing(&mut self) {
        if self.histograms.is_none() {
            self.histograms = Some(vec![LatencyHistogram::new(); self.apps.len()]);
        }
    }

    /// The whole-run latency histogram of an LC application, if tracing
    /// is enabled.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownApp`] for unregistered names.
    pub fn latency_histogram(&self, name: &str) -> Result<Option<&LatencyHistogram>, SimError> {
        let id = self.app_id(name)?;
        Ok(self.histograms.as_ref().map(|h| &h[id.index()]))
    }

    /// Sets an LC application's offered load as a fraction of its nominal
    /// maximum load (Table IV style). A fraction of zero silences the
    /// application.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownApp`] for unregistered names and
    /// [`SimError::WrongKind`] for BE applications.
    pub fn set_load(&mut self, name: &str, fraction: f64) -> Result<(), SimError> {
        let id = self.app_id(name)?;
        let app = &mut self.apps[id.index()];
        let max_load = app.spec.max_load_qps().ok_or(SimError::WrongKind {
            name: name.to_owned(),
            operation: "set_load",
        })?;
        let lc = app.lc.as_mut().expect("LC app has LC state");
        let fraction = fraction.clamp(0.0, 10.0);
        lc.load_fraction = fraction;
        lc.lambda_per_ms = fraction * max_load / 1000.0;
        // Build the inter-arrival distribution once here; `process_arrival`
        // reuses it for every subsequent draw (construction is
        // deterministic, so the draw sequence is unchanged).
        lc.inter_arrival = if lc.lambda_per_ms > 0.0 {
            Some(Exp::new(lc.lambda_per_ms).expect("positive rate"))
        } else {
            None
        };
        lc.next_arrival = if let Some(inter) = lc.inter_arrival {
            self.time + SimTime::from_ms(inter.sample(&mut self.rng))
        } else {
            SimTime::NEVER
        };
        // Size the tail ring to roughly three windows of completions so the
        // estimate tracks load changes with bounded lag even for low-QPS
        // applications.
        let per_window = lc.lambda_per_ms * self.window.as_ms();
        let capacity = ((per_window * 3.0) as usize).clamp(64, 4096);
        let mut fresh = TailEstimator::new(capacity);
        // Seed with the previous median so the estimator is not empty right
        // after a resize; real samples quickly dominate.
        if let Some(p) = lc.tail.quantile(0.5) {
            fresh.record(p);
        }
        lc.tail = fresh;
        Ok(())
    }

    /// Applies a new partition, validating capacity and that no application
    /// is left without any reachable core. Applications whose isolated
    /// allocation changed (and everyone touching the shared region when its
    /// size changed) pay the configured warm-up penalty.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidPartition`] on capacity violation,
    /// starvation, or an application-count mismatch.
    pub fn set_partition(&mut self, partition: Partition) -> Result<(), SimError> {
        if partition.num_apps() != self.apps.len() {
            return Err(SimError::InvalidPartition {
                reason: format!(
                    "partition covers {} apps, simulation has {}",
                    partition.num_apps(),
                    self.apps.len()
                ),
            });
        }
        partition.validate(&self.machine)?;
        let shared_cores = partition.shared_cores(&self.machine);
        for (id, alloc) in partition.iter() {
            if alloc.cores == 0 && shared_cores == 0 {
                return Err(SimError::InvalidPartition {
                    reason: format!(
                        "application {:?} has no isolated cores and the shared region is empty",
                        self.apps[id.index()].spec.name()
                    ),
                });
            }
        }
        if partition == self.partition {
            return Ok(());
        }
        let changed = self.partition.changed_apps(&partition);
        let shared_changed = partition.shared_cores(&self.machine)
            != self.partition.shared_cores(&self.machine)
            || partition.shared_ways(&self.machine) != self.partition.shared_ways(&self.machine);
        let until = self.time + SimTime::from_ms(self.overhead.warmup_ms);
        for (i, app) in self.apps.iter_mut().enumerate() {
            let touched = changed.contains(&AppId::from(i))
                || (shared_changed && partition.isolated(i.into()).cores == 0);
            if touched {
                app.warmup_until = until;
            }
        }
        self.partition = partition;
        self.adjustments += 1;
        self.rates_dirty = true;
        // Memoized rate vectors were computed under the old partition.
        self.rate_cache.invalidate();
        Ok(())
    }

    /// Advances the simulation by one monitoring window and reports what a
    /// scheduler would observe.
    pub fn run_window(&mut self) -> WindowObservation {
        let start = self.time;
        let end = start + self.window;
        self.reset_window_accumulators();

        while self.time < end {
            if self.rates_dirty {
                self.recompute_rates();
            }
            let (next, kind) = self.next_event(end);
            let dt_ms = next.since(self.time).as_ms();
            if dt_ms > 0.0 {
                self.advance(dt_ms);
            }
            self.time = next;
            match kind {
                EventKind::WindowEnd => break,
                EventKind::Arrival(app) => self.process_arrival(app),
                EventKind::Completion(app) => self.process_completions(app),
                EventKind::WarmupExpiry => {
                    // Speeds change when warm-up ends.
                    self.rates_dirty = true;
                }
            }
            self.events += 1;
        }

        self.window_index += 1;
        self.collect_observation(start, end)
    }

    /// Runs `n` consecutive windows.
    pub fn run_windows(&mut self, n: usize) -> Vec<WindowObservation> {
        let mut observations = Vec::with_capacity(n);
        for _ in 0..n {
            observations.push(self.run_window());
        }
        observations
    }

    // --- internals ------------------------------------------------------

    fn reset_window_accumulators(&mut self) {
        for app in &mut self.apps {
            app.window_capacity_integral = 0.0;
            if let Some(lc) = &mut app.lc {
                lc.window_samples.clear();
                lc.window_arrivals = 0;
                lc.window_completions = 0;
                lc.window_drops = 0;
            }
            if let Some(be) = &mut app.be {
                be.window_speed_integral = 0.0;
            }
        }
    }

    fn recompute_rates(&mut self) {
        let mut warm_mask = 0u64;
        for (i, (d, a)) in self.demands.iter_mut().zip(self.apps.iter()).enumerate() {
            d.busy = a.busy_threads();
            if self.time < a.warmup_until {
                warm_mask |= 1 << i.min(63);
            }
        }
        self.rate_cache.rates_for(
            &self.machine,
            &self.partition,
            &self.demands,
            warm_mask,
            self.policy,
            &self.bw,
            &mut self.rates,
        );
        self.rates_dirty = false;
    }

    /// The speed at which one running thread of `app` progresses right now,
    /// including any warm-up penalty.
    fn thread_speed(&self, app: usize) -> f64 {
        let mut speed = self.rates[app].speed_per_thread;
        if self.time < self.apps[app].warmup_until {
            speed *= self.overhead.warmup_penalty;
        }
        speed
    }

    fn next_event(&self, window_end: SimTime) -> (SimTime, EventKind) {
        let mut best = (window_end, EventKind::WindowEnd);
        for (i, app) in self.apps.iter().enumerate() {
            if let Some(lc) = &app.lc {
                if lc.next_arrival < best.0 {
                    best = (lc.next_arrival, EventKind::Arrival(i));
                }
                let speed = self.thread_speed(i);
                if speed > 1e-12 && !lc.in_service.is_empty() {
                    // The cached minimum replaces a scan over `in_service`;
                    // it is maintained with the exact arithmetic of the
                    // per-request updates, so the event time is unchanged.
                    let min_remaining = lc.min_remaining_ms;
                    debug_assert_eq!(
                        min_remaining.to_bits(),
                        lc.in_service
                            .iter()
                            .map(|r| r.remaining_ms)
                            .fold(f64::INFINITY, f64::min)
                            .to_bits(),
                        "cached min-remaining drifted from the in-service set"
                    );
                    // Round *up* to the clock's microsecond resolution:
                    // rounding down would schedule a zero-length step
                    // that never completes the request (a livelock).
                    let dt_us = ((min_remaining / speed).max(0.0) * 1_000.0).ceil() as u64;
                    let t = self.time + SimTime::from_us(dt_us.max(1));
                    if t < best.0 {
                        best = (t, EventKind::Completion(i));
                    }
                }
            }
            if app.warmup_until > self.time && app.warmup_until < best.0 {
                best = (app.warmup_until, EventKind::WarmupExpiry);
            }
        }
        // Guarantee forward progress: an event computed for "now" (e.g. a
        // zero-remaining completion) is processed without advancing time.
        (best.0.max(self.time), best.1)
    }

    fn advance(&mut self, dt_ms: f64) {
        for i in 0..self.apps.len() {
            let speed = self.thread_speed(i);
            let capacity = self.rates[i].core_capacity;
            let app = &mut self.apps[i];
            app.window_capacity_integral += capacity * dt_ms;
            if let Some(lc) = &mut app.lc {
                for req in &mut lc.in_service {
                    req.remaining_ms = (req.remaining_ms - speed * dt_ms).max(0.0);
                }
                // Same subtract-and-clamp as the requests: the cached
                // minimum is one of the request values, and the update is
                // monotone, so it tracks the true minimum bit-for-bit.
                if !lc.in_service.is_empty() {
                    lc.min_remaining_ms = (lc.min_remaining_ms - speed * dt_ms).max(0.0);
                }
            }
            if let Some(be) = &mut app.be {
                be.window_speed_integral += speed * app.spec.threads() as f64 * dt_ms;
            }
        }
    }

    fn process_arrival(&mut self, app_index: usize) {
        let work: f64;
        let next: SimTime;
        {
            let lc = self.apps[app_index].lc.as_ref().expect("arrival on LC app");
            let lambda = lc.lambda_per_ms;
            if lambda <= 0.0 {
                // Load was zeroed while an arrival was in flight.
                self.apps[app_index].lc.as_mut().unwrap().next_arrival = SimTime::NEVER;
                return;
            }
            work = lc.service.sample(&mut self.rng).max(1e-6);
            // The distribution is cached by `set_load`; constructing it is
            // draw-free, so reusing it leaves the RNG stream untouched.
            let exp = lc
                .inter_arrival
                .as_ref()
                .expect("cached inter-arrival distribution for positive rate");
            // Floor at the clock resolution (1 µs) so time always advances.
            let gap: f64 = exp.sample(&mut self.rng).max(1e-3);
            next = self.time + SimTime::from_ms(gap);
        }
        let threads = self.apps[app_index].spec.threads() as usize;
        let lc = self.apps[app_index].lc.as_mut().unwrap();
        lc.window_arrivals += 1;
        lc.next_arrival = next;
        let request = Request {
            arrival: self.time,
            remaining_ms: work,
        };
        if lc.in_service.len() < threads {
            lc.in_service.push(request);
            // `min(work)` equals a fresh fold over `in_service`: the other
            // entries already fold to the cached value.
            lc.min_remaining_ms = lc.min_remaining_ms.min(work);
            self.rates_dirty = true; // busy count changed
        } else if lc.in_service.len() + lc.queue.len() < lc.max_outstanding {
            lc.queue.push_back(request);
        } else {
            // The client pool is exhausted: the request is dropped (a
            // timeout from the user's point of view).
            lc.window_drops += 1;
        }
    }

    /// Processes the `Completion` event dispatched for `primary`.
    ///
    /// The event carries the owning app, but requests of *other* apps can
    /// reach zero remaining work at the same microsecond (their event is
    /// still queued for this instant). The old code handled that by
    /// scanning every in-service request of every app; here the cached
    /// per-app minimum reduces the sweep to one float compare per app, and
    /// only due apps pay the completion loop. Apps are visited in index
    /// order, exactly as before.
    fn process_completions(&mut self, primary: usize) {
        debug_assert!(
            self.apps[primary]
                .lc
                .as_ref()
                .is_some_and(|lc| lc.min_remaining_ms <= COMPLETION_EPS_MS),
            "completion dispatched for an app with no finished request"
        );
        for i in 0..self.apps.len() {
            let due = i == primary
                || self.apps[i].lc.as_ref().is_some_and(|lc| {
                    !lc.in_service.is_empty() && lc.min_remaining_ms <= COMPLETION_EPS_MS
                });
            if due {
                self.complete_app(i);
            }
        }
    }

    /// Retires every finished request of app `i` and promotes queued work
    /// onto the freed threads — byte-for-byte the per-app body of the old
    /// all-apps completion scan.
    fn complete_app(&mut self, i: usize) {
        let threads = self.apps[i].spec.threads() as usize;
        let now = self.time;
        let Some(lc) = self.apps[i].lc.as_mut() else {
            return;
        };
        let mut completed_any = false;
        let mut j = 0;
        while j < lc.in_service.len() {
            if lc.in_service[j].remaining_ms <= COMPLETION_EPS_MS {
                let req = lc.in_service.swap_remove(j);
                let latency = now.since(req.arrival).as_ms();
                lc.tail.record(latency);
                lc.window_samples.push(latency);
                lc.window_completions += 1;
                if let Some(hists) = &mut self.histograms {
                    hists[i].record(latency);
                }
                completed_any = true;
            } else {
                j += 1;
            }
        }
        if completed_any {
            while lc.in_service.len() < threads {
                match lc.queue.pop_front() {
                    Some(req) => lc.in_service.push(req),
                    None => break,
                }
            }
            lc.refresh_min_remaining();
            self.rates_dirty = true;
        }
    }

    fn collect_observation(&mut self, start: SimTime, end: SimTime) -> WindowObservation {
        let window_ms = end.since(start).as_ms().max(1e-9);
        let now = self.time;
        let tail_quantile = self.tail_quantile;
        let mut lc_stats = Vec::with_capacity(self.apps.len());
        let mut be_stats = Vec::with_capacity(self.apps.len());
        for app in &mut self.apps {
            let mean_capacity = app.window_capacity_integral / window_ms;
            if let Some(lc) = &mut app.lc {
                // Selection reorders `window_samples` in place; the buffer
                // is a window-local multiset cleared at the next window
                // start, so the order is free to give away.
                let mut p95 = if lc.window_samples.len() >= WINDOW_P95_MIN_SAMPLES {
                    percentile_in_place(&mut lc.window_samples, tail_quantile)
                } else {
                    lc.tail.quantile(tail_quantile)
                };
                // Starvation floor: with zero completions this window and
                // work outstanding, a latency monitor would report at least
                // the age of the oldest outstanding request.
                if lc.window_completions == 0 {
                    let oldest = lc
                        .in_service
                        .iter()
                        .chain(lc.queue.iter())
                        .map(|r| r.arrival)
                        .min();
                    if let Some(arrival) = oldest {
                        let age = now.since(arrival).as_ms();
                        p95 = Some(p95.map_or(age, |v| v.max(age)));
                    }
                }
                lc_stats.push(LcWindowStats {
                    name: app.spec.name().to_owned(),
                    p95_ms: p95,
                    ideal_ms: app.spec.ideal_tail_ms().expect("LC app"),
                    qos_ms: app.spec.qos_threshold_ms().expect("LC app"),
                    load: lc.load_fraction,
                    arrivals: lc.window_arrivals,
                    completions: lc.window_completions,
                    drops: lc.window_drops,
                    backlog: lc.in_service.len() + lc.queue.len(),
                    mean_core_capacity: mean_capacity,
                });
            }
            if let Some(be) = &app.be {
                let mean_speed = be.window_speed_integral / (window_ms * app.spec.threads() as f64);
                let ipc_solo = app.spec.ipc_solo().expect("BE app");
                be_stats.push(BeWindowStats {
                    name: app.spec.name().to_owned(),
                    ipc: ipc_solo * mean_speed / be.solo_speed,
                    ipc_solo,
                    mean_core_capacity: mean_capacity,
                });
            }
        }
        WindowObservation {
            window_index: self.window_index - 1,
            start_ms: start.as_ms(),
            end_ms: end.as_ms(),
            lc: lc_stats,
            be: be_stats,
        }
    }

    /// Draws a uniform sample — exposed for deterministic experiment
    /// harness code that wants to share the node's RNG stream.
    pub fn rng_uniform(&mut self) -> f64 {
        self.rng.gen()
    }
}

#[derive(Debug, Clone, Copy)]
enum EventKind {
    WindowEnd,
    Arrival(usize),
    /// A request of the carried app reached zero remaining work; the
    /// index lets completion processing skip straight to the owner.
    Completion(usize),
    WarmupExpiry,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::CacheProfile;
    use crate::partition::RegionAlloc;

    fn lc_spec(name: &str) -> AppSpec {
        AppSpec::lc(name)
            .threads(4)
            .mean_service_ms(1.0)
            .service_sigma(0.6)
            .qos_threshold_ms(5.0)
            .max_load_qps(2000.0)
            .cache(CacheProfile::balanced())
            .build()
            .unwrap()
    }

    fn be_spec(name: &str) -> AppSpec {
        AppSpec::be(name)
            .threads(4)
            .ipc_solo(1.5)
            .cache(CacheProfile::compute())
            .build()
            .unwrap()
    }

    fn sim() -> NodeSim {
        NodeSim::new(
            MachineConfig::paper_xeon(),
            vec![lc_spec("lc"), be_spec("be")],
            7,
        )
        .unwrap()
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let err = NodeSim::new(
            MachineConfig::paper_xeon(),
            vec![lc_spec("x"), lc_spec("x")],
            1,
        );
        assert!(matches!(err, Err(SimError::DuplicateApp { .. })));
    }

    #[test]
    fn unknown_app_errors() {
        let mut s = sim();
        assert!(matches!(
            s.set_load("nope", 0.5),
            Err(SimError::UnknownApp { .. })
        ));
        assert!(matches!(
            s.set_load("be", 0.5),
            Err(SimError::WrongKind { .. })
        ));
    }

    #[test]
    fn idle_lc_app_reports_no_latency() {
        let mut s = sim();
        let obs = s.run_window();
        assert_eq!(obs.lc[0].arrivals, 0);
        assert_eq!(obs.lc[0].p95_ms, None);
        assert!(obs.lc[0].meets_qos());
    }

    #[test]
    fn low_load_latency_close_to_ideal() {
        let mut s = sim();
        s.set_load("lc", 0.1).unwrap();
        let obs = s.run_windows(6);
        let last = obs.last().unwrap();
        let p95 = last.lc[0].p95_ms.unwrap();
        let ideal = last.lc[0].ideal_ms;
        assert!(
            p95 < ideal * 1.8,
            "low-load p95 {p95} should be near ideal {ideal}"
        );
        assert!(p95 >= ideal * 0.5);
    }

    #[test]
    fn latency_grows_with_load() {
        let mut lows = Vec::new();
        let mut highs = Vec::new();
        // On 2 cores the app's capacity is ~2000 QPS; 120 % of the nominal
        // 2000 QPS max load (2400 QPS) is a genuine overload.
        for seed in 0..3 {
            let mut s = NodeSim::new(
                MachineConfig::paper_xeon().with_budget(2, 20),
                vec![lc_spec("lc")],
                seed,
            )
            .unwrap();
            s.set_load("lc", 0.3).unwrap();
            lows.push(avg_p95(&s.run_windows(8)[4..]));
            let mut s = NodeSim::new(
                MachineConfig::paper_xeon().with_budget(2, 20),
                vec![lc_spec("lc")],
                seed,
            )
            .unwrap();
            s.set_load("lc", 1.2).unwrap();
            highs.push(avg_p95(&s.run_windows(8)[4..]));
        }
        let low: f64 = lows.iter().sum::<f64>() / lows.len() as f64;
        let high: f64 = highs.iter().sum::<f64>() / highs.len() as f64;
        assert!(
            high > low * 2.0,
            "overload p95 {high} should dwarf low-load p95 {low}"
        );
    }

    fn avg_p95(obs: &[WindowObservation]) -> f64 {
        let vals: Vec<f64> = obs.iter().filter_map(|o| o.lc[0].p95_ms).collect();
        vals.iter().sum::<f64>() / vals.len() as f64
    }

    #[test]
    fn be_ipc_near_solo_when_alone_and_unconstrained() {
        let mut s = NodeSim::new(MachineConfig::paper_xeon(), vec![be_spec("be")], 3).unwrap();
        let obs = s.run_window();
        assert!((obs.be[0].ipc - 1.5).abs() < 0.01, "ipc {}", obs.be[0].ipc);
    }

    #[test]
    fn be_ipc_halves_with_half_the_cores() {
        // A 4-thread BE app on a 2-core machine (normalised against the
        // full paper machine) should achieve about half its solo IPC.
        let mut s = NodeSim::new(MachineConfig::paper_xeon(), vec![be_spec("be")], 3).unwrap();
        let mut s2 = NodeSim::with_reference(
            MachineConfig::paper_xeon().with_budget(2, 20),
            MachineConfig::paper_xeon(),
            vec![be_spec("be")],
            3,
        )
        .unwrap();
        let full = s.run_window().be[0].ipc;
        let half = s2.run_window().be[0].ipc;
        assert!(
            (half / full - 0.5).abs() < 0.05,
            "expected ~half IPC, got {half} vs {full}"
        );
    }

    #[test]
    fn partition_validation_rejects_starvation() {
        let mut s = sim();
        // All 10 cores isolated to the LC app leaves BE without any core.
        let p = Partition::strict(vec![RegionAlloc::new(10, 10), RegionAlloc::EMPTY]);
        assert!(s.set_partition(p).is_err());
    }

    #[test]
    fn partition_change_counts_and_charges_warmup() {
        let mut s = sim();
        let mut p = Partition::all_shared(2);
        p.set_isolated(0.into(), RegionAlloc::new(2, 4));
        s.set_partition(p.clone()).unwrap();
        assert_eq!(s.adjustments(), 1);
        // Identical partition is a no-op.
        s.set_partition(p).unwrap();
        assert_eq!(s.adjustments(), 1);
    }

    #[test]
    fn determinism_same_seed_same_results() {
        let run = |seed: u64| {
            let mut s = NodeSim::new(
                MachineConfig::paper_xeon(),
                vec![lc_spec("lc"), be_spec("be")],
                seed,
            )
            .unwrap();
            s.set_load("lc", 0.6).unwrap();
            s.run_windows(4)
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn starved_app_reports_growing_latency() {
        let mut s = NodeSim::new(
            MachineConfig::paper_xeon().with_budget(1, 20),
            vec![lc_spec("greedy"), lc_spec("victim")],
            5,
        )
        .unwrap();
        // Greedy holds the single core; victim only has the (empty) shared
        // region... that would be rejected, so give victim load on the same
        // shared core and greedy an isolated core—victim starves fully.
        s.set_load("victim", 0.5).unwrap();
        let mut p = Partition::all_shared(2);
        p.set_isolated(0.into(), RegionAlloc::new(0, 0));
        s.set_partition(p).unwrap();
        // Saturate the core with greedy traffic at overload.
        s.set_load("greedy", 3.0).unwrap();
        let obs = s.run_windows(8);
        let last = obs.last().unwrap().lc_by_name("victim").unwrap();
        assert!(
            last.p95_ms.unwrap() > last.qos_ms,
            "starved victim should violate QoS, got {:?}",
            last.p95_ms
        );
    }

    #[test]
    fn tracing_collects_full_run_histograms() {
        let mut s = sim();
        s.enable_tracing();
        s.set_load("lc", 0.5).unwrap();
        s.run_windows(4);
        let h = s.latency_histogram("lc").unwrap().expect("tracing on");
        assert!(h.count() > 100, "completions recorded: {}", h.count());
        let summary = h.summary().unwrap();
        assert!(summary.p99_ms >= summary.p50_ms);
        // BE apps have no latencies; the histogram exists but stays empty.
        let be = s.latency_histogram("be").unwrap().expect("tracing on");
        assert_eq!(be.count(), 0);
        assert!(s.latency_histogram("nope").is_err());
        // Without tracing, None.
        let s2 = sim();
        assert!(s2.latency_histogram("lc").unwrap().is_none());
    }

    #[test]
    fn deeper_tail_quantiles_report_higher_latency() {
        let run = |q: f64| {
            let mut s = NodeSim::new(MachineConfig::paper_xeon(), vec![lc_spec("lc")], 3).unwrap();
            s.set_tail_quantile(q);
            s.set_load("lc", 0.6).unwrap();
            let obs = s.run_windows(6);
            obs.last().unwrap().lc[0].p95_ms.unwrap()
        };
        assert!(run(0.99) > run(0.5), "p99 must exceed the median");
    }

    #[test]
    fn window_length_is_respected() {
        let mut s = sim();
        s.set_window_ms(250.0);
        let obs = s.run_window();
        assert!((obs.end_ms - obs.start_ms - 250.0).abs() < 1e-6);
        assert!((s.now().as_ms() - 250.0).abs() < 1e-6);
    }
}
