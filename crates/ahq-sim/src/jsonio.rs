//! JSON conversions for the simulator's observation and partition types,
//! so run artifacts built from them round-trip through `ahq_core::json`.

use ahq_core::json::{FromJson, JsonError, JsonValue, ToJson};

use crate::observation::{BeWindowStats, LcWindowStats, WindowObservation};
use crate::partition::{MbaLevel, Partition, RegionAlloc};

impl ToJson for MbaLevel {
    fn to_json(&self) -> JsonValue {
        self.pct().to_json()
    }
}

impl FromJson for MbaLevel {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        let pct: u32 = u32::from_json(value)?;
        let level = MbaLevel::new(pct);
        if level.pct() != pct {
            return Err(JsonError::extract(format!(
                "{pct} % is not a discrete MBA level"
            )));
        }
        Ok(level)
    }
}

impl ToJson for RegionAlloc {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("cores", self.cores.to_json()),
            ("ways", self.ways.to_json()),
            ("membw_pct", self.membw_pct.to_json()),
            ("mba", self.mba.to_json()),
        ])
    }
}

impl FromJson for RegionAlloc {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(Self {
            cores: value.req("cores")?,
            ways: value.req("ways")?,
            membw_pct: value.req("membw_pct")?,
            mba: value.req("mba")?,
        })
    }
}

impl ToJson for Partition {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![(
            "isolated",
            JsonValue::Array(self.iter().map(|(_, alloc)| alloc.to_json()).collect()),
        )])
    }
}

impl FromJson for Partition {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(Partition::strict(value.req("isolated")?))
    }
}

impl ToJson for LcWindowStats {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("name", self.name.to_json()),
            ("p95_ms", self.p95_ms.to_json()),
            ("ideal_ms", self.ideal_ms.to_json()),
            ("qos_ms", self.qos_ms.to_json()),
            ("load", self.load.to_json()),
            ("arrivals", self.arrivals.to_json()),
            ("completions", self.completions.to_json()),
            ("drops", self.drops.to_json()),
            ("backlog", self.backlog.to_json()),
            ("mean_core_capacity", self.mean_core_capacity.to_json()),
        ])
    }
}

impl FromJson for LcWindowStats {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(Self {
            name: value.req("name")?,
            p95_ms: value.opt("p95_ms")?,
            ideal_ms: value.req("ideal_ms")?,
            qos_ms: value.req("qos_ms")?,
            load: value.req("load")?,
            arrivals: value.req("arrivals")?,
            completions: value.req("completions")?,
            drops: value.req("drops")?,
            backlog: value.req("backlog")?,
            mean_core_capacity: value.req("mean_core_capacity")?,
        })
    }
}

impl ToJson for BeWindowStats {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("name", self.name.to_json()),
            ("ipc", self.ipc.to_json()),
            ("ipc_solo", self.ipc_solo.to_json()),
            ("mean_core_capacity", self.mean_core_capacity.to_json()),
        ])
    }
}

impl FromJson for BeWindowStats {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(Self {
            name: value.req("name")?,
            ipc: value.req("ipc")?,
            ipc_solo: value.req("ipc_solo")?,
            mean_core_capacity: value.req("mean_core_capacity")?,
        })
    }
}

impl ToJson for WindowObservation {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("window_index", self.window_index.to_json()),
            ("start_ms", self.start_ms.to_json()),
            ("end_ms", self.end_ms.to_json()),
            ("lc", self.lc.to_json()),
            ("be", self.be.to_json()),
        ])
    }
}

impl FromJson for WindowObservation {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(Self {
            window_index: value.req("window_index")?,
            start_ms: value.req("start_ms")?,
            end_ms: value.req("end_ms")?,
            lc: value.req("lc")?,
            be: value.req("be")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahq_core::json;
    use proptest::prelude::*;

    fn sample_observation(p95: Option<f64>) -> WindowObservation {
        WindowObservation {
            window_index: 3,
            start_ms: 1500.0,
            end_ms: 2000.0,
            lc: vec![LcWindowStats {
                name: "xapian".into(),
                p95_ms: p95,
                ideal_ms: 2.77,
                qos_ms: 4.22,
                load: 0.5,
                arrivals: 412,
                completions: 409,
                drops: 1,
                backlog: 2,
                mean_core_capacity: 3.25,
            }],
            be: vec![BeWindowStats {
                name: "fluidanimate".into(),
                ipc: 1.1,
                ipc_solo: 1.6,
                mean_core_capacity: 4.0,
            }],
        }
    }

    #[test]
    fn observation_round_trips_including_missing_p95() {
        for p95 in [Some(3.875), None] {
            let obs = sample_observation(p95);
            let back: WindowObservation = json::from_str(&json::to_string(&obs)).unwrap();
            assert_eq!(back, obs);
        }
    }

    #[test]
    fn partition_round_trips() {
        let p = Partition::strict(vec![
            RegionAlloc::new(3, 6)
                .with_membw(20)
                .with_mba(MbaLevel::new(40)),
            RegionAlloc::EMPTY,
        ]);
        let back: Partition = json::from_str(&json::to_string(&p)).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn non_discrete_mba_level_is_rejected() {
        assert!(json::from_str::<MbaLevel>("35").is_err());
        assert_eq!(json::from_str::<MbaLevel>("40").unwrap(), MbaLevel::new(40));
    }

    proptest! {
        /// Window observations with arbitrary in-range payloads survive
        /// the text round-trip exactly — the artifact-type leg of the
        /// parse ∘ serialize ≡ identity property.
        #[test]
        fn observation_round_trip_property(
            (p95, load, arrivals) in (0.001f64..1e4, 0.0f64..1.5, 0u64..1_000_000),
            (ipc, cores) in (0.0f64..8.0, 0.0f64..16.0),
            has_p95 in any::<bool>(),
        ) {
            let mut obs = sample_observation(has_p95.then_some(p95));
            obs.lc[0].load = load;
            obs.lc[0].arrivals = arrivals;
            obs.be[0].ipc = ipc;
            obs.be[0].mean_core_capacity = cores;
            let back: WindowObservation =
                json::from_str(&json::to_string(&obs)).unwrap();
            prop_assert_eq!(back, obs);
        }
    }
}
