use std::fmt;

/// Errors produced while configuring or driving the simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A numeric configuration value was invalid.
    InvalidConfig {
        /// Which parameter was rejected.
        what: &'static str,
        /// Human-readable explanation of the constraint.
        reason: String,
    },
    /// A partition referenced an unknown application or oversubscribed the
    /// machine.
    InvalidPartition {
        /// Human-readable explanation.
        reason: String,
    },
    /// An application name was not found in the simulation.
    UnknownApp {
        /// The offending name.
        name: String,
    },
    /// Two applications were registered under the same name.
    DuplicateApp {
        /// The duplicated name.
        name: String,
    },
    /// An operation that only applies to one kind of application (LC / BE)
    /// was invoked on the other kind.
    WrongKind {
        /// The application name.
        name: String,
        /// What was attempted.
        operation: &'static str,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { what, reason } => {
                write!(f, "invalid configuration for {what}: {reason}")
            }
            SimError::InvalidPartition { reason } => write!(f, "invalid partition: {reason}"),
            SimError::UnknownApp { name } => write!(f, "unknown application {name:?}"),
            SimError::DuplicateApp { name } => {
                write!(f, "application {name:?} registered twice")
            }
            SimError::WrongKind { name, operation } => {
                write!(
                    f,
                    "operation {operation:?} does not apply to application {name:?}"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_offenders() {
        let err = SimError::UnknownApp {
            name: "xapian".into(),
        };
        assert!(err.to_string().contains("xapian"));
        let err = SimError::InvalidPartition {
            reason: "14 cores exceed machine capacity of 10".into(),
        };
        assert!(err.to_string().contains("14 cores"));
    }
}
