//! Whole-run latency tracing: logarithmically bucketed histograms with
//! percentile queries.
//!
//! The per-window p95 in [`crate::LcWindowStats`] is what schedulers see;
//! experiments that want the *full* latency distribution over a run (for
//! CDF plots, deep-tail studies, or cross-checking the windowed
//! estimates) enable tracing on the node and read these histograms back.

use serde::{Deserialize, Serialize};

/// A logarithmically bucketed latency histogram.
///
/// Buckets grow geometrically from `min_ms` by `growth` per bucket, so a
/// fixed number of buckets spans microseconds to minutes with bounded
/// relative error (≈ `growth - 1` per quantile query).
///
/// ```
/// use ahq_sim::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// for i in 1..=1000 {
///     h.record(i as f64 / 100.0); // 0.01 .. 10 ms uniform
/// }
/// let p50 = h.quantile(0.5).unwrap();
/// assert!((4.0..6.5).contains(&p50), "median ~5ms, got {p50}");
/// assert_eq!(h.count(), 1000);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    min_ms: f64,
    growth: f64,
    buckets: Vec<u64>,
    underflow: u64,
    count: u64,
    sum_ms: f64,
    max_ms: f64,
}

impl LatencyHistogram {
    /// Default geometry: 256 buckets from 1 µs growing 7 % per bucket —
    /// covers 1 µs to ~3 hours with ≤ 7 % relative quantile error.
    pub fn new() -> Self {
        Self::with_geometry(1e-3, 1.07, 256)
    }

    /// Custom geometry. Inputs are clamped to sane ranges.
    pub fn with_geometry(min_ms: f64, growth: f64, buckets: usize) -> Self {
        LatencyHistogram {
            min_ms: if min_ms.is_finite() && min_ms > 0.0 {
                min_ms
            } else {
                1e-3
            },
            growth: if growth.is_finite() {
                growth.max(1.001)
            } else {
                1.07
            },
            buckets: vec![0; buckets.clamp(8, 4096)],
            underflow: 0,
            count: 0,
            sum_ms: 0.0,
            max_ms: 0.0,
        }
    }

    fn bucket_index(&self, ms: f64) -> Option<usize> {
        if ms < self.min_ms {
            return None;
        }
        let idx = (ms / self.min_ms).ln() / self.growth.ln();
        Some((idx as usize).min(self.buckets.len() - 1))
    }

    /// The lower bound of bucket `i` in milliseconds.
    fn bucket_floor(&self, i: usize) -> f64 {
        self.min_ms * self.growth.powi(i as i32)
    }

    /// Records one latency (ms). Non-finite or negative samples are
    /// ignored.
    pub fn record(&mut self, ms: f64) {
        if !ms.is_finite() || ms < 0.0 {
            return;
        }
        self.count += 1;
        self.sum_ms += ms;
        self.max_ms = self.max_ms.max(ms);
        match self.bucket_index(ms) {
            Some(i) => self.buckets[i] += 1,
            None => self.underflow += 1,
        }
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency (ms), `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum_ms / self.count as f64)
    }

    /// Largest recorded latency (ms), `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max_ms)
    }

    /// The `q`-quantile (ms) with the histogram's relative error, `None`
    /// when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = self.underflow;
        if rank <= seen {
            return Some(self.min_ms);
        }
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if rank <= seen {
                // Geometric midpoint of the bucket.
                return Some(self.bucket_floor(i) * self.growth.sqrt());
            }
        }
        Some(self.max_ms)
    }

    /// Merges another histogram (must share the geometry).
    ///
    /// # Panics
    ///
    /// Panics if the geometries differ.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        assert_eq!(self.min_ms, other.min_ms, "geometry mismatch");
        assert_eq!(self.growth, other.growth, "geometry mismatch");
        assert_eq!(self.buckets.len(), other.buckets.len(), "geometry mismatch");
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.count += other.count;
        self.sum_ms += other.sum_ms;
        self.max_ms = self.max_ms.max(other.max_ms);
    }

    /// A compact percentile summary.
    pub fn summary(&self) -> Option<HistogramSummary> {
        (self.count > 0).then(|| HistogramSummary {
            count: self.count,
            mean_ms: self.mean().expect("non-empty"),
            p50_ms: self.quantile(0.50).expect("non-empty"),
            p90_ms: self.quantile(0.90).expect("non-empty"),
            p95_ms: self.quantile(0.95).expect("non-empty"),
            p99_ms: self.quantile(0.99).expect("non-empty"),
            max_ms: self.max_ms,
        })
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Percentile summary of a [`LatencyHistogram`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Recorded samples.
    pub count: u64,
    /// Mean latency, ms.
    pub mean_ms: f64,
    /// Median, ms.
    pub p50_ms: f64,
    /// 90th percentile, ms.
    pub p90_ms: f64,
    /// 95th percentile, ms.
    pub p95_ms: f64,
    /// 99th percentile, ms.
    pub p99_ms: f64,
    /// Maximum, ms.
    pub max_ms: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_are_ordered_and_accurate() {
        let mut h = LatencyHistogram::new();
        for i in 1..=10_000u64 {
            h.record(i as f64 / 1000.0); // 1 µs steps up to 10 ms
        }
        let s = h.summary().unwrap();
        assert!(s.p50_ms <= s.p90_ms && s.p90_ms <= s.p95_ms && s.p95_ms <= s.p99_ms);
        assert!((s.p50_ms - 5.0).abs() / 5.0 < 0.08, "p50 {}", s.p50_ms);
        assert!((s.p99_ms - 9.9).abs() / 9.9 < 0.08, "p99 {}", s.p99_ms);
        assert_eq!(s.count, 10_000);
        assert!((s.mean_ms - 5.0).abs() < 0.01);
        assert!((s.max_ms - 10.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_none() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert!(h.summary().is_none());
        assert_eq!(h.mean(), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    fn bad_samples_are_ignored() {
        let mut h = LatencyHistogram::new();
        h.record(f64::NAN);
        h.record(-1.0);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn underflow_lands_in_the_floor_bucket() {
        let mut h = LatencyHistogram::with_geometry(1.0, 1.1, 64);
        h.record(0.001);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(0.5), Some(1.0));
    }

    #[test]
    fn merge_combines_populations() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for _ in 0..100 {
            a.record(1.0);
            b.record(100.0);
        }
        a.merge(&b);
        assert_eq!(a.count(), 200);
        let p25 = a.quantile(0.25).unwrap();
        let p75 = a.quantile(0.75).unwrap();
        assert!(p25 < 2.0, "{p25}");
        assert!(p75 > 50.0, "{p75}");
    }

    #[test]
    #[should_panic(expected = "geometry mismatch")]
    fn merge_rejects_mismatched_geometry() {
        let mut a = LatencyHistogram::with_geometry(1.0, 1.1, 64);
        let b = LatencyHistogram::with_geometry(1.0, 1.2, 64);
        a.merge(&b);
    }

    #[test]
    fn overflow_clamps_to_last_bucket() {
        let mut h = LatencyHistogram::with_geometry(1.0, 1.1, 8);
        h.record(1e12);
        assert_eq!(h.count(), 1);
        assert!(h.quantile(1.0).unwrap() > 1.0);
    }
}
