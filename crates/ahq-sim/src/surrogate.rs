//! Closed-form LO-FI surrogate of one node's monitoring window.
//!
//! The cluster layer's fidelity ladder (DESIGN.md §8) runs quiescent nodes
//! through this module instead of the discrete-event [`crate::NodeSim`]:
//! a fixed-point solve over the same fluid contention model
//! ([`crate::compute_rates`]) yields steady-state per-application speeds,
//! and standard multi-server queueing approximations turn those speeds
//! into the per-window statistics a scheduler would otherwise observe.
//! No event loop runs, so a surrogate window costs a handful of fluid
//! solves once at construction and a few clones per window afterwards.
//!
//! The surrogate is deliberately deterministic and seed-free: two nodes
//! with the same specs, loads, partition and policy produce bit-identical
//! observations, which is what lets the cluster layer cache one
//! [`WindowObservation`] template and stamp it out per window.

use serde::{Deserialize, Serialize};

use crate::app::{AppKind, AppSpec, KindParams, LcParams};
use crate::bandwidth::BandwidthModel;
use crate::contention::{compute_rates, AppDemand, SharingPolicy};
use crate::error::SimError;
use crate::observation::{BeWindowStats, LcWindowStats, WindowObservation};
use crate::partition::Partition;
use crate::resources::MachineConfig;

/// Utilisation above which the surrogate switches from the stable-queue
/// approximation to the saturated-service model. Kept below 1 so the
/// Allen–Cunneen term never divides by zero.
const OVERLOAD_UTILISATION: f64 = 0.95;

/// Multiplier turning the mean queueing delay into a p95 contribution:
/// the wait of an M/G/c queue is roughly exponential in its tail, and an
/// exponential's p95 sits at ~3x its mean.
const TAIL_WAIT_FACTOR: f64 = 3.0;

/// Iteration cap for the busy-thread fixed point. The solve almost always
/// settles in two or three rounds; the cap only bounds pathological
/// oscillation and keeps construction deterministic either way.
const FIXED_POINT_ITERS: usize = 32;

/// Per-application steady-state overrides snapshotted from a real
/// [`crate::NodeSim`] run — the calibration hook of the fidelity ladder.
///
/// When the cluster layer demotes a node to LO-FI it snapshots the node's
/// last HI-FI round with [`SteadyCalibration::from_windows`] and hands the
/// snapshot to [`Surrogate::new`]; calibrated values then replace the
/// analytic p95 / IPC so the surrogate continues the node's actually
/// observed steady state instead of the queueing-formula estimate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SteadyCalibration {
    /// Calibrated LC tails, in observation order.
    pub lc: Vec<LcCalibration>,
    /// Calibrated BE throughputs, in observation order.
    pub be: Vec<BeCalibration>,
}

/// One LC application's calibrated steady-state tail latency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LcCalibration {
    /// Application name.
    pub name: String,
    /// Mean observed p95 across the snapshot windows; `None` when any
    /// window had no estimate (the app was effectively idle).
    pub p95_ms: Option<f64>,
}

/// One BE application's calibrated steady-state IPC.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BeCalibration {
    /// Application name.
    pub name: String,
    /// Mean observed IPC across the snapshot windows.
    pub ipc: f64,
}

impl SteadyCalibration {
    /// Snapshots per-application steady-state values from observed
    /// windows: the mean p95 of every LC application (kept only when every
    /// window produced an estimate) and the mean IPC of every BE
    /// application. Returns an empty calibration for an empty slice.
    pub fn from_windows(windows: &[WindowObservation]) -> Self {
        let Some(first) = windows.first() else {
            return SteadyCalibration {
                lc: Vec::new(),
                be: Vec::new(),
            };
        };
        let lc = first
            .lc
            .iter()
            .map(|stat| {
                let mut sum = 0.0;
                let mut complete = true;
                for w in windows {
                    match w.lc_by_name(&stat.name).and_then(|s| s.p95_ms) {
                        Some(p95) => sum += p95,
                        None => complete = false,
                    }
                }
                LcCalibration {
                    name: stat.name.clone(),
                    p95_ms: if complete {
                        Some(sum / windows.len() as f64)
                    } else {
                        None
                    },
                }
            })
            .collect();
        let be = first
            .be
            .iter()
            .map(|stat| {
                let sum: f64 = windows
                    .iter()
                    .filter_map(|w| w.be_by_name(&stat.name).map(|s| s.ipc))
                    .sum();
                BeCalibration {
                    name: stat.name.clone(),
                    ipc: sum / windows.len() as f64,
                }
            })
            .collect();
        SteadyCalibration { lc, be }
    }

    /// Calibrated p95 for an LC application, if any.
    pub fn lc_p95(&self, name: &str) -> Option<f64> {
        self.lc
            .iter()
            .find(|c| c.name == name)
            .and_then(|c| c.p95_ms)
    }

    /// Calibrated IPC for a BE application, if any.
    pub fn be_ipc(&self, name: &str) -> Option<f64> {
        self.be.iter().find(|c| c.name == name).map(|c| c.ipc)
    }

    /// Whether the calibration carries no overrides at all.
    pub fn is_empty(&self) -> bool {
        self.lc.is_empty() && self.be.is_empty()
    }
}

/// Closed-form replacement for a full [`crate::NodeSim`] window under a
/// *fixed* load mix and partition.
///
/// Construction solves the fluid contention model to a busy-thread fixed
/// point and precomputes one window's statistics; [`Surrogate::window`]
/// then stamps the template with a window index and clock. Because the
/// surrogate models a steady state, every window is identical up to its
/// index — exactly the regime the fidelity ladder demotes nodes in.
#[derive(Debug, Clone)]
pub struct Surrogate {
    window_ms: f64,
    lc: Vec<LcWindowStats>,
    be: Vec<BeWindowStats>,
}

impl Surrogate {
    /// Builds the surrogate for `specs` running on `machine` under
    /// `partition` and `policy`, with miss-ratio curves normalised against
    /// `reference` (the same convention as [`crate::NodeSim::with_reference`]).
    /// `loads` assigns LC load fractions by application name; LC
    /// applications absent from `loads` are idle. A `calibration` snapshot
    /// overrides the analytic p95 / IPC per application where present.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for an invalid machine or
    /// non-positive window, [`SimError::DuplicateApp`] for duplicate
    /// names, [`SimError::UnknownApp`] when a load names no spec, and
    /// [`SimError::WrongKind`] when a load names a BE application.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        machine: MachineConfig,
        reference: MachineConfig,
        specs: &[AppSpec],
        loads: &[(String, f64)],
        partition: &Partition,
        policy: SharingPolicy,
        window_ms: f64,
        calibration: Option<&SteadyCalibration>,
    ) -> Result<Self, SimError> {
        machine.validate()?;
        reference.validate()?;
        if !window_ms.is_finite() || window_ms <= 0.0 {
            return Err(SimError::InvalidConfig {
                what: "window_ms",
                reason: format!("must be positive and finite, got {window_ms}"),
            });
        }
        if partition.num_apps() != specs.len() {
            return Err(SimError::InvalidPartition {
                reason: format!(
                    "partition covers {} applications, specs cover {}",
                    partition.num_apps(),
                    specs.len()
                ),
            });
        }
        for (i, a) in specs.iter().enumerate() {
            if specs[..i].iter().any(|b| b.name() == a.name()) {
                return Err(SimError::DuplicateApp {
                    name: a.name().to_owned(),
                });
            }
        }

        // Resolve load fractions exactly as `NodeSim::set_load` does:
        // clamp to [0, 10] and convert to arrivals per millisecond.
        let mut fractions = vec![0.0f64; specs.len()];
        for (name, fraction) in loads {
            let i = specs
                .iter()
                .position(|s| s.name() == name.as_str())
                .ok_or_else(|| SimError::UnknownApp { name: name.clone() })?;
            if specs[i].kind() != AppKind::Lc {
                return Err(SimError::WrongKind {
                    name: name.clone(),
                    operation: "set_load",
                });
            }
            fractions[i] = fraction.clamp(0.0, 10.0);
        }

        let bw = BandwidthModel::new(machine.membw_gbps);
        let curves: Vec<_> = specs
            .iter()
            .map(|s| s.cache_profile().curve(reference.llc_ways))
            .collect();
        let lambda_per_ms: Vec<f64> = specs
            .iter()
            .zip(fractions.iter())
            .map(|(s, f)| match s.max_load_qps() {
                Some(max_load) => f * max_load / 1000.0,
                None => 0.0,
            })
            .collect();

        // --- Busy-thread fixed point ----------------------------------
        // BE applications keep every thread runnable; an LC application's
        // mean in-service count follows Little's law at its effective
        // service time, which itself depends on everyone's busy counts
        // through the contention model. Iterate to a fixed point from the
        // full-speed estimate; integer busy counts make convergence (or
        // the iteration cap) exact and deterministic.
        let busy_estimate = |spec: &AppSpec, lambda: f64, speed: f64| -> u32 {
            if lambda <= 0.0 {
                return 0;
            }
            let mean_service = spec.mean_service_ms().expect("LC spec has a mean service");
            let occupied = lambda * mean_service / speed.max(1e-9);
            (occupied.ceil().max(1.0) as u32).min(spec.threads())
        };
        let mut busy: Vec<u32> = specs
            .iter()
            .enumerate()
            .map(|(i, s)| match s.kind() {
                AppKind::Be => s.threads(),
                AppKind::Lc => busy_estimate(s, lambda_per_ms[i], 1.0),
            })
            .collect();
        let solve = |busy: &[u32]| {
            let demands: Vec<AppDemand> = specs
                .iter()
                .enumerate()
                .map(|(i, s)| AppDemand {
                    kind: s.kind(),
                    busy: busy[i],
                    curve: curves[i],
                    bw_per_thread: s.cache_profile().bw_gbps_per_thread,
                })
                .collect();
            compute_rates(&machine, partition, &demands, policy, &bw)
        };
        let mut rates = solve(&busy);
        for _ in 0..FIXED_POINT_ITERS {
            let next: Vec<u32> = specs
                .iter()
                .enumerate()
                .map(|(i, s)| match s.kind() {
                    AppKind::Be => s.threads(),
                    AppKind::Lc => busy_estimate(s, lambda_per_ms[i], rates[i].speed_per_thread),
                })
                .collect();
            if next == busy {
                break;
            }
            busy = next;
            rates = solve(&busy);
        }

        // --- Per-window statistics ------------------------------------
        let mut lc = Vec::new();
        let mut be = Vec::new();
        for (i, spec) in specs.iter().enumerate() {
            let speed = rates[i].speed_per_thread.max(1e-9);
            match &spec.params {
                KindParams::Lc(params) => {
                    let stats = lc_window(
                        spec,
                        params,
                        lambda_per_ms[i],
                        fractions[i],
                        speed,
                        rates[i].core_capacity,
                        window_ms,
                        calibration,
                    );
                    lc.push(stats);
                }
                KindParams::Be(params) => {
                    // Solo speed on the reference machine, computed exactly
                    // as `NodeSim::with_reference` does for its BE state.
                    let solo = compute_rates(
                        &reference,
                        &Partition::all_shared(1),
                        &[AppDemand {
                            kind: AppKind::Be,
                            busy: spec.threads(),
                            curve: curves[i],
                            bw_per_thread: spec.cache_profile().bw_gbps_per_thread,
                        }],
                        SharingPolicy::Fair,
                        &BandwidthModel::new(reference.membw_gbps),
                    );
                    let solo_speed = solo[0].speed_per_thread.max(1e-9);
                    let ipc = calibration
                        .and_then(|c| c.be_ipc(spec.name()))
                        .unwrap_or(params.ipc_solo * speed / solo_speed);
                    be.push(BeWindowStats {
                        name: spec.name().to_owned(),
                        ipc,
                        ipc_solo: params.ipc_solo,
                        mean_core_capacity: rates[i].core_capacity,
                    });
                }
            }
        }

        Ok(Surrogate { window_ms, lc, be })
    }

    /// Stamps the steady-state template into the observation for window
    /// `index` — identical statistics, window-specific index and clock.
    pub fn window(&self, index: u64) -> WindowObservation {
        WindowObservation {
            window_index: index,
            start_ms: index as f64 * self.window_ms,
            end_ms: (index + 1) as f64 * self.window_ms,
            lc: self.lc.clone(),
            be: self.be.clone(),
        }
    }

    /// The configured window length in milliseconds.
    pub fn window_ms(&self) -> f64 {
        self.window_ms
    }
}

/// The closed-form LC window: an M/G/c approximation at the fixed-point
/// speed. Below [`OVERLOAD_UTILISATION`] the queue is stable and the wait
/// follows the Allen–Cunneen / Sakasegawa approximation; at or above it
/// the service saturates, the client pool fills and the excess arrivals
/// drop — mirroring the discrete simulator's bounded-outstanding model.
#[allow(clippy::too_many_arguments)]
fn lc_window(
    spec: &AppSpec,
    params: &LcParams,
    lambda_per_ms: f64,
    load_fraction: f64,
    speed: f64,
    core_capacity: f64,
    window_ms: f64,
    calibration: Option<&SteadyCalibration>,
) -> LcWindowStats {
    let ideal_ms = spec.ideal_tail_ms().expect("LC spec has an ideal tail");
    let qos_ms = params.qos_threshold_ms;
    let name = spec.name().to_owned();
    if lambda_per_ms <= 0.0 {
        return LcWindowStats {
            name,
            p95_ms: None,
            ideal_ms,
            qos_ms,
            load: load_fraction,
            arrivals: 0,
            completions: 0,
            drops: 0,
            backlog: 0,
            mean_core_capacity: 0.0,
        };
    }

    let servers = spec.threads() as f64;
    let service_ms = params.mean_service_ms / speed;
    let utilisation = lambda_per_ms * service_ms / servers;
    let arrivals = (lambda_per_ms * window_ms).round() as u64;
    let max_outstanding = spec.max_outstanding().expect("LC spec has a cap") as usize;

    let (p95_ms, completions, drops, backlog, mean_core_capacity) =
        if utilisation < OVERLOAD_UTILISATION {
            // Stable queue: everything offered completes. Squared
            // coefficient of variation of a log-normal service demand is
            // exp(sigma^2) - 1.
            let sigma = params.sigma.max(1e-6);
            let cs2 = (sigma * sigma).exp() - 1.0;
            let wait_exponent = (2.0 * (servers + 1.0)).sqrt() - 1.0;
            let wq = (1.0 + cs2) / 2.0 * utilisation.powf(wait_exponent)
                / (servers * (1.0 - utilisation))
                * service_ms;
            let p95 = ideal_ms / speed + TAIL_WAIT_FACTOR * wq;
            let in_system = lambda_per_ms * (wq + service_ms);
            let backlog = (in_system.round() as usize).min(max_outstanding);
            let held = (lambda_per_ms * service_ms).min(core_capacity);
            (Some(p95), arrivals, 0, backlog, held)
        } else {
            // Saturated: throughput caps at the servers' joint rate, the
            // finite client pool fills, and the excess arrivals drop.
            let throughput = servers / service_ms * window_ms;
            let completions = (throughput.round() as u64).min(arrivals);
            let drops = arrivals - completions;
            let full_queue_wait = max_outstanding as f64 * service_ms / servers;
            let p95 = ideal_ms / speed + full_queue_wait;
            (
                Some(p95),
                completions,
                drops,
                max_outstanding,
                core_capacity,
            )
        };

    let p95_ms = match calibration.and_then(|c| c.lc_p95(&name)) {
        Some(calibrated) if p95_ms.is_some() => Some(calibrated),
        _ => p95_ms,
    };

    LcWindowStats {
        name,
        p95_ms,
        ideal_ms,
        qos_ms,
        load: load_fraction,
        arrivals,
        completions,
        drops,
        backlog,
        mean_core_capacity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::CacheProfile;

    fn lc_spec(name: &str) -> AppSpec {
        AppSpec::lc(name)
            .threads(4)
            .mean_service_ms(1.0)
            .service_sigma(0.6)
            .qos_threshold_ms(5.0)
            .max_load_qps(2000.0)
            .cache(CacheProfile::balanced())
            .build()
            .unwrap()
    }

    fn be_spec(name: &str) -> AppSpec {
        AppSpec::be(name)
            .threads(4)
            .ipc_solo(1.5)
            .cache(CacheProfile::streaming())
            .build()
            .unwrap()
    }

    fn build(
        specs: &[AppSpec],
        loads: &[(String, f64)],
        calibration: Option<&SteadyCalibration>,
    ) -> Surrogate {
        let machine = MachineConfig::paper_xeon();
        Surrogate::new(
            machine,
            machine,
            specs,
            loads,
            &Partition::all_shared(specs.len()),
            SharingPolicy::Fair,
            500.0,
            calibration,
        )
        .unwrap()
    }

    #[test]
    fn windows_are_identical_up_to_the_clock() {
        let specs = [lc_spec("svc"), be_spec("batch")];
        let sur = build(&specs, &[("svc".to_owned(), 0.4)], None);
        let w0 = sur.window(0);
        let w3 = sur.window(3);
        assert_eq!(w0.lc, w3.lc);
        assert_eq!(w0.be, w3.be);
        assert_eq!(w3.window_index, 3);
        assert_eq!(w3.start_ms, 1500.0);
        assert_eq!(w3.end_ms, 2000.0);
    }

    #[test]
    fn moderate_load_is_stable_and_within_qos() {
        let specs = [lc_spec("svc")];
        let obs = build(&specs, &[("svc".to_owned(), 0.4)], None).window(0);
        let stat = &obs.lc[0];
        // 0.4 * 2000 qps over 500 ms = 400 arrivals, all completed.
        assert_eq!(stat.arrivals, 400);
        assert_eq!(stat.completions, 400);
        assert_eq!(stat.drops, 0);
        let p95 = stat.p95_ms.expect("loaded app has a tail estimate");
        assert!(p95 >= stat.ideal_ms);
        assert!(stat.meets_qos(), "p95 {p95:.3} vs qos {}", stat.qos_ms);
    }

    #[test]
    fn idle_lc_app_reports_no_tail() {
        let specs = [lc_spec("svc")];
        let obs = build(&specs, &[], None).window(0);
        let stat = &obs.lc[0];
        assert_eq!(stat.p95_ms, None);
        assert_eq!(stat.arrivals, 0);
        assert_eq!(stat.backlog, 0);
        assert_eq!(stat.mean_core_capacity, 0.0);
    }

    #[test]
    fn overload_drops_and_saturates_the_backlog() {
        // 4 threads x 1 ms mean service support ~4000 qps at full speed;
        // offering 2x the nominal max (4000 qps) saturates them.
        let specs = [lc_spec("svc")];
        let obs = build(&specs, &[("svc".to_owned(), 4.0)], None).window(0);
        let stat = &obs.lc[0];
        assert!(stat.drops > 0, "expected drops, got {stat:?}");
        assert_eq!(stat.backlog, specs[0].max_outstanding().unwrap() as usize);
        assert!(!stat.meets_qos());
    }

    #[test]
    fn be_ipc_degrades_under_a_co_runner() {
        let solo = build(&[be_spec("batch")], &[], None).window(0).be[0].ipc;
        let specs = [lc_spec("svc"), be_spec("batch")];
        let shared = build(&specs, &[("svc".to_owned(), 0.8)], None).window(0).be[0].ipc;
        assert!(solo > 0.0);
        assert!(
            shared < solo,
            "co-located IPC {shared:.3} should fall below solo {solo:.3}"
        );
    }

    #[test]
    fn calibration_overrides_analytic_values() {
        let specs = [lc_spec("svc"), be_spec("batch")];
        let base = build(&specs, &[("svc".to_owned(), 0.4)], None).window(0);
        let calibration = SteadyCalibration {
            lc: vec![LcCalibration {
                name: "svc".to_owned(),
                p95_ms: Some(2.5),
            }],
            be: vec![BeCalibration {
                name: "batch".to_owned(),
                ipc: 0.9,
            }],
        };
        let obs = build(&specs, &[("svc".to_owned(), 0.4)], Some(&calibration)).window(0);
        assert_eq!(obs.lc[0].p95_ms, Some(2.5));
        assert_eq!(obs.be[0].ipc, 0.9);
        assert_ne!(base.lc[0].p95_ms, obs.lc[0].p95_ms);
        // Idle apps keep their `None` tail even when calibrated.
        let idle = build(&specs, &[], Some(&calibration)).window(0);
        assert_eq!(idle.lc[0].p95_ms, None);
    }

    #[test]
    fn calibration_snapshot_averages_windows() {
        let specs = [lc_spec("svc"), be_spec("batch")];
        let sur = build(&specs, &[("svc".to_owned(), 0.4)], None);
        let windows = [sur.window(0), sur.window(1)];
        let cal = SteadyCalibration::from_windows(&windows);
        assert_eq!(cal.lc_p95("svc"), windows[0].lc[0].p95_ms);
        assert_eq!(cal.be_ipc("batch"), Some(windows[0].be[0].ipc));
        assert!(SteadyCalibration::from_windows(&[]).is_empty());
    }

    #[test]
    fn unknown_or_be_loads_are_rejected() {
        let machine = MachineConfig::paper_xeon();
        let specs = [be_spec("batch")];
        let err = Surrogate::new(
            machine,
            machine,
            &specs,
            &[("nope".to_owned(), 0.5)],
            &Partition::all_shared(1),
            SharingPolicy::Fair,
            500.0,
            None,
        );
        assert!(matches!(err, Err(SimError::UnknownApp { .. })));
        let err = Surrogate::new(
            machine,
            machine,
            &specs,
            &[("batch".to_owned(), 0.5)],
            &Partition::all_shared(1),
            SharingPolicy::Fair,
            500.0,
            None,
        );
        assert!(matches!(err, Err(SimError::WrongKind { .. })));
    }
}
