use serde::{Deserialize, Serialize};

/// The memory-bandwidth contention model.
///
/// Each application advertises a bandwidth demand (GB/s) derived from its
/// active threads, per-thread traffic and current miss ratio. When the
/// summed demand exceeds the node's capacity, the memory system saturates:
/// every application's *memory-bound* execution fraction is stretched by
/// the oversubscription ratio, while its compute-bound fraction is
/// unaffected. The per-application slowdown is therefore
///
/// ```text
/// speed_mem = 1 / ((1 - mf) + mf / s),   s = capacity / total_demand
/// ```
///
/// where `mf` is the application's memory-bound fraction. This is the
/// standard fluid "latency-bandwidth knee" approximation: bandwidth hogs
/// (high `mf`, e.g. STREAM) suffer and inflict the most.
///
/// ```
/// use ahq_sim::BandwidthModel;
///
/// let model = BandwidthModel::new(68.0);
/// // Demand below capacity: nobody slows down.
/// assert_eq!(model.saturation(40.0), 1.0);
/// // 2x oversubscription halves the memory-bound part.
/// let s = model.saturation(136.0);
/// assert!((s - 0.5).abs() < 1e-12);
/// assert!((BandwidthModel::memory_slowdown(s, 1.0) - 0.5).abs() < 1e-12);
/// assert_eq!(BandwidthModel::memory_slowdown(s, 0.0), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BandwidthModel {
    capacity_gbps: f64,
}

impl BandwidthModel {
    /// Creates a model with the given capacity (GB/s); non-positive or
    /// non-finite capacities are clamped to a small positive floor so the
    /// model stays total.
    pub fn new(capacity_gbps: f64) -> Self {
        let capacity_gbps = if capacity_gbps.is_finite() {
            capacity_gbps.max(1e-3)
        } else {
            1e-3
        };
        BandwidthModel { capacity_gbps }
    }

    /// The node's bandwidth capacity in GB/s.
    pub fn capacity_gbps(&self) -> f64 {
        self.capacity_gbps
    }

    /// The fraction `s` of requested bandwidth the memory system can grant:
    /// `min(1, capacity / total_demand)`.
    pub fn saturation(&self, total_demand_gbps: f64) -> f64 {
        if total_demand_gbps <= self.capacity_gbps {
            1.0
        } else {
            self.capacity_gbps / total_demand_gbps
        }
    }

    /// The speed factor an application with memory-bound fraction
    /// `memory_fraction` retains when the memory system grants fraction
    /// `saturation` of requested bandwidth.
    pub fn memory_slowdown(saturation: f64, memory_fraction: f64) -> f64 {
        let s = saturation.clamp(1e-6, 1.0);
        let mf = memory_fraction.clamp(0.0, 1.0);
        1.0 / ((1.0 - mf) + mf / s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn under_capacity_is_free() {
        let m = BandwidthModel::new(68.0);
        assert_eq!(m.saturation(0.0), 1.0);
        assert_eq!(m.saturation(68.0), 1.0);
        assert_eq!(BandwidthModel::memory_slowdown(1.0, 0.8), 1.0);
    }

    #[test]
    fn oversubscription_slows_memory_bound_apps_more() {
        let m = BandwidthModel::new(50.0);
        let s = m.saturation(100.0);
        assert!((s - 0.5).abs() < 1e-12);
        let hog = BandwidthModel::memory_slowdown(s, 0.9);
        let compute = BandwidthModel::memory_slowdown(s, 0.1);
        assert!(hog < compute);
        assert!(hog > 0.5 - 1e-12);
        assert!(compute > 0.9);
    }

    #[test]
    fn slowdown_is_monotone_in_saturation() {
        let mut prev = 0.0;
        for i in 1..=10 {
            let s = i as f64 / 10.0;
            let v = BandwidthModel::memory_slowdown(s, 0.7);
            assert!(v > prev);
            prev = v;
        }
        assert!((prev - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_capacity_is_clamped() {
        let m = BandwidthModel::new(0.0);
        assert!(m.capacity_gbps() > 0.0);
        let m = BandwidthModel::new(f64::NAN);
        assert!(m.capacity_gbps() > 0.0);
    }
}
