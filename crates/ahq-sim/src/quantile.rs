use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

/// Computes the `p`-th percentile (0 < p < 1) of `samples` with linear
/// interpolation between order statistics, matching the common
/// "exclusive" definition used by load-testing tools.
///
/// Returns `None` for an empty slice. The input order is irrelevant; the
/// function sorts an internal copy.
pub fn percentile(samples: &[f64], p: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let p = p.clamp(0.0, 1.0);
    let rank = p * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        return Some(sorted[lo]);
    }
    let t = rank - lo as f64;
    Some(sorted[lo] + t * (sorted[hi] - sorted[lo]))
}

/// A streaming tail-latency estimator over the most recent completions.
///
/// Monitoring windows of 500 ms can see very few completions for low-QPS
/// applications (the paper's Sphinx peaks at 4.8 QPS); a per-window
/// percentile would then be mostly noise. Real monitoring systems handle
/// this by widening the aggregation horizon. The estimator keeps a ring of
/// the last `capacity` latencies and answers percentile queries over it, so
/// the estimate always reflects a statistically meaningful population while
/// still tracking load changes with bounded lag.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TailEstimator {
    ring: VecDeque<f64>,
    capacity: usize,
}

impl TailEstimator {
    /// Creates an estimator remembering the last `capacity` latencies
    /// (minimum 1).
    pub fn new(capacity: usize) -> Self {
        TailEstimator {
            ring: VecDeque::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
        }
    }

    /// Records one completed request's latency.
    pub fn record(&mut self, latency: f64) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(latency);
    }

    /// The `p`-th percentile over the remembered latencies, or `None` if
    /// nothing has completed yet.
    pub fn quantile(&self, p: f64) -> Option<f64> {
        let samples: Vec<f64> = self.ring.iter().copied().collect();
        percentile(&samples, p)
    }

    /// Number of remembered samples.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no sample has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Forgets all remembered samples (used when an experiment resets an
    /// application's load regime and wants a fresh estimate).
    pub fn clear(&mut self) {
        self.ring.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_of_known_sequence() {
        let xs: Vec<f64> = (1..=100).map(f64::from).collect();
        assert!((percentile(&xs, 0.95).unwrap() - 95.05).abs() < 1e-9);
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 1.0), Some(100.0));
    }

    #[test]
    fn percentile_single_sample() {
        assert_eq!(percentile(&[7.0], 0.95), Some(7.0));
    }

    #[test]
    fn percentile_empty_is_none() {
        assert_eq!(percentile(&[], 0.5), None);
    }

    #[test]
    fn percentile_is_order_independent() {
        let a = percentile(&[3.0, 1.0, 2.0], 0.5);
        let b = percentile(&[1.0, 2.0, 3.0], 0.5);
        assert_eq!(a, b);
        assert_eq!(a, Some(2.0));
    }

    #[test]
    fn estimator_evicts_oldest() {
        let mut e = TailEstimator::new(3);
        for v in [10.0, 20.0, 30.0, 40.0] {
            e.record(v);
        }
        assert_eq!(e.len(), 3);
        // 10.0 evicted: p0 is now 20.
        assert_eq!(e.quantile(0.0), Some(20.0));
    }

    #[test]
    fn estimator_empty_and_clear() {
        let mut e = TailEstimator::new(8);
        assert!(e.is_empty());
        assert_eq!(e.quantile(0.95), None);
        e.record(1.0);
        assert!(!e.is_empty());
        e.clear();
        assert!(e.is_empty());
    }

    #[test]
    fn capacity_floor_is_one() {
        let mut e = TailEstimator::new(0);
        e.record(1.0);
        e.record(2.0);
        assert_eq!(e.len(), 1);
        assert_eq!(e.quantile(0.5), Some(2.0));
    }
}
