use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

/// Computes the `p`-th percentile (0 < p < 1) of `samples` with linear
/// interpolation between order statistics, matching the common
/// "exclusive" definition used by load-testing tools.
///
/// Returns `None` for an empty slice. The input order is irrelevant; the
/// function selects over an internal copy. Callers that can spare their
/// buffer should prefer [`percentile_in_place`], which avoids the copy.
pub fn percentile(samples: &[f64], p: f64) -> Option<f64> {
    let mut scratch = samples.to_vec();
    percentile_in_place(&mut scratch, p)
}

/// [`percentile`] over a caller-owned buffer, reordering it instead of
/// sorting a copy.
///
/// Only the two order statistics bracketing the rank are needed, so this
/// uses an `O(n)` selection (`select_nth_unstable_by`) rather than an
/// `O(n log n)` full sort: the `lo`-th statistic lands at its sorted
/// position and the `hi`-th (= `lo + 1`) is the minimum of the upper
/// partition the selection leaves behind. The result is bit-identical to
/// the sort-based formulation.
pub fn percentile_in_place(samples: &mut [f64], p: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let p = p.clamp(0.0, 1.0);
    let rank = p * (samples.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let (_, &mut lo_val, upper) = samples.select_nth_unstable_by(lo, f64::total_cmp);
    if lo == hi {
        return Some(lo_val);
    }
    let hi_val = upper
        .iter()
        .copied()
        .min_by(f64::total_cmp)
        .expect("hi < len, so the upper partition is non-empty");
    let t = rank - lo as f64;
    Some(lo_val + t * (hi_val - lo_val))
}

/// A streaming tail-latency estimator over the most recent completions.
///
/// Monitoring windows of 500 ms can see very few completions for low-QPS
/// applications (the paper's Sphinx peaks at 4.8 QPS); a per-window
/// percentile would then be mostly noise. Real monitoring systems handle
/// this by widening the aggregation horizon. The estimator keeps a ring of
/// the last `capacity` latencies and answers percentile queries over it, so
/// the estimate always reflects a statistically meaningful population while
/// still tracking load changes with bounded lag.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TailEstimator {
    ring: VecDeque<f64>,
    capacity: usize,
    /// Query buffer the ring is copied into for selection; kept allocated
    /// across queries so the per-window hot path never reallocates.
    #[serde(skip)]
    scratch: Vec<f64>,
}

impl TailEstimator {
    /// Creates an estimator remembering the last `capacity` latencies
    /// (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TailEstimator {
            ring: VecDeque::with_capacity(capacity),
            capacity,
            scratch: Vec::with_capacity(capacity),
        }
    }

    /// Records one completed request's latency.
    pub fn record(&mut self, latency: f64) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(latency);
    }

    /// The `p`-th percentile over the remembered latencies, or `None` if
    /// nothing has completed yet.
    pub fn quantile(&mut self, p: f64) -> Option<f64> {
        self.scratch.clear();
        self.scratch.extend(self.ring.iter().copied());
        percentile_in_place(&mut self.scratch, p)
    }

    /// Number of remembered samples.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no sample has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Forgets all remembered samples (used when an experiment resets an
    /// application's load regime and wants a fresh estimate).
    pub fn clear(&mut self) {
        self.ring.clear();
    }

    /// Re-targets the estimator to a new ring capacity, forgetting all
    /// samples but keeping the ring and scratch allocations. Behaviourally
    /// identical to replacing the estimator with `TailEstimator::new(
    /// capacity)` — the node does this on every `set_load` — without the
    /// two heap allocations that a fresh construction pays.
    pub fn reset(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
        self.ring.clear();
        if self.ring.capacity() < self.capacity {
            self.ring.reserve(self.capacity);
        }
        if self.scratch.capacity() < self.capacity {
            self.scratch
                .reserve(self.capacity.saturating_sub(self.scratch.len()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The previous, sort-based formulation — the reference the selection
    /// implementation must match bit for bit.
    fn percentile_by_sort(samples: &[f64], p: f64) -> Option<f64> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let p = p.clamp(0.0, 1.0);
        let rank = p * (sorted.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        if lo == hi {
            return Some(sorted[lo]);
        }
        let t = rank - lo as f64;
        Some(sorted[lo] + t * (sorted[hi] - sorted[lo]))
    }

    /// A tiny deterministic generator for test inputs (SplitMix64).
    fn pseudo_random(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                (z >> 11) as f64 / (1u64 << 53) as f64 * 100.0
            })
            .collect()
    }

    #[test]
    fn percentile_of_known_sequence() {
        let xs: Vec<f64> = (1..=100).map(f64::from).collect();
        assert!((percentile(&xs, 0.95).unwrap() - 95.05).abs() < 1e-9);
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 1.0), Some(100.0));
    }

    #[test]
    fn percentile_single_sample() {
        assert_eq!(percentile(&[7.0], 0.95), Some(7.0));
    }

    #[test]
    fn percentile_empty_is_none() {
        assert_eq!(percentile(&[], 0.5), None);
        assert_eq!(percentile_in_place(&mut [], 0.5), None);
    }

    #[test]
    fn percentile_is_order_independent() {
        let a = percentile(&[3.0, 1.0, 2.0], 0.5);
        let b = percentile(&[1.0, 2.0, 3.0], 0.5);
        assert_eq!(a, b);
        assert_eq!(a, Some(2.0));
    }

    #[test]
    fn selection_is_bit_identical_to_sort() {
        for n in [1usize, 2, 3, 7, 64, 512, 513] {
            let xs = pseudo_random(n, n as u64);
            for p in [0.0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
                let fast = percentile(&xs, p);
                let slow = percentile_by_sort(&xs, p);
                assert_eq!(
                    fast.map(f64::to_bits),
                    slow.map(f64::to_bits),
                    "n = {n}, p = {p}"
                );
            }
        }
    }

    #[test]
    fn selection_handles_ties() {
        let xs = [2.0, 2.0, 1.0, 2.0, 1.0, 1.0, 2.0];
        for p in [0.0, 0.3, 0.5, 0.8, 1.0] {
            assert_eq!(percentile(&xs, p), percentile_by_sort(&xs, p));
        }
    }

    #[test]
    fn estimator_evicts_oldest() {
        let mut e = TailEstimator::new(3);
        for v in [10.0, 20.0, 30.0, 40.0] {
            e.record(v);
        }
        assert_eq!(e.len(), 3);
        // 10.0 evicted: p0 is now 20.
        assert_eq!(e.quantile(0.0), Some(20.0));
    }

    #[test]
    fn estimator_query_does_not_disturb_the_ring() {
        let mut e = TailEstimator::new(64);
        for v in pseudo_random(64, 9) {
            e.record(v);
        }
        let first = e.quantile(0.95);
        let second = e.quantile(0.95);
        assert_eq!(first.map(f64::to_bits), second.map(f64::to_bits));
    }

    #[test]
    fn estimator_empty_and_clear() {
        let mut e = TailEstimator::new(8);
        assert!(e.is_empty());
        assert_eq!(e.quantile(0.95), None);
        e.record(1.0);
        assert!(!e.is_empty());
        e.clear();
        assert!(e.is_empty());
    }

    #[test]
    fn reset_matches_fresh_construction() {
        let mut reused = TailEstimator::new(8);
        for v in pseudo_random(20, 3) {
            reused.record(v);
        }
        reused.reset(3);
        let mut fresh = TailEstimator::new(3);
        assert!(reused.is_empty());
        for v in [10.0, 20.0, 30.0, 40.0] {
            reused.record(v);
            fresh.record(v);
        }
        for p in [0.0, 0.5, 0.95] {
            assert_eq!(
                reused.quantile(p).map(f64::to_bits),
                fresh.quantile(p).map(f64::to_bits)
            );
        }
        // Shrinking then growing again keeps working (capacity floor 1).
        reused.reset(0);
        reused.record(5.0);
        reused.record(6.0);
        assert_eq!(reused.len(), 1);
    }

    #[test]
    fn capacity_floor_is_one() {
        let mut e = TailEstimator::new(0);
        e.record(1.0);
        e.record(2.0);
        assert_eq!(e.len(), 1);
        assert_eq!(e.quantile(0.5), Some(2.0));
    }
}
