use serde::{Deserialize, Serialize};

use crate::error::SimError;

/// Static description of the simulated node's hardware resources.
///
/// Mirrors the paper's experimental platform (Table III): an Intel Xeon
/// E5-2630 v4 with 10 cores, a 20-way 25 MB LLC and DDR4-2400 memory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Number of physical cores (Hyper-Threading disabled, as in the paper).
    pub cores: u32,
    /// Number of LLC ways available to CAT-style partitioning.
    pub llc_ways: u32,
    /// Peak memory bandwidth in GB/s.
    pub membw_gbps: f64,
}

impl MachineConfig {
    /// The paper's testbed: 10 cores, 20 LLC ways, quad-channel DDR4-2400
    /// (~68 GB/s peak).
    pub fn paper_xeon() -> Self {
        MachineConfig {
            cores: 10,
            llc_ways: 20,
            membw_gbps: 68.0,
        }
    }

    /// A machine with a different core / way budget but the paper's memory
    /// system — used by the resource-scaling experiments (Fig. 2, Fig. 3).
    pub fn with_budget(self, cores: u32, llc_ways: u32) -> Self {
        MachineConfig {
            cores,
            llc_ways,
            ..self
        }
    }

    /// The absolute bandwidth ceiling (GB/s) imposed by an MBA throttle
    /// level on this machine. Unthrottled maps to `f64::INFINITY`, so
    /// `demand.min(cap)` is exactly `demand` when no throttle is set —
    /// the fluid solver stays bit-identical for unthrottled partitions.
    pub fn mba_cap_gbps(&self, level: crate::partition::MbaLevel) -> f64 {
        level.cap_fraction() * self.membw_gbps
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if any resource count is zero or
    /// the bandwidth is not a positive finite number.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.cores == 0 {
            return Err(SimError::InvalidConfig {
                what: "cores",
                reason: "at least one core is required".into(),
            });
        }
        if self.llc_ways == 0 {
            return Err(SimError::InvalidConfig {
                what: "llc_ways",
                reason: "at least one LLC way is required".into(),
            });
        }
        if !self.membw_gbps.is_finite() || self.membw_gbps <= 0.0 {
            return Err(SimError::InvalidConfig {
                what: "membw_gbps",
                reason: format!("must be positive and finite, got {}", self.membw_gbps),
            });
        }
        Ok(())
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::paper_xeon()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_xeon_matches_table3() {
        let m = MachineConfig::paper_xeon();
        assert_eq!(m.cores, 10);
        assert_eq!(m.llc_ways, 20);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn with_budget_preserves_memory_system() {
        let m = MachineConfig::paper_xeon().with_budget(6, 12);
        assert_eq!(m.cores, 6);
        assert_eq!(m.llc_ways, 12);
        assert_eq!(m.membw_gbps, MachineConfig::paper_xeon().membw_gbps);
    }

    #[test]
    fn mba_cap_scales_with_peak_bandwidth() {
        use crate::partition::MbaLevel;
        let m = MachineConfig::paper_xeon();
        assert_eq!(m.mba_cap_gbps(MbaLevel::UNTHROTTLED), f64::INFINITY);
        assert!((m.mba_cap_gbps(MbaLevel::new(50)) - 34.0).abs() < 1e-12);
        assert!((m.mba_cap_gbps(MbaLevel::new(10)) - 6.8).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_degenerate_machines() {
        assert!(MachineConfig::paper_xeon()
            .with_budget(0, 20)
            .validate()
            .is_err());
        assert!(MachineConfig::paper_xeon()
            .with_budget(10, 0)
            .validate()
            .is_err());
        let mut m = MachineConfig::paper_xeon();
        m.membw_gbps = 0.0;
        assert!(m.validate().is_err());
        m.membw_gbps = f64::NAN;
        assert!(m.validate().is_err());
    }
}
