use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// Simulated time with microsecond resolution.
///
/// A newtype over `u64` microseconds: cheap to copy, totally ordered, and
/// immune to the unit confusion that plagues mixed ms/µs code.
///
/// ```
/// use ahq_sim::SimTime;
///
/// let t = SimTime::from_ms(1.5) + SimTime::from_us(250);
/// assert_eq!(t.as_us(), 1750);
/// assert!((t.as_ms() - 1.75).abs() < 1e-12);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant, used as "never" for inactive
    /// event sources.
    pub const NEVER: SimTime = SimTime(u64::MAX);

    /// Creates a time from whole microseconds.
    pub fn from_us(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates a time from (possibly fractional) milliseconds, rounding to
    /// the nearest microsecond. Negative or non-finite inputs saturate to
    /// zero — callers feed in computed spans that may carry `-1e-17` noise.
    pub fn from_ms(ms: f64) -> Self {
        if !ms.is_finite() || ms <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime((ms * 1_000.0).round().min(u64::MAX as f64) as u64)
    }

    /// Creates a time from (possibly fractional) seconds.
    pub fn from_secs(secs: f64) -> Self {
        Self::from_ms(secs * 1_000.0)
    }

    /// This instant in whole microseconds.
    pub fn as_us(&self) -> u64 {
        self.0
    }

    /// This instant in milliseconds.
    pub fn as_ms(&self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This instant in seconds.
    pub fn as_secs(&self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating difference `self - earlier`.
    pub fn since(&self, earlier: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(earlier.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimTime {
    type Output = SimTime;

    /// Saturating subtraction; clock arithmetic never underflows.
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == u64::MAX {
            write!(f, "never")
        } else {
            write!(f, "{:.3}ms", self.as_ms())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_ms(2.5);
        assert_eq!(t.as_us(), 2500);
        assert!((t.as_ms() - 2.5).abs() < 1e-12);
        assert!((SimTime::from_secs(0.25).as_ms() - 250.0).abs() < 1e-12);
    }

    #[test]
    fn negative_and_nan_saturate_to_zero() {
        assert_eq!(SimTime::from_ms(-0.001), SimTime::ZERO);
        assert_eq!(SimTime::from_ms(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::from_ms(f64::NEG_INFINITY), SimTime::ZERO);
    }

    #[test]
    fn arithmetic_saturates() {
        assert_eq!(SimTime::from_us(3) - SimTime::from_us(5), SimTime::ZERO);
        assert_eq!(SimTime::NEVER + SimTime::from_us(1), SimTime::NEVER);
        assert_eq!(
            SimTime::from_us(7).since(SimTime::from_us(2)),
            SimTime::from_us(5)
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_ms(1.5).to_string(), "1.500ms");
        assert_eq!(SimTime::NEVER.to_string(), "never");
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::from_us(10) < SimTime::from_us(11));
        assert!(SimTime::NEVER > SimTime::from_secs(1e6));
    }
}
