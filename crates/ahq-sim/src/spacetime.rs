//! The space-time resource-utilization model of Fig. 4 in the paper.
//!
//! One resource slice (a core or an LLC way) is examined over a sequence of
//! time slices. Each application declares, per time slice, whether it
//! *wants* the slice. Three ownership disciplines are compared:
//!
//! * [`Discipline::NoManagement`] — scenario (a): everyone who wants the
//!   slice contends for it; two or more claimants in the same time slice
//!   is a conflict (a ✗ in the figure).
//! * [`Discipline::IsolatedTo`] — scenario (b): the slice belongs to one
//!   application exclusively; other claimants are denied (✗), and time
//!   slices the owner does not need are wasted.
//! * [`Discipline::SharedLcPriority`] — scenario (c): the slice is handed
//!   to the highest-priority claimant each time slice (LC before BE, lower
//!   index first); ownership changes cost a transfer overhead (the ▲ in
//!   the figure: useful but degraded).
//!
//! The model is deliberately tiny — it exists to *explain* why ARQ mixes
//! isolation and sharing, and to regenerate Fig. 4's cross/tick/triangle
//! counts in a unit-testable form.

use serde::{Deserialize, Serialize};

use crate::app::AppKind;

/// One application's demand pattern over the modelled time slices.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DemandPattern {
    /// Application name (for reporting).
    pub name: String,
    /// LC or BE (drives priority under [`Discipline::SharedLcPriority`]).
    pub kind: AppKind,
    /// `wants[t]` is true when the application needs the resource slice in
    /// time slice `t`.
    pub wants: Vec<bool>,
}

impl DemandPattern {
    /// Creates a pattern from a compact string: `'x'`/`'1'` marks a slice
    /// the application wants, anything else a slice it does not.
    pub fn from_str_pattern(name: impl Into<String>, kind: AppKind, pattern: &str) -> Self {
        DemandPattern {
            name: name.into(),
            kind,
            wants: pattern.chars().map(|c| c == 'x' || c == '1').collect(),
        }
    }
}

/// The ownership discipline applied to the resource slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Discipline {
    /// Scenario (a): unmanaged contention.
    NoManagement,
    /// Scenario (b): the slice is isolated to the application with this
    /// index.
    IsolatedTo(usize),
    /// Scenario (c): shared, LC claims beat BE claims, ownership transfer
    /// costs overhead.
    SharedLcPriority,
}

/// What happened in one time slice for one application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SliceOutcome {
    /// The application did not want the slice.
    Idle,
    /// The application used the slice at full value (✓).
    Served,
    /// The application used the slice but paid a transfer overhead (▲).
    ServedWithOverhead,
    /// The application wanted the slice and was denied or conflicted (✗).
    Denied,
}

/// The outcome of evaluating one discipline over the demand patterns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpaceTimeOutcome {
    /// `outcomes[app][t]`.
    pub outcomes: Vec<Vec<SliceOutcome>>,
    /// Total ✗ count (denied wants, or all wants in a conflicted slice).
    pub crosses: usize,
    /// Total ✓ count.
    pub ticks: usize,
    /// Total ▲ count.
    pub triangles: usize,
    /// Time slices in which the resource did useful work (✓ or ▲), over
    /// the total number of slices.
    pub utilization: f64,
}

/// Evaluates `discipline` over the given demand patterns.
///
/// # Panics
///
/// Panics if the patterns have different lengths, if no pattern is given,
/// or if an `IsolatedTo` index is out of range.
pub fn evaluate(patterns: &[DemandPattern], discipline: Discipline) -> SpaceTimeOutcome {
    assert!(!patterns.is_empty(), "at least one demand pattern required");
    let horizon = patterns[0].wants.len();
    assert!(
        patterns.iter().all(|p| p.wants.len() == horizon),
        "all demand patterns must cover the same time slices"
    );
    if let Discipline::IsolatedTo(owner) = discipline {
        assert!(owner < patterns.len(), "isolation owner out of range");
    }

    let mut outcomes = vec![vec![SliceOutcome::Idle; horizon]; patterns.len()];
    let mut previous_owner: Option<usize> = None;
    let mut useful_slices = 0usize;

    // `t` indexes every pattern's demand row and the outcome grid at once.
    #[allow(clippy::needless_range_loop)]
    for t in 0..horizon {
        let claimants: Vec<usize> = (0..patterns.len())
            .filter(|&i| patterns[i].wants[t])
            .collect();
        match discipline {
            Discipline::NoManagement => {
                match claimants.len() {
                    0 => {}
                    1 => {
                        outcomes[claimants[0]][t] = SliceOutcome::Served;
                        useful_slices += 1;
                    }
                    _ => {
                        // Conflict: everyone suffers.
                        for &i in &claimants {
                            outcomes[i][t] = SliceOutcome::Denied;
                        }
                    }
                }
            }
            Discipline::IsolatedTo(owner) => {
                for &i in &claimants {
                    if i == owner {
                        outcomes[i][t] = SliceOutcome::Served;
                        useful_slices += 1;
                    } else {
                        outcomes[i][t] = SliceOutcome::Denied;
                    }
                }
            }
            Discipline::SharedLcPriority => {
                let winner = claimants
                    .iter()
                    .copied()
                    .min_by_key(|&i| (patterns[i].kind != AppKind::Lc, i));
                if let Some(w) = winner {
                    let transferred = previous_owner.is_some() && previous_owner != Some(w);
                    outcomes[w][t] = if transferred {
                        SliceOutcome::ServedWithOverhead
                    } else {
                        SliceOutcome::Served
                    };
                    useful_slices += 1;
                    for &i in &claimants {
                        if i != w {
                            outcomes[i][t] = SliceOutcome::Denied;
                        }
                    }
                    previous_owner = Some(w);
                }
            }
        }
    }

    let crosses = count(&outcomes, SliceOutcome::Denied);
    let ticks = count(&outcomes, SliceOutcome::Served);
    let triangles = count(&outcomes, SliceOutcome::ServedWithOverhead);
    SpaceTimeOutcome {
        outcomes,
        crosses,
        ticks,
        triangles,
        utilization: useful_slices as f64 / horizon as f64,
    }
}

fn count(outcomes: &[Vec<SliceOutcome>], needle: SliceOutcome) -> usize {
    outcomes
        .iter()
        .flat_map(|row| row.iter())
        .filter(|&&o| o == needle)
        .count()
}

/// Demand patterns reproducing Fig. 4's accounting: two LC applications
/// and one BE application over eight time slices, chosen so that isolating
/// the slice to LC1 yields 10 crosses at 50 % utilization while
/// LC-priority sharing yields 6 crosses, 4 triangles and 100 % utilization
/// — the paper's "crosses reduced from 10 to 6, four more triangles,
/// utilization almost doubled".
pub fn figure4_patterns() -> Vec<DemandPattern> {
    vec![
        DemandPattern::from_str_pattern("LC1", AppKind::Lc, "xx....xx"),
        DemandPattern::from_str_pattern("LC2", AppKind::Lc, "...xx.xx"),
        DemandPattern::from_str_pattern("BE", AppKind::Be, "xxxxxx.."),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_isolation_wastes_and_denies() {
        let patterns = figure4_patterns();
        let iso = evaluate(&patterns, Discipline::IsolatedTo(0));
        // Only LC1's four wants are served; every other want is denied.
        assert_eq!(iso.ticks, 4);
        assert_eq!(iso.triangles, 0);
        assert_eq!(iso.crosses, 10); // paper: scenario (b) has 10 crosses
        assert!((iso.utilization - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fig4_sharing_matches_paper_counts() {
        let patterns = figure4_patterns();
        let iso = evaluate(&patterns, Discipline::IsolatedTo(0));
        let shared = evaluate(&patterns, Discipline::SharedLcPriority);
        assert_eq!(shared.crosses, 6, "paper: 10 -> 6 crosses");
        assert_eq!(shared.triangles, 4, "paper: four more triangles");
        assert!((shared.utilization - 1.0).abs() < 1e-12);
        assert!(
            shared.utilization >= 1.9 * iso.utilization,
            "paper: utilization almost doubled ({} vs {})",
            shared.utilization,
            iso.utilization
        );
    }

    #[test]
    fn unmanaged_conflicts_on_multi_claimant_slices() {
        let patterns = figure4_patterns();
        let out = evaluate(&patterns, Discipline::NoManagement);
        // Slice 0: LC1 and BE both want it -> conflict, both denied.
        assert_eq!(out.outcomes[0][0], SliceOutcome::Denied);
        assert_eq!(out.outcomes[2][0], SliceOutcome::Denied);
        // Slice 2: only BE wants it -> served cleanly.
        assert_eq!(out.outcomes[2][2], SliceOutcome::Served);
        assert_eq!(out.outcomes[0][2], SliceOutcome::Idle);
    }

    #[test]
    fn lc_beats_be_and_lower_index_wins() {
        let patterns = vec![
            DemandPattern::from_str_pattern("BE", AppKind::Be, "x"),
            DemandPattern::from_str_pattern("LC", AppKind::Lc, "x"),
        ];
        let out = evaluate(&patterns, Discipline::SharedLcPriority);
        assert_eq!(out.outcomes[1][0], SliceOutcome::Served);
        assert_eq!(out.outcomes[0][0], SliceOutcome::Denied);
    }

    #[test]
    fn ownership_transfer_marks_triangle() {
        let patterns = vec![
            DemandPattern::from_str_pattern("LC1", AppKind::Lc, "x.x"),
            DemandPattern::from_str_pattern("LC2", AppKind::Lc, ".x."),
        ];
        let out = evaluate(&patterns, Discipline::SharedLcPriority);
        assert_eq!(out.outcomes[0][0], SliceOutcome::Served);
        assert_eq!(out.outcomes[1][1], SliceOutcome::ServedWithOverhead);
        assert_eq!(out.outcomes[0][2], SliceOutcome::ServedWithOverhead);
        assert_eq!(out.utilization, 1.0);
    }

    #[test]
    #[should_panic(expected = "same time slices")]
    fn mismatched_horizons_panic() {
        let patterns = vec![
            DemandPattern::from_str_pattern("a", AppKind::Lc, "xx"),
            DemandPattern::from_str_pattern("b", AppKind::Lc, "x"),
        ];
        evaluate(&patterns, Discipline::NoManagement);
    }
}
