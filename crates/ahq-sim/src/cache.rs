use serde::{Deserialize, Serialize};

/// A per-application miss-ratio curve (MRC) over allocated LLC ways,
/// together with the CPI model that turns a miss ratio into a speed factor.
///
/// The curve is the classic concave-exponential shape used by cache
/// partitioning studies: with `w` ways the miss ratio is
///
/// ```text
/// miss(w) = m_min + (1 - m_min) * exp(-w / footprint_ways)
/// ```
///
/// `m_min` captures compulsory/streaming misses that no amount of cache
/// removes; `footprint_ways` is the working-set knee. Speed is derived from
/// a two-term CPI model — `CPI(w) = CPI_core * (1 + intensity * miss(w))` —
/// normalised so that the full machine's ways give speed 1:
///
/// ```text
/// speed(w) = (1 + intensity * miss(W_full)) / (1 + intensity * miss(w))
/// ```
///
/// ```
/// use ahq_sim::MissRatioCurve;
///
/// let mrc = MissRatioCurve::new(0.05, 6.0, 1.2, 20);
/// assert!(mrc.miss_ratio(2.0) > mrc.miss_ratio(10.0)); // monotone
/// assert!((mrc.speed_factor(20.0) - 1.0).abs() < 1e-12); // normalised
/// assert!(mrc.speed_factor(2.0) < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MissRatioCurve {
    /// Asymptotic miss ratio with unbounded cache, in `[0, 1]`.
    m_min: f64,
    /// Working-set knee in ways; larger values mean more cache-hungry.
    footprint_ways: f64,
    /// Memory intensity: how strongly misses inflate CPI.
    intensity: f64,
    /// The way count at which the speed factor is defined to be 1.
    full_ways: u32,
}

impl MissRatioCurve {
    /// Creates a curve. Inputs are clamped to sane ranges rather than
    /// rejected: the curve is an internal model component fed from vetted
    /// profiles, and clamping keeps it total.
    pub fn new(m_min: f64, footprint_ways: f64, intensity: f64, full_ways: u32) -> Self {
        MissRatioCurve {
            m_min: m_min.clamp(0.0, 1.0),
            footprint_ways: footprint_ways.max(0.1),
            intensity: intensity.max(0.0),
            full_ways: full_ways.max(1),
        }
    }

    /// The miss ratio with `ways` effective ways (fractional ways arise
    /// from shared-region splitting). Clamped below at zero ways.
    pub fn miss_ratio(&self, ways: f64) -> f64 {
        let w = ways.max(0.0);
        self.m_min + (1.0 - self.m_min) * (-w / self.footprint_ways).exp()
    }

    /// The speed factor (≤ 1 for `ways <= full_ways`) with `ways` effective
    /// ways, normalised to 1 at the full machine's way count.
    pub fn speed_factor(&self, ways: f64) -> f64 {
        let full = 1.0 + self.intensity * self.miss_ratio(self.full_ways as f64);
        let now = 1.0 + self.intensity * self.miss_ratio(ways);
        full / now
    }

    /// The fraction of execution time spent waiting on memory at `ways`
    /// effective ways — used to size the impact of bandwidth saturation.
    pub fn memory_fraction(&self, ways: f64) -> f64 {
        let stall = self.intensity * self.miss_ratio(ways);
        stall / (1.0 + stall)
    }

    /// Relative traffic factor: how much more bandwidth the application
    /// draws at `ways` effective ways than at the full allocation
    /// (misses drive traffic). Always ≥ 1 for `ways <= full_ways`.
    pub fn traffic_factor(&self, ways: f64) -> f64 {
        let full = self.miss_ratio(self.full_ways as f64).max(1e-6);
        self.miss_ratio(ways) / full
    }

    /// The memory intensity parameter.
    pub fn intensity(&self) -> f64 {
        self.intensity
    }

    /// The working-set knee in ways.
    pub fn footprint_ways(&self) -> f64 {
        self.footprint_ways
    }

    /// Reparameterises the normalisation point — used when the experiment
    /// shrinks the machine (Fig. 2 sweeps the way budget) while keeping
    /// speed 1 defined against the *paper machine's* 20 ways so results
    /// stay comparable across budgets.
    pub fn with_full_ways(mut self, full_ways: u32) -> Self {
        self.full_ways = full_ways.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> MissRatioCurve {
        MissRatioCurve::new(0.05, 6.0, 1.5, 20)
    }

    #[test]
    fn miss_ratio_is_monotone_decreasing() {
        let c = curve();
        let mut prev = c.miss_ratio(0.0);
        assert!((prev - 1.0).abs() < 1e-9, "zero ways miss everything");
        for w in 1..=30 {
            let m = c.miss_ratio(w as f64);
            assert!(m < prev);
            assert!(m >= 0.05);
            prev = m;
        }
    }

    #[test]
    fn speed_factor_normalised_and_monotone() {
        let c = curve();
        assert!((c.speed_factor(20.0) - 1.0).abs() < 1e-12);
        let mut prev = 0.0;
        for w in 0..=20 {
            let s = c.speed_factor(w as f64);
            assert!(s > prev);
            assert!(s <= 1.0 + 1e-12);
            prev = s;
        }
        // Beyond the normalisation point speed exceeds 1 slightly.
        assert!(c.speed_factor(40.0) >= 1.0);
    }

    #[test]
    fn memory_fraction_in_unit_interval() {
        let c = curve();
        for w in 0..=20 {
            let f = c.memory_fraction(w as f64);
            assert!((0.0..1.0).contains(&f));
        }
        assert!(c.memory_fraction(1.0) > c.memory_fraction(19.0));
    }

    #[test]
    fn traffic_grows_when_cache_shrinks() {
        let c = curve();
        assert!(c.traffic_factor(2.0) > c.traffic_factor(10.0));
        assert!((c.traffic_factor(20.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn inputs_are_clamped() {
        let c = MissRatioCurve::new(-1.0, -5.0, -2.0, 0);
        assert!(c.miss_ratio(1.0) <= 1.0);
        assert_eq!(c.intensity(), 0.0);
        assert!((c.speed_factor(0.0) - 1.0).abs() < 1e-12); // zero intensity
    }

    #[test]
    fn renormalisation_changes_reference_point() {
        let c = curve().with_full_ways(10);
        assert!((c.speed_factor(10.0) - 1.0).abs() < 1e-12);
        assert!(c.speed_factor(20.0) > 1.0);
    }
}
