use serde::{Deserialize, Serialize};

use crate::app::AppId;
use crate::error::SimError;
use crate::resources::MachineConfig;

/// The resources held by one isolated region: a number of exclusive cores,
/// exclusive LLC ways, and a reserved share of the memory bandwidth
/// (MBA-style, in percent of the node's peak; 0 means the region draws
/// from the shared bandwidth pool like everyone else).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash, Serialize, Deserialize)]
pub struct RegionAlloc {
    /// Exclusive cores.
    pub cores: u32,
    /// Exclusive LLC ways.
    pub ways: u32,
    /// Reserved memory bandwidth, percent of the node's peak.
    pub membw_pct: u32,
}

impl RegionAlloc {
    /// An empty region (no isolated resources).
    pub const EMPTY: RegionAlloc = RegionAlloc {
        cores: 0,
        ways: 0,
        membw_pct: 0,
    };

    /// Creates an allocation of cores and ways with no bandwidth
    /// reservation.
    pub fn new(cores: u32, ways: u32) -> Self {
        RegionAlloc {
            cores,
            ways,
            membw_pct: 0,
        }
    }

    /// Adds a reserved bandwidth share (percent of peak).
    pub fn with_membw(mut self, pct: u32) -> Self {
        self.membw_pct = pct;
        self
    }

    /// Whether this region holds no resources at all.
    pub fn is_empty(&self) -> bool {
        self.cores == 0 && self.ways == 0 && self.membw_pct == 0
    }
}

/// A partition of the machine into per-application *isolated regions* plus
/// one implicit *shared region* that receives every core and way not
/// isolated to anyone.
///
/// This single representation covers every strategy in the paper:
///
/// * **Unmanaged / LC-first** — all isolated regions empty; everything is
///   shared (they differ only in how the shared cores are divided).
/// * **PARTIES / CLITE** — every application holds an isolated region and
///   the shared region is (close to) empty: strict partitioning.
/// * **ARQ** — LC applications hold isolated regions sized by feedback; BE
///   applications hold none and live in the shared region, which LC
///   applications may also overflow into.
///
/// ```
/// use ahq_sim::{MachineConfig, Partition, RegionAlloc};
///
/// let machine = MachineConfig::paper_xeon();
/// let mut p = Partition::all_shared(3);
/// p.set_isolated(0.into(), RegionAlloc::new(2, 5));
/// assert_eq!(p.shared_cores(&machine), 8);
/// assert_eq!(p.shared_ways(&machine), 15);
/// assert!(p.validate(&machine).is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    isolated: Vec<RegionAlloc>,
}

impl Partition {
    /// A partition where every application's isolated region is empty:
    /// the whole machine is one shared region.
    pub fn all_shared(num_apps: usize) -> Self {
        Partition {
            isolated: vec![RegionAlloc::EMPTY; num_apps],
        }
    }

    /// A strict partition built from explicit per-application allocations.
    pub fn strict(allocs: Vec<RegionAlloc>) -> Self {
        Partition { isolated: allocs }
    }

    /// Number of applications this partition covers.
    pub fn num_apps(&self) -> usize {
        self.isolated.len()
    }

    /// The isolated region of `app`.
    ///
    /// # Panics
    ///
    /// Panics if `app` is out of range for this partition.
    pub fn isolated(&self, app: AppId) -> RegionAlloc {
        self.isolated[app.index()]
    }

    /// Replaces the isolated region of `app`.
    ///
    /// # Panics
    ///
    /// Panics if `app` is out of range for this partition.
    pub fn set_isolated(&mut self, app: AppId, alloc: RegionAlloc) {
        self.isolated[app.index()] = alloc;
    }

    /// Sum of all isolated cores.
    pub fn isolated_cores(&self) -> u32 {
        self.isolated.iter().map(|a| a.cores).sum()
    }

    /// Sum of all isolated ways.
    pub fn isolated_ways(&self) -> u32 {
        self.isolated.iter().map(|a| a.ways).sum()
    }

    /// Sum of all reserved bandwidth shares (percent).
    pub fn isolated_membw_pct(&self) -> u32 {
        self.isolated.iter().map(|a| a.membw_pct).sum()
    }

    /// The bandwidth share left to the shared pool (percent).
    pub fn shared_membw_pct(&self) -> u32 {
        100u32.saturating_sub(self.isolated_membw_pct())
    }

    /// Cores left to the shared region on `machine`.
    pub fn shared_cores(&self, machine: &MachineConfig) -> u32 {
        machine.cores.saturating_sub(self.isolated_cores())
    }

    /// LLC ways left to the shared region on `machine`.
    pub fn shared_ways(&self, machine: &MachineConfig) -> u32 {
        machine.llc_ways.saturating_sub(self.isolated_ways())
    }

    /// Validates that the isolated regions fit within the machine.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidPartition`] when the summed isolated
    /// cores or ways exceed the machine's capacity.
    pub fn validate(&self, machine: &MachineConfig) -> Result<(), SimError> {
        let cores = self.isolated_cores();
        if cores > machine.cores {
            return Err(SimError::InvalidPartition {
                reason: format!(
                    "{cores} isolated cores exceed machine capacity of {}",
                    machine.cores
                ),
            });
        }
        let ways = self.isolated_ways();
        if ways > machine.llc_ways {
            return Err(SimError::InvalidPartition {
                reason: format!(
                    "{ways} isolated LLC ways exceed machine capacity of {}",
                    machine.llc_ways
                ),
            });
        }
        let membw = self.isolated_membw_pct();
        if membw > 100 {
            return Err(SimError::InvalidPartition {
                reason: format!("{membw} % reserved memory bandwidth exceeds 100 %"),
            });
        }
        Ok(())
    }

    /// The set of applications whose isolated allocation differs between
    /// `self` and `other` — i.e. who will pay a warm-up penalty when
    /// switching from one to the other. A change in the shared region size
    /// affects everyone who uses the shared region; the caller handles
    /// that separately.
    pub fn changed_apps(&self, other: &Partition) -> Vec<AppId> {
        self.isolated
            .iter()
            .zip(other.isolated.iter())
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, _)| AppId::from(i))
            .collect()
    }

    /// Iterates over `(AppId, RegionAlloc)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (AppId, RegionAlloc)> + '_ {
        self.isolated
            .iter()
            .enumerate()
            .map(|(i, &a)| (AppId::from(i), a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_shared_has_empty_regions() {
        let p = Partition::all_shared(4);
        assert_eq!(p.num_apps(), 4);
        assert!(p.iter().all(|(_, a)| a.is_empty()));
        let m = MachineConfig::paper_xeon();
        assert_eq!(p.shared_cores(&m), 10);
        assert_eq!(p.shared_ways(&m), 20);
    }

    #[test]
    fn strict_partition_accounts_resources() {
        let m = MachineConfig::paper_xeon();
        let p = Partition::strict(vec![
            RegionAlloc::new(3, 6),
            RegionAlloc::new(4, 8),
            RegionAlloc::new(3, 6),
        ]);
        assert_eq!(p.isolated_cores(), 10);
        assert_eq!(p.shared_cores(&m), 0);
        assert_eq!(p.shared_ways(&m), 0);
        assert!(p.validate(&m).is_ok());
    }

    #[test]
    fn oversubscription_is_rejected() {
        let m = MachineConfig::paper_xeon();
        let p = Partition::strict(vec![RegionAlloc::new(6, 4), RegionAlloc::new(5, 4)]);
        assert!(p.validate(&m).is_err());
        let p = Partition::strict(vec![RegionAlloc::new(2, 12), RegionAlloc::new(2, 12)]);
        assert!(p.validate(&m).is_err());
    }

    #[test]
    fn changed_apps_detects_diffs() {
        let mut a = Partition::all_shared(3);
        let mut b = a.clone();
        assert!(a.changed_apps(&b).is_empty());
        b.set_isolated(1.into(), RegionAlloc::new(1, 0));
        assert_eq!(a.changed_apps(&b), vec![AppId::from(1)]);
        a.set_isolated(2.into(), RegionAlloc::new(0, 3));
        let mut diff = a.changed_apps(&b);
        diff.sort();
        assert_eq!(diff, vec![AppId::from(1), AppId::from(2)]);
    }

    #[test]
    fn membw_accounting_and_validation() {
        let m = MachineConfig::paper_xeon();
        let mut p = Partition::all_shared(2);
        assert_eq!(p.shared_membw_pct(), 100);
        p.set_isolated(0.into(), RegionAlloc::new(2, 4).with_membw(30));
        assert_eq!(p.isolated_membw_pct(), 30);
        assert_eq!(p.shared_membw_pct(), 70);
        assert!(p.validate(&m).is_ok());
        p.set_isolated(1.into(), RegionAlloc::new(2, 4).with_membw(80));
        assert!(p.validate(&m).is_err(), "110 % reserved must be rejected");
    }

    #[test]
    fn set_and_get_round_trip() {
        let mut p = Partition::all_shared(2);
        p.set_isolated(0.into(), RegionAlloc::new(2, 7));
        assert_eq!(p.isolated(0.into()), RegionAlloc::new(2, 7));
        assert_eq!(p.isolated(1.into()), RegionAlloc::EMPTY);
    }
}
