use serde::{Deserialize, Serialize};

use crate::app::AppId;
use crate::error::SimError;
use crate::resources::MachineConfig;

/// An MBA-style memory-bandwidth *throttle* level: the percentage of peak
/// bandwidth the region's cores may demand. Intel MBA exposes discrete
/// levels (10 %, 20 %, … 100 %); 100 % means unthrottled.
///
/// This is the delay-based cap side of bandwidth control — the dual of
/// [`RegionAlloc::membw_pct`], which *reserves* bandwidth for a region.
/// A reservation guarantees a floor; a throttle imposes a ceiling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MbaLevel(u32);

impl MbaLevel {
    /// The unthrottled level (100 %).
    pub const UNTHROTTLED: MbaLevel = MbaLevel(100);
    /// The granularity of the discrete throttle levels, matching MBA.
    pub const STEP_PCT: u32 = 10;
    /// The tightest level hardware exposes.
    pub const MIN_PCT: u32 = 10;

    /// A throttle level at `pct` percent of peak, rounded down to the
    /// nearest hardware step and clamped to `[MIN_PCT, 100]`.
    pub fn new(pct: u32) -> Self {
        let snapped = (pct / Self::STEP_PCT) * Self::STEP_PCT;
        MbaLevel(snapped.clamp(Self::MIN_PCT, 100))
    }

    /// The level as a percentage of peak bandwidth.
    pub fn pct(self) -> u32 {
        self.0
    }

    /// Whether this level imposes no cap at all.
    pub fn is_unthrottled(self) -> bool {
        self.0 >= 100
    }

    /// One step tighter (lower cap), saturating at [`Self::MIN_PCT`].
    pub fn tighten(self) -> MbaLevel {
        MbaLevel(self.0.saturating_sub(Self::STEP_PCT).max(Self::MIN_PCT))
    }

    /// One step looser (higher cap), saturating at unthrottled.
    pub fn relax(self) -> MbaLevel {
        MbaLevel((self.0 + Self::STEP_PCT).min(100))
    }

    /// The bandwidth ceiling as a fraction of peak. Unthrottled maps to
    /// `f64::INFINITY` so `demand.min(cap)` is bit-identical to `demand`
    /// when no throttle is set.
    pub fn cap_fraction(self) -> f64 {
        if self.is_unthrottled() {
            f64::INFINITY
        } else {
            self.0 as f64 / 100.0
        }
    }
}

impl Default for MbaLevel {
    /// Defaults to unthrottled — a derived zero would mean "fully
    /// throttled", which is never what an absent setting should do.
    fn default() -> Self {
        Self::UNTHROTTLED
    }
}

/// The dimensions of a [`Partition`] a scheduler can negotiate, in the
/// order ARQ's FSM cycles through them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartitionDimension {
    /// Exclusive cores.
    Cores,
    /// Exclusive LLC ways.
    LlcWays,
    /// Reserved memory bandwidth (floor, percent of peak).
    MembwReservation,
    /// MBA throttle level (ceiling, percent of peak).
    MembwThrottle,
}

impl PartitionDimension {
    /// All dimensions, in negotiation order.
    pub fn all() -> [PartitionDimension; 4] {
        [
            PartitionDimension::Cores,
            PartitionDimension::LlcWays,
            PartitionDimension::MembwReservation,
            PartitionDimension::MembwThrottle,
        ]
    }
}

/// The resources held by one isolated region: a number of exclusive cores,
/// exclusive LLC ways, a reserved share of the memory bandwidth
/// (MBA-style, in percent of the node's peak; 0 means the region draws
/// from the shared bandwidth pool like everyone else), and an MBA
/// throttle level capping the bandwidth its cores may demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash, Serialize, Deserialize)]
pub struct RegionAlloc {
    /// Exclusive cores.
    pub cores: u32,
    /// Exclusive LLC ways.
    pub ways: u32,
    /// Reserved memory bandwidth, percent of the node's peak.
    pub membw_pct: u32,
    /// MBA throttle level (defaults to unthrottled).
    #[serde(default)]
    pub mba: MbaLevel,
}

impl RegionAlloc {
    /// An empty region (no isolated resources, no throttle).
    pub const EMPTY: RegionAlloc = RegionAlloc {
        cores: 0,
        ways: 0,
        membw_pct: 0,
        mba: MbaLevel::UNTHROTTLED,
    };

    /// Creates an allocation of cores and ways with no bandwidth
    /// reservation and no throttle.
    pub fn new(cores: u32, ways: u32) -> Self {
        RegionAlloc {
            cores,
            ways,
            membw_pct: 0,
            mba: MbaLevel::UNTHROTTLED,
        }
    }

    /// Adds a reserved bandwidth share (percent of peak).
    pub fn with_membw(mut self, pct: u32) -> Self {
        self.membw_pct = pct;
        self
    }

    /// Sets the MBA throttle level.
    pub fn with_mba(mut self, level: MbaLevel) -> Self {
        self.mba = level;
        self
    }

    /// Whether this region holds no resource settings at all — neither
    /// isolated resources nor an active throttle.
    pub fn is_empty(&self) -> bool {
        self.cores == 0 && self.ways == 0 && self.membw_pct == 0 && self.mba.is_unthrottled()
    }

    /// Whether this region is bandwidth-throttled.
    pub fn is_throttled(&self) -> bool {
        !self.mba.is_unthrottled()
    }

    /// Reads the setting of one negotiable dimension as a raw count
    /// (cores, ways) or percentage (reservation, throttle level).
    pub fn dimension(&self, dim: PartitionDimension) -> u32 {
        match dim {
            PartitionDimension::Cores => self.cores,
            PartitionDimension::LlcWays => self.ways,
            PartitionDimension::MembwReservation => self.membw_pct,
            PartitionDimension::MembwThrottle => self.mba.pct(),
        }
    }
}

/// A partition of the machine into per-application *isolated regions* plus
/// one implicit *shared region* that receives every core and way not
/// isolated to anyone.
///
/// This single representation covers every strategy in the paper:
///
/// * **Unmanaged / LC-first** — all isolated regions empty; everything is
///   shared (they differ only in how the shared cores are divided).
/// * **PARTIES / CLITE** — every application holds an isolated region and
///   the shared region is (close to) empty: strict partitioning.
/// * **ARQ** — LC applications hold isolated regions sized by feedback; BE
///   applications hold none and live in the shared region, which LC
///   applications may also overflow into.
///
/// ```
/// use ahq_sim::{MachineConfig, Partition, RegionAlloc};
///
/// let machine = MachineConfig::paper_xeon();
/// let mut p = Partition::all_shared(3);
/// p.set_isolated(0.into(), RegionAlloc::new(2, 5));
/// assert_eq!(p.shared_cores(&machine), 8);
/// assert_eq!(p.shared_ways(&machine), 15);
/// assert!(p.validate(&machine).is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    isolated: Vec<RegionAlloc>,
}

impl Partition {
    /// A partition where every application's isolated region is empty:
    /// the whole machine is one shared region.
    pub fn all_shared(num_apps: usize) -> Self {
        Partition {
            isolated: vec![RegionAlloc::EMPTY; num_apps],
        }
    }

    /// A strict partition built from explicit per-application allocations.
    pub fn strict(allocs: Vec<RegionAlloc>) -> Self {
        Partition { isolated: allocs }
    }

    /// Number of applications this partition covers.
    pub fn num_apps(&self) -> usize {
        self.isolated.len()
    }

    /// The isolated region of `app`.
    ///
    /// # Panics
    ///
    /// Panics if `app` is out of range for this partition.
    pub fn isolated(&self, app: AppId) -> RegionAlloc {
        self.isolated[app.index()]
    }

    /// Replaces the isolated region of `app`.
    ///
    /// # Panics
    ///
    /// Panics if `app` is out of range for this partition.
    pub fn set_isolated(&mut self, app: AppId, alloc: RegionAlloc) {
        self.isolated[app.index()] = alloc;
    }

    /// Sum of all isolated cores.
    pub fn isolated_cores(&self) -> u32 {
        self.isolated.iter().map(|a| a.cores).sum()
    }

    /// Sum of all isolated ways.
    pub fn isolated_ways(&self) -> u32 {
        self.isolated.iter().map(|a| a.ways).sum()
    }

    /// Sum of all reserved bandwidth shares (percent).
    pub fn isolated_membw_pct(&self) -> u32 {
        self.isolated.iter().map(|a| a.membw_pct).sum()
    }

    /// The bandwidth share left to the shared pool (percent).
    pub fn shared_membw_pct(&self) -> u32 {
        100u32.saturating_sub(self.isolated_membw_pct())
    }

    /// Cores left to the shared region on `machine`.
    pub fn shared_cores(&self, machine: &MachineConfig) -> u32 {
        machine.cores.saturating_sub(self.isolated_cores())
    }

    /// LLC ways left to the shared region on `machine`.
    pub fn shared_ways(&self, machine: &MachineConfig) -> u32 {
        machine.llc_ways.saturating_sub(self.isolated_ways())
    }

    /// Validates that the isolated regions fit within the machine.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidPartition`] when the summed isolated
    /// cores or ways exceed the machine's capacity.
    pub fn validate(&self, machine: &MachineConfig) -> Result<(), SimError> {
        let cores = self.isolated_cores();
        if cores > machine.cores {
            return Err(SimError::InvalidPartition {
                reason: format!(
                    "{cores} isolated cores exceed machine capacity of {}",
                    machine.cores
                ),
            });
        }
        let ways = self.isolated_ways();
        if ways > machine.llc_ways {
            return Err(SimError::InvalidPartition {
                reason: format!(
                    "{ways} isolated LLC ways exceed machine capacity of {}",
                    machine.llc_ways
                ),
            });
        }
        let membw = self.isolated_membw_pct();
        if membw > 100 {
            return Err(SimError::InvalidPartition {
                reason: format!("{membw} % reserved memory bandwidth exceeds 100 %"),
            });
        }
        for (app, alloc) in self.iter() {
            let pct = alloc.mba.pct();
            if !(MbaLevel::MIN_PCT..=100).contains(&pct) || pct % MbaLevel::STEP_PCT != 0 {
                return Err(SimError::InvalidPartition {
                    reason: format!(
                        "app {} MBA level {pct} % is not a discrete hardware level",
                        app.index()
                    ),
                });
            }
        }
        Ok(())
    }

    /// Whether any application's region carries an active MBA throttle.
    pub fn has_throttle(&self) -> bool {
        self.isolated.iter().any(|a| a.is_throttled())
    }

    /// The set of applications whose isolated allocation differs between
    /// `self` and `other` — i.e. who will pay a warm-up penalty when
    /// switching from one to the other. A change in the shared region size
    /// affects everyone who uses the shared region; the caller handles
    /// that separately.
    pub fn changed_apps(&self, other: &Partition) -> Vec<AppId> {
        self.isolated
            .iter()
            .zip(other.isolated.iter())
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, _)| AppId::from(i))
            .collect()
    }

    /// Iterates over `(AppId, RegionAlloc)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (AppId, RegionAlloc)> + '_ {
        self.isolated
            .iter()
            .enumerate()
            .map(|(i, &a)| (AppId::from(i), a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_shared_has_empty_regions() {
        let p = Partition::all_shared(4);
        assert_eq!(p.num_apps(), 4);
        assert!(p.iter().all(|(_, a)| a.is_empty()));
        let m = MachineConfig::paper_xeon();
        assert_eq!(p.shared_cores(&m), 10);
        assert_eq!(p.shared_ways(&m), 20);
    }

    #[test]
    fn strict_partition_accounts_resources() {
        let m = MachineConfig::paper_xeon();
        let p = Partition::strict(vec![
            RegionAlloc::new(3, 6),
            RegionAlloc::new(4, 8),
            RegionAlloc::new(3, 6),
        ]);
        assert_eq!(p.isolated_cores(), 10);
        assert_eq!(p.shared_cores(&m), 0);
        assert_eq!(p.shared_ways(&m), 0);
        assert!(p.validate(&m).is_ok());
    }

    #[test]
    fn oversubscription_is_rejected() {
        let m = MachineConfig::paper_xeon();
        let p = Partition::strict(vec![RegionAlloc::new(6, 4), RegionAlloc::new(5, 4)]);
        assert!(p.validate(&m).is_err());
        let p = Partition::strict(vec![RegionAlloc::new(2, 12), RegionAlloc::new(2, 12)]);
        assert!(p.validate(&m).is_err());
    }

    #[test]
    fn changed_apps_detects_diffs() {
        let mut a = Partition::all_shared(3);
        let mut b = a.clone();
        assert!(a.changed_apps(&b).is_empty());
        b.set_isolated(1.into(), RegionAlloc::new(1, 0));
        assert_eq!(a.changed_apps(&b), vec![AppId::from(1)]);
        a.set_isolated(2.into(), RegionAlloc::new(0, 3));
        let mut diff = a.changed_apps(&b);
        diff.sort();
        assert_eq!(diff, vec![AppId::from(1), AppId::from(2)]);
    }

    #[test]
    fn membw_accounting_and_validation() {
        let m = MachineConfig::paper_xeon();
        let mut p = Partition::all_shared(2);
        assert_eq!(p.shared_membw_pct(), 100);
        p.set_isolated(0.into(), RegionAlloc::new(2, 4).with_membw(30));
        assert_eq!(p.isolated_membw_pct(), 30);
        assert_eq!(p.shared_membw_pct(), 70);
        assert!(p.validate(&m).is_ok());
        p.set_isolated(1.into(), RegionAlloc::new(2, 4).with_membw(80));
        assert!(p.validate(&m).is_err(), "110 % reserved must be rejected");
    }

    #[test]
    fn mba_levels_are_discrete_and_bounded() {
        assert_eq!(MbaLevel::default(), MbaLevel::UNTHROTTLED);
        assert_eq!(MbaLevel::new(47).pct(), 40, "levels snap down to steps");
        assert_eq!(MbaLevel::new(3).pct(), MbaLevel::MIN_PCT);
        assert_eq!(MbaLevel::new(250).pct(), 100);
        assert_eq!(MbaLevel::new(70).tighten().pct(), 60);
        assert_eq!(MbaLevel::new(10).tighten().pct(), 10, "floor at MIN_PCT");
        assert_eq!(MbaLevel::new(90).relax().pct(), 100);
        assert_eq!(MbaLevel::UNTHROTTLED.relax(), MbaLevel::UNTHROTTLED);
        assert_eq!(MbaLevel::UNTHROTTLED.cap_fraction(), f64::INFINITY);
        assert_eq!(MbaLevel::new(40).cap_fraction(), 0.4);
    }

    #[test]
    fn throttle_participates_in_partition_semantics() {
        let m = MachineConfig::paper_xeon();
        let mut p = Partition::all_shared(2);
        assert!(!p.has_throttle());
        p.set_isolated(1.into(), RegionAlloc::EMPTY.with_mba(MbaLevel::new(40)));
        assert!(p.has_throttle());
        assert!(
            !p.isolated(1.into()).is_empty(),
            "an active throttle is a resource setting"
        );
        assert!(p.validate(&m).is_ok());
        // A throttle change alone must register as a changed app (warm-up).
        let q = Partition::all_shared(2);
        assert_eq!(q.changed_apps(&p), vec![AppId::from(1)]);
        // Hand-built invalid levels are rejected by validate.
        let mut bad = Partition::all_shared(1);
        bad.set_isolated(0.into(), RegionAlloc::EMPTY.with_mba(MbaLevel(35)));
        assert!(bad.validate(&m).is_err());
    }

    #[test]
    fn dimension_accessor_reads_all_four_knobs() {
        let a = RegionAlloc::new(3, 6)
            .with_membw(20)
            .with_mba(MbaLevel::new(50));
        let got: Vec<u32> = PartitionDimension::all()
            .iter()
            .map(|&d| a.dimension(d))
            .collect();
        assert_eq!(got, vec![3, 6, 20, 50]);
    }

    #[test]
    fn set_and_get_round_trip() {
        let mut p = Partition::all_shared(2);
        p.set_isolated(0.into(), RegionAlloc::new(2, 7));
        assert_eq!(p.isolated(0.into()), RegionAlloc::new(2, 7));
        assert_eq!(p.isolated(1.into()), RegionAlloc::EMPTY);
    }
}
