use serde::{Deserialize, Serialize};

/// Per-window statistics for one latency-critical application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LcWindowStats {
    /// Application name.
    pub name: String,
    /// Estimated p95 tail latency in milliseconds, `None` until the first
    /// request completes.
    pub p95_ms: Option<f64>,
    /// The application's ideal tail latency `TL_i0` (ms).
    pub ideal_ms: f64,
    /// The application's QoS threshold `M_i` (ms).
    pub qos_ms: f64,
    /// Offered load as a fraction of the nominal maximum load.
    pub load: f64,
    /// Requests that arrived during the window.
    pub arrivals: u64,
    /// Requests that completed during the window.
    pub completions: u64,
    /// Requests dropped during the window because the client pool was
    /// exhausted (timeouts, from the user's point of view).
    pub drops: u64,
    /// Requests waiting or in service at window end.
    pub backlog: usize,
    /// Time-averaged fractional cores the application actually held.
    pub mean_core_capacity: f64,
}

impl LcWindowStats {
    /// Whether the QoS target was met this window (no elasticity). A
    /// window that dropped requests can never meet QoS: those users saw a
    /// timeout.
    pub fn meets_qos(&self) -> bool {
        if self.drops > 0 {
            return false;
        }
        match self.p95_ms {
            Some(p95) => p95 <= self.qos_ms,
            None => true,
        }
    }

    /// The PARTIES-style latency slack: `(M_i - p95) / M_i`. Positive while
    /// within QoS. Falls back to full slack before any completion.
    pub fn slack(&self) -> f64 {
        match self.p95_ms {
            Some(p95) => (self.qos_ms - p95) / self.qos_ms,
            None => 1.0,
        }
    }
}

/// Per-window statistics for one best-effort application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BeWindowStats {
    /// Application name.
    pub name: String,
    /// Aggregate IPC achieved this window.
    pub ipc: f64,
    /// Aggregate IPC the application achieves alone on the reference
    /// machine.
    pub ipc_solo: f64,
    /// Time-averaged fractional cores the application actually held.
    pub mean_core_capacity: f64,
}

impl BeWindowStats {
    /// Slowdown relative to solo execution, `>= 1`.
    pub fn slowdown(&self) -> f64 {
        if self.ipc <= 0.0 {
            f64::INFINITY
        } else {
            (self.ipc_solo / self.ipc).max(1.0)
        }
    }
}

/// Everything a scheduler gets to see at the end of one monitoring window
/// — the simulator's analogue of reading latency histograms and IPC
/// counters every 500 ms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowObservation {
    /// Zero-based index of the window since simulation start.
    pub window_index: u64,
    /// Window start time in milliseconds.
    pub start_ms: f64,
    /// Window end time in milliseconds.
    pub end_ms: f64,
    /// LC application stats, in registration order.
    pub lc: Vec<LcWindowStats>,
    /// BE application stats, in registration order.
    pub be: Vec<BeWindowStats>,
}

impl WindowObservation {
    /// Looks up an LC application's stats by name.
    pub fn lc_by_name(&self, name: &str) -> Option<&LcWindowStats> {
        self.lc.iter().find(|s| s.name == name)
    }

    /// Looks up a BE application's stats by name.
    pub fn be_by_name(&self, name: &str) -> Option<&BeWindowStats> {
        self.be.iter().find(|s| s.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lc_stats(p95: Option<f64>) -> LcWindowStats {
        LcWindowStats {
            name: "x".into(),
            p95_ms: p95,
            ideal_ms: 1.0,
            qos_ms: 4.0,
            load: 0.5,
            arrivals: 100,
            completions: 99,
            drops: 0,
            backlog: 1,
            mean_core_capacity: 2.0,
        }
    }

    #[test]
    fn qos_and_slack() {
        let ok = lc_stats(Some(3.0));
        assert!(ok.meets_qos());
        assert!((ok.slack() - 0.25).abs() < 1e-12);
        let bad = lc_stats(Some(5.0));
        assert!(!bad.meets_qos());
        assert!(bad.slack() < 0.0);
        let fresh = lc_stats(None);
        assert!(fresh.meets_qos());
        assert_eq!(fresh.slack(), 1.0);
    }

    #[test]
    fn be_slowdown_floors_at_one() {
        let s = BeWindowStats {
            name: "b".into(),
            ipc: 2.0,
            ipc_solo: 1.5,
            mean_core_capacity: 4.0,
        };
        assert_eq!(s.slowdown(), 1.0);
        let s = BeWindowStats { ipc: 0.75, ..s };
        assert!((s.slowdown() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn lookup_by_name() {
        let obs = WindowObservation {
            window_index: 0,
            start_ms: 0.0,
            end_ms: 500.0,
            lc: vec![lc_stats(Some(1.0))],
            be: vec![],
        };
        assert!(obs.lc_by_name("x").is_some());
        assert!(obs.lc_by_name("y").is_none());
        assert!(obs.be_by_name("x").is_none());
    }
}
