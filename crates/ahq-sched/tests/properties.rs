//! Property-based tests of the schedulers: whatever observations they are
//! fed, their proposed partitions must stay valid and conserve resources.

use ahq_core::{BeMeasurement, EntropyModel, LcMeasurement};
use ahq_sched::{Arq, Parties, SchedContext, Scheduler};
use ahq_sim::{AppSpec, BeWindowStats, LcWindowStats, MachineConfig, Partition, WindowObservation};
use proptest::prelude::*;

fn apps() -> Vec<AppSpec> {
    vec![
        AppSpec::lc("lc0")
            .mean_service_ms(1.0)
            .qos_threshold_ms(5.0)
            .max_load_qps(2000.0)
            .build()
            .unwrap(),
        AppSpec::lc("lc1")
            .mean_service_ms(1.0)
            .qos_threshold_ms(8.0)
            .max_load_qps(1500.0)
            .build()
            .unwrap(),
        AppSpec::be("be0").ipc_solo(2.0).build().unwrap(),
    ]
}

/// Builds a synthetic observation from per-LC p95s and a BE IPC.
fn make_obs(p95s: &[f64], be_ipc: f64, usage: &[f64]) -> WindowObservation {
    let specs = apps();
    let lc = specs
        .iter()
        .filter(|a| a.qos_threshold_ms().is_some())
        .zip(p95s.iter())
        .zip(usage.iter())
        .map(|((spec, &p95), &u)| LcWindowStats {
            name: spec.name().to_owned(),
            p95_ms: Some(p95),
            ideal_ms: spec.ideal_tail_ms().unwrap(),
            qos_ms: spec.qos_threshold_ms().unwrap(),
            load: 0.5,
            arrivals: 500,
            completions: 490,
            drops: 0,
            backlog: 10,
            mean_core_capacity: u,
        })
        .collect();
    let be = vec![BeWindowStats {
        name: "be0".into(),
        ipc: be_ipc,
        ipc_solo: 2.0,
        mean_core_capacity: 2.0,
    }];
    WindowObservation {
        window_index: 0,
        start_ms: 0.0,
        end_ms: 500.0,
        lc,
        be,
    }
}

/// Drives a scheduler through a random observation sequence, validating
/// every proposed partition and returning the final one.
fn drive(
    sched: &mut dyn Scheduler,
    observations: &[([f64; 2], f64, [f64; 2])],
) -> Result<Partition, TestCaseError> {
    let machine = MachineConfig::paper_xeon();
    let specs = apps();
    let model = EntropyModel::default();
    let mut partition = sched.initial_partition(&machine, &specs);
    prop_assert!(partition.validate(&machine).is_ok());
    for (i, (p95s, be_ipc, usage)) in observations.iter().enumerate() {
        let obs = make_obs(p95s, *be_ipc, usage);
        let lc_m: Vec<LcMeasurement> = obs
            .lc
            .iter()
            .map(|s| LcMeasurement::new(&s.name, s.ideal_ms, s.p95_ms.unwrap(), s.qos_ms).unwrap())
            .collect();
        let be_m = vec![BeMeasurement::new("be0", 2.0, be_ipc.max(1e-3)).unwrap()];
        let entropy = model.evaluate(&lc_m, &be_m);
        let ctx = SchedContext {
            machine: &machine,
            apps: &specs,
            partition: &partition,
            obs: &obs,
            entropy: &entropy,
            now_s: i as f64 * 0.5,
        };
        if let Some(next) = sched.decide(&ctx) {
            prop_assert!(
                next.validate(&machine).is_ok(),
                "invalid proposal from {}: {next:?}",
                sched.name()
            );
            // Nobody may be starved of cores entirely.
            let shared = next.shared_cores(&machine);
            for (id, alloc) in next.iter() {
                prop_assert!(
                    alloc.cores > 0 || shared > 0,
                    "{} starves app {id:?}",
                    sched.name()
                );
            }
            partition = next;
        }
    }
    Ok(partition)
}

fn observation_seq() -> impl Strategy<Value = Vec<([f64; 2], f64, [f64; 2])>> {
    prop::collection::vec(
        (
            prop::array::uniform2(0.5f64..40.0),
            0.01f64..2.0,
            prop::array::uniform2(0.0f64..4.0),
        ),
        1..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// ARQ never proposes an invalid or starving partition, whatever it
    /// observes.
    #[test]
    fn arq_partitions_stay_valid(seq in observation_seq()) {
        let mut arq = Arq::new();
        drive(&mut arq, &seq)?;
    }

    /// PARTIES conserves the machine exactly: it is a strict partitioner,
    /// so every core, way and bandwidth unit stays accounted to some app.
    #[test]
    fn parties_conserves_the_machine(seq in observation_seq()) {
        let machine = MachineConfig::paper_xeon();
        let mut parties = Parties::new();
        let final_partition = drive(&mut parties, &seq)?;
        prop_assert_eq!(final_partition.isolated_cores(), machine.cores);
        prop_assert_eq!(final_partition.isolated_ways(), machine.llc_ways);
        prop_assert_eq!(final_partition.isolated_membw_pct(), 100);
        // Floors: strict partitioning never zeroes anyone out.
        for (_, alloc) in final_partition.iter() {
            prop_assert!(alloc.cores >= 1);
            prop_assert!(alloc.ways >= 1);
        }
    }

    /// ARQ's isolated regions never exceed the machine, and the BE app
    /// never receives an isolated region (it lives in the shared region).
    #[test]
    fn arq_never_isolates_the_be_app(seq in observation_seq()) {
        let mut arq = Arq::new();
        let p = drive(&mut arq, &seq)?;
        let machine = MachineConfig::paper_xeon();
        prop_assert!(p.isolated_cores() <= machine.cores);
        prop_assert!(p.isolated_ways() <= machine.llc_ways);
        // App index 2 is the BE app.
        prop_assert!(p.isolated(2.into()).is_empty(), "BE app got an isolated region");
    }
}
