//! # ahq-sched — the Ah-Q scheduling strategies
//!
//! Implements the five resource scheduling strategies the paper evaluates,
//! all against the same [`Scheduler`] interface:
//!
//! * [`Unmanaged`] — the OS default: everything shared, CFS-fair.
//! * [`LcFirst`] — everything shared, LC threads get real-time priority.
//! * [`Parties`] — PARTIES (Chen et al., ASPLOS 2019): strict
//!   partitioning with a per-application upsize/downsize FSM driven by
//!   latency slack.
//! * [`Clite`] — CLITE (Patel & Tiwari, HPCA 2020): strict partitioning
//!   chosen by Bayesian optimization over sampled configurations.
//! * [`Arq`] — the paper's contribution: per-LC isolated regions plus one
//!   shared region, resources moved one unit per window between victim and
//!   beneficiary regions according to the remaining-tolerance array, with
//!   entropy-feedback rollback (Algorithm 1).
//! * [`Heracles`] — an extra comparison point beyond the paper's five:
//!   the classic threshold controller (Lo et al., ISCA 2015) that grows
//!   the BE allocation under comfortable slack and strips it on pressure.
//!
//! The [`runner`] module drives a [`ahq_sim::NodeSim`] window by window,
//! feeds observations to a scheduler, applies its decisions, and scores
//! every window with the system entropy from `ahq-core`.
//!
//! ```
//! use ahq_sched::{run, Arq, Scheduler};
//! use ahq_core::EntropyModel;
//! use ahq_sim::{AppSpec, CacheProfile, MachineConfig, NodeSim};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let lc = AppSpec::lc("svc").mean_service_ms(1.0).qos_threshold_ms(5.0)
//!     .max_load_qps(2000.0).build()?;
//! let be = AppSpec::be("batch").ipc_solo(2.0).build()?;
//! let mut sim = NodeSim::new(MachineConfig::paper_xeon(), vec![lc, be], 1)?;
//! sim.set_load("svc", 0.4)?;
//!
//! let mut arq = Arq::new();
//! let result = run(&mut sim, &mut arq, 20, &EntropyModel::default());
//! assert_eq!(result.entropy.len(), 20);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arq;
mod clite;
mod heracles;
mod lcfirst;
pub mod observe;
mod parties;
pub mod rollback;
pub mod runner;
mod unmanaged;

pub use arq::{Arq, ArqConfig};
pub use clite::{Clite, CliteConfig};
pub use heracles::{Heracles, HeraclesConfig};
pub use lcfirst::LcFirst;
pub use parties::{Parties, PartiesConfig};
pub use rollback::{Blacklist, SpeculativeMove};
pub use runner::{run, run_with_hook, RunResult, ScheduledRun};
pub use unmanaged::Unmanaged;

use ahq_core::EntropyReport;
use ahq_sim::{AppSpec, MachineConfig, Partition, SharingPolicy, WindowObservation};

/// Everything a scheduler sees when making a decision at the end of one
/// monitoring window.
#[derive(Debug)]
pub struct SchedContext<'a> {
    /// The machine being scheduled.
    pub machine: &'a MachineConfig,
    /// The application specs, in registration order.
    pub apps: &'a [AppSpec],
    /// The partition that was in force during the window.
    pub partition: &'a Partition,
    /// The window's observation (tail latencies, IPCs).
    pub obs: &'a WindowObservation,
    /// The window's entropy report (computed by the runner).
    pub entropy: &'a EntropyReport,
    /// Simulated time at the window end, seconds.
    pub now_s: f64,
}

/// A resource scheduling strategy.
///
/// Implementations are deterministic state machines: the runner calls
/// [`Scheduler::decide`] once per monitoring window and applies the
/// returned partition (if any) before the next window — matching the
/// paper's "monitor every 500 ms, adjust, evaluate" loop.
pub trait Scheduler {
    /// Human-readable strategy name (used in experiment output).
    fn name(&self) -> &'static str;

    /// How the shared region's cores are divided under this strategy.
    fn policy(&self) -> SharingPolicy;

    /// The partition to install before the first window.
    fn initial_partition(&self, machine: &MachineConfig, apps: &[AppSpec]) -> Partition {
        let _ = machine;
        Partition::all_shared(apps.len())
    }

    /// Decides on a repartition after a window; `None` keeps the current
    /// partition.
    fn decide(&mut self, ctx: &SchedContext<'_>) -> Option<Partition>;
}
