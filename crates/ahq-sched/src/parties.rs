use std::collections::HashMap;

use ahq_sim::{AppKind, AppSpec, MachineConfig, Partition, RegionAlloc, SharingPolicy};
use serde::{Deserialize, Serialize};

use crate::{SchedContext, Scheduler};

/// Which resource dimension an adjustment touches. The FSM cycles the
/// three types the paper names — "core, LLC, or memory bandwidth".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub(crate) enum ResourceKind {
    /// Processor cores.
    Cores,
    /// LLC ways.
    Ways,
    /// Memory bandwidth, moved in [`MEMBW_UNIT_PCT`]-point units.
    Membw,
}

/// Memory bandwidth moves in units of this many percentage points —
/// roughly the granularity Intel MBA exposes.
pub(crate) const MEMBW_UNIT_PCT: u32 = 5;

impl ResourceKind {
    pub(crate) fn next(self) -> Self {
        match self {
            ResourceKind::Cores => ResourceKind::Ways,
            ResourceKind::Ways => ResourceKind::Membw,
            ResourceKind::Membw => ResourceKind::Cores,
        }
    }

    /// All kinds starting from `self`, in FSM order.
    pub(crate) fn cycle(self) -> [ResourceKind; 3] {
        [self, self.next(), self.next().next()]
    }
}

/// Tuning knobs of the [`Parties`] reimplementation, defaulting to the
/// thresholds of the original paper (slack below 5 % triggers an upsize,
/// slack above 25 % everywhere permits a tentative downsize).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartiesConfig {
    /// Upsize an application when its latency slack falls below this.
    pub upsize_slack: f64,
    /// Tentatively downsize only while every application's slack exceeds
    /// this.
    pub downsize_slack: f64,
    /// After a reverted downsize, leave the application alone for this
    /// many windows.
    pub hold_windows: u64,
}

impl Default for PartiesConfig {
    fn default() -> Self {
        PartiesConfig {
            upsize_slack: 0.05,
            downsize_slack: 0.25,
            hold_windows: 10,
        }
    }
}

/// PARTIES (Chen, Delimitrou & Martínez, ASPLOS 2019), reimplemented as
/// the paper's strongest strict-partitioning baseline.
///
/// Every application — LC and BE alike — owns an isolated region; nothing
/// is shared. Each monitoring window PARTIES computes every LC
/// application's latency slack `(M_i - p95_i) / M_i` and:
///
/// * **upsizes** the most-violating application by one unit of its current
///   FSM resource — the FSM cycles all three dimensions the original
///   paper partitions: cores, LLC ways, and memory-bandwidth
///   *reservations* in `MEMBW_UNIT_PCT`-point units (floors enforced by
///   the fluid solver, as opposed to the MBA throttle *ceilings* that
///   [`ArqConfig::throttle_be`](crate::ArqConfig) gates) — taken from a
///   BE region if possible, else from the LC application with the most
///   slack;
/// * **downsizes** (tentatively) the slackest application when everyone
///   has comfortable slack, returning the unit to the BE pool — and
///   *reverts* the downsize if a violation follows, holding that
///   application untouched for a while.
///
/// The FSM switches resource type when an upsize of the current type did
/// not improve the application's slack — the behaviour that produces the
/// characteristic ping-ponging under pressure that ARQ avoids.
#[derive(Debug, Clone)]
pub struct Parties {
    config: PartiesConfig,
    /// Per-app resource FSM state.
    fsm: HashMap<usize, ResourceKind>,
    /// Slack at the last upsize per app, to detect "didn't help".
    last_upsize_slack: HashMap<usize, f64>,
    /// Pending tentative downsize: (partition before, victim app, window).
    pending_downsize: Option<(Partition, usize)>,
    /// (app) -> window index until which downsizing it is forbidden.
    hold_until: HashMap<usize, u64>,
    window: u64,
}

impl Parties {
    /// Creates PARTIES with default thresholds.
    pub fn new() -> Self {
        Self::with_config(PartiesConfig::default())
    }

    /// Creates PARTIES with explicit thresholds.
    pub fn with_config(config: PartiesConfig) -> Self {
        Parties {
            config,
            fsm: HashMap::new(),
            last_upsize_slack: HashMap::new(),
            pending_downsize: None,
            hold_until: HashMap::new(),
            window: 0,
        }
    }

    fn fsm_kind(&mut self, app: usize) -> ResourceKind {
        *self.fsm.entry(app).or_insert(ResourceKind::Cores)
    }

    /// Moves one unit of `kind` from `from` to `to`; returns false when
    /// `from` would fall below the floor (one core/way, one bandwidth
    /// unit).
    fn move_unit(p: &mut Partition, from: usize, to: usize, kind: ResourceKind) -> bool {
        let mut a = p.isolated(from.into());
        let mut b = p.isolated(to.into());
        match kind {
            ResourceKind::Cores => {
                if a.cores <= 1 {
                    return false;
                }
                a.cores -= 1;
                b.cores += 1;
            }
            ResourceKind::Ways => {
                if a.ways <= 1 {
                    return false;
                }
                a.ways -= 1;
                b.ways += 1;
            }
            ResourceKind::Membw => {
                if a.membw_pct <= MEMBW_UNIT_PCT {
                    return false;
                }
                a.membw_pct -= MEMBW_UNIT_PCT;
                b.membw_pct += MEMBW_UNIT_PCT;
            }
        }
        p.set_isolated(from.into(), a);
        p.set_isolated(to.into(), b);
        true
    }
}

impl Default for Parties {
    fn default() -> Self {
        Self::new()
    }
}

/// Splits `total` units across `n` regions, every region getting at least
/// one unit and remainders going to the regions listed in `favoured`
/// first.
pub(crate) fn equal_split(total: u32, n: usize, favoured: &[usize]) -> Vec<u32> {
    assert!(n > 0, "cannot split across zero regions");
    assert!(total as usize >= n, "need at least one unit per region");
    let base = total / n as u32;
    let mut out = vec![base; n];
    let mut remainder = total - base * n as u32;
    let order: Vec<usize> = if favoured.is_empty() {
        (0..n).collect()
    } else {
        favoured.to_vec()
    };
    let mut k = 0usize;
    while remainder > 0 {
        out[order[k % order.len()]] += 1;
        k += 1;
        remainder -= 1;
    }
    out
}

impl Scheduler for Parties {
    fn name(&self) -> &'static str {
        "parties"
    }

    fn policy(&self) -> SharingPolicy {
        SharingPolicy::LcPriority
    }

    fn initial_partition(&self, machine: &MachineConfig, apps: &[AppSpec]) -> Partition {
        // Strict partition: equal split with remainders favouring the BE
        // applications (they start with the spare capacity PARTIES carves
        // from later).
        let be_idx: Vec<usize> = apps
            .iter()
            .enumerate()
            .filter(|(_, a)| a.kind() == AppKind::Be)
            .map(|(i, _)| i)
            .collect();
        let cores = equal_split(machine.cores, apps.len(), &be_idx);
        let ways = equal_split(machine.llc_ways, apps.len(), &be_idx);
        // Strict partitioning covers the memory bandwidth too: equal
        // MBA-style reservations, in MEMBW_UNIT_PCT units.
        let bw_units = equal_split(100 / MEMBW_UNIT_PCT, apps.len(), &be_idx);
        Partition::strict(
            cores
                .into_iter()
                .zip(ways)
                .zip(bw_units)
                .map(|((c, w), bw)| RegionAlloc::new(c, w).with_membw(bw * MEMBW_UNIT_PCT))
                .collect(),
        )
    }

    fn decide(&mut self, ctx: &SchedContext<'_>) -> Option<Partition> {
        self.window += 1;
        let mut partition = ctx.partition.clone();

        // Latency slack, core usage and per-app downsize threshold per LC
        // app (by global app index). The downsize threshold is capped by
        // the app's interference tolerance: an app whose ideal latency
        // sits close to its QoS target can never reach a large slack, and
        // must not be ratcheted upward forever because of that.
        let mut slacks: Vec<(usize, f64)> = Vec::new();
        let mut usage: Vec<(usize, f64)> = Vec::new();
        let mut down_threshold: Vec<(usize, f64)> = Vec::new();
        for (i, a) in ctx.apps.iter().enumerate() {
            if a.kind() != AppKind::Lc {
                continue;
            }
            let st = ctx.obs.lc_by_name(a.name());
            slacks.push((i, st.map(|s| s.slack()).unwrap_or(1.0)));
            usage.push((i, st.map(|s| s.mean_core_capacity).unwrap_or(0.0)));
            let tolerance = st
                .map(|s| 1.0 - s.ideal_ms / s.qos_ms)
                .unwrap_or(self.config.downsize_slack);
            down_threshold.push((i, self.config.downsize_slack.min(0.6 * tolerance)));
        }

        // 1. Revert a tentative downsize that caused a violation.
        if let Some((before, victim)) = self.pending_downsize.take() {
            let violated = slacks
                .iter()
                .find(|(i, _)| *i == victim)
                .map(|(_, s)| *s < 0.0)
                .unwrap_or(false);
            if violated {
                self.hold_until
                    .insert(victim, self.window + self.config.hold_windows);
                return Some(before);
            }
        }

        // 2. Upsize the most violating application.
        if let Some(&(victim_of_pressure, worst_slack)) = slacks
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .filter(|(_, s)| *s < self.config.upsize_slack)
        {
            let app = victim_of_pressure;
            // Switch resource type if the last upsize of this type did not
            // improve the slack.
            if let Some(&prev) = self.last_upsize_slack.get(&app) {
                if worst_slack <= prev + 1e-9 {
                    let k = self.fsm_kind(app);
                    self.fsm.insert(app, k.next());
                }
            }
            self.last_upsize_slack.insert(app, worst_slack);
            let mut kind = self.fsm_kind(app);
            // More cores cannot help an application that is not using the
            // cores it already has; its latency problem is cache or
            // bandwidth. Turn the FSM to ways.
            let app_usage = usage
                .iter()
                .find(|(i, _)| *i == app)
                .map(|(_, u)| *u)
                .unwrap_or(0.0);
            if kind == ResourceKind::Cores
                && (partition.isolated(app.into()).cores as f64) > app_usage + 1.0
            {
                kind = ResourceKind::Ways;
                self.fsm.insert(app, kind);
            }

            // Donor: richest BE app first, else the slackest LC app.
            for k in kind.cycle() {
                let donor = donor_for(ctx, &partition, app, k, &slacks, &usage, &down_threshold);
                if let Some(donor) = donor {
                    if Self::move_unit(&mut partition, donor, app, k) {
                        return Some(partition);
                    }
                }
            }
            return None;
        }

        // 3. Everyone comfortable: tentatively downsize the slackest app.
        let comfortable = slacks.iter().all(|&(i, s)| {
            let t = down_threshold
                .iter()
                .find(|(j, _)| *j == i)
                .map(|(_, t)| *t)
                .unwrap_or(self.config.downsize_slack);
            s > t
        });
        if comfortable {
            if let Some(&(app, _)) = slacks
                .iter()
                .filter(|(i, _)| self.hold_until.get(i).copied().unwrap_or(0) <= self.window)
                .max_by(|a, b| a.1.total_cmp(&b.1))
            {
                // Return the unit to the poorest BE app.
                let be_target = ctx
                    .apps
                    .iter()
                    .enumerate()
                    .filter(|(_, a)| a.kind() == AppKind::Be)
                    .min_by_key(|(i, _)| partition.isolated((*i).into()).cores);
                if let Some((be, _)) = be_target {
                    let kind = self.fsm_kind(app);
                    let before = partition.clone();
                    for k in kind.cycle() {
                        if Self::move_unit(&mut partition, app, be, k) {
                            self.pending_downsize = Some((before, app));
                            return Some(partition);
                        }
                    }
                }
            }
        }
        None
    }
}

/// Picks the donor application for an upsize of `kind` toward `needy`.
///
/// A BE application donates first (richest one). Failing that, an LC
/// application may donate if its slack is safely above its own downsize
/// threshold **and**, for cores, it would still keep one more core than it
/// actually uses — donating a core an application needs triggers the
/// upsize/downsize death spiral the PARTIES paper calls ping-ponging.
fn donor_for(
    ctx: &SchedContext<'_>,
    partition: &Partition,
    needy: usize,
    kind: ResourceKind,
    slacks: &[(usize, f64)],
    usage: &[(usize, f64)],
    down_threshold: &[(usize, f64)],
) -> Option<usize> {
    let has_units = |i: usize| {
        let a = partition.isolated(i.into());
        match kind {
            ResourceKind::Cores => a.cores > 1,
            ResourceKind::Ways => a.ways > 1,
            ResourceKind::Membw => a.membw_pct > MEMBW_UNIT_PCT,
        }
    };
    // Richest BE application first.
    let be = ctx
        .apps
        .iter()
        .enumerate()
        .filter(|(i, a)| a.kind() == AppKind::Be && *i != needy && has_units(*i))
        .max_by_key(|(i, _)| {
            let a = partition.isolated((*i).into());
            match kind {
                ResourceKind::Cores => a.cores,
                ResourceKind::Ways => a.ways,
                ResourceKind::Membw => a.membw_pct,
            }
        })
        .map(|(i, _)| i);
    if be.is_some() {
        return be;
    }
    // Else: the LC application with the most slack, if it is safely above
    // its downsize threshold and can spare the unit.
    slacks
        .iter()
        .filter(|(i, s)| {
            if *i == needy || !has_units(*i) {
                return false;
            }
            let t = down_threshold
                .iter()
                .find(|(j, _)| j == i)
                .map(|(_, t)| *t)
                .unwrap_or(0.25);
            if *s <= t {
                return false;
            }
            if kind == ResourceKind::Cores {
                let u = usage
                    .iter()
                    .find(|(j, _)| j == i)
                    .map(|(_, u)| *u)
                    .unwrap_or(0.0);
                (partition.isolated((*i).into()).cores as f64) - 1.0 > u + 0.5
            } else {
                true
            }
        })
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .map(|(i, _)| *i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_split_covers_everything() {
        assert_eq!(equal_split(10, 4, &[3]), vec![2, 2, 2, 4]);
        assert_eq!(equal_split(20, 4, &[3]), vec![5, 5, 5, 5]);
        assert_eq!(equal_split(7, 3, &[]), vec![3, 2, 2]);
        assert_eq!(equal_split(10, 4, &[3]).iter().sum::<u32>(), 10);
    }

    #[test]
    #[should_panic(expected = "at least one unit")]
    fn equal_split_needs_enough_units() {
        equal_split(2, 3, &[]);
    }

    #[test]
    fn initial_partition_is_strict_and_full() {
        use ahq_sim::{AppSpec, MachineConfig};
        let apps = vec![
            AppSpec::lc("a").qos_threshold_ms(5.0).build().unwrap(),
            AppSpec::lc("b").qos_threshold_ms(5.0).build().unwrap(),
            AppSpec::be("c").build().unwrap(),
        ];
        let machine = MachineConfig::paper_xeon();
        let p = Parties::new().initial_partition(&machine, &apps);
        assert_eq!(p.isolated_cores(), 10);
        assert_eq!(p.isolated_ways(), 20);
        assert_eq!(p.shared_cores(&machine), 0);
        assert_eq!(
            p.isolated_membw_pct(),
            100,
            "bandwidth is strictly reserved too"
        );
        // BE got the remainder core.
        assert!(p.isolated(2.into()).cores >= p.isolated(0.into()).cores);
    }

    #[test]
    fn move_unit_respects_floor() {
        let mut p = Partition::strict(vec![RegionAlloc::new(1, 1), RegionAlloc::new(2, 2)]);
        assert!(!Parties::move_unit(&mut p, 0, 1, ResourceKind::Cores));
        assert!(Parties::move_unit(&mut p, 1, 0, ResourceKind::Cores));
        assert_eq!(p.isolated(0.into()).cores, 2);
        assert_eq!(p.isolated(1.into()).cores, 1);
        // App 1 still has 2 ways, so a way move succeeds...
        assert!(Parties::move_unit(&mut p, 1, 0, ResourceKind::Ways));
        // ...but now it is at the 1-way floor.
        assert!(!Parties::move_unit(&mut p, 1, 0, ResourceKind::Ways));
    }

    #[test]
    fn resource_kind_cycles() {
        assert_eq!(ResourceKind::Cores.next(), ResourceKind::Ways);
        assert_eq!(ResourceKind::Ways.next(), ResourceKind::Membw);
        assert_eq!(ResourceKind::Membw.next(), ResourceKind::Cores);
        assert_eq!(
            ResourceKind::Ways.cycle(),
            [ResourceKind::Ways, ResourceKind::Membw, ResourceKind::Cores]
        );
    }

    #[test]
    fn membw_moves_in_units_with_floor() {
        let mut p = Partition::strict(vec![
            RegionAlloc::new(1, 1).with_membw(10),
            RegionAlloc::new(1, 1).with_membw(5),
        ]);
        assert!(Parties::move_unit(&mut p, 0, 1, ResourceKind::Membw));
        assert_eq!(p.isolated(0.into()).membw_pct, 5);
        assert_eq!(p.isolated(1.into()).membw_pct, 10);
        // At the floor the donor refuses.
        assert!(!Parties::move_unit(&mut p, 0, 1, ResourceKind::Membw));
    }
}
