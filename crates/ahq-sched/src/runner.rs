//! The window-driven scheduling loop: simulate a window, score it with the
//! entropy model, let the scheduler react, repeat.
//!
//! The loop is available in two shapes: the batch helpers [`run`] /
//! [`run_with_hook`] that drive a whole run to completion, and the
//! incremental [`ScheduledRun`] that advances one window per [`ScheduledRun::step`]
//! call — the form the cluster layer uses to keep many nodes on a shared
//! window clock. Both produce byte-identical [`RunResult`]s for the same
//! inputs: the batch helpers are thin wrappers over the stepper.

use ahq_core::json::{FromJson, JsonError, JsonValue, ToJson};
use ahq_core::{EntropyModel, EntropyReport};
use ahq_sim::{NodeSim, Partition, WindowObservation};
use serde::{Deserialize, Serialize};

use crate::observe;
use crate::{SchedContext, Scheduler};

/// The full record of one scheduled run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Strategy name.
    pub strategy: String,
    /// Per-window observations.
    pub observations: Vec<WindowObservation>,
    /// Per-window entropy reports (parallel to `observations`).
    pub entropy: Vec<EntropyReport>,
    /// Per-window partitions in force (parallel to `observations`).
    pub partitions: Vec<Partition>,
    /// Total QoS violations across all windows and LC applications.
    pub violations: u64,
    /// Number of partition adjustments the scheduler made.
    pub adjustments: u64,
}

impl ToJson for RunResult {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("strategy", self.strategy.to_json()),
            ("observations", self.observations.to_json()),
            ("entropy", self.entropy.to_json()),
            ("partitions", self.partitions.to_json()),
            ("violations", self.violations.to_json()),
            ("adjustments", self.adjustments.to_json()),
        ])
    }
}

impl FromJson for RunResult {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(Self {
            strategy: value.req("strategy")?,
            observations: value.req("observations")?,
            entropy: value.req("entropy")?,
            partitions: value.req("partitions")?,
            violations: value.req("violations")?,
            adjustments: value.req("adjustments")?,
        })
    }
}

impl RunResult {
    /// Mean system entropy over the last `n` windows (or all, if fewer) —
    /// the steady-state score experiments report.
    pub fn steady_entropy(&self, n: usize) -> f64 {
        mean(self.entropy.iter().rev().take(n).map(|e| e.system))
    }

    /// Mean LC entropy over the last `n` windows.
    pub fn steady_lc_entropy(&self, n: usize) -> f64 {
        mean(self.entropy.iter().rev().take(n).map(|e| e.lc))
    }

    /// Mean BE entropy over the last `n` windows.
    pub fn steady_be_entropy(&self, n: usize) -> f64 {
        mean(self.entropy.iter().rev().take(n).map(|e| e.be))
    }

    /// Mean yield over the last `n` windows.
    pub fn steady_yield(&self, n: usize) -> f64 {
        mean(self.entropy.iter().rev().take(n).map(|e| e.yield_fraction))
    }

    /// Mean p95 of one LC application over the last `n` windows.
    pub fn steady_p95(&self, name: &str, n: usize) -> Option<f64> {
        mean_opt(
            self.observations
                .iter()
                .rev()
                .take(n)
                .filter_map(|o| o.lc_by_name(name).and_then(|s| s.p95_ms)),
        )
    }

    /// Mean IPC of one BE application over the last `n` windows.
    pub fn steady_ipc(&self, name: &str, n: usize) -> Option<f64> {
        mean_opt(
            self.observations
                .iter()
                .rev()
                .take(n)
                .filter_map(|o| o.be_by_name(name).map(|s| s.ipc)),
        )
    }
}

/// Single-pass mean without collecting; `0.0` for an empty iterator.
/// Accumulates in iteration order, so it sums exactly the way the old
/// collect-then-sum implementation did.
fn mean(values: impl Iterator<Item = f64>) -> f64 {
    mean_opt(values).unwrap_or(0.0)
}

/// Single-pass mean without collecting; `None` for an empty iterator.
fn mean_opt(values: impl Iterator<Item = f64>) -> Option<f64> {
    let mut sum = 0.0;
    let mut count = 0u64;
    for v in values {
        sum += v;
        count += 1;
    }
    if count == 0 {
        None
    } else {
        Some(sum / count as f64)
    }
}

/// Runs `scheduler` over `windows` monitoring windows of `sim`.
///
/// Installs the scheduler's initial partition and sharing policy, then per
/// window: simulate, convert the observation to entropy measurements,
/// score, hand everything to [`Scheduler::decide`], and apply any
/// repartition (invalid proposals are ignored — a real controller's
/// actuation layer would equally refuse them).
pub fn run(
    sim: &mut NodeSim,
    scheduler: &mut dyn Scheduler,
    windows: usize,
    model: &EntropyModel,
) -> RunResult {
    run_with_hook(sim, scheduler, windows, model, |_, _| {})
}

/// Like [`run`], but calls `hook(sim, window_index)` *before* each window —
/// the place to replay load traces (Fig. 13) or inject faults.
pub fn run_with_hook(
    sim: &mut NodeSim,
    scheduler: &mut dyn Scheduler,
    windows: usize,
    model: &EntropyModel,
    mut hook: impl FnMut(&mut NodeSim, usize),
) -> RunResult {
    let mut stepper = ScheduledRun::new(sim, scheduler, model);
    for w in 0..windows {
        hook(stepper.sim(), w);
        stepper.step();
    }
    stepper.finish()
}

/// An in-progress scheduled run that advances one monitoring window per
/// [`ScheduledRun::step`] call.
///
/// This is the per-window form of the loop [`run_with_hook`] drives to
/// completion: construction installs the scheduler's policy and initial
/// partition, each step simulates one window / scores it / lets the
/// scheduler react, and [`ScheduledRun::finish`] seals the accumulated
/// [`RunResult`]. Stepping `n` times and finishing is byte-identical to
/// `run(sim, scheduler, n, model)`.
pub struct ScheduledRun<'a> {
    sim: &'a mut NodeSim,
    scheduler: &'a mut dyn Scheduler,
    model: &'a EntropyModel,
    apps: Vec<ahq_sim::AppSpec>,
    adjustments_before: u64,
    result: RunResult,
}

impl<'a> ScheduledRun<'a> {
    /// Prepares a run: installs the scheduler's sharing policy and initial
    /// partition on `sim`.
    ///
    /// # Panics
    ///
    /// Panics when the scheduler proposes an invalid initial partition —
    /// that is a scheduler bug, not a runtime condition.
    pub fn new(
        sim: &'a mut NodeSim,
        scheduler: &'a mut dyn Scheduler,
        model: &'a EntropyModel,
    ) -> Self {
        let apps: Vec<ahq_sim::AppSpec> = sim.specs().cloned().collect();
        sim.set_policy(scheduler.policy());
        let initial = scheduler.initial_partition(sim.machine(), &apps);
        // An unsound initial partition is a scheduler bug; surface it loudly.
        sim.set_partition(initial)
            .expect("scheduler proposed an invalid initial partition");
        let adjustments_before = sim.adjustments();
        let strategy = scheduler.name().to_owned();
        ScheduledRun {
            sim,
            scheduler,
            model,
            apps,
            adjustments_before,
            result: RunResult {
                strategy,
                observations: Vec::new(),
                entropy: Vec::new(),
                partitions: Vec::new(),
                violations: 0,
                adjustments: 0,
            },
        }
    }

    /// The simulator under the run — for pre-window mutation (load-trace
    /// replay, fault injection), exactly what [`run_with_hook`] hands its
    /// hook.
    pub fn sim(&mut self) -> &mut NodeSim {
        self.sim
    }

    /// Number of windows stepped so far.
    pub fn windows_run(&self) -> usize {
        self.result.observations.len()
    }

    /// Advances one monitoring window: simulate, score, let the scheduler
    /// react, apply any repartition. Returns the window's entropy report.
    pub fn step(&mut self) -> &EntropyReport {
        let partition = self.sim.partition().clone();
        let obs = self.sim.run_window();
        let (lc, be) = observe::measurements(&obs);
        let entropy = self.model.evaluate_auto(&lc, &be);
        self.result.violations += observe::violations(&obs);

        let ctx = SchedContext {
            machine: self.sim.machine(),
            apps: &self.apps,
            partition: &partition,
            obs: &obs,
            entropy: &entropy,
            now_s: self.sim.now().as_secs(),
        };
        if let Some(next) = self.scheduler.decide(&ctx) {
            // Refuse invalid proposals instead of crashing the run.
            let _ = self.sim.set_partition(next);
        }

        self.result.observations.push(obs);
        self.result.entropy.push(entropy);
        self.result.partitions.push(partition);
        self.result.entropy.last().expect("just pushed")
    }

    /// Seals the run, accounting the scheduler's partition adjustments.
    pub fn finish(self) -> RunResult {
        let mut result = self.result;
        result.adjustments = self.sim.adjustments() - self.adjustments_before;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Unmanaged;
    use ahq_sim::{AppSpec, MachineConfig};

    fn sim() -> NodeSim {
        let lc = AppSpec::lc("svc")
            .mean_service_ms(1.0)
            .qos_threshold_ms(5.0)
            .max_load_qps(2000.0)
            .build()
            .unwrap();
        let be = AppSpec::be("batch").ipc_solo(2.0).build().unwrap();
        let mut sim = NodeSim::new(MachineConfig::paper_xeon(), vec![lc, be], 9).unwrap();
        sim.set_load("svc", 0.3).unwrap();
        sim
    }

    fn entropy_only(systems: &[f64]) -> RunResult {
        RunResult {
            strategy: "test".into(),
            observations: Vec::new(),
            entropy: systems
                .iter()
                .map(|&system| EntropyReport {
                    lc: 0.0,
                    be: 0.0,
                    system,
                    yield_fraction: 1.0,
                    lc_apps: Vec::new(),
                })
                .collect(),
            partitions: Vec::new(),
            violations: 0,
            adjustments: 0,
        }
    }

    #[test]
    fn run_produces_parallel_vectors() {
        let mut s = sim();
        let mut sched = Unmanaged;
        let r = run(&mut s, &mut sched, 5, &EntropyModel::default());
        assert_eq!(r.observations.len(), 5);
        assert_eq!(r.entropy.len(), 5);
        assert_eq!(r.partitions.len(), 5);
        assert_eq!(r.strategy, "unmanaged");
    }

    #[test]
    fn hook_fires_each_window() {
        let mut s = sim();
        let mut sched = Unmanaged;
        let mut fired = Vec::new();
        run_with_hook(&mut s, &mut sched, 3, &EntropyModel::default(), |_, w| {
            fired.push(w)
        });
        assert_eq!(fired, vec![0, 1, 2]);
    }

    #[test]
    fn stepper_matches_batch_run() {
        let model = EntropyModel::default();
        let batch = {
            let mut s = sim();
            let mut sched = Unmanaged;
            run(&mut s, &mut sched, 4, &model)
        };
        let stepped = {
            let mut s = sim();
            let mut sched = Unmanaged;
            let mut stepper = ScheduledRun::new(&mut s, &mut sched, &model);
            while stepper.windows_run() < 4 {
                stepper.step();
            }
            stepper.finish()
        };
        assert_eq!(
            serde_json::to_string(&batch).unwrap(),
            serde_json::to_string(&stepped).unwrap(),
            "stepping must be byte-identical to the batch loop"
        );
    }

    #[test]
    fn steady_entropy_pinned_for_n_around_window_count() {
        let r = entropy_only(&[0.1, 0.2, 0.4]);
        // n smaller than the window count: mean of the last two.
        assert!((r.steady_entropy(2) - 0.3).abs() < 1e-12);
        // n equal to the window count: mean of all three.
        assert!((r.steady_entropy(3) - (0.7 / 3.0)).abs() < 1e-12);
        // n larger than the window count clamps to all windows.
        assert_eq!(r.steady_entropy(3), r.steady_entropy(100));
        // Degenerate cases.
        assert_eq!(r.steady_entropy(0), 0.0);
        assert_eq!(entropy_only(&[]).steady_entropy(5), 0.0);
    }

    #[test]
    fn steady_state_helpers() {
        let mut s = sim();
        let mut sched = Unmanaged;
        let r = run(&mut s, &mut sched, 6, &EntropyModel::default());
        let e = r.steady_entropy(3);
        assert!((0.0..=1.0).contains(&e));
        assert!(r.steady_p95("svc", 3).is_some());
        assert!(r.steady_ipc("batch", 3).is_some());
        assert!(r.steady_p95("nope", 3).is_none());
        assert!((0.0..=1.0).contains(&r.steady_yield(3)));
    }
}
