//! The window-driven scheduling loop: simulate a window, score it with the
//! entropy model, let the scheduler react, repeat.

use ahq_core::{EntropyModel, EntropyReport};
use ahq_sim::{NodeSim, Partition, WindowObservation};
use serde::{Deserialize, Serialize};

use crate::observe;
use crate::{SchedContext, Scheduler};

/// The full record of one scheduled run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Strategy name.
    pub strategy: String,
    /// Per-window observations.
    pub observations: Vec<WindowObservation>,
    /// Per-window entropy reports (parallel to `observations`).
    pub entropy: Vec<EntropyReport>,
    /// Per-window partitions in force (parallel to `observations`).
    pub partitions: Vec<Partition>,
    /// Total QoS violations across all windows and LC applications.
    pub violations: u64,
    /// Number of partition adjustments the scheduler made.
    pub adjustments: u64,
}

impl RunResult {
    /// Mean system entropy over the last `n` windows (or all, if fewer) —
    /// the steady-state score experiments report.
    pub fn steady_entropy(&self, n: usize) -> f64 {
        let tail: Vec<f64> = self
            .entropy
            .iter()
            .rev()
            .take(n)
            .map(|e| e.system)
            .collect();
        if tail.is_empty() {
            0.0
        } else {
            tail.iter().sum::<f64>() / tail.len() as f64
        }
    }

    /// Mean LC entropy over the last `n` windows.
    pub fn steady_lc_entropy(&self, n: usize) -> f64 {
        mean(self.entropy.iter().rev().take(n).map(|e| e.lc))
    }

    /// Mean BE entropy over the last `n` windows.
    pub fn steady_be_entropy(&self, n: usize) -> f64 {
        mean(self.entropy.iter().rev().take(n).map(|e| e.be))
    }

    /// Mean yield over the last `n` windows.
    pub fn steady_yield(&self, n: usize) -> f64 {
        mean(self.entropy.iter().rev().take(n).map(|e| e.yield_fraction))
    }

    /// Mean p95 of one LC application over the last `n` windows.
    pub fn steady_p95(&self, name: &str, n: usize) -> Option<f64> {
        let vals: Vec<f64> = self
            .observations
            .iter()
            .rev()
            .take(n)
            .filter_map(|o| o.lc_by_name(name).and_then(|s| s.p95_ms))
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }

    /// Mean IPC of one BE application over the last `n` windows.
    pub fn steady_ipc(&self, name: &str, n: usize) -> Option<f64> {
        let vals: Vec<f64> = self
            .observations
            .iter()
            .rev()
            .take(n)
            .filter_map(|o| o.be_by_name(name).map(|s| s.ipc))
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Runs `scheduler` over `windows` monitoring windows of `sim`.
///
/// Installs the scheduler's initial partition and sharing policy, then per
/// window: simulate, convert the observation to entropy measurements,
/// score, hand everything to [`Scheduler::decide`], and apply any
/// repartition (invalid proposals are ignored — a real controller's
/// actuation layer would equally refuse them).
pub fn run(
    sim: &mut NodeSim,
    scheduler: &mut dyn Scheduler,
    windows: usize,
    model: &EntropyModel,
) -> RunResult {
    run_with_hook(sim, scheduler, windows, model, |_, _| {})
}

/// Like [`run`], but calls `hook(sim, window_index)` *before* each window —
/// the place to replay load traces (Fig. 13) or inject faults.
pub fn run_with_hook(
    sim: &mut NodeSim,
    scheduler: &mut dyn Scheduler,
    windows: usize,
    model: &EntropyModel,
    mut hook: impl FnMut(&mut NodeSim, usize),
) -> RunResult {
    let apps: Vec<ahq_sim::AppSpec> = sim.specs().cloned().collect();
    sim.set_policy(scheduler.policy());
    let initial = scheduler.initial_partition(sim.machine(), &apps);
    // An unsound initial partition is a scheduler bug; surface it loudly.
    sim.set_partition(initial)
        .expect("scheduler proposed an invalid initial partition");
    let adjustments_before = sim.adjustments();

    let mut result = RunResult {
        strategy: scheduler.name().to_owned(),
        observations: Vec::with_capacity(windows),
        entropy: Vec::with_capacity(windows),
        partitions: Vec::with_capacity(windows),
        violations: 0,
        adjustments: 0,
    };

    for w in 0..windows {
        hook(sim, w);
        let partition = sim.partition().clone();
        let obs = sim.run_window();
        let (lc, be) = observe::measurements(&obs);
        let entropy = model.evaluate_auto(&lc, &be);
        result.violations += observe::violations(&obs);

        let ctx = SchedContext {
            machine: sim.machine(),
            apps: &apps,
            partition: &partition,
            obs: &obs,
            entropy: &entropy,
            now_s: sim.now().as_secs(),
        };
        if let Some(next) = scheduler.decide(&ctx) {
            // Refuse invalid proposals instead of crashing the run.
            let _ = sim.set_partition(next);
        }

        result.observations.push(obs);
        result.entropy.push(entropy);
        result.partitions.push(partition);
    }
    result.adjustments = sim.adjustments() - adjustments_before;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Unmanaged;
    use ahq_sim::{AppSpec, MachineConfig};

    fn sim() -> NodeSim {
        let lc = AppSpec::lc("svc")
            .mean_service_ms(1.0)
            .qos_threshold_ms(5.0)
            .max_load_qps(2000.0)
            .build()
            .unwrap();
        let be = AppSpec::be("batch").ipc_solo(2.0).build().unwrap();
        let mut sim = NodeSim::new(MachineConfig::paper_xeon(), vec![lc, be], 9).unwrap();
        sim.set_load("svc", 0.3).unwrap();
        sim
    }

    #[test]
    fn run_produces_parallel_vectors() {
        let mut s = sim();
        let mut sched = Unmanaged;
        let r = run(&mut s, &mut sched, 5, &EntropyModel::default());
        assert_eq!(r.observations.len(), 5);
        assert_eq!(r.entropy.len(), 5);
        assert_eq!(r.partitions.len(), 5);
        assert_eq!(r.strategy, "unmanaged");
    }

    #[test]
    fn hook_fires_each_window() {
        let mut s = sim();
        let mut sched = Unmanaged;
        let mut fired = Vec::new();
        run_with_hook(&mut s, &mut sched, 3, &EntropyModel::default(), |_, w| {
            fired.push(w)
        });
        assert_eq!(fired, vec![0, 1, 2]);
    }

    #[test]
    fn steady_state_helpers() {
        let mut s = sim();
        let mut sched = Unmanaged;
        let r = run(&mut s, &mut sched, 6, &EntropyModel::default());
        let e = r.steady_entropy(3);
        assert!((0.0..=1.0).contains(&e));
        assert!(r.steady_p95("svc", 3).is_some());
        assert!(r.steady_ipc("batch", 3).is_some());
        assert!(r.steady_p95("nope", 3).is_none());
        assert!((0.0..=1.0).contains(&r.steady_yield(3)));
    }
}
