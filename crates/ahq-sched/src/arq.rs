use ahq_sim::{AppKind, AppSpec, MachineConfig, MbaLevel, Partition, SharingPolicy};
use serde::{Deserialize, Serialize};

use crate::parties::{ResourceKind, MEMBW_UNIT_PCT};
use crate::rollback::{Blacklist, SpeculativeMove};
use crate::{SchedContext, Scheduler};

/// A resource region in ARQ's model: one LC application's isolated region,
/// or the single shared region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub(crate) enum Region {
    /// The shared region (BE applications live here; LC applications
    /// overflow into it).
    Shared,
    /// The isolated region of the LC application with this global index.
    Isolated(usize),
}

/// Tuning knobs of [`Arq`], defaulting to the constants of Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArqConfig {
    /// An isolated region may donate resources while its application's
    /// remaining tolerance exceeds this (Algorithm 1: 0.1).
    pub victim_ret: f64,
    /// An application with remaining tolerance below this receives
    /// resources into its isolated region (Algorithm 1: 0.05).
    pub beneficiary_ret: f64,
    /// How long a rolled-back victim region is protected from being
    /// penalized again, in seconds (Algorithm 1: 60 s).
    pub blacklist_secs: f64,
    /// Tolerance when comparing consecutive entropy values. Window-to-window
    /// entropy carries sampling noise of a few hundredths; an adjustment is
    /// only cancelled when the increase clearly exceeds that noise floor.
    pub entropy_epsilon: f64,
    /// Number of recent windows whose median is used as the entropy
    /// feedback signal. The default of 1 uses the instantaneous value —
    /// the rollback check needs to see the previous adjustment's effect
    /// immediately; larger values damp spikes at the cost of feedback lag.
    pub smoothing_windows: usize,
    /// How the shared region's cores are divided. The paper's ARQ gives
    /// LC applications strict priority there; `Fair` exists for ablation.
    pub sharing: SharingPolicy,
    /// Whether ARQ may additionally throttle BE memory bandwidth with
    /// MBA-style levels. Off by default — Algorithm 1 negotiates cores,
    /// ways and bandwidth reservations only; this gate adds a tighten /
    /// relax step over [`MbaLevel`] for the membw ablation family.
    #[serde(default)]
    pub throttle_be: bool,
}

impl Default for ArqConfig {
    fn default() -> Self {
        ArqConfig {
            victim_ret: 0.1,
            beneficiary_ret: 0.05,
            blacklist_secs: 60.0,
            entropy_epsilon: 0.025,
            smoothing_windows: 1,
            sharing: SharingPolicy::LcPriority,
            throttle_be: false,
        }
    }
}

/// The ARQ scheduling strategy — Algorithm 1 of the Ah-Q paper.
///
/// ARQ divides the machine into per-LC-application *isolated regions* plus
/// one *shared region*. BE applications can only use the shared region; LC
/// applications use their own isolated region *and* the shared region
/// (with priority over BE). Every monitoring window ARQ:
///
/// 1. computes the system entropy `E_S` and each LC application's
///    remaining tolerance `ReT_i`;
/// 2. if the previous adjustment *increased* `E_S`, cancels it and
///    blacklists the penalized region for 60 s;
/// 3. otherwise moves one resource unit (cores first, then LLC ways, via a
///    PARTIES-style resource FSM) from a *victim region* — the
///    highest-`ReT` application holding isolated resources, else the
///    shared region — to a *beneficiary region* — the isolated region of
///    the lowest-`ReT` application if it is under 0.05, else the shared
///    region. Victim == beneficiary means equilibrium: no action.
#[derive(Debug)]
pub struct Arq {
    config: ArqConfig,
    is_adjust: bool,
    prev_entropy: f64,
    last: Option<SpeculativeMove<Partition, Region>>,
    blacklist: Blacklist<Region>,
    fsm: ResourceKind,
    recent_entropy: Vec<f64>,
}

impl Arq {
    /// Creates ARQ with the paper's constants.
    pub fn new() -> Self {
        Self::with_config(ArqConfig::default())
    }

    /// Creates ARQ with explicit constants.
    pub fn with_config(config: ArqConfig) -> Self {
        Arq {
            config,
            is_adjust: false,
            prev_entropy: 1.0, // Algorithm 1 line 2
            last: None,
            blacklist: Blacklist::new(),
            fsm: ResourceKind::Cores,
            recent_entropy: Vec::new(),
        }
    }

    /// The smoothed (median-of-recent-windows) entropy signal.
    fn smoothed_entropy(&mut self, entropy: f64) -> f64 {
        self.recent_entropy.push(entropy);
        let n = self.config.smoothing_windows.max(1);
        if self.recent_entropy.len() > n {
            let excess = self.recent_entropy.len() - n;
            self.recent_entropy.drain(..excess);
        }
        let mut sorted = self.recent_entropy.clone();
        sorted.sort_by(f64::total_cmp);
        sorted[sorted.len() / 2]
    }

    fn blacklisted(&self, region: Region, now_s: f64) -> bool {
        self.blacklist.active(&region, now_s)
    }

    /// The remaining-tolerance array: `(global app index, ReT)` per LC
    /// application, from the entropy report the runner computed.
    fn ret_array(ctx: &SchedContext<'_>) -> Vec<(usize, f64)> {
        ctx.entropy
            .lc_apps
            .iter()
            .map(|r| {
                let idx = ctx
                    .apps
                    .iter()
                    .position(|a| a.name() == r.name)
                    .expect("entropy report names a registered app");
                (idx, r.remaining_tolerance)
            })
            .collect()
    }

    /// Algorithm 1, `findVictimRegion`: traverse ReT in descending order;
    /// the first application with `ReT > 0.1` that holds penalizable
    /// isolated resources (and is not blacklisted) donates; otherwise the
    /// shared region does.
    fn find_victim(
        &self,
        ctx: &SchedContext<'_>,
        ret: &[(usize, f64)],
        now_s: f64,
    ) -> Option<Region> {
        let mut by_ret = ret.to_vec();
        by_ret.sort_by(|a, b| b.1.total_cmp(&a.1));
        for &(idx, r) in &by_ret {
            if r <= self.config.victim_ret {
                break; // descending order: nobody further qualifies
            }
            let region = Region::Isolated(idx);
            let alloc = ctx.partition.isolated(idx.into());
            if !alloc.is_empty() && !self.blacklisted(region, now_s) {
                return Some(region);
            }
        }
        if self.blacklisted(Region::Shared, now_s) {
            None
        } else {
            Some(Region::Shared)
        }
    }

    /// Algorithm 1, `findBeneficiaryRegion`: the lowest-ReT application's
    /// isolated region if it is starving, else the shared region.
    fn find_beneficiary(&self, ret: &[(usize, f64)]) -> Region {
        match ret.iter().min_by(|a, b| a.1.total_cmp(&b.1)) {
            Some(&(idx, r)) if r < self.config.beneficiary_ret => Region::Isolated(idx),
            _ => Region::Shared,
        }
    }

    /// Whether giving `kind` to the beneficiary can plausibly help it:
    /// handing more cores to an application that is not using the cores it
    /// can already reach only starves everyone else (its bottleneck is
    /// cache or bandwidth). The paper's ARQ snapshots show the same
    /// behaviour — a 30 %-loaded Xapian holds just one isolated core.
    fn kind_can_help(ctx: &SchedContext<'_>, beneficiary: Region, kind: ResourceKind) -> bool {
        let Region::Isolated(b) = beneficiary else {
            return true;
        };
        if kind != ResourceKind::Cores {
            return true;
        }
        let name = ctx.apps[b].name();
        let Some(stats) = ctx.obs.lc_by_name(name) else {
            return true;
        };
        let iso_cores = ctx.partition.isolated(b.into()).cores as f64;
        // The app's threads cap how many cores it can ever use.
        let threads = ctx.apps[b].threads() as f64;
        iso_cores < (stats.mean_core_capacity + 1.0).min(threads)
    }

    /// Attempts to move one unit of `kind` from `victim` to `beneficiary`.
    /// Returns the new partition, or `None` when the move would be
    /// infeasible (empty donor, or it would leave the shared region unable
    /// to host the applications that depend on it).
    fn try_move(
        ctx: &SchedContext<'_>,
        victim: Region,
        beneficiary: Region,
        kind: ResourceKind,
    ) -> Option<Partition> {
        let mut p = ctx.partition.clone();
        // Donate.
        match victim {
            Region::Isolated(v) => {
                let mut a = p.isolated(v.into());
                match kind {
                    ResourceKind::Cores => {
                        if a.cores == 0 {
                            return None;
                        }
                        a.cores -= 1;
                    }
                    ResourceKind::Ways => {
                        if a.ways == 0 {
                            return None;
                        }
                        a.ways -= 1;
                    }
                    ResourceKind::Membw => {
                        if a.membw_pct < MEMBW_UNIT_PCT {
                            return None;
                        }
                        a.membw_pct -= MEMBW_UNIT_PCT;
                    }
                }
                p.set_isolated(v.into(), a);
            }
            Region::Shared => { /* implicit: receiving into an isolated region shrinks it */ }
        }
        // Receive.
        match beneficiary {
            Region::Isolated(b) => {
                let mut a = p.isolated(b.into());
                match kind {
                    ResourceKind::Cores => a.cores += 1,
                    ResourceKind::Ways => a.ways += 1,
                    ResourceKind::Membw => a.membw_pct += MEMBW_UNIT_PCT,
                }
                p.set_isolated(b.into(), a);
            }
            Region::Shared => { /* implicit: donation already grew it */ }
        }
        if p.validate(ctx.machine).is_err() {
            return None;
        }
        // The shared region must keep at least one core while any
        // application (every BE app under ARQ) has no isolated core, and at
        // least one way while anyone depends on shared cache.
        let needs_shared_core = p.iter().any(|(_, a)| a.cores == 0);
        if needs_shared_core && p.shared_cores(ctx.machine) == 0 {
            return None;
        }
        let needs_shared_way = p.iter().any(|(_, a)| a.ways == 0);
        if needs_shared_way && p.shared_ways(ctx.machine) == 0 {
            return None;
        }
        // Keep a meaningful bandwidth pool while anyone depends on it.
        let needs_pool = p.iter().any(|(_, a)| a.membw_pct == 0);
        if needs_pool && p.shared_membw_pct() < 20 {
            return None;
        }
        Some(p)
    }

    /// The gated MBA step (`throttle_be`): when some LC application is
    /// starving (`min ReT < beneficiary_ret`), tighten the loosest
    /// non-blacklisted BE application one level; when every LC application
    /// is comfortable (`ReT > victim_ret` across the board), relax the
    /// tightest throttled BE application one level. Returns the adjusted
    /// partition and the BE region it touched, so the caller can enrol the
    /// move in the entropy-rollback machinery like any other adjustment.
    fn throttle_step(
        &self,
        ctx: &SchedContext<'_>,
        ret: &[(usize, f64)],
        now_s: f64,
    ) -> Option<(Partition, Region)> {
        let min_ret = ret.iter().map(|&(_, r)| r).fold(f64::INFINITY, f64::min);
        let be = |i: &usize| ctx.apps[*i].kind() == AppKind::Be;
        if min_ret < self.config.beneficiary_ret {
            // Tighten: BE bandwidth pressure is the suspected interferer.
            let target = (0..ctx.apps.len())
                .filter(be)
                .filter(|&i| !self.blacklisted(Region::Isolated(i), now_s))
                .max_by_key(|&i| ctx.partition.isolated(i.into()).mba.pct())?;
            let alloc = ctx.partition.isolated(target.into());
            if alloc.mba.pct() <= MbaLevel::MIN_PCT {
                return None; // already at the tightest hardware level
            }
            let mut p = ctx.partition.clone();
            p.set_isolated(target.into(), alloc.with_mba(alloc.mba.tighten()));
            p.validate(ctx.machine).ok()?;
            Some((p, Region::Isolated(target)))
        } else if ret.iter().all(|&(_, r)| r > self.config.victim_ret) {
            // Relax: nobody needs the protection any more; hand bandwidth
            // back to the throttled BE application one level at a time.
            let target = (0..ctx.apps.len())
                .filter(be)
                .filter(|&i| !ctx.partition.isolated(i.into()).mba.is_unthrottled())
                .min_by_key(|&i| ctx.partition.isolated(i.into()).mba.pct())?;
            let alloc = ctx.partition.isolated(target.into());
            let mut p = ctx.partition.clone();
            p.set_isolated(target.into(), alloc.with_mba(alloc.mba.relax()));
            Some((p, Region::Isolated(target)))
        } else {
            None
        }
    }
}

impl Arq {
    /// Falls through to the gated MBA step when the core/way/reservation
    /// machinery found nothing to do; a successful throttle move enrols in
    /// the same entropy-rollback protocol as every other adjustment.
    fn throttle_or_idle(
        &mut self,
        ctx: &SchedContext<'_>,
        ret: &[(usize, f64)],
    ) -> Option<Partition> {
        if self.config.throttle_be {
            if let Some((p, touched)) = self.throttle_step(ctx, ret, ctx.now_s) {
                self.last = Some(SpeculativeMove::new(ctx.partition.clone(), touched));
                self.is_adjust = true;
                return Some(p);
            }
        }
        self.is_adjust = false;
        None
    }
}

impl Default for Arq {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for Arq {
    fn name(&self) -> &'static str {
        "arq"
    }

    fn policy(&self) -> SharingPolicy {
        self.config.sharing
    }

    fn initial_partition(&self, _machine: &MachineConfig, apps: &[AppSpec]) -> Partition {
        // Everything starts shared; isolation grows only where feedback
        // demands it ("if an LC application running in the shared region
        // can satisfy its QoS target, the resources of the isolated region
        // will be reduced to 0").
        Partition::all_shared(apps.len())
    }

    fn decide(&mut self, ctx: &SchedContext<'_>) -> Option<Partition> {
        debug_assert!(
            ctx.apps.iter().any(|a| a.kind() == AppKind::Lc),
            "ARQ manages mixes with at least one LC application"
        );
        let entropy = self.smoothed_entropy(ctx.entropy.system);
        let ret = Self::ret_array(ctx);

        // Algorithm 1 lines 9-11: cancel an adjustment that made things
        // worse and protect the victim from being penalized again.
        if self.is_adjust && entropy > self.prev_entropy + self.config.entropy_epsilon {
            self.is_adjust = false;
            self.prev_entropy = entropy;
            // "Try to take new adjustment action to avoid trapping in a
            // local optimum": the cancelled move's resource type did not
            // work; turn the FSM to the next type.
            self.fsm = self.fsm.next();
            if let Some(m) = self.last.take() {
                self.blacklist
                    .protect(m.touched, ctx.now_s + self.config.blacklist_secs);
                return Some(m.before);
            }
            return None;
        }
        self.prev_entropy = entropy;

        // Algorithm 1, AdjustResource.
        let Some(victim) = self.find_victim(ctx, &ret, ctx.now_s) else {
            // Every eligible victim region is blacklisted right now.
            return self.throttle_or_idle(ctx, &ret);
        };
        let beneficiary = self.find_beneficiary(&ret);
        if victim == beneficiary {
            // Both shared (or same region): equilibrium — the only move
            // left, if enabled, is handing throttled bandwidth back.
            return self.throttle_or_idle(ctx, &ret);
        }

        // findVictimResource: stay on the FSM's current resource type until
        // it cannot be penalized (or cannot help the beneficiary), then
        // turn to the next type.
        for kind in self.fsm.cycle() {
            if !Self::kind_can_help(ctx, beneficiary, kind) {
                continue;
            }
            if let Some(p) = Self::try_move(ctx, victim, beneficiary, kind) {
                self.fsm = kind;
                self.last = Some(SpeculativeMove::new(ctx.partition.clone(), victim));
                self.is_adjust = true;
                return Some(p);
            }
        }
        // No movable core / way / reservation unit: the MBA step is the
        // remaining actuator.
        self.throttle_or_idle(ctx, &ret)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahq_core::{EntropyModel, EntropyReport, LcMeasurement};
    use ahq_sim::RegionAlloc;
    use ahq_sim::WindowObservation;

    fn specs() -> Vec<AppSpec> {
        vec![
            AppSpec::lc("lc0")
                .mean_service_ms(1.0)
                .qos_threshold_ms(5.0)
                .max_load_qps(1000.0)
                .build()
                .unwrap(),
            AppSpec::lc("lc1")
                .mean_service_ms(1.0)
                .qos_threshold_ms(5.0)
                .max_load_qps(1000.0)
                .build()
                .unwrap(),
            AppSpec::be("be").build().unwrap(),
        ]
    }

    /// Builds a context whose entropy report encodes the given observed
    /// latencies for lc0/lc1.
    fn make_entropy(lat0: f64, lat1: f64) -> EntropyReport {
        let model = EntropyModel::default();
        let lc = vec![
            LcMeasurement::new("lc0", 2.0, lat0, 5.0).unwrap(),
            LcMeasurement::new("lc1", 2.0, lat1, 5.0).unwrap(),
        ];
        model.evaluate(&lc, &[])
    }

    fn make_obs() -> WindowObservation {
        WindowObservation {
            window_index: 0,
            start_ms: 0.0,
            end_ms: 500.0,
            lc: vec![],
            be: vec![],
        }
    }

    struct Fixture {
        machine: MachineConfig,
        apps: Vec<AppSpec>,
        obs: WindowObservation,
    }

    impl Fixture {
        fn new() -> Self {
            Fixture {
                machine: MachineConfig::paper_xeon(),
                apps: specs(),
                obs: make_obs(),
            }
        }

        fn ctx<'a>(
            &'a self,
            partition: &'a Partition,
            entropy: &'a EntropyReport,
            now_s: f64,
        ) -> SchedContext<'a> {
            SchedContext {
                machine: &self.machine,
                apps: &self.apps,
                partition,
                obs: &self.obs,
                entropy,
                now_s,
            }
        }
    }

    #[test]
    fn starving_app_gains_an_isolated_core_from_shared() {
        let fx = Fixture::new();
        let mut arq = Arq::new();
        let p = Partition::all_shared(3);
        // lc0 violating badly (ReT 0), lc1 comfortable (shared has plenty).
        let e = make_entropy(6.0, 2.2);
        let next = arq.decide(&fx.ctx(&p, &e, 0.5)).expect("should adjust");
        assert_eq!(next.isolated(0.into()), RegionAlloc::new(1, 0));
        assert_eq!(next.isolated(1.into()), RegionAlloc::EMPTY);
        assert_eq!(next.isolated(2.into()), RegionAlloc::EMPTY);
    }

    #[test]
    fn rich_isolated_region_donates_before_shared() {
        let fx = Fixture::new();
        let mut arq = Arq::new();
        let mut p = Partition::all_shared(3);
        // lc1 holds isolated cores but has huge remaining tolerance.
        p.set_isolated(1.into(), RegionAlloc::new(3, 4));
        let e = make_entropy(6.0, 2.2); // lc1 ReT = 1 - 2.2/5 = 0.56 > 0.1
        let next = arq.decide(&fx.ctx(&p, &e, 0.5)).expect("should adjust");
        assert_eq!(next.isolated(1.into()).cores, 2, "lc1 donated one core");
        assert_eq!(next.isolated(0.into()).cores, 1, "lc0 received it");
    }

    #[test]
    fn equilibrium_means_no_action() {
        let fx = Fixture::new();
        let mut arq = Arq::new();
        let p = Partition::all_shared(3);
        // Both apps comfortable, nobody isolated: victim and beneficiary
        // are both the shared region.
        let e = make_entropy(2.2, 2.4);
        assert!(arq.decide(&fx.ctx(&p, &e, 0.5)).is_none());
    }

    #[test]
    fn worsening_entropy_rolls_back_and_blacklists() {
        let fx = Fixture::new();
        let mut arq = Arq::new();
        let mut p = Partition::all_shared(3);
        p.set_isolated(1.into(), RegionAlloc::new(3, 4));

        // First adjustment: lc1 donates to lc0.
        let e1 = make_entropy(6.0, 2.2);
        let p1 = arq.decide(&fx.ctx(&p, &e1, 0.5)).unwrap();

        // Entropy got *worse*: rollback to the pre-adjustment partition.
        let e2 = make_entropy(9.0, 2.2);
        assert!(e2.system > e1.system);
        let rolled = arq.decide(&fx.ctx(&p1, &e2, 1.0)).unwrap();
        assert_eq!(rolled, p);

        // The blacklisted victim (lc1's region) is not penalized again
        // within 60 s: the next donation comes from the shared region, and
        // the FSM turned to the next resource type (ways) because the core
        // move did not pay off.
        let e3 = make_entropy(6.0, 2.2);
        let p3 = arq.decide(&fx.ctx(&rolled, &e3, 1.5)).unwrap();
        assert_eq!(
            p3.isolated(1.into()),
            RegionAlloc::new(3, 4),
            "blacklisted region untouched"
        );
        assert_eq!(
            p3.isolated(0.into()),
            RegionAlloc::new(0, 1),
            "shared donated a way instead"
        );
    }

    #[test]
    fn blacklist_expires() {
        let mut arq = Arq::new();
        let region = Region::Isolated(1);
        arq.blacklist.protect(region, 60.0);
        assert!(arq.blacklisted(region, 30.0));
        assert!(!arq.blacklisted(region, 61.0));
    }

    #[test]
    fn shared_region_keeps_a_core_for_be_apps() {
        let fx = Fixture::new();
        let mut arq = Arq::new();
        // 9 of 10 cores already isolated; the BE app lives on the last
        // shared core, which must not be taken.
        let mut p = Partition::all_shared(3);
        p.set_isolated(0.into(), RegionAlloc::new(9, 0));
        let e = make_entropy(6.0, 2.2);
        // Beneficiary is lc0's isolated region; victim falls back to
        // shared (lc1 has nothing isolated). Moving a core is infeasible,
        // so the FSM turns to ways.
        let next = arq.decide(&fx.ctx(&p, &e, 0.5)).unwrap();
        assert_eq!(next.shared_cores(&fx.machine), 1);
        assert_eq!(next.isolated(0.into()).ways, 1, "a way moved instead");
    }

    #[test]
    fn fsm_prefers_cores_then_ways() {
        let arq = Arq::new();
        assert_eq!(arq.fsm, ResourceKind::Cores);
    }

    #[test]
    fn throttle_step_tightens_loosest_be_when_lc_starves() {
        let fx = Fixture::new();
        let arq = Arq::with_config(ArqConfig {
            throttle_be: true,
            ..ArqConfig::default()
        });
        let p = Partition::all_shared(3);
        let e = make_entropy(6.0, 2.2); // lc0 ReT < 0: starving
        let ctx = fx.ctx(&p, &e, 0.5);
        let ret = Arq::ret_array(&ctx);
        let (next, touched) = arq.throttle_step(&ctx, &ret, 0.5).expect("tightens");
        assert_eq!(touched, Region::Isolated(2), "the BE app's region");
        assert_eq!(next.isolated(2.into()).mba.pct(), 100 - MbaLevel::STEP_PCT);
        assert!(next.has_throttle());
    }

    #[test]
    fn equilibrium_relaxes_a_throttled_be_app() {
        let fx = Fixture::new();
        let mut arq = Arq::with_config(ArqConfig {
            throttle_be: true,
            ..ArqConfig::default()
        });
        let mut p = Partition::all_shared(3);
        p.set_isolated(2.into(), RegionAlloc::EMPTY.with_mba(MbaLevel::new(40)));
        // Both LC apps comfortable (ReT well above victim_ret): the only
        // remaining move is handing bandwidth back, one level at a time.
        let e = make_entropy(2.2, 2.4);
        let next = arq.decide(&fx.ctx(&p, &e, 0.5)).expect("relaxes");
        assert_eq!(next.isolated(2.into()).mba.pct(), 50);
    }

    #[test]
    fn throttle_gate_off_stays_idle_at_equilibrium() {
        let fx = Fixture::new();
        let mut arq = Arq::new();
        let mut p = Partition::all_shared(3);
        p.set_isolated(2.into(), RegionAlloc::EMPTY.with_mba(MbaLevel::new(40)));
        let e = make_entropy(2.2, 2.4);
        assert!(
            arq.decide(&fx.ctx(&p, &e, 0.5)).is_none(),
            "default config must never touch MBA levels"
        );
    }

    #[test]
    fn tighten_rolls_back_when_entropy_worsens() {
        let fx = Fixture::new();
        let mut arq = Arq::with_config(ArqConfig {
            throttle_be: true,
            ..ArqConfig::default()
        });
        // Cores cannot move (shared would drop to zero for the BE app) and
        // neither can ways, once everything but the floor is isolated; use
        // the blacklist to force the throttle path instead: both the
        // shared region and every LC region are blacklisted.
        let p = Partition::all_shared(3);
        arq.blacklist.protect(Region::Shared, 100.0);
        arq.blacklist.protect(Region::Isolated(0), 100.0);
        arq.blacklist.protect(Region::Isolated(1), 100.0);
        let e1 = make_entropy(6.0, 2.2);
        let p1 = arq.decide(&fx.ctx(&p, &e1, 0.5)).expect("tightens BE");
        assert_eq!(p1.isolated(2.into()).mba.pct(), 90);
        // Entropy got worse: the throttle move is cancelled like any other
        // adjustment and the BE region is protected for blacklist_secs.
        let e2 = make_entropy(9.0, 2.2);
        let rolled = arq.decide(&fx.ctx(&p1, &e2, 1.0)).expect("rolls back");
        assert_eq!(rolled, p);
        assert!(arq.blacklisted(Region::Isolated(2), 30.0));
    }
}
