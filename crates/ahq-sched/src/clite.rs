use ahq_bayesopt::{BayesOpt, RbfKernel};
use ahq_sim::{AppKind, AppSpec, MachineConfig, Partition, RegionAlloc, SharingPolicy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::parties::{equal_split, MEMBW_UNIT_PCT};
use crate::{SchedContext, Scheduler};

/// Tuning knobs of the [`Clite`] reimplementation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CliteConfig {
    /// Configurations sampled by Bayesian optimization before exploiting
    /// the best one.
    pub explore_budget: usize,
    /// Random configurations in the candidate pool.
    pub candidate_pool: usize,
    /// Random samples before the GP drives the search.
    pub initial_random: usize,
    /// Monitoring windows each sampled configuration runs. The first
    /// window is discarded (queues built under the previous configuration
    /// drain through it); the score is the mean of the rest.
    pub windows_per_sample: usize,
    /// Consecutive violating windows during exploitation that trigger a
    /// fresh exploration (the load must have shifted).
    pub reexplore_after: usize,
    /// Exploitation windows ignored before violations start counting —
    /// queues built up during exploration need time to drain.
    pub exploit_grace: usize,
    /// Minimum seconds between exploration restarts.
    pub restart_cooldown_s: f64,
    /// During exploitation, probe a single-unit neighbour of the incumbent
    /// every this many windows (hill-climbing refinement).
    pub probe_every: usize,
    /// A probe must beat the incumbent's rolling score by this margin to
    /// be adopted — set above the per-window score noise so refinement
    /// does not random-walk.
    pub probe_margin: f64,
    /// RNG seed for candidate generation and the optimizer.
    pub seed: u64,
    /// Whether candidates also partition memory bandwidth (one reservation
    /// unit per application minimum, summing to the whole node). Off by
    /// default: the published CLITE searches cores × ways, and the legacy
    /// RNG draw sequence is preserved exactly when this is off.
    #[serde(default)]
    pub partition_membw: bool,
}

impl Default for CliteConfig {
    fn default() -> Self {
        CliteConfig {
            explore_budget: 20,
            candidate_pool: 300,
            initial_random: 6,
            windows_per_sample: 3,
            reexplore_after: 8,
            exploit_grace: 8,
            restart_cooldown_s: 90.0,
            probe_every: 4,
            probe_margin: 0.01,
            seed: 0xC11E,
            partition_membw: false,
        }
    }
}

#[derive(Debug, Clone)]
struct Candidate {
    x: Vec<f64>,
    allocs: Vec<RegionAlloc>,
}

#[derive(Debug)]
enum Phase {
    /// Bayesian-optimization sampling; `left` configurations remain.
    Exploring { left: usize },
    /// Running the incumbent best configuration, with periodic
    /// hill-climbing probes.
    Exploiting(ExploitState),
}

#[derive(Debug)]
struct ExploitState {
    rolling: f64,
    /// The best sampled score at pin time: the yardstick for deciding
    /// whether the load has shifted under the pinned configuration.
    pinned: f64,
    windows: usize,
    violating_streak: usize,
    probe: Option<Probe>,
}

#[derive(Debug)]
struct Probe {
    candidate: Candidate,
    base: f64,
}

/// CLITE (Patel & Tiwari, HPCA 2020): strict partitioning searched by
/// Bayesian optimization.
///
/// Exploration samples configurations from a pool of random strict
/// partitions, scoring each over a few monitoring windows —
/// `1 + mean(BE progress)` when every LC application meets its QoS target,
/// else the mean QoS-satisfaction ratio (< 1) — and feeding a
/// Gaussian-process optimizer with expected-improvement acquisition.
/// Exploitation pins the best configuration and refines it with
/// single-unit hill-climbing probes; sustained violations (a load shift)
/// restart the search after a cooldown.
#[derive(Debug)]
pub struct Clite {
    config: CliteConfig,
    phase: Phase,
    opt: BayesOpt,
    candidates: Vec<Candidate>,
    current: Option<Candidate>,
    /// Windows the current configuration has run, and the score samples it
    /// accumulated past the discarded first window.
    windows_on_current: usize,
    sample_scores: Vec<f64>,
    last_restart_s: f64,
    restarts: u64,
    rng: StdRng,
}

impl Clite {
    /// Creates CLITE with default settings.
    pub fn new() -> Self {
        Self::with_config(CliteConfig::default())
    }

    /// Creates CLITE with explicit settings.
    pub fn with_config(config: CliteConfig) -> Self {
        Clite {
            config,
            phase: Phase::Exploring {
                left: config.explore_budget,
            },
            opt: BayesOpt::new(
                RbfKernel::new(0.5, 1.0, 1e-3),
                config.initial_random,
                config.seed,
            ),
            candidates: Vec::new(),
            current: None,
            windows_on_current: 0,
            sample_scores: Vec::new(),
            last_restart_s: 0.0,
            restarts: 0,
            rng: StdRng::seed_from_u64(config.seed ^ 0x9E37_79B9_7F4A_7C15),
        }
    }

    /// How many times the optimizer restarted exploration because the load
    /// shifted under it.
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    fn build_candidates(&mut self, machine: &MachineConfig, napps: usize) {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let with_membw = self.config.partition_membw;
        let membw_units = 100 / MEMBW_UNIT_PCT;
        let mut candidates = Vec::with_capacity(self.config.candidate_pool + 1);
        // Always include the equal split as a sane anchor.
        candidates.push(candidate_from_parts(
            equal_split(machine.cores, napps, &[]),
            equal_split(machine.llc_ways, napps, &[]),
            with_membw.then(|| equal_split(membw_units, napps, &[])),
            machine,
        ));
        while candidates.len() <= self.config.candidate_pool {
            let cores = random_composition(&mut rng, machine.cores, napps);
            let ways = random_composition(&mut rng, machine.llc_ways, napps);
            // The membw draw comes after the legacy draws, so with the
            // flag off the stream is untouched.
            let membw = with_membw.then(|| random_composition(&mut rng, membw_units, napps));
            candidates.push(candidate_from_parts(cores, ways, membw, machine));
        }
        self.candidates = candidates;
    }

    /// The CLITE objective for one window, higher is better. The violating
    /// branch uses the square root of the QoS ratio: deep violations
    /// compress `M/p95` toward zero, and the square root restores a usable
    /// gradient for the optimizer and the hill-climbing probes.
    fn score(ctx: &SchedContext<'_>) -> f64 {
        let mut qos_ratios = Vec::new();
        for s in &ctx.obs.lc {
            let p95 = s.p95_ms.unwrap_or(s.ideal_ms);
            qos_ratios.push((s.qos_ms / p95).min(1.0).sqrt());
        }
        let all_met = qos_ratios.iter().all(|&r| r >= 1.0 - 1e-9);
        if all_met {
            let be: Vec<f64> = ctx.obs.be.iter().map(|s| s.ipc / s.ipc_solo).collect();
            let be_mean = if be.is_empty() {
                1.0
            } else {
                be.iter().sum::<f64>() / be.len() as f64
            };
            1.0 + be_mean
        } else if qos_ratios.is_empty() {
            1.0
        } else {
            qos_ratios.iter().sum::<f64>() / qos_ratios.len() as f64
        }
    }

    /// The x-vector the current sample should be credited to (the initial
    /// partition is the equal-split anchor).
    fn current_x(&self) -> Vec<f64> {
        self.current
            .as_ref()
            .map(|c| c.x.clone())
            .unwrap_or_else(|| self.candidates[0].x.clone())
    }

    fn install(&mut self, candidate: Candidate) -> Partition {
        let p = Partition::strict(candidate.allocs.clone());
        self.current = Some(candidate);
        self.windows_on_current = 0;
        self.sample_scores.clear();
        p
    }

    fn next_suggestion(&mut self) -> Candidate {
        let xs: Vec<Vec<f64>> = self.candidates.iter().map(|c| c.x.clone()).collect();
        let pick = self.opt.suggest(&xs).to_vec();
        self.candidates
            .iter()
            .find(|c| c.x == pick)
            .expect("suggestion comes from the candidate pool")
            .clone()
    }

    fn restart_exploration(&mut self) {
        self.restarts += 1;
        self.phase = Phase::Exploring {
            left: self.config.explore_budget,
        };
        // Stale observations describe a different load; start fresh with a
        // derived seed to avoid replaying the identical trajectory.
        self.opt = BayesOpt::new(
            RbfKernel::new(0.5, 1.0, 1e-3),
            self.config.initial_random,
            self.config.seed.wrapping_add(self.restarts),
        );
        self.windows_on_current = 0;
        self.sample_scores.clear();
    }

    /// A single-unit neighbour of the incumbent, guided by the observed
    /// slacks: while an LC application violates, the move targets it
    /// (taking from a BE application or the slackest LC application);
    /// once everyone meets QoS, the move returns resources to the poorest
    /// BE application (improving the throughput term of the objective).
    /// The resource kind alternates randomly. Respects the 1-unit floors.
    fn neighbour(&mut self, ctx: &SchedContext<'_>) -> Option<Candidate> {
        let current = self.current.as_ref()?;
        let machine = ctx.machine;
        let n = current.allocs.len();
        let slack_of = |i: usize| -> f64 {
            ctx.obs
                .lc_by_name(ctx.apps[i].name())
                .map(|s| s.slack())
                .unwrap_or(1.0)
        };
        let lc: Vec<usize> = (0..n)
            .filter(|&i| ctx.apps[i].kind() == AppKind::Lc)
            .collect();
        let be: Vec<usize> = (0..n)
            .filter(|&i| ctx.apps[i].kind() == AppKind::Be)
            .collect();
        let worst = lc
            .iter()
            .copied()
            .min_by(|&a, &b| slack_of(a).total_cmp(&slack_of(b)));

        for attempt in 0..16 {
            let mut allocs = current.allocs.clone();
            // With membw partitioning off this is the published coin flip,
            // drawn identically; the three-way choice only exists behind
            // the flag.
            let dim = if self.config.partition_membw {
                self.rng.gen_range(0..3u32)
            } else if self.rng.gen_bool(0.5) {
                0
            } else {
                1
            };
            let unit_count = |allocs: &[RegionAlloc], i: usize| -> u32 {
                match dim {
                    0 => allocs[i].cores,
                    1 => allocs[i].ways,
                    _ => allocs[i].membw_pct / MEMBW_UNIT_PCT,
                }
            };
            let has_units = |allocs: &[RegionAlloc], i: usize| unit_count(allocs, i) > 1;
            let (from, to) = match worst {
                // A violating LC application pulls resources toward itself.
                Some(w) if slack_of(w) < 0.05 && attempt < 12 => {
                    let donor = be
                        .iter()
                        .copied()
                        .filter(|&i| has_units(&allocs, i))
                        .max_by_key(|&i| unit_count(&allocs, i))
                        .or_else(|| {
                            lc.iter()
                                .copied()
                                .filter(|&i| i != w && has_units(&allocs, i))
                                .max_by(|&a, &b| slack_of(a).total_cmp(&slack_of(b)))
                        });
                    match donor {
                        Some(d) => (d, w),
                        None => continue,
                    }
                }
                // Everyone comfortable: feed the poorest BE application
                // from the slackest LC application.
                _ => {
                    let donor = lc
                        .iter()
                        .copied()
                        .filter(|&i| has_units(&allocs, i) && slack_of(i) > 0.1)
                        .max_by(|&a, &b| slack_of(a).total_cmp(&slack_of(b)));
                    let target = be.iter().copied().min_by_key(|&i| unit_count(&allocs, i));
                    match (donor, target) {
                        (Some(d), Some(t)) if d != t => (d, t),
                        _ => {
                            // Fall back to a random move.
                            let f = self.rng.gen_range(0..n);
                            let t = self.rng.gen_range(0..n);
                            if f == t || !has_units(&allocs, f) {
                                continue;
                            }
                            (f, t)
                        }
                    }
                }
            };
            match dim {
                0 => {
                    allocs[from].cores -= 1;
                    allocs[to].cores += 1;
                }
                1 => {
                    allocs[from].ways -= 1;
                    allocs[to].ways += 1;
                }
                _ => {
                    allocs[from].membw_pct -= MEMBW_UNIT_PCT;
                    allocs[to].membw_pct += MEMBW_UNIT_PCT;
                }
            }
            let cores: Vec<u32> = allocs.iter().map(|a| a.cores).collect();
            let ways: Vec<u32> = allocs.iter().map(|a| a.ways).collect();
            let membw = self.config.partition_membw.then(|| {
                allocs
                    .iter()
                    .map(|a| a.membw_pct / MEMBW_UNIT_PCT)
                    .collect()
            });
            return Some(candidate_from_parts(cores, ways, membw, machine));
        }
        None
    }
}

impl Default for Clite {
    fn default() -> Self {
        Self::new()
    }
}

/// Assembles a candidate from per-app core and way counts, plus an
/// optional bandwidth split (in [`MEMBW_UNIT_PCT`]-sized units). The
/// x-vector gains a third block of dimensions only when the bandwidth
/// split is present, so pools built with and without `partition_membw`
/// are each internally consistent.
fn candidate_from_parts(
    cores: Vec<u32>,
    ways: Vec<u32>,
    membw_units: Option<Vec<u32>>,
    machine: &MachineConfig,
) -> Candidate {
    let blocks = if membw_units.is_some() { 3 } else { 2 };
    let mut x = Vec::with_capacity(cores.len() * blocks);
    for &c in &cores {
        x.push(c as f64 / machine.cores as f64);
    }
    for &w in &ways {
        x.push(w as f64 / machine.llc_ways as f64);
    }
    if let Some(units) = &membw_units {
        for &u in units {
            x.push((u * MEMBW_UNIT_PCT) as f64 / 100.0);
        }
    }
    let allocs = cores
        .into_iter()
        .zip(ways)
        .enumerate()
        .map(|(i, (c, w))| {
            let a = RegionAlloc::new(c, w);
            match &membw_units {
                Some(units) => a.with_membw(units[i] * MEMBW_UNIT_PCT),
                None => a,
            }
        })
        .collect();
    Candidate { x, allocs }
}

/// A uniformly random composition of `total` units into `n` parts, each at
/// least 1.
fn random_composition(rng: &mut StdRng, total: u32, n: usize) -> Vec<u32> {
    assert!(total as usize >= n, "need at least one unit per part");
    // Stars and bars: choose n-1 distinct cut points among total-1 gaps.
    let mut cuts: Vec<u32> = Vec::with_capacity(n - 1);
    while cuts.len() < n - 1 {
        let c = rng.gen_range(1..total);
        if !cuts.contains(&c) {
            cuts.push(c);
        }
    }
    cuts.sort_unstable();
    let mut parts = Vec::with_capacity(n);
    let mut prev = 0;
    for &c in &cuts {
        parts.push(c - prev);
        prev = c;
    }
    parts.push(total - prev);
    parts
}

impl Scheduler for Clite {
    fn name(&self) -> &'static str {
        "clite"
    }

    fn policy(&self) -> SharingPolicy {
        SharingPolicy::LcPriority
    }

    fn initial_partition(&self, machine: &MachineConfig, apps: &[AppSpec]) -> Partition {
        // Start from the equal split; exploration takes over immediately.
        let be_idx: Vec<usize> = apps
            .iter()
            .enumerate()
            .filter(|(_, a)| a.kind() == AppKind::Be)
            .map(|(i, _)| i)
            .collect();
        let cores = equal_split(machine.cores, apps.len(), &be_idx);
        let ways = equal_split(machine.llc_ways, apps.len(), &be_idx);
        Partition::strict(
            cores
                .into_iter()
                .zip(ways)
                .map(|(c, w)| RegionAlloc::new(c, w))
                .collect(),
        )
    }

    fn decide(&mut self, ctx: &SchedContext<'_>) -> Option<Partition> {
        if self.candidates.is_empty() {
            self.build_candidates(ctx.machine, ctx.apps.len());
        }
        let score = Self::score(ctx);
        self.windows_on_current += 1;
        if self.windows_on_current > 1 {
            // The first window under any configuration is a drain
            // transient; only later windows are credited.
            self.sample_scores.push(score);
        }

        if let Phase::Exploring { left } = self.phase {
            if self.windows_on_current < self.config.windows_per_sample.max(2) {
                return None;
            }
            let sample_mean =
                self.sample_scores.iter().sum::<f64>() / self.sample_scores.len() as f64;
            let x = self.current_x();
            self.opt.observe(x, sample_mean);
            if left > 0 {
                self.phase = Phase::Exploring { left: left - 1 };
                let next = self.next_suggestion();
                return Some(self.install(next));
            }
            // Budget exhausted: pin the best configuration seen.
            let (best_x, best_y) = self.opt.best().map(|(bx, y)| (bx.to_vec(), y))?;
            let cand = self.candidates.iter().find(|c| c.x == best_x)?.clone();
            let p = self.install(cand);
            self.phase = Phase::Exploiting(ExploitState {
                rolling: best_y,
                pinned: best_y,
                windows: 0,
                violating_streak: 0,
                probe: None,
            });
            return Some(p);
        }

        // Exploitation: move the state out so `self` stays free for the
        // helper calls, and put it back unless a restart replaced it.
        let Phase::Exploiting(mut st) =
            std::mem::replace(&mut self.phase, Phase::Exploring { left: 0 })
        else {
            unreachable!("exploring handled above");
        };
        let action = self.exploit_step(ctx, score, &mut st);
        match action {
            ExploitAction::Continue(p) => {
                self.phase = Phase::Exploiting(st);
                p
            }
            ExploitAction::Restarted => None,
        }
    }
}

enum ExploitAction {
    /// Stay in exploitation; optionally repartition.
    Continue(Option<Partition>),
    /// `restart_exploration` already replaced the phase.
    Restarted,
}

impl Clite {
    fn exploit_step(
        &mut self,
        ctx: &SchedContext<'_>,
        score: f64,
        st: &mut ExploitState,
    ) -> ExploitAction {
        st.windows += 1;
        let grace = st.windows <= self.config.exploit_grace;

        // A probe in flight: give it windows_per_sample windows, then
        // adopt or revert.
        if st.probe.is_some() {
            if self.windows_on_current < self.config.windows_per_sample.max(2) {
                return ExploitAction::Continue(None);
            }
            let probe_mean =
                self.sample_scores.iter().sum::<f64>() / self.sample_scores.len() as f64;
            let Probe { candidate, base } = st.probe.take().expect("probe is some");
            if probe_mean > base + self.config.probe_margin {
                // Adopt: the neighbour is the new incumbent.
                st.rolling = probe_mean;
                st.pinned = st.pinned.max(probe_mean);
                let p = self.install(candidate);
                return ExploitAction::Continue(Some(p));
            }
            // Revert to the incumbent.
            let Some(back) = self.current.clone() else {
                return ExploitAction::Continue(None);
            };
            self.windows_on_current = 0;
            self.sample_scores.clear();
            return ExploitAction::Continue(Some(Partition::strict(back.allocs)));
        }

        // Track the incumbent's rolling score.
        st.rolling = 0.8 * st.rolling + 0.2 * score;
        if !grace {
            if score < 1.0 {
                st.violating_streak += 1;
            } else {
                st.violating_streak = 0;
            }
            if st.violating_streak >= self.config.reexplore_after
                && ctx.now_s - self.last_restart_s >= self.config.restart_cooldown_s
            {
                st.violating_streak = 0;
                // Restart only when the pinned configuration performs far
                // below what it scored during sampling — the load shifted.
                // If exploration never found a feasible configuration in
                // the first place, re-exploring the same space is pure
                // churn; hill-climbing probes continue instead.
                if st.rolling < st.pinned - 0.35 {
                    self.last_restart_s = ctx.now_s;
                    self.restart_exploration();
                    return ExploitAction::Restarted;
                }
            }
            if st.windows.is_multiple_of(self.config.probe_every) {
                if let Some(candidate) = self.neighbour(ctx) {
                    let p = Partition::strict(candidate.allocs.clone());
                    // Probing starts a fresh sample accumulation; the
                    // incumbent remains `current` until adoption.
                    self.windows_on_current = 0;
                    self.sample_scores.clear();
                    st.probe = Some(Probe {
                        candidate,
                        base: st.rolling,
                    });
                    return ExploitAction::Continue(Some(p));
                }
            }
        }
        ExploitAction::Continue(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_composition_is_valid() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let parts = random_composition(&mut rng, 10, 4);
            assert_eq!(parts.len(), 4);
            assert_eq!(parts.iter().sum::<u32>(), 10);
            assert!(parts.iter().all(|&p| p >= 1));
        }
    }

    #[test]
    fn candidate_pool_is_deterministic_and_valid() {
        let machine = MachineConfig::paper_xeon();
        let mut a = Clite::new();
        let mut b = Clite::new();
        a.build_candidates(&machine, 4);
        b.build_candidates(&machine, 4);
        assert_eq!(a.candidates.len(), b.candidates.len());
        for (ca, cb) in a.candidates.iter().zip(b.candidates.iter()) {
            assert_eq!(ca.x, cb.x);
            let p = Partition::strict(ca.allocs.clone());
            assert!(p.validate(&machine).is_ok());
            assert_eq!(p.isolated_cores(), machine.cores);
            assert_eq!(p.isolated_ways(), machine.llc_ways);
        }
    }

    #[test]
    fn initial_partition_is_strict() {
        let machine = MachineConfig::paper_xeon();
        let apps = vec![
            AppSpec::lc("a").qos_threshold_ms(5.0).build().unwrap(),
            AppSpec::be("b").build().unwrap(),
        ];
        let p = Clite::new().initial_partition(&machine, &apps);
        assert_eq!(p.shared_cores(&machine), 0);
        assert_eq!(p.isolated_cores(), 10);
    }

    #[test]
    fn neighbour_is_one_unit_away_and_valid() {
        use crate::SchedContext;
        let machine = MachineConfig::paper_xeon();
        let mut clite = Clite::new();
        clite.build_candidates(&machine, 4);
        clite.current = Some(clite.candidates[0].clone());
        let apps = vec![
            AppSpec::lc("a").qos_threshold_ms(5.0).build().unwrap(),
            AppSpec::lc("b").qos_threshold_ms(5.0).build().unwrap(),
            AppSpec::be("c").build().unwrap(),
            AppSpec::be("d").build().unwrap(),
        ];
        let partition = Partition::strict(clite.current.as_ref().unwrap().allocs.clone());
        let obs = ahq_sim::WindowObservation {
            window_index: 0,
            start_ms: 0.0,
            end_ms: 500.0,
            lc: vec![],
            be: vec![],
        };
        let entropy = ahq_core::EntropyModel::default().evaluate(&[], &[]);
        let ctx = SchedContext {
            machine: &machine,
            apps: &apps,
            partition: &partition,
            obs: &obs,
            entropy: &entropy,
            now_s: 0.0,
        };
        for _ in 0..20 {
            let n = clite.neighbour(&ctx).expect("neighbour exists");
            let p = Partition::strict(n.allocs.clone());
            assert!(p.validate(&machine).is_ok());
            assert_eq!(p.isolated_cores(), machine.cores);
            assert_eq!(p.isolated_ways(), machine.llc_ways);
            let base = &clite.current.as_ref().unwrap().allocs;
            let dc: i64 = n
                .allocs
                .iter()
                .zip(base.iter())
                .map(|(a, b)| (a.cores as i64 - b.cores as i64).abs())
                .sum();
            let dw: i64 = n
                .allocs
                .iter()
                .zip(base.iter())
                .map(|(a, b)| (a.ways as i64 - b.ways as i64).abs())
                .sum();
            assert!(
                (dc == 2 && dw == 0) || (dc == 0 && dw == 2),
                "exactly one unit moved: dc={dc} dw={dw}"
            );
            assert!(n.allocs.iter().all(|a| a.cores >= 1 && a.ways >= 1));
        }
    }

    #[test]
    fn membw_flag_extends_candidates_and_neighbours() {
        let machine = MachineConfig::paper_xeon();
        let mut clite = Clite::with_config(CliteConfig {
            partition_membw: true,
            ..CliteConfig::default()
        });
        clite.build_candidates(&machine, 4);
        for c in &clite.candidates {
            assert_eq!(c.x.len(), 12, "three blocks of four dimensions");
            let total: u32 = c.allocs.iter().map(|a| a.membw_pct).sum();
            assert_eq!(total, 100, "the whole node's bandwidth is split");
            assert!(c
                .allocs
                .iter()
                .all(|a| a.membw_pct >= MEMBW_UNIT_PCT && a.membw_pct % MEMBW_UNIT_PCT == 0));
            assert!(Partition::strict(c.allocs.clone())
                .validate(&machine)
                .is_ok());
        }
        clite.current = Some(clite.candidates[0].clone());
        let apps = vec![
            AppSpec::lc("a").qos_threshold_ms(5.0).build().unwrap(),
            AppSpec::lc("b").qos_threshold_ms(5.0).build().unwrap(),
            AppSpec::be("c").build().unwrap(),
            AppSpec::be("d").build().unwrap(),
        ];
        let partition = Partition::strict(clite.current.as_ref().unwrap().allocs.clone());
        let obs = ahq_sim::WindowObservation {
            window_index: 0,
            start_ms: 0.0,
            end_ms: 500.0,
            lc: vec![],
            be: vec![],
        };
        let entropy = ahq_core::EntropyModel::default().evaluate(&[], &[]);
        let ctx = SchedContext {
            machine: &machine,
            apps: &apps,
            partition: &partition,
            obs: &obs,
            entropy: &entropy,
            now_s: 0.0,
        };
        for _ in 0..20 {
            let nb = clite.neighbour(&ctx).expect("neighbour exists");
            assert!(Partition::strict(nb.allocs.clone())
                .validate(&machine)
                .is_ok());
            let base = &clite.current.as_ref().unwrap().allocs;
            let diff = |f: fn(&RegionAlloc) -> u32| -> u32 {
                nb.allocs
                    .iter()
                    .zip(base.iter())
                    .map(|(a, b)| f(a).abs_diff(f(b)))
                    .sum()
            };
            let (dc, dw, dm) = (
                diff(|a| a.cores),
                diff(|a| a.ways),
                diff(|a| a.membw_pct) / MEMBW_UNIT_PCT,
            );
            assert_eq!(
                dc + dw + dm,
                2,
                "exactly one unit moved in one dimension: dc={dc} dw={dw} dm={dm}"
            );
            assert!(nb.allocs.iter().all(|a| a.membw_pct >= MEMBW_UNIT_PCT));
        }
    }
}
