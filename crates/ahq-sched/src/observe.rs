//! Bridges simulator observations to the entropy theory's measurement
//! types.

use ahq_core::{BeMeasurement, LcMeasurement};
use ahq_sim::WindowObservation;

/// Converts a window observation into the `(LC, BE)` measurement vectors
/// the entropy model scores.
///
/// LC applications that have not completed any request yet (no latency
/// estimate) are counted at their ideal latency — they have suffered no
/// observable interference. BE IPC is floored at a tiny positive value so
/// a fully starved application registers as an (arbitrarily large but
/// finite) slowdown instead of an invalid measurement.
pub fn measurements(obs: &WindowObservation) -> (Vec<LcMeasurement>, Vec<BeMeasurement>) {
    let lc = obs
        .lc
        .iter()
        .map(|s| {
            let observed = s.p95_ms.unwrap_or(s.ideal_ms).max(s.ideal_ms);
            LcMeasurement::new(&s.name, s.ideal_ms, observed, s.qos_ms)
                .expect("simulator guarantees ideal < qos and positive latencies")
        })
        .collect();
    let be = obs
        .be
        .iter()
        .map(|s| {
            BeMeasurement::new(&s.name, s.ipc_solo, s.ipc.max(s.ipc_solo * 1e-3))
                .expect("simulator guarantees positive solo IPC")
        })
        .collect();
    (lc, be)
}

/// Counts the QoS violations in one observation (no elasticity): LC
/// applications whose p95 exceeded their threshold.
pub fn violations(obs: &WindowObservation) -> u64 {
    obs.lc.iter().filter(|s| !s.meets_qos()).count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahq_sim::{BeWindowStats, LcWindowStats};

    fn obs() -> WindowObservation {
        WindowObservation {
            window_index: 0,
            start_ms: 0.0,
            end_ms: 500.0,
            lc: vec![
                LcWindowStats {
                    name: "ok".into(),
                    p95_ms: Some(2.0),
                    ideal_ms: 1.0,
                    qos_ms: 4.0,
                    load: 0.2,
                    arrivals: 10,
                    completions: 10,
                    drops: 0,
                    backlog: 0,
                    mean_core_capacity: 1.0,
                },
                LcWindowStats {
                    name: "fresh".into(),
                    p95_ms: None,
                    ideal_ms: 1.0,
                    qos_ms: 4.0,
                    load: 0.0,
                    arrivals: 0,
                    completions: 0,
                    drops: 0,
                    backlog: 0,
                    mean_core_capacity: 0.0,
                },
                LcWindowStats {
                    name: "bad".into(),
                    p95_ms: Some(9.0),
                    ideal_ms: 1.0,
                    qos_ms: 4.0,
                    load: 0.9,
                    arrivals: 10,
                    completions: 2,
                    drops: 3,
                    backlog: 8,
                    mean_core_capacity: 0.5,
                },
            ],
            be: vec![BeWindowStats {
                name: "be".into(),
                ipc: 0.0,
                ipc_solo: 2.0,
                mean_core_capacity: 0.0,
            }],
        }
    }

    #[test]
    fn conversion_covers_all_apps() {
        let (lc, be) = measurements(&obs());
        assert_eq!(lc.len(), 3);
        assert_eq!(be.len(), 1);
        assert_eq!(lc[0].observed(), 2.0);
        // Fresh app measured at its ideal: zero interference.
        assert_eq!(lc[1].observed(), 1.0);
        assert_eq!(lc[1].interference(), 0.0);
    }

    #[test]
    fn starved_be_app_is_finite_but_awful() {
        let (_, be) = measurements(&obs());
        assert!(be[0].slowdown().is_finite());
        assert!(be[0].slowdown() > 100.0);
    }

    #[test]
    fn violation_count() {
        assert_eq!(violations(&obs()), 1);
    }
}
