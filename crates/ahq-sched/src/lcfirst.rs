use ahq_sim::SharingPolicy;

use crate::{SchedContext, Scheduler};

/// The paper's *LC-first* baseline: everything is still shared (no
/// partitioning), but LC applications run at real-time priority and
/// preempt BE threads whenever they are runnable — Linux `SCHED_RR`
/// semantics.
///
/// Protects LC tail latency far better than [`crate::Unmanaged`], at the
/// price of a substantial increase in BE entropy (the paper's Fig. 8
/// observation).
#[derive(Debug, Clone, Copy, Default)]
pub struct LcFirst;

impl Scheduler for LcFirst {
    fn name(&self) -> &'static str {
        "lc-first"
    }

    fn policy(&self) -> SharingPolicy {
        SharingPolicy::LcPriority
    }

    fn decide(&mut self, _ctx: &SchedContext<'_>) -> Option<ahq_sim::Partition> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uses_priority_sharing() {
        assert_eq!(LcFirst.policy(), SharingPolicy::LcPriority);
        assert_eq!(LcFirst.name(), "lc-first");
    }
}
