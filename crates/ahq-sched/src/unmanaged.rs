use ahq_sim::SharingPolicy;

use crate::{SchedContext, Scheduler};

/// The paper's *Unmanaged* baseline: no isolation, no priorities — every
/// application shares the whole machine under CFS-style fair scheduling.
///
/// This is the strategy that wins at very low load (sharing maximises
/// utilization) and collapses at high load (nothing protects the LC
/// applications), exactly as Figs. 8 and 9 show.
#[derive(Debug, Clone, Copy, Default)]
pub struct Unmanaged;

impl Scheduler for Unmanaged {
    fn name(&self) -> &'static str {
        "unmanaged"
    }

    fn policy(&self) -> SharingPolicy {
        SharingPolicy::Fair
    }

    fn decide(&mut self, _ctx: &SchedContext<'_>) -> Option<ahq_sim::Partition> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahq_sim::{AppSpec, MachineConfig, Partition};

    #[test]
    fn never_repartitions() {
        let apps = vec![AppSpec::be("b").build().unwrap()];
        let machine = MachineConfig::paper_xeon();
        let sched = Unmanaged;
        assert_eq!(
            sched.initial_partition(&machine, &apps),
            Partition::all_shared(1)
        );
        assert_eq!(sched.policy(), SharingPolicy::Fair);
    }
}
