use ahq_sim::{AppKind, AppSpec, MachineConfig, Partition, RegionAlloc, SharingPolicy};
use serde::{Deserialize, Serialize};

use crate::{SchedContext, Scheduler};

/// Tuning knobs of the [`Heracles`] controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeraclesConfig {
    /// Grow the BE allocation while every LC slack exceeds this.
    pub grow_slack: f64,
    /// Enter backoff (strip the BE allocation) when any LC slack falls
    /// below this.
    pub backoff_slack: f64,
    /// Windows to remain in backoff before growth may resume.
    pub backoff_windows: u64,
    /// Upper bound on the cores the BE allocation may take.
    pub max_be_cores: u32,
    /// Upper bound on the LLC ways the BE allocation may take.
    pub max_be_ways: u32,
}

impl Default for HeraclesConfig {
    fn default() -> Self {
        HeraclesConfig {
            grow_slack: 0.15,
            backoff_slack: 0.05,
            backoff_windows: 4,
            max_be_cores: 6,
            max_be_ways: 12,
        }
    }
}

/// A Heracles-style threshold controller (Lo et al., ISCA 2015) — the
/// classic ancestor of the paper's baselines, implemented as an extra
/// comparison point beyond the paper's five strategies.
///
/// Heracles guards the LC applications with a simple rule: while every LC
/// application has comfortable latency slack, *grow* the best-effort
/// allocation one unit at a time (cores, then ways, round-robin across BE
/// applications); the moment any slack drops below the backoff threshold,
/// *strip* the entire BE allocation and hold off growth for a few
/// windows. LC applications always run in the shared region with
/// priority, so a stripped BE allocation means BE only consumes what the
/// LC applications leave idle.
#[derive(Debug, Clone)]
pub struct Heracles {
    config: HeraclesConfig,
    backoff_until: u64,
    window: u64,
    grow_cores_next: bool,
}

impl Heracles {
    /// Creates the controller with default thresholds.
    pub fn new() -> Self {
        Self::with_config(HeraclesConfig::default())
    }

    /// Creates the controller with explicit thresholds.
    pub fn with_config(config: HeraclesConfig) -> Self {
        Heracles {
            config,
            backoff_until: 0,
            window: 0,
            grow_cores_next: true,
        }
    }

    fn be_indices(apps: &[AppSpec]) -> Vec<usize> {
        apps.iter()
            .enumerate()
            .filter(|(_, a)| a.kind() == AppKind::Be)
            .map(|(i, _)| i)
            .collect()
    }
}

impl Default for Heracles {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for Heracles {
    fn name(&self) -> &'static str {
        "heracles"
    }

    fn policy(&self) -> SharingPolicy {
        SharingPolicy::LcPriority
    }

    fn initial_partition(&self, _machine: &MachineConfig, apps: &[AppSpec]) -> Partition {
        // Everything starts with the LC applications: the BE allocation is
        // grown only when slack proves it safe.
        Partition::all_shared(apps.len())
    }

    fn decide(&mut self, ctx: &SchedContext<'_>) -> Option<Partition> {
        self.window += 1;
        let min_slack = ctx
            .obs
            .lc
            .iter()
            .map(|s| s.slack())
            .fold(f64::INFINITY, f64::min);
        let be = Self::be_indices(ctx.apps);
        if be.is_empty() || !min_slack.is_finite() {
            return None;
        }

        // Backoff: any LC app too close to its target -> strip BE.
        if min_slack < self.config.backoff_slack {
            self.backoff_until = self.window + self.config.backoff_windows;
            let mut p = ctx.partition.clone();
            let mut changed = false;
            for &i in &be {
                if !p.isolated(i.into()).is_empty() {
                    p.set_isolated(i.into(), RegionAlloc::EMPTY);
                    changed = true;
                }
            }
            return changed.then_some(p);
        }

        // Growth: everyone comfortable and not backing off.
        if min_slack > self.config.grow_slack && self.window >= self.backoff_until {
            let mut p = ctx.partition.clone();
            // Round-robin the BE apps; smallest allocation first.
            let target = *be
                .iter()
                .min_by_key(|&&i| {
                    let a = p.isolated(i.into());
                    a.cores + a.ways
                })
                .expect("be is non-empty");
            let mut alloc = p.isolated(target.into());
            let machine = ctx.machine;
            let be_cores: u32 = be.iter().map(|&i| p.isolated(i.into()).cores).sum();
            let be_ways: u32 = be.iter().map(|&i| p.isolated(i.into()).ways).sum();
            let can_grow_cores = be_cores < self.config.max_be_cores && p.shared_cores(machine) > 1;
            let can_grow_ways = be_ways < self.config.max_be_ways && p.shared_ways(machine) > 1;
            if self.grow_cores_next && can_grow_cores {
                alloc.cores += 1;
            } else if can_grow_ways {
                alloc.ways += 1;
            } else if can_grow_cores {
                alloc.cores += 1;
            } else {
                return None;
            }
            self.grow_cores_next = !self.grow_cores_next;
            p.set_isolated(target.into(), alloc);
            return Some(p);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahq_core::EntropyModel;
    use ahq_sim::{BeWindowStats, LcWindowStats, WindowObservation};

    fn apps() -> Vec<AppSpec> {
        vec![
            AppSpec::lc("svc")
                .mean_service_ms(1.0)
                .qos_threshold_ms(5.0)
                .max_load_qps(2000.0)
                .build()
                .unwrap(),
            AppSpec::be("batch").build().unwrap(),
        ]
    }

    fn obs(p95: f64) -> WindowObservation {
        WindowObservation {
            window_index: 0,
            start_ms: 0.0,
            end_ms: 500.0,
            lc: vec![LcWindowStats {
                name: "svc".into(),
                p95_ms: Some(p95),
                ideal_ms: 2.0,
                qos_ms: 5.0,
                load: 0.5,
                arrivals: 100,
                completions: 100,
                drops: 0,
                backlog: 0,
                mean_core_capacity: 1.0,
            }],
            be: vec![BeWindowStats {
                name: "batch".into(),
                ipc: 1.0,
                ipc_solo: 1.0,
                mean_core_capacity: 1.0,
            }],
        }
    }

    fn decide_once(h: &mut Heracles, partition: &Partition, p95: f64) -> Option<Partition> {
        let machine = MachineConfig::paper_xeon();
        let specs = apps();
        let o = obs(p95);
        let model = EntropyModel::default();
        let entropy = model.evaluate(&[], &[]);
        let ctx = SchedContext {
            machine: &machine,
            apps: &specs,
            partition,
            obs: &o,
            entropy: &entropy,
            now_s: 0.0,
        };
        h.decide(&ctx)
    }

    #[test]
    fn grows_be_under_comfortable_slack() {
        let mut h = Heracles::new();
        let p = Partition::all_shared(2);
        // p95 = 2.5 -> slack 0.5 > grow threshold.
        let next = decide_once(&mut h, &p, 2.5).expect("grows");
        let alloc = next.isolated(1.into());
        assert_eq!(alloc.cores + alloc.ways, 1, "one unit at a time");
    }

    #[test]
    fn strips_be_on_backoff() {
        let mut h = Heracles::new();
        let mut p = Partition::all_shared(2);
        p.set_isolated(1.into(), RegionAlloc::new(3, 5));
        // p95 = 4.9 -> slack 0.02 < backoff threshold.
        let next = decide_once(&mut h, &p, 4.9).expect("strips");
        assert!(next.isolated(1.into()).is_empty());
        // And growth stays disabled during the hold.
        assert!(decide_once(&mut h, &next, 2.0).is_none());
    }

    #[test]
    fn growth_respects_caps() {
        let mut h = Heracles::with_config(HeraclesConfig {
            max_be_cores: 1,
            max_be_ways: 1,
            ..HeraclesConfig::default()
        });
        let mut p = Partition::all_shared(2);
        p.set_isolated(1.into(), RegionAlloc::new(1, 1));
        assert!(decide_once(&mut h, &p, 2.0).is_none(), "caps reached");
    }

    #[test]
    fn no_be_apps_means_no_action() {
        let mut h = Heracles::new();
        let machine = MachineConfig::paper_xeon();
        let specs = vec![apps().remove(0)];
        let p = Partition::all_shared(1);
        let o = obs(2.0);
        let model = EntropyModel::default();
        let entropy = model.evaluate(&[], &[]);
        let ctx = SchedContext {
            machine: &machine,
            apps: &specs,
            partition: &p,
            obs: &o,
            entropy: &entropy,
            now_s: 0.0,
        };
        assert!(h.decide(&ctx).is_none());
    }
}
