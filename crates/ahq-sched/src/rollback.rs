//! Shared rollback / blacklist machinery for entropy-feedback control
//! loops.
//!
//! ARQ's Algorithm 1 pairs every speculative adjustment with two pieces of
//! bookkeeping: the state to restore if the system entropy regresses, and
//! a cooldown ledger protecting the penalized region from being picked
//! again right away. The cluster-level controller (`ahq-ctrl`) runs the
//! same protocol one layer up — nodes instead of regions, rounds instead
//! of seconds — so both layers share these types.

use std::collections::HashMap;
use std::hash::Hash;

/// A cooldown ledger: keys (regions, node indices, …) protected until a
/// caller-defined instant on a monotone clock (seconds, rounds, epochs).
///
/// Expired entries are harmless — [`Blacklist::active`] compares against
/// `now` — and are dropped lazily the next time the same key is protected.
#[derive(Debug, Clone, Default)]
pub struct Blacklist<K> {
    until: HashMap<K, f64>,
}

impl<K: Eq + Hash> Blacklist<K> {
    /// An empty ledger.
    pub fn new() -> Self {
        Blacklist {
            until: HashMap::new(),
        }
    }

    /// Protects `key` until the clock reaches `until` (exclusive). A later
    /// deadline replaces an earlier one; an earlier deadline is ignored.
    pub fn protect(&mut self, key: K, until: f64) {
        let slot = self.until.entry(key).or_insert(f64::NEG_INFINITY);
        if until > *slot {
            *slot = until;
        }
    }

    /// Whether `key` is still protected at time `now`.
    pub fn active(&self, key: &K, now: f64) -> bool {
        self.until.get(key).is_some_and(|&until| now < until)
    }

    /// Number of entries in the ledger, expired ones included.
    pub fn len(&self) -> usize {
        self.until.len()
    }

    /// Whether the ledger holds no entries at all.
    pub fn is_empty(&self) -> bool {
        self.until.is_empty()
    }
}

/// A speculatively committed adjustment: the state to restore on rollback
/// plus the entity that was penalized (and must be blacklisted if the
/// rollback fires).
#[derive(Debug, Clone)]
pub struct SpeculativeMove<S, K> {
    /// The state in force before the adjustment.
    pub before: S,
    /// The penalized entity (ARQ: donor region; ahq-ctrl: donor node).
    pub touched: K,
}

impl<S, K> SpeculativeMove<S, K> {
    /// Records `before` as the rollback target and `touched` as the entity
    /// to protect if the move is cancelled.
    pub fn new(before: S, touched: K) -> Self {
        SpeculativeMove { before, touched }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protection_is_active_until_the_deadline() {
        let mut b = Blacklist::new();
        b.protect(7usize, 60.0);
        assert!(b.active(&7, 0.0));
        assert!(b.active(&7, 59.9));
        assert!(!b.active(&7, 60.0), "deadline itself is expired");
        assert!(!b.active(&3, 0.0), "unknown keys are never protected");
    }

    #[test]
    fn later_deadline_wins_earlier_is_ignored() {
        let mut b = Blacklist::new();
        b.protect("node", 10.0);
        b.protect("node", 5.0);
        assert!(b.active(&"node", 7.0), "shortening is ignored");
        b.protect("node", 20.0);
        assert!(b.active(&"node", 15.0), "extension sticks");
    }

    #[test]
    fn speculative_move_carries_state_and_culprit() {
        let m = SpeculativeMove::new(vec![1, 2, 3], 9usize);
        assert_eq!(m.before, vec![1, 2, 3]);
        assert_eq!(m.touched, 9);
    }
}
