//! Property-based tests for the required properties of `E_S` (§II-A of the
//! paper) and for the algebraic invariants of the per-application
//! quantities.

use ahq_core::{
    BeMeasurement, EntropyModel, EntropySeries, LcMeasurement, QosElasticity, RelativeImportance,
};
use proptest::prelude::*;

/// Strategy producing a valid (ideal, observed, threshold) triple.
fn lc_triple() -> impl Strategy<Value = (f64, f64, f64)> {
    // ideal in (0.1, 50), threshold = ideal * (1 + margin), observed >= ideal.
    (0.1f64..50.0, 0.01f64..10.0, 1.0f64..50.0)
        .prop_map(|(ideal, margin, infl)| (ideal, ideal * infl, ideal * (1.0 + margin)))
}

fn lc_measurement() -> impl Strategy<Value = LcMeasurement> {
    lc_triple().prop_map(|(i, o, t)| LcMeasurement::new("app", i, o, t).unwrap())
}

fn be_measurement() -> impl Strategy<Value = BeMeasurement> {
    (0.05f64..4.0, 1.0f64..100.0)
        .prop_map(|(real, slow)| BeMeasurement::new("be", real * slow, real).unwrap())
}

proptest! {
    /// Property ① (dimensionless): all derived quantities lie in [0, 1].
    #[test]
    fn per_app_quantities_are_unit_interval(m in lc_measurement()) {
        for v in [m.tolerance(), m.interference(), m.remaining_tolerance(), m.intolerable()] {
            prop_assert!((0.0..=1.0).contains(&v), "value {v} out of range for {m:?}");
        }
    }

    /// Exactly one of ReT and Q can be positive: an app is either within
    /// tolerance (headroom left) or violating (intolerable interference).
    #[test]
    fn ret_and_q_are_mutually_exclusive(m in lc_measurement()) {
        prop_assert!(m.remaining_tolerance() == 0.0 || m.intolerable() == 0.0);
    }

    /// Q grows monotonically with the observed latency.
    #[test]
    fn q_monotone_in_observed_latency(
        (ideal, observed, threshold) in lc_triple(),
        bump in 1.0f64..4.0,
    ) {
        let a = LcMeasurement::new("a", ideal, observed, threshold).unwrap();
        let b = LcMeasurement::new("b", ideal, observed * bump, threshold).unwrap();
        prop_assert!(b.intolerable() >= a.intolerable() - 1e-12);
    }

    /// ReT shrinks monotonically with the observed latency.
    #[test]
    fn ret_antimonotone_in_observed_latency(
        (ideal, observed, threshold) in lc_triple(),
        bump in 1.0f64..4.0,
    ) {
        let a = LcMeasurement::new("a", ideal, observed, threshold).unwrap();
        let b = LcMeasurement::new("b", ideal, observed * bump, threshold).unwrap();
        prop_assert!(b.remaining_tolerance() <= a.remaining_tolerance() + 1e-12);
    }

    /// Property ①: E_LC, E_BE and E_S are all within [0, 1] for any
    /// population and any relative importance.
    #[test]
    fn entropies_are_unit_interval(
        lc in prop::collection::vec(lc_measurement(), 0..8),
        be in prop::collection::vec(be_measurement(), 0..8),
        ri in 0.0f64..=1.0,
    ) {
        let model = EntropyModel::new(RelativeImportance::new(ri).unwrap());
        let report = model.evaluate(&lc, &be);
        prop_assert!((0.0..=1.0).contains(&report.lc));
        prop_assert!((0.0..=1.0).contains(&report.be));
        prop_assert!((0.0..=1.0).contains(&report.system));
        prop_assert!((0.0..=1.0).contains(&report.yield_fraction));
    }

    /// E_LC = 0 if and only if the strict (zero-elasticity) yield is 100 %.
    #[test]
    fn zero_lc_entropy_iff_full_yield(
        lc in prop::collection::vec(lc_measurement(), 1..8),
    ) {
        let model = EntropyModel::default().with_elasticity(QosElasticity::NONE);
        let report = model.evaluate(&lc, &[]);
        prop_assert_eq!(report.lc == 0.0, report.yield_fraction == 1.0);
    }

    /// Property ② (resource-amount sensitiveness), algebraic form: making
    /// every application's observation weakly worse cannot decrease any of
    /// the entropies. Fewer resources manifest exactly as such pointwise
    /// degradations.
    #[test]
    fn pointwise_degradation_never_decreases_entropy(
        lc in prop::collection::vec(lc_triple(), 1..6),
        be in prop::collection::vec((0.05f64..4.0, 1.0f64..50.0), 1..6),
        lc_bump in 1.0f64..3.0,
        be_bump in 1.0f64..3.0,
    ) {
        let model = EntropyModel::default();
        let lc_before: Vec<_> = lc.iter()
            .map(|&(i, o, t)| LcMeasurement::new("a", i, o, t).unwrap())
            .collect();
        let lc_after: Vec<_> = lc.iter()
            .map(|&(i, o, t)| LcMeasurement::new("a", i, o * lc_bump, t).unwrap())
            .collect();
        let be_before: Vec<_> = be.iter()
            .map(|&(real, slow)| BeMeasurement::new("b", real * slow, real).unwrap())
            .collect();
        let be_after: Vec<_> = be.iter()
            .map(|&(real, slow)| BeMeasurement::new("b", real * slow, real / be_bump).unwrap())
            .collect();
        let before = model.evaluate(&lc_before, &be_before);
        let after = model.evaluate(&lc_after, &be_after);
        prop_assert!(after.lc >= before.lc - 1e-12);
        prop_assert!(after.be >= before.be - 1e-12);
        prop_assert!(after.system >= before.system - 1e-12);
    }

    /// E_S is linear in RI between the two component entropies.
    #[test]
    fn system_entropy_is_convex_combination(
        lc in prop::collection::vec(lc_measurement(), 1..5),
        be in prop::collection::vec(be_measurement(), 1..5),
        ri in 0.0f64..=1.0,
    ) {
        let model = EntropyModel::new(RelativeImportance::new(ri).unwrap());
        let report = model.evaluate(&lc, &be);
        let expected = ri * report.lc + (1.0 - ri) * report.be;
        prop_assert!((report.system - expected).abs() < 1e-12);
        let (lo, hi) = if report.lc <= report.be {
            (report.lc, report.be)
        } else {
            (report.be, report.lc)
        };
        prop_assert!(report.system >= lo - 1e-12 && report.system <= hi + 1e-12);
    }

    /// EntropySeries interpolation returns resources within the sampled
    /// range and entropy targets are honoured at the returned point.
    #[test]
    fn series_interpolation_is_consistent(
        mut entropies in prop::collection::vec(0.0f64..1.0, 2..12),
        target in 0.0f64..1.0,
    ) {
        // Build a weakly decreasing series (property ② holds for real data).
        entropies.sort_by(|a, b| b.total_cmp(a));
        let points: Vec<(f64, f64)> = entropies
            .iter()
            .enumerate()
            .map(|(i, &e)| (i as f64 + 1.0, e))
            .collect();
        let n = points.len() as f64;
        let series = EntropySeries::from_points("s", points);
        if let Some(r) = series.resource_for_entropy(target) {
            prop_assert!(r >= 1.0 && r <= n);
            let e = series.entropy_at(r).unwrap();
            prop_assert!(e <= target + 1e-9, "entropy {e} at {r} exceeds target {target}");
        } else {
            // Unreachable target: even the richest sample stays above it.
            prop_assert!(series.points().last().unwrap().1 > target);
        }
    }
}
