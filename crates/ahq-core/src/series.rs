use serde::{Deserialize, Serialize};

/// A series of `(resource amount, E_S)` samples for one scheduling strategy,
/// e.g. "system entropy as a function of the number of available cores".
///
/// The series is the raw material of the *resource equivalence* analysis
/// (Fig. 3 of the paper): given two strategies' series, the equivalence at a
/// target entropy is the difference between the resource amounts each needs
/// to reach that entropy.
///
/// Entropy is expected to (weakly) decrease as the resource amount grows —
/// property ② of §II-A. The interpolation helpers tolerate mild measurement
/// noise by scanning for the first downward crossing.
///
/// ```
/// use ahq_core::EntropySeries;
///
/// let unmanaged = EntropySeries::from_points("unmanaged",
///     vec![(4.0, 0.8), (6.0, 0.53), (8.0, 0.1), (10.0, 0.006)]);
/// // How many cores does Unmanaged need to bring E_S down to 0.25?
/// let cores = unmanaged.resource_for_entropy(0.25).unwrap();
/// assert!(cores > 6.0 && cores < 8.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EntropySeries {
    name: String,
    points: Vec<(f64, f64)>,
}

impl EntropySeries {
    /// Creates a series from `(resource, entropy)` samples. Points are
    /// sorted by resource amount; non-finite points are dropped.
    pub fn from_points(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        let mut points: Vec<(f64, f64)> = points
            .into_iter()
            .filter(|(r, e)| r.is_finite() && e.is_finite())
            .collect();
        points.sort_by(|a, b| a.0.total_cmp(&b.0));
        Self {
            name: name.into(),
            points,
        }
    }

    /// The strategy name this series belongs to.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The sorted `(resource, entropy)` samples.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// The smallest resource amount at which the series first reaches an
    /// entropy of at most `target`, linearly interpolating between samples.
    ///
    /// Returns `None` when the series never gets down to `target` (or is
    /// empty). If even the smallest sampled resource amount already
    /// satisfies the target, that smallest amount is returned: the series
    /// carries no information below its sampled range.
    pub fn resource_for_entropy(&self, target: f64) -> Option<f64> {
        let first = self.points.first()?;
        if first.1 <= target {
            return Some(first.0);
        }
        for window in self.points.windows(2) {
            let (r0, e0) = window[0];
            let (r1, e1) = window[1];
            if e0 > target && e1 <= target {
                if (e0 - e1).abs() < f64::EPSILON {
                    return Some(r1);
                }
                let t = (e0 - target) / (e0 - e1);
                return Some(r0 + t * (r1 - r0));
            }
        }
        None
    }

    /// The entropy at a given resource amount, linearly interpolated.
    /// Returns `None` outside the sampled range.
    pub fn entropy_at(&self, resource: f64) -> Option<f64> {
        let first = self.points.first()?;
        let last = self.points.last()?;
        if resource < first.0 || resource > last.0 {
            return None;
        }
        for window in self.points.windows(2) {
            let (r0, e0) = window[0];
            let (r1, e1) = window[1];
            if resource >= r0 && resource <= r1 {
                if (r1 - r0).abs() < f64::EPSILON {
                    return Some(e0);
                }
                let t = (resource - r0) / (r1 - r0);
                return Some(e0 + t * (e1 - e0));
            }
        }
        // `resource` equals the last sample up to rounding.
        Some(last.1)
    }

    /// Number of samples in the series.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series holds no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> EntropySeries {
        EntropySeries::from_points(
            "unmanaged",
            vec![(10.0, 0.006), (4.0, 0.9), (6.0, 0.53), (8.0, 0.1)],
        )
    }

    #[test]
    fn points_are_sorted_by_resource() {
        let s = series();
        let rs: Vec<f64> = s.points().iter().map(|p| p.0).collect();
        assert_eq!(rs, vec![4.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn interpolates_resource_for_entropy() {
        let s = series();
        let r = s.resource_for_entropy(0.315).unwrap();
        // Halfway between 0.53 (at 6) and 0.1 (at 8).
        assert!((r - 7.0).abs() < 1e-9, "{r}");
    }

    #[test]
    fn target_below_series_floor_is_none() {
        assert!(series().resource_for_entropy(0.001).is_none());
    }

    #[test]
    fn target_above_first_sample_returns_min_resource() {
        assert_eq!(series().resource_for_entropy(0.95), Some(4.0));
    }

    #[test]
    fn entropy_at_interpolates_and_bounds() {
        let s = series();
        assert!((s.entropy_at(7.0).unwrap() - 0.315).abs() < 1e-9);
        assert_eq!(s.entropy_at(4.0), Some(0.9));
        assert!((s.entropy_at(10.0).unwrap() - 0.006).abs() < 1e-12);
        assert!(s.entropy_at(3.0).is_none());
        assert!(s.entropy_at(11.0).is_none());
    }

    #[test]
    fn non_finite_points_are_dropped() {
        let s = EntropySeries::from_points("x", vec![(1.0, f64::NAN), (2.0, 0.5)]);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn empty_series_behaves() {
        let s = EntropySeries::from_points("x", vec![]);
        assert!(s.is_empty());
        assert!(s.resource_for_entropy(0.5).is_none());
        assert!(s.entropy_at(1.0).is_none());
    }
}
