use std::fmt;

/// Errors produced when constructing or evaluating the entropy theory.
///
/// Every validation failure names the offending quantity so that callers
/// (typically an experiment harness feeding measured latencies in) can tell
/// exactly which input was malformed.
#[derive(Debug, Clone, PartialEq)]
pub enum TheoryError {
    /// A latency, IPC or load value was not a finite, strictly positive number.
    NonPositive {
        /// Which quantity was rejected (e.g. `"ideal tail latency"`).
        what: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The ideal tail latency was not below the QoS threshold
    /// (`TL_i0 < M_i` is required for the tolerance `A_i` to be positive).
    IdealExceedsThreshold {
        /// Ideal tail latency `TL_i0`.
        ideal: f64,
        /// QoS threshold `M_i`.
        threshold: f64,
    },
    /// A ratio-valued parameter (relative importance, elasticity, …) was
    /// outside its documented range.
    OutOfRange {
        /// Which parameter was rejected.
        what: &'static str,
        /// The rejected value.
        value: f64,
        /// Inclusive lower bound.
        min: f64,
        /// Inclusive upper bound.
        max: f64,
    },
}

impl fmt::Display for TheoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TheoryError::NonPositive { what, value } => {
                write!(f, "{what} must be finite and positive, got {value}")
            }
            TheoryError::IdealExceedsThreshold { ideal, threshold } => write!(
                f,
                "ideal tail latency {ideal} must be below the QoS threshold {threshold}"
            ),
            TheoryError::OutOfRange {
                what,
                value,
                min,
                max,
            } => write!(f, "{what} must lie in [{min}, {max}], got {value}"),
        }
    }
}

impl std::error::Error for TheoryError {}

/// Validates that `value` is finite and strictly positive.
pub(crate) fn ensure_positive(what: &'static str, value: f64) -> Result<f64, TheoryError> {
    if value.is_finite() && value > 0.0 {
        Ok(value)
    } else {
        Err(TheoryError::NonPositive { what, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = TheoryError::NonPositive {
            what: "ideal tail latency",
            value: -1.0,
        };
        assert!(err.to_string().contains("ideal tail latency"));
        assert!(err.to_string().contains("-1"));
    }

    #[test]
    fn ensure_positive_accepts_positive() {
        assert_eq!(ensure_positive("x", 3.5), Ok(3.5));
    }

    #[test]
    fn ensure_positive_rejects_zero_negative_nan() {
        assert!(ensure_positive("x", 0.0).is_err());
        assert!(ensure_positive("x", -2.0).is_err());
        assert!(ensure_positive("x", f64::NAN).is_err());
        assert!(ensure_positive("x", f64::INFINITY).is_err());
    }
}
