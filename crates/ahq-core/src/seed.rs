//! Deterministic seed derivation shared by every layer that fans work out
//! (the experiment executor's replicas, the cluster runner's per-node
//! per-round jobs).

/// Derives the seed of logical stream `stream` from `base` — the one
/// audited per-replica/per-job derivation shared by the executor and the
/// cluster layer (a SplitMix64 finalizer over the stream-salted base).
/// The result depends only on `(base, stream)`, never on worker identity
/// or scheduling order, which is what keeps parallel runs byte-identical
/// to sequential ones.
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    let mut z = base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_is_pinned_and_stream_sensitive() {
        // SplitMix64 reference outputs: derive_seed(0, 0) is the first
        // splitmix64 output of state 0.
        assert_eq!(derive_seed(0, 0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(derive_seed(0, 1), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(derive_seed(42, 0), 0xBDD7_3226_2FEB_6E95);
        assert_eq!(derive_seed(42, 1), 0x28EF_E333_B266_F103);
        assert_eq!(derive_seed(42, 2), 0x5FD3_0D2F_CBEF_75E3);
        assert_eq!(derive_seed(u64::MAX, u64::MAX), 0xE99F_F867_DBF6_82C9);
        // Distinct streams from one base never collide in practice.
        let seeds: Vec<u64> = (0..64).map(|i| derive_seed(42, i)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len());
    }

    #[test]
    fn nested_derivations_stay_distinct() {
        // The cluster layer derives per-(node, round) seeds by chaining:
        // derive_seed(derive_seed(base, node), round). Chained streams must
        // not collide across a realistic grid.
        let mut seeds: Vec<u64> = (0..64)
            .flat_map(|node| (0..32).map(move |round| derive_seed(derive_seed(7, node), round)))
            .collect();
        let n = seeds.len();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), n);
    }
}
