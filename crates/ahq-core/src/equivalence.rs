use serde::{Deserialize, Serialize};

use crate::series::EntropySeries;

/// The result of a resource-equivalence comparison between two strategies at
/// one target entropy (§II-C and Fig. 3 of the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EquivalencePoint {
    /// The entropy level at which the two strategies were equated.
    pub target_entropy: f64,
    /// Resources the baseline strategy needs to reach the target.
    pub baseline_resource: f64,
    /// Resources the candidate strategy needs to reach the target.
    pub candidate_resource: f64,
    /// `baseline_resource - candidate_resource`: how many resource units the
    /// candidate saves. Positive means the candidate is the better strategy.
    pub saved: f64,
}

/// Computes the resource equivalence of `candidate` relative to `baseline`
/// at `target_entropy`.
///
/// The paper's definition: strategy `p1` (baseline) is inferior to `p2`
/// (candidate) if it must use `ΔR` more resources to reach the same `E_S`;
/// that `ΔR` is the resource equivalence of `p2` relative to `p1`.
///
/// Returns `None` when either series never reaches the target entropy
/// within its sampled range.
///
/// ```
/// use ahq_core::{resource_equivalence, EntropySeries};
///
/// let unmanaged = EntropySeries::from_points("unmanaged",
///     vec![(5.0, 0.7), (7.0, 0.35), (8.0, 0.12)]);
/// let arq = EntropySeries::from_points("arq",
///     vec![(5.0, 0.35), (6.0, 0.18), (8.0, 0.02)]);
/// let eq = resource_equivalence(&unmanaged, &arq, 0.25).unwrap();
/// assert!(eq.saved > 1.0); // ARQ saves more than one core
/// ```
pub fn resource_equivalence(
    baseline: &EntropySeries,
    candidate: &EntropySeries,
    target_entropy: f64,
) -> Option<EquivalencePoint> {
    let baseline_resource = baseline.resource_for_entropy(target_entropy)?;
    let candidate_resource = candidate.resource_for_entropy(target_entropy)?;
    Some(EquivalencePoint {
        target_entropy,
        baseline_resource,
        candidate_resource,
        saved: baseline_resource - candidate_resource,
    })
}

/// Computes one point of an *isentropic line* (Fig. 3(b)): given samples of
/// `E_S` as a function of one resource dimension (while the other dimensions
/// are held fixed), returns the smallest resource amount that achieves
/// `E_S <= target`.
///
/// This is a thin, intention-revealing wrapper over
/// [`EntropySeries::resource_for_entropy`] used by the Fig. 3(b)
/// reproduction, which sweeps LLC ways on the x-axis and solves for the
/// required core count on the y-axis.
pub fn isentropic_resource(points: &[(f64, f64)], target: f64) -> Option<f64> {
    EntropySeries::from_points("isentropic", points.to_vec()).resource_for_entropy(target)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3a_style_equivalence() {
        // Shaped after Fig. 3(a): to reach E_S = 0.25, Unmanaged needs 7.61
        // cores, ARQ needs 5.61 -> equivalence = 2 cores.
        let unmanaged = EntropySeries::from_points(
            "unmanaged",
            vec![(5.0, 0.75), (7.0, 0.37), (7.61, 0.25), (9.0, 0.05)],
        );
        let arq = EntropySeries::from_points(
            "arq",
            vec![(5.0, 0.32), (5.61, 0.25), (7.0, 0.1), (9.0, 0.01)],
        );
        let eq = resource_equivalence(&unmanaged, &arq, 0.25).unwrap();
        assert!((eq.saved - 2.0).abs() < 1e-9);
        assert!((eq.baseline_resource - 7.61).abs() < 1e-9);
    }

    #[test]
    fn unreachable_target_is_none() {
        let a = EntropySeries::from_points("a", vec![(1.0, 0.9), (2.0, 0.5)]);
        let b = EntropySeries::from_points("b", vec![(1.0, 0.4), (2.0, 0.2)]);
        assert!(resource_equivalence(&a, &b, 0.3).is_none()); // a never reaches
        assert!(resource_equivalence(&b, &a, 0.3).is_none());
        assert!(resource_equivalence(&b, &b, 0.3).is_some());
    }

    #[test]
    fn negative_saving_when_candidate_is_worse() {
        let good = EntropySeries::from_points("good", vec![(2.0, 0.6), (4.0, 0.1)]);
        let bad = EntropySeries::from_points("bad", vec![(2.0, 0.9), (6.0, 0.1)]);
        let eq = resource_equivalence(&good, &bad, 0.3).unwrap();
        assert!(eq.saved < 0.0);
    }

    #[test]
    fn isentropic_point_matches_series_solution() {
        let points = vec![(4.0, 0.8), (6.0, 0.4), (8.0, 0.2)];
        let r = isentropic_resource(&points, 0.3).unwrap();
        assert!(r > 6.0 && r < 8.0);
    }
}
