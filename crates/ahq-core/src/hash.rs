//! Stable content hashing shared by every layer that addresses data by
//! value (the experiment executor's on-disk run cache).
//!
//! [`stable_hash128`] is a 128-bit FNV-1a over bytes: a pure function of
//! the input with no per-process state, so the same canonical document
//! hashes to the same address in every process, on every platform, in
//! every Rust version — unlike `std::hash`, whose `Hasher` outputs are
//! explicitly unstable across releases. 128 bits keep accidental
//! collisions out of reach for any realistic cache population (birthday
//! bound ~2^64 entries), and the disk cache additionally verifies the
//! full canonical key stored inside each shard, so even a collision
//! degrades to a miss rather than a wrong result.

/// FNV-1a 128-bit offset basis.
const FNV_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// FNV-1a 128-bit prime.
const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// The stable 128-bit FNV-1a hash of `bytes`.
pub fn stable_hash128(bytes: &[u8]) -> u128 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= b as u128;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// [`stable_hash128`] salted with a domain/schema tag: the salt is hashed
/// before the content, so bumping a schema version re-addresses every
/// entry (a whole-cache invalidation) without touching the content bytes.
pub fn stable_hash128_salted(salt: &[u8], bytes: &[u8]) -> u128 {
    let mut hash = FNV_OFFSET;
    for &b in salt.iter().chain([0u8].iter()).chain(bytes.iter()) {
        hash ^= b as u128;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_pinned_to_the_fnv1a_reference() {
        // Published FNV-1a 128 reference vectors.
        assert_eq!(stable_hash128(b""), FNV_OFFSET);
        assert_eq!(
            stable_hash128(b"a"),
            0xd228_cb69_6f1a_8caf_7891_2b70_4e4a_8964
        );
        // One multiply per byte: hand-checked chain for "ab".
        let mut h = FNV_OFFSET;
        for &b in b"ab" {
            h ^= b as u128;
            h = h.wrapping_mul(FNV_PRIME);
        }
        assert_eq!(stable_hash128(b"ab"), h);
    }

    #[test]
    fn salt_separates_domains() {
        let content = b"the same content";
        let a = stable_hash128_salted(b"schema-v1", content);
        let b = stable_hash128_salted(b"schema-v2", content);
        assert_ne!(a, b, "a schema bump must re-address every entry");
        // Salting is not just concatenation ambiguity: the NUL separator
        // keeps ("ab", "c") and ("a", "bc") distinct.
        assert_ne!(
            stable_hash128_salted(b"ab", b"c"),
            stable_hash128_salted(b"a", b"bc"),
        );
    }

    #[test]
    fn distinct_inputs_do_not_collide_in_a_realistic_sweep() {
        let mut hashes: Vec<u128> = (0..10_000u32)
            .map(|i| stable_hash128(format!("spec-{i}").as_bytes()))
            .collect();
        let n = hashes.len();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), n);
    }
}
