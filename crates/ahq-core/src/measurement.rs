use serde::{Deserialize, Serialize};

use crate::error::{ensure_positive, TheoryError};

/// One monitoring-window observation of a latency-critical application,
/// together with the two constants that characterise it: its ideal tail
/// latency `TL_i0` and its QoS threshold `M_i`.
///
/// All latencies share one (arbitrary) time unit; the derived quantities are
/// dimensionless ratios, which is the point of the theory.
///
/// ```
/// use ahq_core::LcMeasurement;
///
/// # fn main() -> Result<(), ahq_core::TheoryError> {
/// // Xapian with 8 cores (Table II, bottom block of the paper).
/// let m = LcMeasurement::new("xapian", 2.77, 4.18, 4.22)?;
/// assert!((m.tolerance() - 0.34).abs() < 0.01);
/// assert!((m.interference() - 0.34).abs() < 0.01);
/// assert!(m.intolerable() < 1e-9); // within tolerance: Q_i = 0
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LcMeasurement {
    name: String,
    ideal: f64,
    observed: f64,
    threshold: f64,
}

impl LcMeasurement {
    /// Creates a measurement from `TL_i0` (`ideal`), `TL_i1` (`observed`)
    /// and `M_i` (`threshold`).
    ///
    /// `observed` is clamped below by `ideal`: a collocated run can never be
    /// *faster* than the interference-free run in the model, and small
    /// measurement noise in that direction must not produce a negative
    /// interference `R_i`.
    ///
    /// # Errors
    ///
    /// Returns [`TheoryError::NonPositive`] if any latency is not a finite
    /// positive number, and [`TheoryError::IdealExceedsThreshold`] if
    /// `ideal >= threshold` (the theory requires `TL_i0 < M_i`).
    pub fn new(
        name: impl Into<String>,
        ideal: f64,
        observed: f64,
        threshold: f64,
    ) -> Result<Self, TheoryError> {
        let ideal = ensure_positive("ideal tail latency", ideal)?;
        let observed = ensure_positive("observed tail latency", observed)?;
        let threshold = ensure_positive("QoS threshold", threshold)?;
        if ideal >= threshold {
            return Err(TheoryError::IdealExceedsThreshold { ideal, threshold });
        }
        Ok(Self {
            name: name.into(),
            ideal,
            observed: observed.max(ideal),
            threshold,
        })
    }

    /// The application name this measurement belongs to.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Ideal (interference-free) tail latency `TL_i0`.
    pub fn ideal(&self) -> f64 {
        self.ideal
    }

    /// Observed tail latency under collocation, `TL_i1`.
    pub fn observed(&self) -> f64 {
        self.observed
    }

    /// QoS threshold `M_i` — the largest tail latency users tolerate.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Interference tolerance `A_i = 1 - TL_i0 / M_i` (Eq. 1). In `[0, 1)`.
    pub fn tolerance(&self) -> f64 {
        1.0 - self.ideal / self.threshold
    }

    /// Suffered interference `R_i = 1 - TL_i0 / TL_i1` (Eq. 2). In `[0, 1)`.
    pub fn interference(&self) -> f64 {
        1.0 - self.ideal / self.observed
    }

    /// Remaining tolerance `ReT_i` (Eq. 3): how much interference headroom
    /// is left. Positive only while the application still meets its QoS
    /// target (`A_i > R_i`), zero once it violates.
    pub fn remaining_tolerance(&self) -> f64 {
        if self.tolerance() > self.interference() {
            1.0 - self.observed / self.threshold
        } else {
            0.0
        }
    }

    /// Intolerable interference `Q_i` (Eq. 4): the part of the interference
    /// the application could not absorb. Zero while within QoS, otherwise
    /// `1 - M_i / TL_i1`.
    pub fn intolerable(&self) -> f64 {
        if self.interference() > self.tolerance() {
            1.0 - self.threshold / self.observed
        } else {
            0.0
        }
    }

    /// Whether the QoS target is met, optionally granting the paper's 5 %
    /// threshold elasticity via [`QosElasticity`].
    pub fn meets_qos(&self, elasticity: QosElasticity) -> bool {
        self.observed <= self.threshold * (1.0 + elasticity.fraction())
    }
}

/// The relative elasticity users grant a QoS threshold.
///
/// The paper observes that user-defined targets "have some elasticity" and
/// assumes 5 %: a violation smaller than that is still counted as a
/// satisfactory experience when computing the *yield*.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QosElasticity(f64);

impl QosElasticity {
    /// The paper's default of 5 %.
    pub const PAPER: QosElasticity = QosElasticity(0.05);

    /// A zero-slack elasticity: the threshold is hard.
    pub const NONE: QosElasticity = QosElasticity(0.0);

    /// Creates an elasticity from a fraction in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`TheoryError::OutOfRange`] if `fraction` is outside `[0, 1]`
    /// or not finite.
    pub fn new(fraction: f64) -> Result<Self, TheoryError> {
        if fraction.is_finite() && (0.0..=1.0).contains(&fraction) {
            Ok(Self(fraction))
        } else {
            Err(TheoryError::OutOfRange {
                what: "QoS elasticity",
                value: fraction,
                min: 0.0,
                max: 1.0,
            })
        }
    }

    /// The elasticity as a fraction of the threshold.
    pub fn fraction(&self) -> f64 {
        self.0
    }
}

impl Default for QosElasticity {
    fn default() -> Self {
        Self::PAPER
    }
}

/// One monitoring-window observation of a best-effort application: its IPC
/// when running alone (`IPC_solo`) and its IPC under collocation
/// (`IPC_real`).
///
/// ```
/// use ahq_core::BeMeasurement;
///
/// # fn main() -> Result<(), ahq_core::TheoryError> {
/// let m = BeMeasurement::new("stream", 1.2, 0.6)?;
/// assert!((m.slowdown() - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BeMeasurement {
    name: String,
    ipc_solo: f64,
    ipc_real: f64,
}

impl BeMeasurement {
    /// Creates a measurement from the solo and collocated IPC.
    ///
    /// `ipc_real` is clamped above by `ipc_solo`: collocation can only slow
    /// a BE application down in the model.
    ///
    /// # Errors
    ///
    /// Returns [`TheoryError::NonPositive`] if either IPC is not a finite
    /// positive number.
    pub fn new(name: impl Into<String>, ipc_solo: f64, ipc_real: f64) -> Result<Self, TheoryError> {
        let ipc_solo = ensure_positive("solo IPC", ipc_solo)?;
        let ipc_real = ensure_positive("collocated IPC", ipc_real)?;
        Ok(Self {
            name: name.into(),
            ipc_solo,
            ipc_real: ipc_real.min(ipc_solo),
        })
    }

    /// The application name this measurement belongs to.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// IPC when running alone.
    pub fn ipc_solo(&self) -> f64 {
        self.ipc_solo
    }

    /// IPC under collocation.
    pub fn ipc_real(&self) -> f64 {
        self.ipc_real
    }

    /// Slowdown ratio `IPC_solo / IPC_real >= 1`.
    pub fn slowdown(&self) -> f64 {
        self.ipc_solo / self.ipc_real
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xapian_6cores() -> LcMeasurement {
        // Table II, first row: TL_i0 = 2.77, TL_i1 = 23.99, M_i = 4.22.
        LcMeasurement::new("xapian", 2.77, 23.99, 4.22).unwrap()
    }

    #[test]
    fn table2_xapian_quantities_match_paper() {
        let m = xapian_6cores();
        assert!((m.tolerance() - 0.34).abs() < 0.005, "{}", m.tolerance());
        assert!((m.interference() - 0.88).abs() < 0.005);
        assert_eq!(m.remaining_tolerance(), 0.0);
        assert!((m.intolerable() - 0.82).abs() < 0.005);
    }

    #[test]
    fn table2_moses_7cores() {
        // ReT = 0.36, Q = 0 in the paper.
        let m = LcMeasurement::new("moses", 2.80, 6.78, 10.53).unwrap();
        assert!((m.remaining_tolerance() - 0.36).abs() < 0.005);
        assert_eq!(m.intolerable(), 0.0);
    }

    #[test]
    fn observed_below_ideal_is_clamped() {
        let m = LcMeasurement::new("a", 2.0, 1.0, 4.0).unwrap();
        assert_eq!(m.observed(), 2.0);
        assert_eq!(m.interference(), 0.0);
        assert_eq!(m.intolerable(), 0.0);
    }

    #[test]
    fn ideal_must_be_below_threshold() {
        assert!(matches!(
            LcMeasurement::new("a", 5.0, 5.0, 4.0),
            Err(TheoryError::IdealExceedsThreshold { .. })
        ));
        assert!(LcMeasurement::new("a", 4.0, 5.0, 4.0).is_err());
    }

    #[test]
    fn qos_elasticity_grants_slack() {
        let m = LcMeasurement::new("a", 2.0, 4.1, 4.0).unwrap();
        assert!(!m.meets_qos(QosElasticity::NONE));
        assert!(m.meets_qos(QosElasticity::PAPER)); // 4.1 <= 4.0 * 1.05
    }

    #[test]
    fn qos_exact_threshold_is_satisfied() {
        let m = LcMeasurement::new("a", 2.0, 4.0, 4.0).unwrap();
        assert!(m.meets_qos(QosElasticity::NONE));
    }

    #[test]
    fn elasticity_range_is_validated() {
        assert!(QosElasticity::new(-0.01).is_err());
        assert!(QosElasticity::new(1.01).is_err());
        assert!(QosElasticity::new(f64::NAN).is_err());
        assert_eq!(QosElasticity::new(0.05).unwrap(), QosElasticity::PAPER);
    }

    #[test]
    fn be_slowdown_and_clamp() {
        let m = BeMeasurement::new("fluid", 2.0, 2.5).unwrap();
        assert_eq!(m.ipc_real(), 2.0);
        assert_eq!(m.slowdown(), 1.0);
    }

    #[test]
    fn be_rejects_bad_ipc() {
        assert!(BeMeasurement::new("b", 0.0, 1.0).is_err());
        assert!(BeMeasurement::new("b", 1.0, f64::NAN).is_err());
    }

    #[test]
    fn remaining_tolerance_positive_inside_qos() {
        let m = LcMeasurement::new("a", 2.0, 3.0, 4.0).unwrap();
        // A = 0.5, R = 1/3 -> ReT = 1 - 3/4 = 0.25.
        assert!((m.remaining_tolerance() - 0.25).abs() < 1e-12);
        assert_eq!(m.intolerable(), 0.0);
    }

    #[test]
    fn intolerable_positive_outside_qos() {
        let m = LcMeasurement::new("a", 2.0, 8.0, 4.0).unwrap();
        // A = 0.5, R = 0.75 -> Q = 1 - 4/8 = 0.5.
        assert!((m.intolerable() - 0.5).abs() < 1e-12);
        assert_eq!(m.remaining_tolerance(), 0.0);
    }
}
