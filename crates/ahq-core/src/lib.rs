//! # ahq-core — the system entropy (`E_S`) theory
//!
//! This crate implements the analytical core of the Ah-Q paper
//! (*"Ah-Q: Quantifying and Handling the Interference within a Datacenter
//! from a System Perspective"*, HPCA 2023): a dimensionless, `[0, 1]`-valued
//! metric that quantifies the aggregate interference experienced by a mix of
//! collocated latency-critical (LC) and best-effort (BE) applications.
//!
//! ## Concepts
//!
//! For every LC application `i` three base quantities exist:
//!
//! * `TL_i0` — its *ideal* tail latency, measured free of interference,
//! * `TL_i1` — its tail latency under collocation,
//! * `M_i` — the maximum tail latency its users tolerate (the QoS target).
//!
//! From those the paper derives (Eqs. 1–4):
//!
//! * [`LcMeasurement::tolerance`] — `A_i = 1 - TL_i0 / M_i`,
//! * [`LcMeasurement::interference`] — `R_i = 1 - TL_i0 / TL_i1`,
//! * [`LcMeasurement::remaining_tolerance`] — `ReT_i`,
//! * [`LcMeasurement::intolerable`] — `Q_i`,
//!
//! and aggregates them into the LC entropy `E_LC` (Eq. 5), the BE entropy
//! `E_BE` (Eq. 6), and finally the system entropy (Eq. 7):
//!
//! ```text
//! E_S = RI * E_LC + (1 - RI) * E_BE
//! ```
//!
//! where `RI` is the *relative importance* of LC over BE applications
//! (the paper uses `0.8`).
//!
//! ## Quick example
//!
//! ```
//! use ahq_core::{BeMeasurement, EntropyModel, LcMeasurement, RelativeImportance};
//!
//! # fn main() -> Result<(), ahq_core::TheoryError> {
//! let lc = vec![
//!     // Xapian on 7 cores, row two of Table II in the paper.
//!     LcMeasurement::new("xapian", 2.77, 7.13, 4.22)?,
//!     LcMeasurement::new("moses", 2.80, 6.78, 10.53)?,
//!     LcMeasurement::new("img-dnn", 1.41, 5.65, 3.98)?,
//! ];
//! let be = vec![BeMeasurement::new("fluidanimate", 2.63, 2.55)?];
//!
//! let model = EntropyModel::new(RelativeImportance::new(0.8)?);
//! let report = model.evaluate(&lc, &be);
//! assert!(report.system > 0.0 && report.system < 1.0);
//! # Ok(())
//! # }
//! ```
//!
//! The companion crates build a datacenter-node simulator (`ahq-sim`),
//! workload models (`ahq-workloads`) and the scheduling strategies
//! (`ahq-sched`, including the paper's ARQ) on top of this theory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod entropy;
mod equivalence;
mod error;
pub mod hash;
pub mod json;
mod measurement;
mod seed;
mod series;
mod weighted;

pub use entropy::{EntropyModel, EntropyReport, LcAppReport, RelativeImportance};
pub use equivalence::{isentropic_resource, resource_equivalence, EquivalencePoint};
pub use error::TheoryError;
pub use hash::{stable_hash128, stable_hash128_salted};
pub use measurement::{BeMeasurement, LcMeasurement, QosElasticity};
pub use seed::derive_seed;
pub use series::EntropySeries;
pub use weighted::{Weighted, WeightedEntropyModel};
