//! Weighted system entropy — the extension the paper sketches in §II-B:
//! *"If necessary, the `E_S` model can be extended to involve different RI
//! factors among the same type of applications."*
//!
//! Here each LC application carries a weight for its share of `E_LC`, and
//! each BE application a weight for its share of the slowdown aggregate.
//! Uniform weights recover the paper's unweighted definitions exactly,
//! which [`WeightedEntropyModel`]'s tests verify.

use serde::{Deserialize, Serialize};

use crate::entropy::{EntropyModel, EntropyReport, LcAppReport};
use crate::error::TheoryError;
use crate::measurement::{BeMeasurement, LcMeasurement};

/// A measurement paired with its intra-class importance weight.
///
/// Weights are relative: only their proportions matter, and they are
/// normalised internally. They must be finite and non-negative, with at
/// least one strictly positive weight per non-empty class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Weighted<M> {
    /// The underlying measurement.
    pub measurement: M,
    /// Relative importance within its class (LC or BE).
    pub weight: f64,
}

impl<M> Weighted<M> {
    /// Pairs a measurement with a weight.
    pub fn new(measurement: M, weight: f64) -> Self {
        Weighted {
            measurement,
            weight,
        }
    }
}

/// The weighted variant of [`EntropyModel`].
///
/// ```
/// use ahq_core::{EntropyModel, LcMeasurement, Weighted, WeightedEntropyModel};
///
/// # fn main() -> Result<(), ahq_core::TheoryError> {
/// let violating = LcMeasurement::new("critical", 1.0, 8.0, 2.0)?;
/// let fine = LcMeasurement::new("casual", 1.0, 1.2, 2.0)?;
/// let model = WeightedEntropyModel::new(EntropyModel::default());
///
/// // Uniform weights match the base model ...
/// let uniform = model.evaluate(
///     &[Weighted::new(violating.clone(), 1.0), Weighted::new(fine.clone(), 1.0)],
///     &[],
/// )?;
/// // ... while weighting the violating app higher raises E_LC.
/// let skewed = model.evaluate(
///     &[Weighted::new(violating, 3.0), Weighted::new(fine, 1.0)],
///     &[],
/// )?;
/// assert!(skewed.lc > uniform.lc);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeightedEntropyModel {
    base: EntropyModel,
}

impl WeightedEntropyModel {
    /// Wraps a base model (which supplies `RI` and the QoS elasticity).
    pub fn new(base: EntropyModel) -> Self {
        WeightedEntropyModel { base }
    }

    /// The wrapped base model.
    pub fn base(&self) -> &EntropyModel {
        &self.base
    }

    /// Weighted LC entropy: `E_LC = Σ w_i Q_i / Σ w_i`.
    ///
    /// # Errors
    ///
    /// Returns [`TheoryError::OutOfRange`] when a weight is negative or
    /// not finite, or when all weights of a non-empty class are zero.
    pub fn lc_entropy(&self, lc: &[Weighted<LcMeasurement>]) -> Result<f64, TheoryError> {
        if lc.is_empty() {
            return Ok(0.0);
        }
        let total = validate_weights(lc.iter().map(|w| w.weight))?;
        Ok(lc
            .iter()
            .map(|w| w.weight * w.measurement.intolerable())
            .sum::<f64>()
            / total)
    }

    /// Weighted BE entropy: one minus the weighted harmonic aggregate,
    /// `E_BE = 1 - Σ w_i / Σ w_i * slowdown_i`.
    ///
    /// # Errors
    ///
    /// Returns [`TheoryError::OutOfRange`] on invalid weights, as for
    /// [`WeightedEntropyModel::lc_entropy`].
    pub fn be_entropy(&self, be: &[Weighted<BeMeasurement>]) -> Result<f64, TheoryError> {
        if be.is_empty() {
            return Ok(0.0);
        }
        let total = validate_weights(be.iter().map(|w| w.weight))?;
        let weighted_slowdown: f64 = be.iter().map(|w| w.weight * w.measurement.slowdown()).sum();
        Ok(1.0 - total / weighted_slowdown)
    }

    /// Full weighted evaluation, mirroring [`EntropyModel::evaluate`].
    ///
    /// # Errors
    ///
    /// Returns [`TheoryError::OutOfRange`] on invalid weights.
    pub fn evaluate(
        &self,
        lc: &[Weighted<LcMeasurement>],
        be: &[Weighted<BeMeasurement>],
    ) -> Result<EntropyReport, TheoryError> {
        let e_lc = self.lc_entropy(lc)?;
        let e_be = self.be_entropy(be)?;
        let ri = self.base.relative_importance().value();
        let elasticity = self.base.elasticity();
        let satisfied = lc
            .iter()
            .filter(|w| w.measurement.meets_qos(elasticity))
            .count();
        let yield_fraction = if lc.is_empty() {
            1.0
        } else {
            satisfied as f64 / lc.len() as f64
        };
        Ok(EntropyReport {
            lc: e_lc,
            be: e_be,
            system: ri * e_lc + (1.0 - ri) * e_be,
            yield_fraction,
            lc_apps: lc
                .iter()
                .map(|w| {
                    let m = &w.measurement;
                    LcAppReport {
                        name: m.name().to_owned(),
                        tolerance: m.tolerance(),
                        interference: m.interference(),
                        remaining_tolerance: m.remaining_tolerance(),
                        intolerable: m.intolerable(),
                        satisfied: m.meets_qos(elasticity),
                    }
                })
                .collect(),
        })
    }
}

impl Default for WeightedEntropyModel {
    fn default() -> Self {
        WeightedEntropyModel::new(EntropyModel::default())
    }
}

fn validate_weights(weights: impl Iterator<Item = f64>) -> Result<f64, TheoryError> {
    let mut total = 0.0;
    for w in weights {
        if !w.is_finite() || w < 0.0 {
            return Err(TheoryError::OutOfRange {
                what: "application weight",
                value: w,
                min: 0.0,
                max: f64::INFINITY,
            });
        }
        total += w;
    }
    if total <= 0.0 {
        return Err(TheoryError::OutOfRange {
            what: "total application weight",
            value: total,
            min: f64::MIN_POSITIVE,
            max: f64::INFINITY,
        });
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lc_set() -> Vec<LcMeasurement> {
        vec![
            LcMeasurement::new("a", 1.0, 6.0, 2.0).unwrap(), // Q = 2/3
            LcMeasurement::new("b", 1.0, 1.1, 2.0).unwrap(), // Q = 0
        ]
    }

    fn be_set() -> Vec<BeMeasurement> {
        vec![
            BeMeasurement::new("x", 2.0, 1.0).unwrap(), // slowdown 2
            BeMeasurement::new("y", 3.0, 3.0).unwrap(), // slowdown 1
        ]
    }

    #[test]
    fn uniform_weights_recover_the_paper_model() {
        let base = EntropyModel::default();
        let weighted = WeightedEntropyModel::new(base);
        let lc: Vec<_> = lc_set()
            .into_iter()
            .map(|m| Weighted::new(m, 1.0))
            .collect();
        let be: Vec<_> = be_set()
            .into_iter()
            .map(|m| Weighted::new(m, 1.0))
            .collect();
        let w = weighted.evaluate(&lc, &be).unwrap();
        let u = base.evaluate(&lc_set(), &be_set());
        assert!((w.lc - u.lc).abs() < 1e-12);
        assert!((w.be - u.be).abs() < 1e-12);
        assert!((w.system - u.system).abs() < 1e-12);
        assert_eq!(w.yield_fraction, u.yield_fraction);
    }

    #[test]
    fn weights_are_scale_invariant() {
        let model = WeightedEntropyModel::default();
        let small: Vec<_> = lc_set()
            .into_iter()
            .map(|m| Weighted::new(m, 0.1))
            .collect();
        let big: Vec<_> = lc_set()
            .into_iter()
            .map(|m| Weighted::new(m, 10.0))
            .collect();
        assert!(
            (model.lc_entropy(&small).unwrap() - model.lc_entropy(&big).unwrap()).abs() < 1e-12
        );
    }

    #[test]
    fn upweighting_the_victim_raises_entropy() {
        let model = WeightedEntropyModel::default();
        let ms = lc_set();
        let uniform = model
            .lc_entropy(&[
                Weighted::new(ms[0].clone(), 1.0),
                Weighted::new(ms[1].clone(), 1.0),
            ])
            .unwrap();
        let skewed = model
            .lc_entropy(&[
                Weighted::new(ms[0].clone(), 5.0),
                Weighted::new(ms[1].clone(), 1.0),
            ])
            .unwrap();
        assert!(skewed > uniform);
        // And down-weighting it hides the violation.
        let hidden = model
            .lc_entropy(&[
                Weighted::new(ms[0].clone(), 0.0),
                Weighted::new(ms[1].clone(), 1.0),
            ])
            .unwrap();
        assert_eq!(hidden, 0.0);
    }

    #[test]
    fn weighted_be_prefers_protecting_the_weighty() {
        let model = WeightedEntropyModel::default();
        let ms = be_set();
        // Weighting the slowed-down app dominates the aggregate.
        let slowed_heavy = model
            .be_entropy(&[
                Weighted::new(ms[0].clone(), 9.0),
                Weighted::new(ms[1].clone(), 1.0),
            ])
            .unwrap();
        let slowed_light = model
            .be_entropy(&[
                Weighted::new(ms[0].clone(), 1.0),
                Weighted::new(ms[1].clone(), 9.0),
            ])
            .unwrap();
        assert!(slowed_heavy > slowed_light);
    }

    #[test]
    fn invalid_weights_are_rejected() {
        let model = WeightedEntropyModel::default();
        let m = lc_set().remove(0);
        assert!(model.lc_entropy(&[Weighted::new(m.clone(), -1.0)]).is_err());
        assert!(model
            .lc_entropy(&[Weighted::new(m.clone(), f64::NAN)])
            .is_err());
        assert!(model.lc_entropy(&[Weighted::new(m, 0.0)]).is_err());
    }

    #[test]
    fn empty_classes_are_zero() {
        let model = WeightedEntropyModel::default();
        assert_eq!(model.lc_entropy(&[]).unwrap(), 0.0);
        assert_eq!(model.be_entropy(&[]).unwrap(), 0.0);
    }
}
