//! A small, self-contained JSON layer: parser, serializer, and typed
//! extraction helpers.
//!
//! The repo's artifacts (run results, trained policies, timing reports)
//! must round-trip through plain-text JSON without external crates. This
//! module provides:
//!
//! * [`JsonValue`] — a JSON document as a tree; objects preserve insertion
//!   order so rendering is deterministic,
//! * [`JsonValue::parse`] — a recursive-descent parser over the full JSON
//!   grammar (string escapes, `\uXXXX` incl. surrogate pairs, exponents),
//! * [`JsonValue::render`] / [`JsonValue::render_pretty`] — serializers
//!   whose number formatting uses Rust's shortest round-trip `f64`
//!   display, so `parse(render(v)) == v` for every finite number,
//! * [`ToJson`] / [`FromJson`] — conversion traits for repo types, plus
//!   the [`to_string`] / [`from_str`] convenience entry points.
//!
//! Numbers are carried as `f64`, like JavaScript: integers round-trip
//! exactly up to `2^53`, and [`FromJson`] for the unsigned types rejects
//! fractional or out-of-range values instead of truncating. Non-finite
//! floats serialize as `null` (matching serde_json) and `null` parses
//! back as `f64::NAN`.

use std::char;
use std::fmt;

/// Maximum nesting depth the parser accepts before bailing out, so a
/// malicious or corrupted artifact cannot overflow the stack.
const MAX_DEPTH: usize = 128;

/// Exact integer range representable in an `f64` without rounding.
const MAX_SAFE_INT: f64 = 9_007_199_254_740_992.0; // 2^53

/// A parse or extraction error, with enough context to locate the fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    message: String,
    /// Byte offset into the input for parse errors; `None` for extraction
    /// errors raised on an already-parsed tree.
    offset: Option<usize>,
}

impl JsonError {
    fn parse(message: impl Into<String>, offset: usize) -> Self {
        Self {
            message: message.into(),
            offset: Some(offset),
        }
    }

    /// An extraction error (wrong type, missing field, out of range).
    pub fn extract(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            offset: None,
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(at) => write!(f, "json error at byte {at}: {}", self.message),
            None => write!(f, "json error: {}", self.message),
        }
    }
}

impl std::error::Error for JsonError {}

/// A JSON document.
///
/// Objects are a `Vec` of `(key, value)` pairs rather than a map so that
/// field order is exactly insertion order: rendering the same value twice
/// produces byte-identical text, which the deterministic-training tests
/// rely on.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number; integers are exact up to `2^53`.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; field order is preserved.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn object(fields: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Object(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Parses a JSON document. The whole input must be consumed (trailing
    /// whitespace is allowed, trailing garbage is an error).
    pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::parse("trailing characters after value", p.pos));
        }
        Ok(value)
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Renders the value as indented JSON (two spaces per level), for
    /// artifacts meant to be read by humans.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => write_number(*n, out),
            JsonValue::String(s) => write_string(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            JsonValue::Object(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_string(key, out);
                    out.push_str(": ");
                    value.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write(out),
        }
    }

    /// Looks up a field of an object; `None` for missing fields or
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Looks up a required field of an object.
    ///
    /// # Errors
    ///
    /// [`JsonError`] naming the missing key.
    pub fn field(&self, key: &str) -> Result<&JsonValue, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError::extract(format!("missing field `{key}`")))
    }

    /// Extracts and converts a required field in one step.
    ///
    /// # Errors
    ///
    /// [`JsonError`] when the key is missing or the conversion fails.
    pub fn req<T: FromJson>(&self, key: &str) -> Result<T, JsonError> {
        T::from_json(self.field(key)?)
            .map_err(|e| JsonError::extract(format!("field `{key}`: {}", e.message)))
    }

    /// Extracts and converts an optional field: missing and `null` both
    /// map to `None`.
    ///
    /// # Errors
    ///
    /// [`JsonError`] when the field is present, non-null, and fails to
    /// convert.
    pub fn opt<T: FromJson>(&self, key: &str) -> Result<Option<T>, JsonError> {
        match self.get(key) {
            None | Some(JsonValue::Null) => Ok(None),
            Some(value) => T::from_json(value)
                .map(Some)
                .map_err(|e| JsonError::extract(format!("field `{key}`: {}", e.message))),
        }
    }

    /// The value as `f64`; `null` maps to NaN (the inverse of non-finite
    /// serialization).
    ///
    /// # Errors
    ///
    /// [`JsonError`] for non-numbers.
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            JsonValue::Number(n) => Ok(*n),
            JsonValue::Null => Ok(f64::NAN),
            other => Err(JsonError::extract(format!(
                "expected number, got {}",
                other.kind()
            ))),
        }
    }

    /// The value as an exact `u64`.
    ///
    /// # Errors
    ///
    /// [`JsonError`] for non-numbers, fractional values, negatives, or
    /// magnitudes beyond `2^53`.
    pub fn as_u64(&self) -> Result<u64, JsonError> {
        match self {
            JsonValue::Number(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= MAX_SAFE_INT => {
                Ok(*n as u64)
            }
            JsonValue::Number(n) => Err(JsonError::extract(format!(
                "expected unsigned integer, got {n}"
            ))),
            other => Err(JsonError::extract(format!(
                "expected unsigned integer, got {}",
                other.kind()
            ))),
        }
    }

    /// The value as `bool`.
    ///
    /// # Errors
    ///
    /// [`JsonError`] for non-booleans.
    pub fn as_bool(&self) -> Result<bool, JsonError> {
        match self {
            JsonValue::Bool(b) => Ok(*b),
            other => Err(JsonError::extract(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }

    /// The value as `&str`.
    ///
    /// # Errors
    ///
    /// [`JsonError`] for non-strings.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            JsonValue::String(s) => Ok(s),
            other => Err(JsonError::extract(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }

    /// The value as an array slice.
    ///
    /// # Errors
    ///
    /// [`JsonError`] for non-arrays.
    pub fn as_array(&self) -> Result<&[JsonValue], JsonError> {
        match self {
            JsonValue::Array(items) => Ok(items),
            other => Err(JsonError::extract(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            JsonValue::Null => "null",
            JsonValue::Bool(_) => "bool",
            JsonValue::Number(_) => "number",
            JsonValue::String(_) => "string",
            JsonValue::Array(_) => "array",
            JsonValue::Object(_) => "object",
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Writes a number using Rust's shortest round-trip `f64` display, which
/// is valid JSON for every finite value; non-finite values become `null`
/// exactly like serde_json.
fn write_number(n: f64, out: &mut String) {
    if n.is_finite() {
        out.push_str(&n.to_string());
    } else {
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::parse(
                format!("expected `{}`", b as char),
                self.pos,
            ))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(JsonError::parse(format!("expected `{word}`"), self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(JsonError::parse("nesting too deep", self.pos));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::String),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => Err(JsonError::parse(
                format!("unexpected character `{}`", other as char),
                self.pos,
            )),
            None => Err(JsonError::parse("unexpected end of input", self.pos)),
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(JsonError::parse("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(JsonError::parse("expected `,` or `}`", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err(JsonError::parse("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&unit) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow to form one code point.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if !(0xdc00..0xe000).contains(&low) {
                                        return Err(JsonError::parse(
                                            "invalid low surrogate",
                                            start,
                                        ));
                                    }
                                    let combined =
                                        0x10000 + ((unit - 0xd800) << 10) + (low - 0xdc00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(unit)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => {
                                    return Err(JsonError::parse("invalid \\u escape", start));
                                }
                            }
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(JsonError::parse("invalid escape", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(JsonError::parse(
                        "raw control character in string",
                        self.pos,
                    ));
                }
                Some(_) => {
                    // Copy a whole UTF-8 scalar; the input is a &str so
                    // boundaries are guaranteed valid.
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    let chunk = std::str::from_utf8(&rest[..len])
                        .map_err(|_| JsonError::parse("invalid utf-8", self.pos))?;
                    out.push_str(chunk);
                    self.pos += len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let digits = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| JsonError::parse("truncated \\u escape", self.pos))?;
        let text = std::str::from_utf8(digits)
            .map_err(|_| JsonError::parse("invalid \\u escape", self.pos))?;
        let unit = u32::from_str_radix(text, 16)
            .map_err(|_| JsonError::parse("invalid \\u escape", self.pos))?;
        self.pos += 4;
        Ok(unit)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::parse("invalid number", start))?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| JsonError::parse(format!("invalid number `{text}`"), start))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Conversion of a repo type into a [`JsonValue`] tree.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> JsonValue;
}

/// Reconstruction of a repo type from a parsed [`JsonValue`] tree.
pub trait FromJson: Sized {
    /// Rebuilds `Self`, validating types and ranges.
    ///
    /// # Errors
    ///
    /// [`JsonError`] describing the first mismatch encountered.
    fn from_json(value: &JsonValue) -> Result<Self, JsonError>;
}

/// Serializes a value as compact JSON text.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().render()
}

/// Serializes a value as indented JSON text.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().render_pretty()
}

/// Parses JSON text and rebuilds a value.
///
/// # Errors
///
/// [`JsonError`] from either the parse or the typed reconstruction.
pub fn from_str<T: FromJson>(input: &str) -> Result<T, JsonError> {
    T::from_json(&JsonValue::parse(input)?)
}

impl ToJson for JsonValue {
    fn to_json(&self) -> JsonValue {
        self.clone()
    }
}

impl FromJson for JsonValue {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(value.clone())
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> JsonValue {
        JsonValue::Number(*self)
    }
}

impl FromJson for f64 {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        value.as_f64()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> JsonValue {
        JsonValue::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        value.as_bool()
    }
}

impl ToJson for String {
    fn to_json(&self) -> JsonValue {
        JsonValue::String(self.clone())
    }
}

impl FromJson for String {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        value.as_str().map(str::to_owned)
    }
}

impl ToJson for str {
    fn to_json(&self) -> JsonValue {
        JsonValue::String(self.to_owned())
    }
}

macro_rules! unsigned_json {
    ($($ty:ty),*) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> JsonValue {
                JsonValue::Number(*self as f64)
            }
        }

        impl FromJson for $ty {
            fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
                let n = value.as_u64()?;
                <$ty>::try_from(n).map_err(|_| {
                    JsonError::extract(format!(
                        "{n} out of range for {}",
                        stringify!($ty)
                    ))
                })
            }
        }
    )*};
}

unsigned_json!(u8, u16, u32, u64, usize);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> JsonValue {
        match self {
            Some(value) => value.to_json(),
            None => JsonValue::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        match value {
            JsonValue::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        value.as_array()?.iter().map(T::from_json).collect()
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl ToJson for crate::EntropyReport {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("lc", self.lc.to_json()),
            ("be", self.be.to_json()),
            ("system", self.system.to_json()),
            ("yield_fraction", self.yield_fraction.to_json()),
            ("lc_apps", self.lc_apps.to_json()),
        ])
    }
}

impl FromJson for crate::EntropyReport {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(Self {
            lc: value.req("lc")?,
            be: value.req("be")?,
            system: value.req("system")?,
            yield_fraction: value.req("yield_fraction")?,
            lc_apps: value.req("lc_apps")?,
        })
    }
}

impl ToJson for crate::LcAppReport {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("name", self.name.to_json()),
            ("tolerance", self.tolerance.to_json()),
            ("interference", self.interference.to_json()),
            ("remaining_tolerance", self.remaining_tolerance.to_json()),
            ("intolerable", self.intolerable.to_json()),
            ("satisfied", self.satisfied.to_json()),
        ])
    }
}

impl FromJson for crate::LcAppReport {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        Ok(Self {
            name: value.req("name")?,
            tolerance: value.req("tolerance")?,
            interference: value.req("interference")?,
            remaining_tolerance: value.req("remaining_tolerance")?,
            intolerable: value.req("intolerable")?,
            satisfied: value.req("satisfied")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(JsonValue::parse("42").unwrap(), JsonValue::Number(42.0));
        assert_eq!(
            JsonValue::parse("-0.5e2").unwrap(),
            JsonValue::Number(-50.0)
        );
        assert_eq!(
            JsonValue::parse("\"hi\"").unwrap(),
            JsonValue::String("hi".into())
        );
    }

    #[test]
    fn parses_nested_structures_with_whitespace() {
        let doc = r#"
            { "a" : [ 1 , 2.5 , { "b" : null } ] , "c" : "d" }
        "#;
        let v = JsonValue::parse(doc).unwrap();
        assert_eq!(v.field("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.req::<String>("c").unwrap(), "d");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "1.2.3",
            "\"\\x\"",
            "\"unterminated",
            "[1] garbage",
            "nul",
            "{\"a\" 1}",
            "\"\\ud800\"", // lone high surrogate
        ] {
            assert!(JsonValue::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn rejects_absurd_nesting() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(JsonValue::parse(&deep).is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let tricky = "a\"b\\c\nd\te\u{08}\u{0c}\r \u{1} é 日本 𝄞";
        let rendered = tricky.to_json().render();
        let back: String = from_str(&rendered).unwrap();
        assert_eq!(back, tricky);
    }

    #[test]
    fn surrogate_pair_escapes_parse() {
        // 𝄞 U+1D11E as an escaped surrogate pair.
        let v = JsonValue::parse("\"\\ud834\\udd1e\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "𝄞");
    }

    #[test]
    fn float_edge_values_round_trip_exactly() {
        let edges = [
            0.0,
            -0.0,
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MIN_POSITIVE / 8.0, // subnormal
            f64::MAX,
            f64::MIN,
            9_007_199_254_740_991.0, // 2^53 - 1
            1e-300,
            -2.2250738585072014e-308,
        ];
        for x in edges {
            let back: f64 = from_str(&x.to_json().render()).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x:?} must round-trip");
        }
    }

    #[test]
    fn non_finite_serializes_as_null() {
        assert_eq!(f64::NAN.to_json().render(), "null");
        assert_eq!(f64::INFINITY.to_json().render(), "null");
        let back: f64 = from_str("null").unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn unsigned_extraction_rejects_lossy_values() {
        assert_eq!(from_str::<u64>("12").unwrap(), 12);
        assert!(from_str::<u64>("-1").is_err());
        assert!(from_str::<u64>("1.5").is_err());
        assert!(from_str::<u32>("4294967296").is_err());
        assert!(from_str::<u64>("1e300").is_err());
    }

    #[test]
    fn object_field_order_is_preserved() {
        let v = JsonValue::object(vec![
            ("z", JsonValue::Number(1.0)),
            ("a", JsonValue::Number(2.0)),
        ]);
        assert_eq!(v.render(), "{\"z\":1,\"a\":2}");
        assert_eq!(JsonValue::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn pretty_rendering_stays_parseable() {
        let v = JsonValue::object(vec![
            ("xs", JsonValue::Array(vec![JsonValue::Number(1.0)])),
            ("empty", JsonValue::Array(vec![])),
            ("o", JsonValue::object(vec![("k", JsonValue::Bool(true))])),
        ]);
        let pretty = v.render_pretty();
        assert!(pretty.contains('\n'));
        assert_eq!(JsonValue::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn entropy_report_round_trips() {
        use crate::{BeMeasurement, EntropyModel, LcMeasurement};
        let lc = vec![
            LcMeasurement::new("xapian", 2.77, 7.13, 4.22).unwrap(),
            LcMeasurement::new("moses", 2.80, 6.78, 10.53).unwrap(),
        ];
        let be = vec![BeMeasurement::new("fluidanimate", 2.63, 2.55).unwrap()];
        let report = EntropyModel::default().evaluate(&lc, &be);
        let text = to_string(&report);
        let back: crate::EntropyReport = from_str(&text).unwrap();
        assert_eq!(back, report);
    }

    /// SplitMix64 step for the seed-driven generators below; the offline
    /// proptest harness draws primitive values only, so structured inputs
    /// are derived deterministically from one drawn `u64`.
    fn mix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn arb_string(state: &mut u64) -> String {
        const POOL: &[char] = &[
            'a', 'Z', '0', ' ', '"', '\\', '/', '\n', '\t', '\u{1}', '\u{1f}', 'é', '日', '𝄞',
            '\u{0}', '{', '}',
        ];
        let len = (mix(state) % 10) as usize;
        (0..len)
            .map(|_| POOL[(mix(state) as usize) % POOL.len()])
            .collect()
    }

    fn arb_f64(state: &mut u64) -> f64 {
        // Full bit-pattern floats, retrying past NaN/inf so the tree stays
        // within the round-trip-exact domain.
        loop {
            let x = f64::from_bits(mix(state));
            if x.is_finite() {
                return x;
            }
        }
    }

    fn arb_json(state: &mut u64, depth: usize) -> JsonValue {
        let choices = if depth >= 3 { 5 } else { 7 };
        match mix(state) % choices {
            0 => JsonValue::Null,
            1 => JsonValue::Bool(mix(state) & 1 == 1),
            2 => JsonValue::Number(arb_f64(state)),
            3 => JsonValue::Number((mix(state) % 1_000_000) as f64),
            4 => JsonValue::String(arb_string(state)),
            5 => {
                let n = (mix(state) % 5) as usize;
                JsonValue::Array((0..n).map(|_| arb_json(state, depth + 1)).collect())
            }
            _ => {
                let n = (mix(state) % 5) as usize;
                JsonValue::Object(
                    (0..n)
                        .map(|_| (arb_string(state), arb_json(state, depth + 1)))
                        .collect(),
                )
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// parse ∘ render ≡ identity over arbitrary finite JSON trees —
        /// the property the artifact round-trip rests on.
        #[test]
        fn parse_render_identity(seed in any::<u64>()) {
            let mut state = seed;
            let v = arb_json(&mut state, 0);
            let compact = JsonValue::parse(&v.render()).unwrap();
            prop_assert_eq!(&compact, &v);
            let pretty = JsonValue::parse(&v.render_pretty()).unwrap();
            prop_assert_eq!(&pretty, &v);
        }

        /// Every finite f64 — including subnormals — survives the text
        /// round-trip bit-exactly.
        #[test]
        fn float_round_trip(bits in any::<u64>()) {
            let x = f64::from_bits(bits);
            prop_assume!(x.is_finite());
            let back: f64 = from_str(&x.to_json().render()).unwrap();
            prop_assert_eq!(back.to_bits(), x.to_bits());
        }

        /// The parser never panics on arbitrary near-JSON garbage.
        #[test]
        fn parser_total_on_garbage(seed in any::<u64>()) {
            const POOL: &[char] = &[
                '{', '}', '[', ']', '"', ':', ',', '-', '.', 'e', '1', '0',
                'n', 't', 'f', '\\', 'u', ' ', 'é',
            ];
            let mut state = seed;
            let len = (mix(&mut state) % 48) as usize;
            let text: String = (0..len)
                .map(|_| POOL[(mix(&mut state) as usize) % POOL.len()])
                .collect();
            let _ = JsonValue::parse(&text);
        }
    }
}
