use serde::{Deserialize, Serialize};

use crate::error::TheoryError;
use crate::measurement::{BeMeasurement, LcMeasurement, QosElasticity};

/// The relative importance `RI` of LC applications over BE applications
/// (Eq. 7). Valid range is `[0, 1]`; the paper notes that when resources are
/// insufficient the practically useful range narrows to `[0.5, 1]`, and all
/// of its experiments use `0.8`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RelativeImportance(f64);

impl RelativeImportance {
    /// The paper's setting, `RI = 0.8`.
    pub const PAPER: RelativeImportance = RelativeImportance(0.8);

    /// `RI = 1`: only LC applications matter (LC-only datacenter).
    pub const LC_ONLY: RelativeImportance = RelativeImportance(1.0);

    /// `RI = 0`: only BE applications matter (classic HPC).
    pub const BE_ONLY: RelativeImportance = RelativeImportance(0.0);

    /// Creates a relative importance in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`TheoryError::OutOfRange`] outside `[0, 1]`.
    pub fn new(value: f64) -> Result<Self, TheoryError> {
        if value.is_finite() && (0.0..=1.0).contains(&value) {
            Ok(Self(value))
        } else {
            Err(TheoryError::OutOfRange {
                what: "relative importance",
                value,
                min: 0.0,
                max: 1.0,
            })
        }
    }

    /// The weight as a plain fraction.
    pub fn value(&self) -> f64 {
        self.0
    }
}

impl Default for RelativeImportance {
    fn default() -> Self {
        Self::PAPER
    }
}

/// Per-LC-application breakdown inside an [`EntropyReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LcAppReport {
    /// Application name.
    pub name: String,
    /// Interference tolerance `A_i`.
    pub tolerance: f64,
    /// Suffered interference `R_i`.
    pub interference: f64,
    /// Remaining tolerance `ReT_i`.
    pub remaining_tolerance: f64,
    /// Intolerable interference `Q_i`.
    pub intolerable: f64,
    /// Whether the QoS target is met under the configured elasticity.
    pub satisfied: bool,
}

/// The result of evaluating the system entropy over one set of measurements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EntropyReport {
    /// LC entropy `E_LC` (Eq. 5); `0` when no LC application is present.
    pub lc: f64,
    /// BE entropy `E_BE` (Eq. 6); `0` when no BE application is present.
    pub be: f64,
    /// System entropy `E_S` (Eq. 7).
    pub system: f64,
    /// The fraction of LC applications whose QoS target is satisfied
    /// (the paper's *yield*); `1.0` when no LC application is present.
    pub yield_fraction: f64,
    /// Per-LC-application details, in input order.
    pub lc_apps: Vec<LcAppReport>,
}

/// Evaluates the system entropy of a set of measurements.
///
/// The model is configured once with a [`RelativeImportance`] and a
/// [`QosElasticity`] and can then score any number of measurement sets —
/// exactly how the ARQ scheduler uses it as a feedback signal each
/// monitoring window.
///
/// ```
/// use ahq_core::{EntropyModel, LcMeasurement, RelativeImportance};
///
/// # fn main() -> Result<(), ahq_core::TheoryError> {
/// let model = EntropyModel::default();
/// let lc = vec![LcMeasurement::new("silo", 0.5, 0.6, 1.27)?];
/// let report = model.evaluate(&lc, &[]);
/// assert_eq!(report.lc, 0.0); // within tolerance
/// assert_eq!(report.yield_fraction, 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EntropyModel {
    relative_importance: RelativeImportance,
    elasticity: QosElasticity,
}

impl EntropyModel {
    /// Creates a model with the given relative importance and the paper's
    /// 5 % QoS elasticity.
    pub fn new(relative_importance: RelativeImportance) -> Self {
        Self {
            relative_importance,
            elasticity: QosElasticity::PAPER,
        }
    }

    /// Overrides the QoS elasticity used for the yield computation.
    pub fn with_elasticity(mut self, elasticity: QosElasticity) -> Self {
        self.elasticity = elasticity;
        self
    }

    /// The configured relative importance.
    pub fn relative_importance(&self) -> RelativeImportance {
        self.relative_importance
    }

    /// The configured QoS elasticity.
    pub fn elasticity(&self) -> QosElasticity {
        self.elasticity
    }

    /// LC entropy `E_LC` (Eq. 5): the mean intolerable interference.
    /// Returns `0` for an empty slice (scenario without LC applications).
    pub fn lc_entropy(&self, lc: &[LcMeasurement]) -> f64 {
        if lc.is_empty() {
            return 0.0;
        }
        lc.iter().map(LcMeasurement::intolerable).sum::<f64>() / lc.len() as f64
    }

    /// BE entropy `E_BE` (Eq. 6): one minus the harmonic mean of the
    /// speed ratios — equivalently `1 - M / sum(slowdown_i)`.
    /// Returns `0` for an empty slice (scenario without BE applications).
    pub fn be_entropy(&self, be: &[BeMeasurement]) -> f64 {
        if be.is_empty() {
            return 0.0;
        }
        let sum: f64 = be.iter().map(BeMeasurement::slowdown).sum();
        1.0 - be.len() as f64 / sum
    }

    /// Full evaluation: `E_LC`, `E_BE`, `E_S`, yield and per-app details.
    ///
    /// The three scenarios of §II-B fall out naturally: with only LC
    /// applications `E_S` uses `RI` against a zero `E_BE` term; callers who
    /// want the paper's "pure" scenario semantics (`E_S = E_LC`) should use
    /// [`RelativeImportance::LC_ONLY`] / [`RelativeImportance::BE_ONLY`],
    /// or rely on [`EntropyModel::evaluate_auto`] which selects them
    /// automatically when one population is empty.
    pub fn evaluate(&self, lc: &[LcMeasurement], be: &[BeMeasurement]) -> EntropyReport {
        let e_lc = self.lc_entropy(lc);
        let e_be = self.be_entropy(be);
        let ri = self.relative_importance.value();
        let satisfied = lc.iter().filter(|m| m.meets_qos(self.elasticity)).count();
        let yield_fraction = if lc.is_empty() {
            1.0
        } else {
            satisfied as f64 / lc.len() as f64
        };
        let lc_apps = lc
            .iter()
            .map(|m| LcAppReport {
                name: m.name().to_owned(),
                tolerance: m.tolerance(),
                interference: m.interference(),
                remaining_tolerance: m.remaining_tolerance(),
                intolerable: m.intolerable(),
                satisfied: m.meets_qos(self.elasticity),
            })
            .collect();
        EntropyReport {
            lc: e_lc,
            be: e_be,
            system: ri * e_lc + (1.0 - ri) * e_be,
            yield_fraction,
            lc_apps,
        }
    }

    /// Like [`EntropyModel::evaluate`], but when exactly one population is
    /// empty the relative importance degenerates as the paper prescribes:
    /// `RI = 1` for LC-only mixes and `RI = 0` for BE-only mixes, so that
    /// `E_S` equals `E_LC` (resp. `E_BE`) exactly.
    pub fn evaluate_auto(&self, lc: &[LcMeasurement], be: &[BeMeasurement]) -> EntropyReport {
        let effective = match (lc.is_empty(), be.is_empty()) {
            (false, true) => Self {
                relative_importance: RelativeImportance::LC_ONLY,
                elasticity: self.elasticity,
            },
            (true, false) => Self {
                relative_importance: RelativeImportance::BE_ONLY,
                elasticity: self.elasticity,
            },
            _ => *self,
        };
        effective.evaluate(lc, be)
    }
}

impl Default for EntropyModel {
    fn default() -> Self {
        Self::new(RelativeImportance::PAPER)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table2(cores: u32) -> (Vec<LcMeasurement>, Vec<BeMeasurement>) {
        // Table II of the paper: (TL_i0, TL_i1, M_i) per core count.
        let rows: &[(&str, f64, f64, f64)] = match cores {
            6 => &[
                ("xapian", 2.77, 23.99, 4.22),
                ("moses", 2.80, 16.54, 10.53),
                ("img-dnn", 1.41, 14.35, 3.98),
            ],
            7 => &[
                ("xapian", 2.77, 7.13, 4.22),
                ("moses", 2.80, 6.78, 10.53),
                ("img-dnn", 1.41, 5.65, 3.98),
            ],
            8 => &[
                ("xapian", 2.77, 4.18, 4.22),
                ("moses", 2.80, 4.43, 10.53),
                ("img-dnn", 1.41, 3.53, 3.98),
            ],
            _ => unreachable!(),
        };
        let lc = rows
            .iter()
            .map(|&(n, i, o, t)| LcMeasurement::new(n, i, o, t).unwrap())
            .collect();
        (lc, Vec::new())
    }

    #[test]
    fn table2_lc_entropy_matches_paper() {
        let model = EntropyModel::default();
        let (lc6, _) = table2(6);
        let (lc7, _) = table2(7);
        let (lc8, _) = table2(8);
        assert!((model.lc_entropy(&lc6) - 0.64).abs() < 0.01);
        assert!((model.lc_entropy(&lc7) - 0.23).abs() < 0.01);
        assert_eq!(model.lc_entropy(&lc8), 0.0);
    }

    #[test]
    fn table2_system_entropy_with_be_term() {
        // 6-core row: E_LC = 0.64, E_BE = 0.20 -> E_S = 0.55 (paper).
        let model = EntropyModel::default();
        let (lc6, _) = table2(6);
        // Reverse-engineer a BE measurement with slowdown 1.25 (E_BE = 0.2).
        let be = vec![BeMeasurement::new("fluidanimate", 1.25, 1.0).unwrap()];
        let report = model.evaluate(&lc6, &be);
        assert!((report.be - 0.20).abs() < 1e-9);
        assert!((report.system - 0.55).abs() < 0.01);
    }

    #[test]
    fn empty_inputs_yield_zero_entropy() {
        let model = EntropyModel::default();
        let report = model.evaluate(&[], &[]);
        assert_eq!(report.lc, 0.0);
        assert_eq!(report.be, 0.0);
        assert_eq!(report.system, 0.0);
        assert_eq!(report.yield_fraction, 1.0);
    }

    #[test]
    fn evaluate_auto_degenerates_ri() {
        let model = EntropyModel::default();
        let lc = vec![LcMeasurement::new("a", 1.0, 8.0, 2.0).unwrap()];
        let auto = model.evaluate_auto(&lc, &[]);
        assert_eq!(auto.system, auto.lc); // RI forced to 1
        let be = vec![BeMeasurement::new("b", 2.0, 1.0).unwrap()];
        let auto = model.evaluate_auto(&[], &be);
        assert_eq!(auto.system, auto.be); // RI forced to 0
    }

    #[test]
    fn zero_lc_apps_scores_be_only() {
        // The cluster aggregator hits this whenever a node hosts only
        // batch work: E_LC must be exactly zero and yield must be perfect.
        let model = EntropyModel::default();
        let be = vec![
            BeMeasurement::new("a", 2.0, 1.0).unwrap(), // slowdown 2
            BeMeasurement::new("b", 2.0, 1.0).unwrap(),
        ];
        let report = model.evaluate(&[], &be);
        assert_eq!(report.lc, 0.0);
        assert!((report.be - 0.5).abs() < 1e-12);
        // evaluate keeps the configured RI = 0.8: E_S = 0.2 * E_BE.
        assert!((report.system - 0.1).abs() < 1e-12);
        assert_eq!(report.yield_fraction, 1.0);
        assert!(report.lc_apps.is_empty());
        // evaluate_auto degenerates RI to 0: E_S = E_BE exactly.
        let auto = model.evaluate_auto(&[], &be);
        assert_eq!(auto.system, auto.be);
    }

    #[test]
    fn zero_be_apps_scores_lc_only() {
        // An LC-only node: E_BE must be exactly zero.
        let model = EntropyModel::default();
        let lc = vec![LcMeasurement::new("a", 1.0, 8.0, 2.0).unwrap()];
        let report = model.evaluate(&lc, &[]);
        assert_eq!(report.be, 0.0);
        assert!(report.lc > 0.0);
        // evaluate keeps RI = 0.8: E_S = 0.8 * E_LC.
        assert!((report.system - 0.8 * report.lc).abs() < 1e-12);
        // evaluate_auto degenerates RI to 1: E_S = E_LC exactly.
        let auto = model.evaluate_auto(&lc, &[]);
        assert_eq!(auto.system, auto.lc);
    }

    #[test]
    fn both_empty_is_the_idle_node_case() {
        // An idle cluster node contributes exactly zero entropy and a
        // perfect yield, under both evaluate and evaluate_auto.
        for report in [
            EntropyModel::default().evaluate(&[], &[]),
            EntropyModel::default().evaluate_auto(&[], &[]),
        ] {
            assert_eq!(report.lc, 0.0);
            assert_eq!(report.be, 0.0);
            assert_eq!(report.system, 0.0);
            assert_eq!(report.yield_fraction, 1.0);
            assert!(report.lc_apps.is_empty());
        }
    }

    #[test]
    fn ri_extremes_select_one_population() {
        let lc = vec![LcMeasurement::new("lc", 1.0, 8.0, 2.0).unwrap()];
        let be = vec![BeMeasurement::new("be", 4.0, 1.0).unwrap()]; // slowdown 4
        let lc_only = EntropyModel::new(RelativeImportance::LC_ONLY).evaluate(&lc, &be);
        assert_eq!(lc_only.system, lc_only.lc);
        assert!(lc_only.be > 0.0, "E_BE is still reported, just unweighted");
        let be_only = EntropyModel::new(RelativeImportance::BE_ONLY).evaluate(&lc, &be);
        assert_eq!(be_only.system, be_only.be);
        assert!(be_only.lc > 0.0);
        // With both populations present evaluate_auto must NOT degenerate.
        let auto = EntropyModel::default().evaluate_auto(&lc, &be);
        assert!((auto.system - (0.8 * auto.lc + 0.2 * auto.be)).abs() < 1e-12);
    }

    #[test]
    fn yield_counts_elastic_satisfaction() {
        let model = EntropyModel::default();
        let lc = vec![
            LcMeasurement::new("ok", 1.0, 1.5, 2.0).unwrap(),
            LcMeasurement::new("elastic", 1.0, 2.04, 2.0).unwrap(), // within 5 %
            LcMeasurement::new("violating", 1.0, 3.0, 2.0).unwrap(),
        ];
        let report = model.evaluate(&lc, &[]);
        assert!((report.yield_fraction - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn be_entropy_uses_harmonic_aggregation() {
        let model = EntropyModel::default();
        let be = vec![
            BeMeasurement::new("a", 2.0, 1.0).unwrap(), // slowdown 2
            BeMeasurement::new("b", 3.0, 1.0).unwrap(), // slowdown 3
        ];
        // E_BE = 1 - 2 / (2 + 3) = 0.6.
        assert!((model.be_entropy(&be) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn relative_importance_validation() {
        assert!(RelativeImportance::new(1.5).is_err());
        assert!(RelativeImportance::new(-0.1).is_err());
        assert!(RelativeImportance::new(f64::INFINITY).is_err());
        assert_eq!(
            RelativeImportance::new(0.8).unwrap(),
            RelativeImportance::PAPER
        );
        assert_eq!(RelativeImportance::default().value(), 0.8);
    }

    #[test]
    fn report_lists_apps_in_input_order() {
        let model = EntropyModel::default();
        let lc = vec![
            LcMeasurement::new("first", 1.0, 1.2, 2.0).unwrap(),
            LcMeasurement::new("second", 1.0, 1.2, 2.0).unwrap(),
        ];
        let report = model.evaluate(&lc, &[]);
        assert_eq!(report.lc_apps[0].name, "first");
        assert_eq!(report.lc_apps[1].name, "second");
    }
}
