//! The `train` / `replay` experiment families: offline policy search
//! over placement weights and ARQ thresholds (`ahq-train`), and the
//! replay of an emitted policy artifact against the static incumbent
//! on churned fleets the search never saw.
//!
//! `repro train` runs the seeded GA (plus GP/EI refinement) over the
//! default scenario portfolio, reports the training curve and the
//! learned genome, and with `--train-out FILE` saves the winner as a
//! [`PolicyArtifact`]. `repro replay` loads `--artifact FILE` (or, with
//! no artifact, trains in-process) and compares it against hand-tuned
//! `entropy-aware` + default ARQ at 64/256 churned nodes.
//!
//! Both families evaluate through the invocation-wide engine: node jobs
//! shared between candidate genomes (and with the `cluster`/`gctrl`
//! families) hit the memoized run cache, and `--jobs N` never changes a
//! byte of output. Neither family is part of `repro all` — they ride
//! [`crate::extra_experiments`] like `gctrl`.

use std::path::PathBuf;

use ahq_cluster::{ClusterEntropyReport, ClusterSim, LocalSched, PlacerKind};
use ahq_train::{
    portfolio::default_portfolio, Genome, PolicyArtifact, TrainConfig, TrainOutcome, GENE_NAMES,
};

use crate::cluster::{scenario, EngineRunner};
use crate::exec::ExpContext;
use crate::report::{f3, ExperimentReport, Metric, TextTable};

/// Command-line overrides for the train/replay families — the
/// `repro train --pop N --gens N --train-out FILE --artifact FILE`
/// surface.
#[derive(Debug, Clone, Default)]
pub struct TrainOpts {
    /// GA population-size override.
    pub population: Option<usize>,
    /// GA generation-count override.
    pub generations: Option<usize>,
    /// Where `train` saves the policy artifact (`--train-out`).
    pub out: Option<PathBuf>,
    /// The artifact `replay` loads (`--artifact`); falls back to
    /// `--train-out`, then to training in-process.
    pub artifact: Option<PathBuf>,
    /// `--eval full|ladder`: force every genome through full-fidelity
    /// evaluation (`Some(false)`) or through the successive-halving
    /// screening ladder (`Some(true)`). `None` keeps the trainer's
    /// default (the ladder).
    pub ladder: Option<bool>,
}

/// The search configuration for this invocation: the default portfolio
/// under the invocation seed, budget shrunk in `--quick` mode, with
/// `--pop` / `--gens` overrides applied on top.
pub fn train_config(cfg: &ExpContext) -> TrainConfig {
    let mut config = TrainConfig::new(cfg.cfg.seed, default_portfolio(cfg.cfg.seed, cfg.cfg.quick));
    if cfg.cfg.quick {
        config.population = 6;
        config.generations = 3;
        config.refine_iters = 3;
        config.refine_candidates = 8;
    }
    if let Some(population) = cfg.train.population {
        config.population = population.max(2);
    }
    if let Some(generations) = cfg.train.generations {
        config.generations = generations.max(1);
    }
    match cfg.train.ladder {
        Some(false) => config.ladder = None,
        Some(true) => config.ladder = Some(ahq_train::LadderSpec::default()),
        None => {}
    }
    config
}

/// Runs the offline search through the invocation engine.
pub fn run_search(cfg: &ExpContext) -> TrainOutcome {
    ahq_train::train(&train_config(cfg), &EngineRunner::new(cfg.engine()))
}

/// Regenerates the offline-search report (and saves the artifact when
/// `--train-out` is set).
pub fn run(cfg: &ExpContext) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "train",
        "Offline policy search: GA + GP/EI over placement and ARQ knobs",
    );
    let before = cfg.engine().stats();
    let outcome = run_search(cfg);
    let after = cfg.engine().stats();
    let artifact = &outcome.artifact;

    let mut curve = TextTable::new(
        "Training curve: scalarized fitness by generation (lower is better)",
        &["generation", "best", "mean"],
    );
    for stat in &artifact.history {
        curve.push_row(vec![
            stat.generation.to_string(),
            f3(stat.best),
            f3(stat.mean),
        ]);
    }
    report.tables.push(curve);

    let mut genes = TextTable::new(
        "Learned genome vs the hand-tuned incumbent",
        &["gene", "incumbent", "learned"],
    );
    let incumbent = Genome::default().to_vec();
    let learned = artifact.genome.to_vec();
    for (i, name) in GENE_NAMES.iter().enumerate() {
        genes.push_row(vec![name.to_string(), f3(incumbent[i]), f3(learned[i])]);
    }
    report.tables.push(genes);

    report.note(format!(
        "portfolio [{}], population {}, generations {}{}",
        artifact.portfolio.join(", "),
        artifact.population,
        artifact.generations,
        if artifact.refined {
            " + GP/EI refinement"
        } else {
            ""
        },
    ));
    report.note(format!(
        "trained fitness: mean E_S {} p95 {} viol/win {} migr/round {} (scalar {})",
        f3(artifact.fitness.mean_es),
        f3(artifact.fitness.p95_es),
        f3(artifact.fitness.violations),
        f3(artifact.fitness.migration_cost),
        f3(artifact.fitness.scalar()),
    ));
    report.note(format!(
        "baseline fitness: mean E_S {} p95 {} viol/win {} migr/round {} (scalar {})",
        f3(artifact.baseline.mean_es),
        f3(artifact.baseline.p95_es),
        f3(artifact.baseline.violations),
        f3(artifact.baseline.migration_cost),
        f3(artifact.baseline.scalar()),
    ));
    let hits = after.hits - before.hits;
    let misses = after.misses - before.misses;
    let hit_rate = if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    };
    report.note(format!(
        "{} genome evaluations ({} unique); engine run cache over the search: \
         {hits} hits / {misses} misses ({:.1} % hit rate — shared node jobs \
         across candidates are free)",
        outcome.evaluations,
        outcome.unique_genomes,
        hit_rate * 100.0,
    ));
    report.metrics.push(Metric {
        name: "train_cache_hit_rate".into(),
        value: hit_rate,
    });
    report.metrics.push(Metric {
        name: "train_unique_genomes".into(),
        value: outcome.unique_genomes as f64,
    });
    if artifact.ladder {
        report.note(format!(
            "evaluation ladder: {} full-fidelity evaluations + {} cheap \
             screening evaluations (full fidelity reserved for promoted \
             candidates)",
            outcome.full_evaluations, outcome.screen_evaluations,
        ));
    }
    report.metrics.push(Metric {
        name: "train_full_evaluations".into(),
        value: outcome.full_evaluations as f64,
    });
    report.metrics.push(Metric {
        name: "train_screen_evaluations".into(),
        value: outcome.screen_evaluations as f64,
    });

    if let Some(path) = &cfg.train.out {
        match artifact.save(path) {
            Ok(()) => report.note(format!("policy artifact saved to {}", path.display())),
            Err(e) => report.note(format!("FAILED to save policy artifact: {e}")),
        }
    }
    report
}

/// The genome `replay` compares against the incumbent: the `--artifact`
/// file if given (`--train-out` as fallback), else a fresh in-process
/// search. Returns the genome and a provenance note.
fn replay_genome(cfg: &ExpContext) -> Result<(Genome, String), String> {
    if let Some(path) = cfg.train.artifact.as_ref().or(cfg.train.out.as_ref()) {
        let artifact = PolicyArtifact::load(path)
            .map_err(|e| format!("cannot load {}: {e}", path.display()))?;
        Ok((
            artifact.genome,
            format!(
                "policy loaded from {} (seed {}, portfolio [{}])",
                path.display(),
                artifact.seed,
                artifact.portfolio.join(", "),
            ),
        ))
    } else {
        let outcome = run_search(cfg);
        Ok((
            outcome.artifact.genome,
            "no --artifact given; policy trained in-process".to_string(),
        ))
    }
}

/// Fleet sizes for the replay: the churned 64- and 256-node scenarios
/// (64 only under `--quick`), or the single `--nodes N` override.
fn node_counts(cfg: &ExpContext) -> Vec<usize> {
    if let Some(nodes) = cfg.cluster.nodes {
        return vec![nodes];
    }
    if cfg.cfg.quick {
        vec![64]
    } else {
        vec![64, 256]
    }
}

/// Runs one replay arm: the standard churned scenario with either the
/// incumbent policy (`genome == None`) or the trained one swapped in.
pub fn run_replay_arm(
    cfg: &ExpContext,
    nodes: usize,
    genome: Option<&Genome>,
) -> ClusterEntropyReport {
    let mut config = scenario(&cfg.cfg, nodes, PlacerKind::EntropyAware, LocalSched::Arq);
    config.fidelity = cfg.cluster.fidelity;
    if let Some(rounds) = cfg.cluster.rounds {
        config.rounds = rounds;
    }
    if let Some(genome) = genome {
        config.arq = Some(genome.arq_config());
    }
    let mut sim = ClusterSim::new(config);
    if let Some(genome) = genome {
        sim.set_placer(Box::new(genome.placer()));
    }
    sim.run(&EngineRunner::new(cfg.engine()))
}

/// Regenerates the artifact-replay comparison.
pub fn run_replay(cfg: &ExpContext) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "replay",
        "Policy replay: trained artifact vs static entropy-aware + default ARQ",
    );
    let (genome, provenance) = match replay_genome(cfg) {
        Ok(pair) => pair,
        Err(e) => {
            report.note(format!("REPLAY SKIPPED: {e}"));
            return report;
        }
    };
    report.note(provenance);

    let mut table = TextTable::new(
        "Replay on churned fleets: steady-state cluster E_S by policy",
        &[
            "nodes",
            "arm",
            "mean E_S",
            "steady E_S",
            "steady p95",
            "viol",
            "migr",
        ],
    );
    for nodes in node_counts(cfg) {
        let arms: [(&str, Option<&Genome>); 2] = [("hand-tuned", None), ("trained", Some(&genome))];
        let mut steady: Vec<(f64, f64)> = Vec::new();
        for (name, arm_genome) in arms {
            let result = run_replay_arm(cfg, nodes, arm_genome);
            let n = (result.rounds * result.windows_per_round) / 2;
            table.push_row(vec![
                nodes.to_string(),
                name.into(),
                f3(result.mean_entropy()),
                f3(result.steady_mean_entropy(n)),
                f3(result.steady_p95_entropy(n)),
                result.violations.to_string(),
                result.migrations.to_string(),
            ]);
            steady.push((result.steady_mean_entropy(n), result.steady_p95_entropy(n)));
        }
        let (base, base95) = steady[0];
        let (trained, trained95) = steady[1];
        report.note(format!(
            "{nodes} nodes: trained steady E_S {trained:.3} (p95 {trained95:.3}) \
             vs hand-tuned {base:.3} (p95 {base95:.3}){}",
            if trained <= base { "" } else { " [WORSE]" },
        ));
    }
    report.tables.push(table);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runs::ExpConfig;

    fn quick_cfg() -> ExpContext {
        ExpContext::new(ExpConfig {
            quick: true,
            seed: 42,
        })
    }

    fn tiny_train(cfg: &mut ExpContext) {
        cfg.train.population = Some(4);
        cfg.train.generations = Some(2);
    }

    #[test]
    fn quick_train_report_has_curve_genome_and_cache_note() {
        let mut cfg = quick_cfg();
        tiny_train(&mut cfg);
        let report = run(&cfg);
        assert_eq!(report.tables.len(), 2);
        assert_eq!(report.tables[1].rows.len(), GENE_NAMES.len());
        assert!(report
            .metrics
            .iter()
            .any(|m| m.name == "train_cache_hit_rate"));
        assert!(report.notes.iter().any(|n| n.contains("baseline fitness")));
    }

    #[test]
    fn replay_without_artifact_trains_in_process() {
        let mut cfg = quick_cfg();
        tiny_train(&mut cfg);
        cfg.cluster.nodes = Some(8);
        cfg.cluster.rounds = Some(3);
        let report = run_replay(&cfg);
        assert_eq!(report.tables.len(), 1);
        assert_eq!(report.tables[0].rows.len(), 2, "two arms at one size");
        assert!(report.notes.iter().any(|n| n.contains("in-process")));
    }

    #[test]
    fn replay_with_missing_artifact_reports_the_error() {
        let mut cfg = quick_cfg();
        cfg.train.artifact = Some(PathBuf::from("/nonexistent/policy.json"));
        let report = run_replay(&cfg);
        assert!(report.tables.is_empty());
        assert!(report.notes.iter().any(|n| n.contains("REPLAY SKIPPED")));
    }

    #[test]
    fn eval_mode_override_controls_the_ladder() {
        let mut cfg = quick_cfg();
        assert!(train_config(&cfg).ladder.is_some(), "ladder is the default");
        cfg.train.ladder = Some(false);
        assert!(train_config(&cfg).ladder.is_none(), "--eval full");
        cfg.train.ladder = Some(true);
        assert!(train_config(&cfg).ladder.is_some(), "--eval ladder");
    }

    #[test]
    fn overrides_shape_the_search_budget() {
        let mut cfg = quick_cfg();
        cfg.train.population = Some(7);
        cfg.train.generations = Some(2);
        let config = train_config(&cfg);
        assert_eq!(config.population, 7);
        assert_eq!(config.generations, 2);
        assert_eq!(config.portfolio.len(), 2, "quick portfolio");
    }
}
