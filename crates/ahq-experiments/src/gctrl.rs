//! The `gctrl` experiment family: the hierarchical cluster-level ARQ
//! control plane (`ahq-ctrl`) under workload churn.
//!
//! Four arms per fleet size, isolating each layer's contribution:
//!
//! | arm | placer | controller |
//! |---|---|---|
//! | `least-loaded` | load spreading | none |
//! | `entropy-aware` | static entropy-aware weights | none |
//! | `ctrl` | static entropy-aware weights | global ARQ migrations |
//! | `ctrl+learned` | tunable weights | global ARQ + GP weight learning |
//!
//! The family is *not* part of `repro all` — it rides the
//! [`crate::extra_experiments`] registry so the pinned `repro all` output
//! stays byte-identical — but runs under the same deterministic engine:
//! `repro gctrl --jobs N` is byte-identical for any `N`.

use ahq_cluster::{ClusterEntropyReport, ClusterSim, LocalSched, PlacerKind};
use ahq_ctrl::{CtrlConfig, GlobalArq, TuneConfig};

use crate::cluster::{scenario, EngineRunner};
use crate::exec::ExpContext;
use crate::report::{f3, ExperimentReport, TextTable};

/// One experiment arm: a placement policy with an optional controller.
#[derive(Debug, Clone, PartialEq)]
pub struct Arm {
    /// Arm label in the report.
    pub name: &'static str,
    /// Placement policy of the arm.
    pub placer: PlacerKind,
    /// Controller configuration; `None` runs the placer alone.
    pub ctrl: Option<CtrlConfig>,
}

/// The four arms, in ablation order.
pub fn arms() -> Vec<Arm> {
    vec![
        Arm {
            name: "least-loaded",
            placer: PlacerKind::LeastLoaded,
            ctrl: None,
        },
        Arm {
            name: "entropy-aware",
            placer: PlacerKind::EntropyAware,
            ctrl: None,
        },
        Arm {
            name: "ctrl",
            placer: PlacerKind::EntropyAware,
            ctrl: Some(CtrlConfig::default()),
        },
        Arm {
            name: "ctrl+learned",
            placer: PlacerKind::Learned,
            ctrl: Some(CtrlConfig {
                tune: Some(TuneConfig::default()),
                ..CtrlConfig::default()
            }),
        },
    ]
}

/// Fleet sizes: the churned 64- and 256-node scenarios (64 only under
/// `--quick`), or the single `--nodes N` override.
fn node_counts(cfg: &ExpContext) -> Vec<usize> {
    if let Some(nodes) = cfg.cluster.nodes {
        return vec![nodes];
    }
    if cfg.cfg.quick {
        vec![64]
    } else {
        vec![64, 256]
    }
}

/// Rounds per run. The controller needs history before its first move and
/// multiple tuning epochs to learn, so this family runs longer horizons
/// than the `cluster` grid; `--rounds` overrides.
fn rounds(cfg: &ExpContext) -> usize {
    if let Some(rounds) = cfg.cluster.rounds {
        return rounds;
    }
    if cfg.cfg.quick {
        12
    } else {
        24
    }
}

/// Runs one arm at one fleet size.
pub fn run_arm(cfg: &ExpContext, nodes: usize, arm: &Arm) -> ClusterEntropyReport {
    let mut config = scenario(&cfg.cfg, nodes, arm.placer, LocalSched::Arq);
    config.fidelity = cfg.cluster.fidelity;
    config.rounds = rounds(cfg);
    let mut sim = ClusterSim::new(config);
    if let Some(ctrl) = &arm.ctrl {
        sim.set_controller(Box::new(GlobalArq::new(ctrl.clone())));
    }
    sim.run(&EngineRunner::new(cfg.engine()))
}

/// Steady-state windows of an arm's run: the last half.
fn steady_windows(cfg: &ExpContext, nodes: usize) -> usize {
    let config = scenario(&cfg.cfg, nodes, PlacerKind::EntropyAware, LocalSched::Arq);
    (rounds(cfg) * config.windows_per_round) / 2
}

/// Regenerates the controller comparison.
pub fn run(cfg: &ExpContext) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "gctrl",
        "Global controller: cluster-level ARQ control plane under churn",
    );
    let mut table = TextTable::new(
        "Controller arms: steady-state cluster E_S and migration cost by fleet size",
        &[
            "nodes",
            "arm",
            "mean E_S",
            "steady E_S",
            "steady p95",
            "viol",
            "migr",
            "ctrl migr",
            "rollbacks",
            "cold",
            "warm win",
        ],
    );
    let mut steady: Vec<(usize, &'static str, f64, f64)> = Vec::new();
    for nodes in node_counts(cfg) {
        let n = steady_windows(cfg, nodes);
        for arm in arms() {
            let result = run_arm(cfg, nodes, &arm);
            table.push_row(vec![
                nodes.to_string(),
                arm.name.into(),
                f3(result.mean_entropy()),
                f3(result.steady_mean_entropy(n)),
                f3(result.steady_p95_entropy(n)),
                result.violations.to_string(),
                result.migrations.to_string(),
                result.ctrl_migrations.to_string(),
                result.ctrl_rollbacks.to_string(),
                result.cold_starts.to_string(),
                result.warmup_windows.to_string(),
            ]);
            steady.push((
                nodes,
                arm.name,
                result.steady_mean_entropy(n),
                result.steady_p95_entropy(n),
            ));
        }
    }
    report.tables.push(table);

    for nodes in node_counts(cfg) {
        let pick = |name: &str| -> Option<(f64, f64)> {
            steady
                .iter()
                .find(|(n, a, _, _)| *n == nodes && *a == name)
                .map(|(_, _, mean, p95)| (*mean, *p95))
        };
        if let (Some((base, base95)), Some((learned, learned95))) =
            (pick("entropy-aware"), pick("ctrl+learned"))
        {
            report.note(format!(
                "{nodes} nodes: ctrl+learned steady E_S {learned:.3} (p95 {learned95:.3}) \
                 vs static entropy-aware {base:.3} (p95 {base95:.3})"
            ));
        }
    }
    report.note(
        "The controller mirrors node-level ARQ one layer up: speculative hot-to-cool \
         migrations, entropy-feedback rollback with a donor cooldown, and GP-learned \
         placement weights. LC moves charge a cold-start warm-up ('cold'/'warm win' \
         columns), so the controller must earn back its disturbance."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runs::ExpConfig;

    fn quick_cfg() -> ExpContext {
        ExpContext::new(ExpConfig {
            quick: true,
            seed: 42,
        })
    }

    #[test]
    fn four_arms_cover_the_ablation() {
        let arms = arms();
        assert_eq!(arms.len(), 4);
        assert!(arms.iter().filter(|a| a.ctrl.is_some()).count() == 2);
        assert_eq!(arms[3].placer, PlacerKind::Learned);
        assert!(arms[3].ctrl.as_ref().is_some_and(|c| c.tune.is_some()));
    }

    #[test]
    fn controller_arm_reports_its_activity() {
        let mut cfg = quick_cfg();
        cfg.cluster.nodes = Some(16);
        cfg.cluster.rounds = Some(8);
        let ctrl_arm = arms().into_iter().find(|a| a.name == "ctrl").unwrap();
        let result = run_arm(&cfg, 16, &ctrl_arm);
        assert_eq!(result.controller.as_deref(), Some("global-arq"));
        assert!(
            result.ctrl_migrations > 0,
            "a churned 16-node fleet gives the controller work"
        );
    }

    #[test]
    fn report_has_table_and_notes() {
        let mut cfg = quick_cfg();
        cfg.cluster.nodes = Some(8);
        cfg.cluster.rounds = Some(6);
        let report = run(&cfg);
        assert_eq!(report.tables.len(), 1);
        assert_eq!(report.tables[0].rows.len(), 4, "one row per arm");
        assert!(!report.notes.is_empty());
    }
}
