//! Table IV: the LC applications' QoS thresholds and maximum loads.
//!
//! Thresholds are taken verbatim from the paper; maximum loads are the
//! simulator's calibrated knees (the QPS at which the solo p95 crosses the
//! threshold on the full machine, per the Fig. 7 methodology), reported
//! next to the paper's hardware values.

use ahq_workloads::profiles::{self, paper_max_load_qps};

use crate::exec::ExpContext;
use crate::report::{f2, ExperimentReport, TextTable};

/// Regenerates Table IV.
pub fn run(_cfg: &ExpContext) -> ExperimentReport {
    let mut report = ExperimentReport::new("table4", "Table IV: LC application parameters");
    let mut table = TextTable::new(
        "QoS thresholds and max loads",
        &[
            "app",
            "threshold (ms)",
            "max load (sim QPS)",
            "max load (paper QPS)",
            "ratio",
            "TL_i0 (ms)",
            "tolerance A_i",
        ],
    );
    for spec in profiles::all_lc() {
        let (paper_qos, paper_load) = paper_max_load_qps(spec.name()).expect("paper row");
        let qos = spec.qos_threshold_ms().expect("LC app");
        assert_eq!(qos, paper_qos, "thresholds are verbatim");
        let sim_load = spec.max_load_qps().expect("LC app");
        let tl0 = spec.ideal_tail_ms().expect("LC app");
        table.push_row(vec![
            spec.name().to_owned(),
            f2(qos),
            f2(sim_load),
            f2(paper_load),
            f2(sim_load / paper_load),
            f2(tl0),
            f2(1.0 - tl0 / qos),
        ]);
    }
    report.tables.push(table);
    report.note(
        "Thresholds (M_i) are verbatim from the paper. Max loads are this substrate's \
         measured knees; all within 30 % of the paper's hardware values, and every \
         experiment expresses load as a fraction of the knee, matching the paper's \
         '% of max load' semantics."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_six_apps_and_sane_ratios() {
        let report = run(&ExpContext::default());
        let table = &report.tables[0];
        assert_eq!(table.rows.len(), 6);
        for row in &table.rows {
            let ratio: f64 = row[4].parse().unwrap();
            assert!((0.7..=1.3).contains(&ratio), "{}: ratio {ratio}", row[0]);
            let tolerance: f64 = row[6].parse().unwrap();
            assert!((0.1..0.9).contains(&tolerance));
        }
    }
}
