//! Memory-bandwidth throttling (MBA) ablation — the third resource
//! dimension this repository adds on top of the paper's cores + LLC
//! ways. Two questions:
//!
//! 1. **Static sweep** — what does capping the BE region's bandwidth at
//!    each discrete MBA level cost the BE and buy the LC applications,
//!    with cores and ways held fixed?
//! 2. **Closed loop** — does letting ARQ drive the throttle
//!    ([`ArqConfig::throttle_be`]) improve on the same controller
//!    without it?
//!
//! The workload is the STREAM mix — the bandwidth hog is exactly the
//! collocation MBA exists for.

use ahq_sched::ArqConfig;
use ahq_sim::{MachineConfig, MbaLevel, Partition, RegionAlloc};
use ahq_workloads::mixes;

use crate::exec::{ExpContext, RunSpec, SchedSpec};
use crate::report::{f2, f3, ExperimentReport, TextTable};
use crate::strategy::StrategyKind;

/// The sweep's fixed strict partition: cores/ways chosen once (roughly
/// proportional to load), only the STREAM region's MBA level varies.
fn throttled_partition(level: MbaLevel) -> Partition {
    Partition::strict(vec![
        RegionAlloc::new(3, 6),                 // xapian (70 % load)
        RegionAlloc::new(2, 4),                 // moses
        RegionAlloc::new(2, 4),                 // img-dnn
        RegionAlloc::new(3, 6).with_mba(level), // stream
    ])
}

/// The base job: STREAM mix at the ablation loads.
fn membw_spec(cfg: &ExpContext) -> RunSpec {
    let mix = mixes::stream_mix();
    RunSpec::strategy(
        cfg,
        MachineConfig::paper_xeon(),
        &mix,
        &[("xapian", 0.7), ("moses", 0.2), ("img-dnn", 0.2)],
        StrategyKind::Arq,
    )
}

/// The MBA levels swept: unthrottled down to the floor. STREAM's 3-core
/// region demands ~27 GB/s (~40 % of the paper machine's 68 GB/s), so
/// the interesting levels sit at and below that knee.
pub fn sweep_levels() -> Vec<MbaLevel> {
    [100, 40, 20, 10]
        .iter()
        .map(|&p| MbaLevel::new(p))
        .collect()
}

/// Regenerates the MBA ablation report.
pub fn run(cfg: &ExpContext) -> ExperimentReport {
    let mut report = ExperimentReport::new("membw", "Memory-bandwidth throttling (MBA) ablation");
    let steady = cfg.steady();

    // --- 1. Static throttle sweep ----------------------------------------
    let mut sweep = TextTable::new(
        "Static partition, STREAM region MBA level swept (cores/ways fixed)",
        &[
            "MBA level (%)",
            "E_LC",
            "E_BE",
            "E_S",
            "yield",
            "violations",
        ],
    );
    let levels = sweep_levels();
    let sweep_specs: Vec<RunSpec> = levels
        .iter()
        .map(|&level| RunSpec {
            sched: SchedSpec::Static(throttled_partition(level)),
            ..membw_spec(cfg)
        })
        .collect();
    let sweep_results = cfg.engine().run_all(&sweep_specs);
    for (level, result) in levels.iter().zip(sweep_results.iter()) {
        sweep.push_row(vec![
            level.pct().to_string(),
            f3(result.steady_lc_entropy(steady)),
            f3(result.steady_be_entropy(steady)),
            f3(result.steady_entropy(steady)),
            f2(result.steady_yield(steady)),
            result.violations.to_string(),
        ]);
    }
    report.tables.push(sweep);

    // --- 2. ARQ with and without the throttle ----------------------------
    let mut arq_table = TextTable::new(
        "ARQ closed loop, throttle_be off vs on",
        &[
            "controller",
            "E_LC",
            "E_BE",
            "E_S",
            "yield",
            "adjustments",
            "violations",
        ],
    );
    let base = ArqConfig::default();
    let arq_variants = [
        ("arq", base),
        (
            "arq + throttle_be",
            ArqConfig {
                throttle_be: true,
                ..base
            },
        ),
    ];
    let arq_specs: Vec<RunSpec> = arq_variants
        .iter()
        .map(|&(_, config)| RunSpec {
            sched: SchedSpec::Arq(config),
            ..membw_spec(cfg)
        })
        .collect();
    let arq_results = cfg.engine().run_all(&arq_specs);
    for ((label, _), result) in arq_variants.iter().zip(arq_results.iter()) {
        arq_table.push_row(vec![
            (*label).into(),
            f3(result.steady_lc_entropy(steady)),
            f3(result.steady_be_entropy(steady)),
            f3(result.steady_entropy(steady)),
            f2(result.steady_yield(steady)),
            result.adjustments.to_string(),
            result.violations.to_string(),
        ]);
    }
    report.tables.push(arq_table);

    report.note(
        "Expected shapes: a cap above the STREAM region's natural demand (~40 % of the \
         machine) is free; below it, E_BE rises roughly with the withheld bandwidth while \
         E_LC moves only if the shared memory system was saturated to begin with. The \
         closed loop only throttles when an LC application is below its ReT floor and \
         relaxes at equilibrium, so on a mix the partitioner already handles it should \
         stay close to plain ARQ rather than pay a standing BE tax like the static caps."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runs::ExpConfig;

    #[test]
    fn throttling_the_be_trades_be_entropy_for_lc_entropy() {
        let cfg = ExpContext::new(ExpConfig {
            quick: true,
            seed: 61,
        });
        let report = run(&cfg);
        let sweep = &report.tables[0];
        assert_eq!(sweep.rows.len(), sweep_levels().len());
        let col = |row: &Vec<String>, i: usize| -> f64 { row[i].parse().unwrap() };
        let unthrottled = &sweep.rows[0];
        let floor = sweep.rows.last().unwrap();
        // Withholding 90 % of the BE's bandwidth must show up as BE pain...
        assert!(
            col(floor, 2) >= col(unthrottled, 2),
            "E_BE at 10 % ({}) should not beat unthrottled ({})",
            floor[2],
            unthrottled[2],
        );
        // ...and must not make the LC side worse.
        assert!(
            col(floor, 1) <= col(unthrottled, 1) + 0.02,
            "E_LC at 10 % ({}) should not exceed unthrottled ({})",
            floor[1],
            unthrottled[1],
        );
    }

    #[test]
    fn arq_throttle_loop_stays_competitive() {
        let cfg = ExpContext::new(ExpConfig {
            quick: true,
            seed: 67,
        });
        let report = run(&cfg);
        let arq_table = &report.tables[1];
        assert_eq!(arq_table.rows.len(), 2);
        let es = |row: &Vec<String>| -> f64 { row[3].parse().unwrap() };
        // The throttle is an extra degree of freedom gated behind starving
        // LC applications; enabling it must not blow up the overall score.
        assert!(
            es(&arq_table.rows[1]) <= es(&arq_table.rows[0]) + 0.05,
            "throttle_be E_S ({}) should stay near plain ARQ ({})",
            arq_table.rows[1][3],
            arq_table.rows[0][3],
        );
    }
}
