//! Tier 2 of the run cache: a sharded, content-addressed on-disk store
//! of [`RunResult`]s, so repeated `repro` invocations (training reruns,
//! CI smoke jobs, replay after train) warm-start across processes.
//!
//! # Addressing
//!
//! Each entry is addressed by the stable 128-bit FNV-1a hash
//! ([`ahq_core::stable_hash128_salted`]) of the spec's canonical cache
//! document — a JSON object carrying the cache schema version and the
//! canonical [`RunKey`] rendering of the [`RunSpec`](crate::RunSpec).
//! The hash only picks the file name
//! (`<root>/<2-hex-shard>/<32-hex>.json`); the shard itself stores the
//! full canonical key and is only accepted when it matches the requested
//! key byte-for-byte, so even a hash collision degrades to a miss, never
//! to a wrong result.
//!
//! # Robustness
//!
//! Every failure on the read path — unreadable file, truncated or
//! corrupt JSON, schema-version mismatch, key mismatch, result decode
//! error — is a *miss*, never a panic: the engine simply re-executes and
//! overwrites the shard. Writes go to a process-unique `*.tmp` sibling
//! and are published with an atomic rename, so concurrent writers (many
//! `--jobs`, many processes, one shared `--cache-dir`) can only ever
//! race identical bytes into place.
//!
//! # Eviction
//!
//! [`DiskCache::enforce_limit`] (wired to `--cache-max-mb`) trims the
//! store to the byte budget, oldest modification time first (ties broken
//! by file name), at the end of an invocation. Determinism of *results*
//! never depends on eviction: an evicted entry is just a future miss.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process;
use std::sync::atomic::{AtomicU64, Ordering};

use ahq_core::json::{FromJson, JsonValue, ToJson};
use ahq_core::stable_hash128_salted;
use ahq_sched::RunResult;

use crate::exec::RunKey;

/// Counters of the on-disk tier, reported via `--timings` and stderr.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskCacheStats {
    /// Lookups answered from a valid shard.
    pub hits: u64,
    /// Lookups that found no shard or rejected one (corrupt, stale
    /// schema, key mismatch).
    pub misses: u64,
    /// Bytes read by successful lookups.
    pub bytes_read: u64,
    /// Bytes written by stores (tmp file payloads that were published).
    pub bytes_written: u64,
    /// Shards deleted by [`DiskCache::enforce_limit`].
    pub evicted_files: u64,
    /// Bytes reclaimed by eviction.
    pub evicted_bytes: u64,
}

impl DiskCacheStats {
    /// Fraction of lookups answered from disk, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The sharded on-disk run store. See the module docs for the format.
#[derive(Debug)]
pub struct DiskCache {
    root: PathBuf,
    /// Byte budget enforced by [`DiskCache::enforce_limit`]; `None` is
    /// unbounded.
    max_bytes: Option<u64>,
    /// Schema salt mixed into every address; bumping it (or overriding
    /// it in tests) re-addresses the whole store.
    schema: u32,
    hits: AtomicU64,
    misses: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    evicted_files: AtomicU64,
    evicted_bytes: AtomicU64,
    /// Process-unique discriminator for tmp file names.
    tmp_tag: u64,
    tmp_counter: AtomicU64,
}

impl DiskCache {
    /// Current on-disk schema version. Bump on any change to the shard
    /// document shape *or* to the semantics of the canonical spec key
    /// (a `RunSpec` field addition changes the `Debug` rendering and
    /// re-addresses entries on its own; bump anyway when semantics shift
    /// without a rendering change): stale entries then simply miss.
    pub const SCHEMA: u32 = 1;

    /// Opens (creating if needed) a cache rooted at `root`, bounded to
    /// `max_bytes` on-disk bytes (`None` = unbounded).
    ///
    /// # Errors
    ///
    /// The `create_dir_all` error when the root cannot be created.
    pub fn open(root: impl Into<PathBuf>, max_bytes: Option<u64>) -> std::io::Result<Self> {
        Self::open_with_schema(root, max_bytes, Self::SCHEMA)
    }

    /// [`DiskCache::open`] with an explicit schema version — the hook the
    /// invalidation tests use to simulate a schema bump.
    ///
    /// # Errors
    ///
    /// The `create_dir_all` error when the root cannot be created.
    pub fn open_with_schema(
        root: impl Into<PathBuf>,
        max_bytes: Option<u64>,
        schema: u32,
    ) -> std::io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(DiskCache {
            root,
            max_bytes,
            schema,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            evicted_files: AtomicU64::new(0),
            evicted_bytes: AtomicU64::new(0),
            tmp_tag: process::id() as u64,
            tmp_counter: AtomicU64::new(0),
        })
    }

    /// The cache root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Current counters.
    pub fn stats(&self) -> DiskCacheStats {
        DiskCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            evicted_files: self.evicted_files.load(Ordering::Relaxed),
            evicted_bytes: self.evicted_bytes.load(Ordering::Relaxed),
        }
    }

    /// The canonical cache document of a spec key: what gets hashed into
    /// the address and verified inside the shard. Rendering is
    /// deterministic (ordered object, shortest-round-trip numbers), so
    /// the address is a pure function of `(schema, key)`.
    fn canonical_document(&self, key: &RunKey) -> String {
        JsonValue::object(vec![
            ("schema", JsonValue::Number(self.schema as f64)),
            ("spec", key.as_str().to_json()),
        ])
        .render()
    }

    /// The shard path of a key: 2-hex-digit subdirectory (256 shards)
    /// then the full 32-hex-digit address.
    fn shard_path(&self, key: &RunKey) -> PathBuf {
        let doc = self.canonical_document(key);
        let hash = stable_hash128_salted(b"ahq-run-cache", doc.as_bytes());
        let hex = format!("{hash:032x}");
        self.root.join(&hex[..2]).join(format!("{hex}.json"))
    }

    /// Looks `key` up. Any invalid shard — unreadable, truncated,
    /// corrupt, stale schema, mismatched key, undecodable result — is a
    /// miss, never an error.
    pub fn load(&self, key: &RunKey) -> Option<RunResult> {
        let path = self.shard_path(key);
        let result = self.load_validated(&path, key);
        match result {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        result
    }

    fn load_validated(&self, path: &Path, key: &RunKey) -> Option<RunResult> {
        let text = fs::read_to_string(path).ok()?;
        let doc = JsonValue::parse(&text).ok()?;
        let schema: u32 = doc.req("schema").ok()?;
        if schema != self.schema {
            return None;
        }
        let stored_key = doc.get("key")?.as_str().ok()?;
        if stored_key != key.as_str() {
            return None; // hash collision or stale address: not our entry
        }
        let result = RunResult::from_json(doc.get("result")?).ok()?;
        self.bytes_read
            .fetch_add(text.len() as u64, Ordering::Relaxed);
        Some(result)
    }

    /// Stores `result` under `key`, atomically (tmp + rename). Storage
    /// is best-effort: an I/O failure leaves the cache without the entry
    /// and the caller none the wiser — results never depend on a store
    /// succeeding.
    pub fn store(&self, key: &RunKey, result: &RunResult) {
        let path = self.shard_path(key);
        let Some(parent) = path.parent() else { return };
        if fs::create_dir_all(parent).is_err() {
            return;
        }
        let body = JsonValue::object(vec![
            ("schema", JsonValue::Number(self.schema as f64)),
            ("key", key.as_str().to_json()),
            ("result", result.to_json()),
        ])
        .render();
        let tmp = path.with_extension(format!(
            "tmp-{}-{}",
            self.tmp_tag,
            self.tmp_counter.fetch_add(1, Ordering::Relaxed)
        ));
        let written = fs::File::create(&tmp)
            .and_then(|mut f| f.write_all(body.as_bytes()))
            .and_then(|()| fs::rename(&tmp, &path));
        match written {
            Ok(()) => {
                self.bytes_written
                    .fetch_add(body.len() as u64, Ordering::Relaxed);
            }
            Err(_) => {
                let _ = fs::remove_file(&tmp);
            }
        }
    }

    /// Trims the store to the configured byte budget, deleting whole
    /// shards oldest-mtime-first with file name as the deterministic
    /// tie-break. Leftover `*.tmp-*` files (from crashed writers) are
    /// always removed, budget or not.
    pub fn enforce_limit(&self) {
        let mut entries: Vec<(std::time::SystemTime, PathBuf, u64)> = Vec::new();
        let mut total: u64 = 0;
        let Ok(shards) = fs::read_dir(&self.root) else {
            return;
        };
        for shard in shards.flatten() {
            let Ok(files) = fs::read_dir(shard.path()) else {
                continue;
            };
            for file in files.flatten() {
                let path = file.path();
                let Ok(meta) = file.metadata() else { continue };
                if !meta.is_file() {
                    continue;
                }
                if is_tmp(&path) {
                    let _ = fs::remove_file(&path);
                    continue;
                }
                let mtime = meta.modified().unwrap_or(std::time::UNIX_EPOCH);
                total += meta.len();
                entries.push((mtime, path, meta.len()));
            }
        }
        let Some(budget) = self.max_bytes else { return };
        if total <= budget {
            return;
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        for (_, path, len) in entries {
            if total <= budget {
                break;
            }
            if fs::remove_file(&path).is_ok() {
                total = total.saturating_sub(len);
                self.evicted_files.fetch_add(1, Ordering::Relaxed);
                self.evicted_bytes.fetch_add(len, Ordering::Relaxed);
            }
        }
    }

    /// Total bytes currently held in published shards (tmp files
    /// excluded) — the quantity [`DiskCache::enforce_limit`] budgets.
    pub fn size_bytes(&self) -> u64 {
        let Ok(shards) = fs::read_dir(&self.root) else {
            return 0;
        };
        let mut total = 0;
        for shard in shards.flatten() {
            let Ok(files) = fs::read_dir(shard.path()) else {
                continue;
            };
            for file in files.flatten() {
                let Ok(meta) = file.metadata() else { continue };
                if meta.is_file() && !is_tmp(&file.path()) {
                    total += meta.len();
                }
            }
        }
        total
    }
}

fn is_tmp(path: &Path) -> bool {
    path.extension()
        .and_then(|e| e.to_str())
        .is_some_and(|e| e.starts_with("tmp-"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::RunSpec;
    use crate::runs::ExpConfig;
    use crate::strategy::StrategyKind;
    use ahq_core::json;
    use ahq_sim::MachineConfig;
    use ahq_workloads::mixes;

    fn temp_root(tag: &str) -> PathBuf {
        let root = std::env::temp_dir().join(format!("ahq-disk-cache-{tag}-{}", process::id()));
        let _ = fs::remove_dir_all(&root);
        root
    }

    fn tiny_result(seed: u64) -> (RunKey, RunResult) {
        let cfg = ExpConfig { quick: true, seed };
        let mix = mixes::fluidanimate_mix();
        let spec = RunSpec {
            windows: 2,
            ..RunSpec::strategy(
                &cfg,
                MachineConfig::paper_xeon(),
                &mix,
                &[("xapian", 0.3)],
                StrategyKind::Unmanaged,
            )
        };
        (spec.key(), spec.execute())
    }

    fn same_result(a: &RunResult, b: &RunResult) -> bool {
        json::to_string(a) == json::to_string(b)
    }

    #[test]
    fn round_trip_is_exact_and_counted() {
        let root = temp_root("roundtrip");
        let cache = DiskCache::open(&root, None).unwrap();
        let (key, result) = tiny_result(3);
        assert!(cache.load(&key).is_none(), "empty cache misses");
        cache.store(&key, &result);
        let back = cache.load(&key).expect("stored entry loads");
        assert!(same_result(&back, &result), "disk round trip must be exact");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!(stats.bytes_written > 0 && stats.bytes_read > 0);
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn corrupt_truncated_and_garbage_shards_are_misses() {
        let root = temp_root("corrupt");
        let cache = DiskCache::open(&root, None).unwrap();
        let (key, result) = tiny_result(5);
        cache.store(&key, &result);
        let path = cache.shard_path(&key);

        // Truncate to half: invalid JSON.
        let body = fs::read_to_string(&path).unwrap();
        fs::write(&path, &body[..body.len() / 2]).unwrap();
        assert!(cache.load(&key).is_none(), "truncated shard must miss");

        // Valid JSON, wrong shape.
        fs::write(&path, "{\"schema\": 1}").unwrap();
        assert!(cache.load(&key).is_none(), "shapeless shard must miss");

        // Binary garbage.
        fs::write(&path, [0u8, 159, 146, 150]).unwrap();
        assert!(cache.load(&key).is_none(), "garbage shard must miss");

        // Overwriting repairs it.
        cache.store(&key, &result);
        assert!(same_result(&cache.load(&key).unwrap(), &result));
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn schema_bump_invalidates_every_entry() {
        let root = temp_root("schema");
        let (key, result) = tiny_result(7);
        {
            let v1 = DiskCache::open_with_schema(&root, None, 1).unwrap();
            v1.store(&key, &result);
            assert!(v1.load(&key).is_some());
        }
        let v2 = DiskCache::open_with_schema(&root, None, 2).unwrap();
        assert!(
            v2.load(&key).is_none(),
            "a schema bump must re-address (invalidate) old entries"
        );
        // And the stale v1 entry is still intact for a v1 reader.
        let v1 = DiskCache::open_with_schema(&root, None, 1).unwrap();
        assert!(v1.load(&key).is_some());
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn key_mismatch_inside_a_shard_is_a_miss() {
        let root = temp_root("collision");
        let cache = DiskCache::open(&root, None).unwrap();
        let (key_a, result) = tiny_result(11);
        let (key_b, _) = tiny_result(12);
        // Simulate a hash collision: key_b's shard holds key_a's document.
        cache.store(&key_a, &result);
        let body = fs::read_to_string(cache.shard_path(&key_a)).unwrap();
        let b_path = cache.shard_path(&key_b);
        fs::create_dir_all(b_path.parent().unwrap()).unwrap();
        fs::write(&b_path, body).unwrap();
        assert!(
            cache.load(&key_b).is_none(),
            "a shard whose stored key disagrees must be rejected"
        );
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn eviction_respects_the_byte_budget_and_keeps_newest() {
        let root = temp_root("evict");
        let (key_old, result_old) = tiny_result(21);
        let (key_new, result_new) = tiny_result(22);
        let one_entry;
        {
            let unbounded = DiskCache::open(&root, None).unwrap();
            unbounded.store(&key_old, &result_old);
            one_entry = unbounded.size_bytes();
            assert!(one_entry > 0);
            // Strictly newer mtime for the second entry.
            std::thread::sleep(std::time::Duration::from_millis(25));
            unbounded.store(&key_new, &result_new);
            assert!(unbounded.size_bytes() > one_entry);
        }
        // Budget fits one entry but not two: the oldest must go.
        let bounded = DiskCache::open(&root, Some(one_entry + one_entry / 2)).unwrap();
        bounded.enforce_limit();
        let stats = bounded.stats();
        assert_eq!(stats.evicted_files, 1, "exactly one shard evicted");
        assert!(stats.evicted_bytes > 0);
        assert!(bounded.size_bytes() <= one_entry + one_entry / 2);
        assert!(
            bounded.load(&key_new).is_some(),
            "the newest entry survives eviction"
        );
        assert!(
            bounded.load(&key_old).is_none(),
            "the oldest entry is evicted first"
        );
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn enforce_limit_sweeps_stale_tmp_files_even_unbounded() {
        let root = temp_root("tmpsweep");
        let cache = DiskCache::open(&root, None).unwrap();
        let (key, result) = tiny_result(31);
        cache.store(&key, &result);
        let shard_dir = cache.shard_path(&key).parent().unwrap().to_path_buf();
        let stale = shard_dir.join("deadbeef.tmp-999-0");
        fs::write(&stale, "half-written").unwrap();
        cache.enforce_limit();
        assert!(!stale.exists(), "stale tmp files are swept");
        assert!(cache.load(&key).is_some(), "published shards survive");
        fs::remove_dir_all(&root).ok();
    }
}
