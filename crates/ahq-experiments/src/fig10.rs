//! Fig. 10: entropy heatmaps over the (Xapian load x Img-dnn load) grid,
//! Moses pinned at 20 %, collocated with STREAM — PARTIES vs ARQ.

use ahq_sim::MachineConfig;
use ahq_workloads::mixes;

use crate::exec::{ExpContext, RunSpec};
use crate::report::{f2, f3, ExperimentReport, TextTable};
use crate::runs::ExpConfig;
use crate::strategy::StrategyKind;

/// The grid of loads swept on both axes.
pub fn grid_loads(cfg: &ExpConfig) -> Vec<f64> {
    if cfg.quick {
        vec![0.1, 0.5, 0.9]
    } else {
        vec![0.1, 0.3, 0.5, 0.7, 0.9]
    }
}

/// Heatmap cells: `((xapian_load, imgdnn_load), (e_lc, e_be, e_s))`.
pub type HeatmapCells = Vec<((f64, f64), (f64, f64, f64))>;

/// One strategy's heatmap: `result[(xapian, imgdnn)] = (e_lc, e_be, e_s)`.
pub fn heatmap(cfg: &ExpContext, strategy: StrategyKind) -> HeatmapCells {
    let mix = mixes::stream_mix();
    let loads = grid_loads(cfg);
    let mut keys = Vec::new();
    let mut specs = Vec::new();
    for &x in &loads {
        for &i in &loads {
            keys.push((x, i));
            specs.push(RunSpec::strategy(
                cfg,
                MachineConfig::paper_xeon(),
                &mix,
                &[("xapian", x), ("img-dnn", i), ("moses", 0.2)],
                strategy,
            ));
        }
    }
    let results = cfg.engine().run_all(&specs);
    let steady = cfg.steady();
    keys.into_iter()
        .zip(results.iter())
        .map(|(key, result)| {
            (
                key,
                (
                    result.steady_lc_entropy(steady),
                    result.steady_be_entropy(steady),
                    result.steady_entropy(steady),
                ),
            )
        })
        .collect()
}

/// Regenerates Fig. 10.
pub fn run(cfg: &ExpContext) -> ExperimentReport {
    let mut report = ExperimentReport::new("fig10", "Fig 10: load-grid heatmaps");
    let loads = grid_loads(cfg);

    for strategy in [StrategyKind::Parties, StrategyKind::Arq] {
        let cells = heatmap(cfg, strategy);
        for (metric, pick) in [("E_LC", 0usize), ("E_BE", 1), ("E_S", 2)] {
            let mut headers: Vec<String> = vec!["xapian\\img-dnn".into()];
            headers.extend(loads.iter().map(|l| f2(*l)));
            let mut t = TextTable::new(
                format!("{metric} heatmap — {}", strategy.name()),
                &headers.iter().map(String::as_str).collect::<Vec<_>>(),
            );
            for &x in &loads {
                let mut row = vec![f2(x)];
                for &i in &loads {
                    let (e_lc, e_be, e_s) = cells
                        .iter()
                        .find(|(k, _)| *k == (x, i))
                        .map(|(_, v)| *v)
                        .expect("cell exists");
                    row.push(f3(match pick {
                        0 => e_lc,
                        1 => e_be,
                        _ => e_s,
                    }));
                }
                t.push_row(row);
            }
            report.tables.push(t);
        }
    }
    report.note(
        "Paper shape: in the low-load corner ARQ's shared region gives the BE application far \
         more resources (lower E_BE); in the high-load corner the LC applications pull shared \
         resources, trading E_BE for lower E_LC — both relative to PARTIES."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arq_dominates_the_corners() {
        let cfg = ExpContext::new(ExpConfig {
            quick: true,
            seed: 31,
        });
        let parties = heatmap(&cfg, StrategyKind::Parties);
        let arq = heatmap(&cfg, StrategyKind::Arq);
        type HeatCell = ((f64, f64), (f64, f64, f64));
        let get = |cells: &[HeatCell], k: (f64, f64)| {
            cells
                .iter()
                .find(|(c, _)| *c == k)
                .map(|(_, v)| *v)
                .unwrap()
        };
        // Low-load corner: ARQ must have lower E_BE.
        let (_, be_p, _) = get(&parties, (0.1, 0.1));
        let (_, be_a, _) = get(&arq, (0.1, 0.1));
        assert!(be_a < be_p, "ARQ E_BE {be_a:.3} vs PARTIES {be_p:.3}");
        // High-load corner: ARQ must have no worse E_LC and lower E_S.
        let (lc_p, _, es_p) = get(&parties, (0.9, 0.9));
        let (lc_a, _, es_a) = get(&arq, (0.9, 0.9));
        assert!(lc_a <= lc_p + 0.05, "E_LC {lc_a:.3} vs {lc_p:.3}");
        assert!(es_a <= es_p + 0.02, "E_S {es_a:.3} vs {es_p:.3}");
    }
}
