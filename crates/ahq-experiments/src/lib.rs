//! # ahq-experiments — regenerating every table and figure of the paper
//!
//! One module per artifact of the Ah-Q paper's evaluation:
//!
//! | module | paper artifact |
//! |---|---|
//! | [`fig1`] | Fig. 1 — the motivating strategy-A-vs-B example |
//! | [`table2`] | Table II — per-app entropy quantities vs core count |
//! | [`fig2`] | Fig. 2 — `E_S` vs available cores / LLC ways, Unmanaged vs ARQ |
//! | [`fig3`] | Fig. 3 — resource equivalence and isentropic lines |
//! | [`fig4`] | Fig. 4 — space-time model cross/tick/triangle accounting |
//! | [`fig56`] | Figs. 5 & 6 — PARTIES vs ARQ allocation snapshots |
//! | [`fig7`] | Fig. 7 — load-latency curves per core count |
//! | [`table4`] | Table IV — QoS thresholds and (calibrated) max loads |
//! | [`fig8`] | Fig. 8 — entropy / tail latency / IPC, Fluidanimate mix |
//! | [`fig9`] | Fig. 9 — same with the STREAM hog |
//! | [`fig10`] | Fig. 10 — Xapian x Img-dnn load heatmaps, PARTIES vs ARQ |
//! | [`fig11`] | Fig. 11 — Img-dnn sweep with Moses + Sphinx + STREAM |
//! | [`fig12`] | Fig. 12 — 6 LC + 2 BE collocation |
//! | [`fig13`] | Fig. 13 — fluctuating-load timeline |
//! | [`headline`] | §VI headline numbers (yield, `E_S` reductions, IPC gains) |
//! | [`ablations`] | extra: ablations of ARQ's design choices (not a paper artifact) |
//! | [`membw`] | extra: memory-bandwidth (MBA) throttling as a third resource dimension |
//! | [`baselines`] | extra: six-strategy comparison incl. a Heracles-style controller |
//! | [`cluster`] | extra: multi-node placement policies under churn (`ahq-cluster`) |
//! | [`gctrl`] | extra: hierarchical cluster-level ARQ control plane (`ahq-ctrl`) |
//! | [`train`] | extra: offline policy search + artifact replay (`ahq-train`) |
//!
//! The `repro` binary runs any subset and renders aligned text tables plus
//! CSV files. Every experiment is deterministic (seeded) and offers a
//! `quick` mode with shorter runs for CI.
//!
//! Every simulation is submitted as a [`RunSpec`] through the [`exec`]
//! module's deterministic parallel [`Engine`]: `repro --jobs N` fans the
//! grids out across workers and memoizes configurations shared across
//! figures, without changing a byte of output relative to `--jobs 1`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod baselines;
pub mod cache;
pub mod cluster;
pub mod error;
pub mod exec;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig56;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod gctrl;
pub mod headline;
pub mod membw;
pub mod report;
pub mod runs;
pub mod strategy;
pub mod table2;
pub mod table4;
pub mod train;

pub use cache::{DiskCache, DiskCacheStats};
pub use cluster::{ClusterOpts, EngineRunner};
pub use error::{classify_reachability, ExperimentError, Reachability};
pub use exec::{CacheStats, Engine, ExpContext, RunKey, RunSpec, SchedSpec};
pub use report::{ExperimentReport, Metric, TextTable};
pub use runs::ExpConfig;
pub use strategy::StrategyKind;
pub use train::TrainOpts;

/// One registry entry: `(id, title, runner)`.
pub type ExperimentEntry = (
    &'static str,
    &'static str,
    fn(&ExpContext) -> ExperimentReport,
);

/// Every experiment in paper order: `(id, title, runner)`.
pub fn all_experiments() -> Vec<ExperimentEntry> {
    vec![
        (
            "fig1",
            "Fig 1: motivating example",
            fig1::run as fn(&ExpContext) -> ExperimentReport,
        ),
        ("table2", "Table II: entropy vs core count", table2::run),
        ("fig2", "Fig 2: E_S vs resource amount", fig2::run),
        ("fig3", "Fig 3: resource equivalence", fig3::run),
        ("fig4", "Fig 4: space-time model", fig4::run),
        (
            "fig5",
            "Fig 5: allocation snapshot (Xapian 30%)",
            fig56::run_fig5,
        ),
        (
            "fig6",
            "Fig 6: allocation snapshot (Xapian 90%)",
            fig56::run_fig6,
        ),
        ("fig7", "Fig 7: load-latency curves", fig7::run),
        ("table4", "Table IV: LC application parameters", table4::run),
        ("fig8", "Fig 8: collocation with Fluidanimate", fig8::run),
        ("fig9", "Fig 9: collocation with STREAM", fig9::run),
        ("fig10", "Fig 10: load-grid heatmaps", fig10::run),
        (
            "fig11",
            "Fig 11: Img-dnn/Moses/Sphinx with STREAM",
            fig11::run,
        ),
        ("fig12", "Fig 12: 6 LC + 2 BE collocation", fig12::run),
        ("fig13", "Fig 13: fluctuating load", fig13::run),
        (
            "headline",
            "Headline numbers (yield, E_S, IPC)",
            headline::run,
        ),
        (
            "ablations",
            "Ablations of ARQ's design choices",
            ablations::run,
        ),
        (
            "membw",
            "Memory-bandwidth throttling (MBA) ablation",
            membw::run,
        ),
        (
            "baselines",
            "Six-strategy comparison incl. Heracles",
            baselines::run,
        ),
        (
            "cluster",
            "Cluster: placement policies under churn",
            cluster::run,
        ),
    ]
}

/// Experiments outside the pinned `repro all` set: runnable by explicit
/// id (and listed by `--list`), but excluded from `all` so its
/// byte-pinned output never changes when a new family lands.
pub fn extra_experiments() -> Vec<ExperimentEntry> {
    vec![
        (
            "gctrl",
            "Global controller: cluster ARQ control plane",
            gctrl::run as fn(&ExpContext) -> ExperimentReport,
        ),
        (
            "train",
            "Offline policy search over placement/ARQ knobs",
            train::run,
        ),
        (
            "replay",
            "Replay a trained policy artifact vs the incumbent",
            train::run_replay,
        ),
    ]
}
