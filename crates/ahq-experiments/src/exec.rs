//! The deterministic parallel run engine: experiment modules describe
//! their simulations as value-typed [`RunSpec`] jobs and submit whole
//! grids at once; the [`Engine`] fans the jobs out over a scoped-thread
//! worker pool and memoizes results so configurations shared across
//! figures execute exactly once per `repro` invocation.
//!
//! # Determinism
//!
//! A [`RunSpec`] is a *closed* job description: machine, mix, initial
//! loads (in application order — each `set_load` advances the simulator
//! RNG), scheduler, window count, seed, entropy model, and the full
//! per-window load schedule. Executing a spec twice therefore yields
//! byte-identical [`RunResult`]s, and nothing about a run depends on
//! worker identity or scheduling order. Results are returned in
//! submission order, so `--jobs 1` and `--jobs N` produce identical
//! output.
//!
//! # Cache keying
//!
//! The cache key is the full canonical `Debug` rendering of the spec
//! ([`RunSpec::key`]), not a hash of it — two distinct specs can never
//! collide silently. Hits and misses are counted per engine and reported
//! by the `repro` binary.

use std::collections::{HashMap, VecDeque};
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

use ahq_core::EntropyModel;
use ahq_sched::{run_with_hook, Arq, ArqConfig, RunResult, SchedContext, Scheduler};
use ahq_sim::{AppSpec, MachineConfig, Partition, SharingPolicy, SimPerfStats};
use ahq_workloads::mixes::Mix;
use parking_lot::Mutex;

use crate::runs::{build_sim, ExpConfig};
use crate::strategy::StrategyKind;

/// A value-typed scheduler description, so a [`RunSpec`] stays a closed,
/// comparable job description rather than holding a boxed trait object.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedSpec {
    /// One of the named strategies.
    Kind(StrategyKind),
    /// ARQ with an explicit configuration (the ablation variants).
    Arq(ArqConfig),
    /// A fixed partition installed once and never adjusted (Fig. 1's
    /// strategy "B").
    Static(Partition),
}

impl SchedSpec {
    /// Instantiates a fresh scheduler for one run.
    pub fn build(&self) -> Box<dyn Scheduler> {
        match self {
            SchedSpec::Kind(kind) => kind.build(),
            SchedSpec::Arq(config) => Box::new(Arq::with_config(*config)),
            SchedSpec::Static(partition) => Box::new(StaticPartition(partition.clone())),
        }
    }
}

/// A scheduler that installs one fixed partition and never adjusts —
/// strategy "B" of the motivating example.
#[derive(Debug, Clone)]
pub struct StaticPartition(pub Partition);

impl Scheduler for StaticPartition {
    fn name(&self) -> &'static str {
        "static"
    }

    fn policy(&self) -> SharingPolicy {
        SharingPolicy::LcPriority
    }

    fn initial_partition(&self, _machine: &MachineConfig, _apps: &[AppSpec]) -> Partition {
        self.0.clone()
    }

    fn decide(&mut self, _ctx: &SchedContext<'_>) -> Option<Partition> {
        None
    }
}

/// One simulation job: everything that determines a [`RunResult`].
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Machine budget under test.
    pub machine: MachineConfig,
    /// The application mix.
    pub mix: Mix,
    /// Initial per-LC-app load fractions, in call-site order (order
    /// matters: each `set_load` advances the simulator RNG).
    pub loads: Vec<(String, f64)>,
    /// The scheduler driving the run.
    pub sched: SchedSpec,
    /// Number of monitoring windows.
    pub windows: usize,
    /// Simulator RNG seed.
    pub seed: u64,
    /// Monitoring-window override in milliseconds (the interval ablation).
    pub window_ms: Option<f64>,
    /// Entropy model the scheduler is fed with.
    pub model: EntropyModel,
    /// Pre-window load changes `(window, app, fraction)` applied in order
    /// before each window — Fig. 13's trace replay, precomputed so the
    /// job stays a closed value.
    pub schedule: Vec<(usize, String, f64)>,
    /// Apps starting this run cold: `(name, warmup ms)` pairs applied via
    /// [`ahq_sim::NodeSim::begin_warmup`] before the first window — how a
    /// controller-migrated LC app's cold-start cost reaches the engine.
    /// Applying a warm-up draws no RNG, so specs with an empty list are
    /// unaffected.
    pub cold: Vec<(String, f64)>,
}

impl RunSpec {
    /// The standard experiment job: `mix` on `machine` at `loads` under a
    /// named strategy, with the configuration's windows, seed and model.
    pub fn strategy(
        cfg: &ExpConfig,
        machine: MachineConfig,
        mix: &Mix,
        loads: &[(&str, f64)],
        strategy: StrategyKind,
    ) -> Self {
        RunSpec {
            machine,
            mix: mix.clone(),
            loads: loads.iter().map(|(n, l)| ((*n).to_owned(), *l)).collect(),
            sched: SchedSpec::Kind(strategy),
            windows: cfg.windows(),
            seed: cfg.seed,
            window_ms: None,
            model: cfg.model(),
            schedule: Vec::new(),
            cold: Vec::new(),
        }
    }

    /// The canonical cache key of this spec.
    pub fn key(&self) -> RunKey {
        RunKey(format!("{self:?}"))
    }

    /// Executes the job on the calling thread. The result is a pure
    /// function of the spec.
    pub fn execute(&self) -> RunResult {
        self.execute_with_stats().0
    }

    /// [`RunSpec::execute`], additionally returning the simulator's work
    /// counters (events processed, rate-cache hits/misses) so the engine
    /// can aggregate simulated-events/sec across a whole invocation.
    pub fn execute_with_stats(&self) -> (RunResult, SimPerfStats) {
        let loads: Vec<(&str, f64)> = self.loads.iter().map(|(n, l)| (n.as_str(), *l)).collect();
        let mut sim = build_sim(self.machine, &self.mix, &loads, self.seed);
        if let Some(ms) = self.window_ms {
            sim.set_window_ms(ms);
        }
        for (name, ms) in &self.cold {
            sim.begin_warmup(name, *ms)
                .expect("cold names target placed apps");
        }
        let mut sched = self.sched.build();
        let schedule = &self.schedule;
        let mut cursor = 0usize;
        let result = run_with_hook(
            &mut sim,
            sched.as_mut(),
            self.windows,
            &self.model,
            |sim, w| {
                while cursor < schedule.len() && schedule[cursor].0 <= w {
                    let (_, name, fraction) = &schedule[cursor];
                    let _ = sim.set_load(name, *fraction);
                    cursor += 1;
                }
            },
        );
        let stats = sim.perf_stats();
        (result, stats)
    }
}

/// The canonical cache key of a [`RunSpec`] — the full rendering, not a
/// hash of it, so distinct specs can never collide silently.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RunKey(String);

impl RunKey {
    /// The canonical key text — what the disk tier hashes into an address
    /// and stores inside each shard for verification.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

/// Hit/miss counters of an [`Engine`]'s run cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Submissions answered from the cache (including duplicates within
    /// one batch, which execute once).
    pub hits: u64,
    /// Submissions that executed a simulation.
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of submissions answered without executing, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The parallel run engine: a scoped-thread worker pool plus a two-tier
/// memoized result cache keyed by canonical [`RunSpec`]. Tier 1 is the
/// in-process map below; tier 2 is an optional persistent
/// [`DiskCache`](crate::cache::DiskCache) attached via
/// [`Engine::set_disk_cache`], probed on tier-1 misses and written
/// through after every execution so results survive the process.
pub struct Engine {
    jobs: usize,
    cache: Mutex<HashMap<RunKey, Arc<RunResult>>>,
    disk: Option<crate::cache::DiskCache>,
    hits: AtomicU64,
    misses: AtomicU64,
    // Aggregated simulator work counters over every *executed* run
    // (cached runs re-use a prior execution and add nothing).
    sim_events: AtomicU64,
    sim_rate_hits: AtomicU64,
    sim_rate_misses: AtomicU64,
}

impl Engine {
    /// Creates an engine with `jobs` workers; `0` means the machine's
    /// available parallelism.
    pub fn new(jobs: usize) -> Self {
        let jobs = if jobs == 0 {
            thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            jobs
        };
        Engine {
            jobs,
            cache: Mutex::new(HashMap::new()),
            disk: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            sim_events: AtomicU64::new(0),
            sim_rate_hits: AtomicU64::new(0),
            sim_rate_misses: AtomicU64::new(0),
        }
    }

    /// The worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Attaches the persistent tier-2 store. Tier-1 misses are probed on
    /// disk before executing, and every executed result is written back.
    pub fn set_disk_cache(&mut self, disk: crate::cache::DiskCache) {
        self.disk = Some(disk);
    }

    /// The attached tier-2 store, if any.
    pub fn disk_cache(&self) -> Option<&crate::cache::DiskCache> {
        self.disk.as_ref()
    }

    /// Tier-2 counters, when a disk cache is attached.
    pub fn disk_stats(&self) -> Option<crate::cache::DiskCacheStats> {
        self.disk.as_ref().map(|d| d.stats())
    }

    /// Current cache counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Aggregated simulator work counters across every run this engine
    /// actually executed: discrete events processed and fluid-rate-cache
    /// hits/misses inside the simulators.
    pub fn sim_stats(&self) -> SimPerfStats {
        SimPerfStats {
            events: self.sim_events.load(Ordering::Relaxed),
            rate_hits: self.sim_rate_hits.load(Ordering::Relaxed),
            rate_misses: self.sim_rate_misses.load(Ordering::Relaxed),
        }
    }

    fn record_sim_stats(&self, stats: SimPerfStats) {
        self.sim_events.fetch_add(stats.events, Ordering::Relaxed);
        self.sim_rate_hits
            .fetch_add(stats.rate_hits, Ordering::Relaxed);
        self.sim_rate_misses
            .fetch_add(stats.rate_misses, Ordering::Relaxed);
    }

    /// Runs a single spec through the cache.
    pub fn run_one(&self, spec: &RunSpec) -> Arc<RunResult> {
        self.run_all(std::slice::from_ref(spec))
            .pop()
            .expect("one spec in, one result out")
    }

    /// Runs a grid of specs, returning results in submission order.
    ///
    /// Cached and duplicated specs execute at most once; the rest are
    /// fanned out over the worker pool. Because every job's result is a
    /// pure function of its spec and results are reassembled by
    /// submission index, the output is byte-identical for any worker
    /// count.
    pub fn run_all(&self, specs: &[RunSpec]) -> Vec<Arc<RunResult>> {
        let keys: Vec<RunKey> = specs.iter().map(RunSpec::key).collect();
        let mut results: Vec<Option<Arc<RunResult>>> = vec![None; specs.len()];
        // Unique uncached jobs (by first submission index) and, for
        // in-batch duplicates, which pending slot each one follows.
        let mut owner_of: HashMap<&RunKey, usize> = HashMap::new();
        let mut pending: Vec<usize> = Vec::new();
        let mut followers: Vec<(usize, usize)> = Vec::new();
        {
            let cache = self.cache.lock();
            for (i, key) in keys.iter().enumerate() {
                if let Some(cached) = cache.get(key) {
                    results[i] = Some(Arc::clone(cached));
                    self.hits.fetch_add(1, Ordering::Relaxed);
                } else if let Some(&slot) = owner_of.get(key) {
                    followers.push((i, slot));
                    self.hits.fetch_add(1, Ordering::Relaxed);
                } else {
                    owner_of.insert(key, pending.len());
                    pending.push(i);
                }
            }
        }

        // Tier 2: probe the disk store for each tier-1 miss (no lock
        // held — this is I/O). A disk hit fills its slot up front and
        // counts as a cache hit; only true misses execute.
        let slots: Vec<Mutex<Option<RunResult>>> =
            pending.iter().map(|_| Mutex::new(None)).collect();
        let mut to_run: Vec<usize> = Vec::with_capacity(pending.len());
        if let Some(disk) = &self.disk {
            for (slot, &spec_index) in pending.iter().enumerate() {
                if let Some(result) = disk.load(&keys[spec_index]) {
                    *slots[slot].lock() = Some(result);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                } else {
                    to_run.push(slot);
                    self.misses.fetch_add(1, Ordering::Relaxed);
                }
            }
        } else {
            to_run.extend(0..pending.len());
            self.misses
                .fetch_add(pending.len() as u64, Ordering::Relaxed);
        }

        let workers = self.jobs.min(to_run.len());
        if workers <= 1 {
            for &slot in &to_run {
                let (result, sim_stats) = specs[pending[slot]].execute_with_stats();
                self.record_sim_stats(sim_stats);
                *slots[slot].lock() = Some(result);
            }
        } else {
            let queue: Mutex<VecDeque<usize>> = Mutex::new(to_run.iter().copied().collect());
            thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let Some(slot) = queue.lock().pop_front() else {
                            break;
                        };
                        let (result, sim_stats) = specs[pending[slot]].execute_with_stats();
                        self.record_sim_stats(sim_stats);
                        *slots[slot].lock() = Some(result);
                    });
                }
            });
        }

        // Write-through: persist freshly executed results (disk hits are
        // already on disk) before sealing tier 1.
        if let Some(disk) = &self.disk {
            for &slot in &to_run {
                if let Some(result) = slots[slot].lock().as_ref() {
                    disk.store(&keys[pending[slot]], result);
                }
            }
        }

        {
            let mut cache = self.cache.lock();
            for (slot, cell) in slots.into_iter().enumerate() {
                let result = Arc::new(cell.into_inner().expect("worker filled the slot"));
                cache.insert(keys[pending[slot]].clone(), Arc::clone(&result));
                results[pending[slot]] = Some(result);
            }
        }
        for (i, slot) in followers {
            results[i] = results[pending[slot]].clone();
        }
        results
            .into_iter()
            .map(|r| r.expect("every submission resolved"))
            .collect()
    }
}

/// Everything an experiment module needs: the configuration plus the
/// shared [`Engine`]. Derefs to [`ExpConfig`], so `cfg.windows()`-style
/// call sites work unchanged.
pub struct ExpContext {
    /// The experiment configuration.
    pub cfg: ExpConfig,
    /// Command-line overrides for the cluster experiment
    /// (`repro cluster --nodes/--rounds/--fidelity`).
    pub cluster: crate::cluster::ClusterOpts,
    /// Command-line overrides for the train/replay experiments
    /// (`repro train --pop/--gens/--train-out/--artifact`).
    pub train: crate::train::TrainOpts,
    engine: Engine,
}

impl ExpContext {
    /// A context using the machine's available parallelism.
    pub fn new(cfg: ExpConfig) -> Self {
        Self::with_jobs(cfg, 0)
    }

    /// A context with an explicit worker count (`0` = auto).
    pub fn with_jobs(cfg: ExpConfig, jobs: usize) -> Self {
        ExpContext {
            cfg,
            cluster: crate::cluster::ClusterOpts::default(),
            train: crate::train::TrainOpts::default(),
            engine: Engine::new(jobs),
        }
    }

    /// The shared engine (and its run cache).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Mutable engine access, for attaching the persistent disk cache
    /// before any experiment runs.
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// Runs one `(machine, mix, loads, strategy)` configuration through
    /// the engine.
    pub fn run_strategy(
        &self,
        machine: MachineConfig,
        mix: &Mix,
        loads: &[(&str, f64)],
        strategy: StrategyKind,
    ) -> Arc<RunResult> {
        self.engine
            .run_one(&RunSpec::strategy(&self.cfg, machine, mix, loads, strategy))
    }
}

impl Deref for ExpContext {
    type Target = ExpConfig;

    fn deref(&self) -> &ExpConfig {
        &self.cfg
    }
}

impl Default for ExpContext {
    fn default() -> Self {
        Self::new(ExpConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahq_workloads::mixes;

    fn tiny_spec(seed: u64, strategy: StrategyKind) -> RunSpec {
        let cfg = ExpConfig { quick: true, seed };
        let mix = mixes::fluidanimate_mix();
        RunSpec {
            windows: 8,
            ..RunSpec::strategy(
                &cfg,
                MachineConfig::paper_xeon(),
                &mix,
                &[("xapian", 0.3), ("moses", 0.2), ("img-dnn", 0.2)],
                strategy,
            )
        }
    }

    #[test]
    fn duplicated_spec_executes_once() {
        let engine = Engine::new(4);
        let spec = tiny_spec(7, StrategyKind::Unmanaged);
        let results = engine.run_all(&[spec.clone(), spec]);
        let stats = engine.stats();
        assert_eq!(stats.misses, 1, "one unique spec, one execution");
        assert_eq!(stats.hits, 1, "the duplicate is a hit");
        assert!(
            Arc::ptr_eq(&results[0], &results[1]),
            "duplicates share one result"
        );
    }

    #[test]
    fn cache_persists_across_calls() {
        let engine = Engine::new(2);
        let spec = tiny_spec(9, StrategyKind::Unmanaged);
        let first = engine.run_one(&spec);
        let second = engine.run_one(&spec);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(engine.stats(), CacheStats { hits: 1, misses: 1 });
        assert!((engine.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn parallel_results_are_byte_identical_to_sequential() {
        let grid: Vec<RunSpec> = [0.2, 0.5, 0.8]
            .iter()
            .flat_map(|&load| {
                StrategyKind::all().map(|strategy| {
                    let mut spec = tiny_spec(11, strategy);
                    spec.loads[0].1 = load;
                    spec
                })
            })
            .collect();
        let sequential = Engine::new(1).run_all(&grid);
        let parallel = Engine::new(8).run_all(&grid);
        let render = |results: &[Arc<ahq_sched::RunResult>]| -> String {
            results
                .iter()
                .map(|r| serde_json::to_string(&**r).expect("serializable"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(render(&sequential), render(&parallel));
    }

    #[test]
    fn distinct_seeds_are_distinct_jobs() {
        let engine = Engine::new(2);
        let a = engine.run_one(&tiny_spec(1, StrategyKind::Unmanaged));
        let b = engine.run_one(&tiny_spec(2, StrategyKind::Unmanaged));
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(engine.stats().misses, 2);
    }

    #[test]
    fn static_scheduler_never_adjusts() {
        let spec = RunSpec {
            sched: SchedSpec::Static(Partition::all_shared(4)),
            ..tiny_spec(5, StrategyKind::Unmanaged)
        };
        let result = spec.execute();
        assert_eq!(result.strategy, "static");
        assert_eq!(result.adjustments, 0);
    }
}
