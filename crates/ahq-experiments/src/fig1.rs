//! Fig. 1: the motivating example — two scheduling strategies, A and B,
//! whose raw tail-latency/IPC numbers are hard to compare, disambiguated
//! by `E_S`.
//!
//! Strategy A lets Img-dnn exceed its threshold by 4.4 % (within the 5 %
//! elasticity) while the BE application thrives (IPC 2.63); strategy B
//! fixes Img-dnn but crushes the BE application (IPC 1.15). The paper's
//! point: 7 numbers per strategy are hard to weigh, one `E_S` is not —
//! and it correctly prefers A.
//!
//! Two reproductions: (1) the paper's exact Fig. 1 numbers scored by our
//! `E_S` implementation; (2) a simulated analogue where A shares the whole
//! machine and B is a static strict partition biased toward Img-dnn.

use ahq_core::{BeMeasurement, LcMeasurement};
use ahq_sim::{MachineConfig, Partition, RegionAlloc};
use ahq_workloads::mixes;

use crate::exec::{ExpContext, RunSpec, SchedSpec};
use crate::report::{f2, f3, ExperimentReport, TextTable};
use crate::strategy::StrategyKind;

/// Regenerates Fig. 1.
pub fn run(cfg: &ExpContext) -> ExperimentReport {
    let mut report = ExperimentReport::new("fig1", "Fig 1: motivating example (strategy A vs B)");
    let model = cfg.model();

    // --- 1. The paper's exact numbers -----------------------------------
    // Fig. 1 gives Img-dnn's threshold 3.98 ms; strategy A exceeds it by
    // 4.4 %, strategy B meets it; Fluidanimate's IPC is 2.63 under A and
    // 1.15 under B. Xapian and Moses meet their targets under both.
    let lc_a = vec![
        LcMeasurement::new("xapian", 2.77, 3.60, 4.22).expect("valid"),
        LcMeasurement::new("moses", 2.80, 5.00, 10.53).expect("valid"),
        LcMeasurement::new("img-dnn", 1.41, 3.98 * 1.044, 3.98).expect("valid"),
    ];
    let lc_b = vec![
        LcMeasurement::new("xapian", 2.77, 3.60, 4.22).expect("valid"),
        LcMeasurement::new("moses", 2.80, 5.00, 10.53).expect("valid"),
        LcMeasurement::new("img-dnn", 1.41, 3.40, 3.98).expect("valid"),
    ];
    let be_a = vec![BeMeasurement::new("fluidanimate", 2.8, 2.63).expect("valid")];
    let be_b = vec![BeMeasurement::new("fluidanimate", 2.8, 1.15).expect("valid")];
    let report_a = model.evaluate(&lc_a, &be_a);
    let report_b = model.evaluate(&lc_b, &be_b);

    let mut paper_table = TextTable::new(
        "The paper's Fig. 1 numbers, scored by this implementation",
        &[
            "strategy",
            "img-dnn p95",
            "fluid IPC",
            "E_LC",
            "E_BE",
            "E_S",
            "yield (5% elastic)",
        ],
    );
    for (label, lc, be, r) in [
        ("A", &lc_a, &be_a, &report_a),
        ("B", &lc_b, &be_b, &report_b),
    ] {
        paper_table.push_row(vec![
            label.into(),
            f2(lc[2].observed()),
            f2(be[0].ipc_real()),
            f3(r.lc),
            f3(r.be),
            f3(r.system),
            f2(r.yield_fraction),
        ]);
    }
    report.tables.push(paper_table);
    report.note(format!(
        "E_S prefers strategy A ({:.3}) over B ({:.3}): the 4.4 % Img-dnn violation is within \
         the 5 % threshold elasticity, while B's BE collapse is not — the paper's exact \
         argument.",
        report_a.system, report_b.system
    ));

    // --- 2. A simulated analogue ----------------------------------------
    let mix = mixes::fluidanimate_mix();
    let loads = [("xapian", 0.3), ("moses", 0.3), ("img-dnn", 0.5)];
    let machine = MachineConfig::paper_xeon();

    // Strategy A: everything shared — latency a whisker over target,
    // BE thriving. Strategy B: a static strict partition biased toward
    // Img-dnn. Both submitted as one batch.
    let specs = [
        RunSpec::strategy(cfg, machine, &mix, &loads, StrategyKind::Unmanaged),
        RunSpec {
            sched: SchedSpec::Static(Partition::strict(vec![
                RegionAlloc::new(2, 4),
                RegionAlloc::new(2, 4),
                RegionAlloc::new(5, 10), // img-dnn hoards
                RegionAlloc::new(1, 2),  // fluidanimate gets the sliver
            ])),
            ..RunSpec::strategy(cfg, machine, &mix, &loads, StrategyKind::Unmanaged)
        },
    ];
    let results = cfg.engine().run_all(&specs);
    let (a, b) = (&results[0], &results[1]);

    let steady = cfg.steady();
    let mut sim_table = TextTable::new(
        "Simulated analogue (A = full sharing, B = static Img-dnn-biased partition)",
        &[
            "strategy",
            "img-dnn p95",
            "fluid IPC",
            "E_LC",
            "E_BE",
            "E_S",
        ],
    );
    for (label, r) in [("A (shared)", a), ("B (strict)", b)] {
        sim_table.push_row(vec![
            label.into(),
            f2(r.steady_p95("img-dnn", steady).unwrap_or(f64::NAN)),
            f2(r.steady_ipc("fluidanimate", steady).unwrap_or(f64::NAN)),
            f3(r.steady_lc_entropy(steady)),
            f3(r.steady_be_entropy(steady)),
            f3(r.steady_entropy(steady)),
        ]);
    }
    report.tables.push(sim_table);
    report.note(
        "Simulated analogue shape: the BE-crushing strict partition scores a higher E_S than \
         managed sharing even though its Img-dnn latency is lower."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_prefers_strategy_a_like_the_paper() {
        let cfg = ExpContext::new(crate::runs::ExpConfig {
            quick: true,
            seed: 61,
        });
        let report = run(&cfg);
        let t = &report.tables[0];
        let es = |label: &str| -> f64 {
            t.rows
                .iter()
                .find(|r| r[0] == label)
                .and_then(|r| r[5].parse().ok())
                .expect("strategy row")
        };
        assert!(
            es("A") < es("B"),
            "A {:.3} must beat B {:.3}",
            es("A"),
            es("B")
        );
        // The elastic yield forgives A's 4.4 % violation.
        let yield_a: f64 = t.rows[0][6].parse().unwrap();
        assert_eq!(yield_a, 1.0);
        // The simulated analogue points the same way.
        let sim = &report.tables[1];
        let es_a: f64 = sim.rows[0][5].parse().unwrap();
        let es_b: f64 = sim.rows[1][5].parse().unwrap();
        assert!(es_a < es_b, "simulated A {es_a:.3} vs B {es_b:.3}");
    }
}
