//! Fig. 12: scalability — all six LC applications (Moses, Xapian, Img-dnn,
//! Sphinx, Masstree, Silo) at 20 % load collocated with two BE
//! applications (Fluidanimate, Streamcluster), PARTIES vs ARQ.

use ahq_sim::MachineConfig;
use ahq_workloads::mixes;

use crate::exec::{ExpContext, RunSpec};
use crate::report::{f2, f3, ExperimentReport, TextTable};
use crate::strategy::StrategyKind;

/// Regenerates Fig. 12.
pub fn run(cfg: &ExpContext) -> ExperimentReport {
    let mut report = ExperimentReport::new("fig12", "Fig 12: 6 LC + 2 BE collocation");
    let mix = mixes::large_mix();
    let loads: Vec<(&str, f64)> = mix.lc_names().into_iter().map(|n| (n, 0.2)).collect();

    let mut lat_table = TextTable::new(
        "Per-app p95 (ms) at 20 % load",
        &["app", "M_i", "parties", "arq"],
    );
    let mut ipc_table = TextTable::new("BE IPC", &["app", "ipc_solo", "parties", "arq"]);
    let mut entropy_table =
        TextTable::new("Entropy", &["strategy", "E_LC", "E_BE", "E_S", "yield"]);

    let strategies = [StrategyKind::Parties, StrategyKind::Arq];
    let specs: Vec<RunSpec> = strategies
        .iter()
        .map(|&s| RunSpec::strategy(cfg, MachineConfig::paper_xeon(), &mix, &loads, s))
        .collect();
    let run_results = cfg.engine().run_all(&specs);
    let mut results = Vec::new();
    for (strategy, result) in strategies.into_iter().zip(run_results) {
        let steady = cfg.steady();
        entropy_table.push_row(vec![
            strategy.name().into(),
            f3(result.steady_lc_entropy(steady)),
            f3(result.steady_be_entropy(steady)),
            f3(result.steady_entropy(steady)),
            f2(result.steady_yield(steady)),
        ]);
        results.push((strategy, result));
    }

    for spec in &mix.apps {
        let steady = cfg.steady();
        match spec.qos_threshold_ms() {
            Some(qos) => {
                let mut row = vec![spec.name().to_owned(), f2(qos)];
                for (_, result) in &results {
                    row.push(f2(result
                        .steady_p95(spec.name(), steady)
                        .unwrap_or(f64::NAN)));
                }
                lat_table.push_row(row);
            }
            None => {
                let mut row = vec![spec.name().to_owned(), f2(spec.ipc_solo().expect("BE app"))];
                for (_, result) in &results {
                    row.push(f2(result
                        .steady_ipc(spec.name(), steady)
                        .unwrap_or(f64::NAN)));
                }
                ipc_table.push_row(row);
            }
        }
    }

    report.tables.push(lat_table);
    report.tables.push(ipc_table);
    report.tables.push(entropy_table);
    report.note(
        "Paper: doubling the collocation count keeps ARQ effective — it reduces E_S by ~36 % \
         vs PARTIES (0.33 -> 0.21) by pooling the shared region instead of fragmenting 10 \
         cores across 8 strict partitions."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arq_scales_better_than_parties() {
        let cfg = ExpContext::new(crate::runs::ExpConfig {
            quick: true,
            seed: 41,
        });
        let report = run(&cfg);
        let entropy = report
            .tables
            .iter()
            .find(|t| t.title == "Entropy")
            .expect("entropy table");
        let es = |name: &str| -> f64 {
            entropy
                .rows
                .iter()
                .find(|r| r[0] == name)
                .and_then(|r| r[3].parse().ok())
                .expect("strategy row")
        };
        assert!(
            es("arq") < es("parties"),
            "ARQ E_S {} must beat PARTIES {}",
            es("arq"),
            es("parties")
        );
    }
}
