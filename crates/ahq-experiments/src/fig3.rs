//! Fig. 3: the resource-equivalence analysis.
//!
//! (a) `E_S` as a function of the core budget for Unmanaged vs ARQ, and the
//! resource equivalence (cores saved by ARQ) at `E_S = 0.25` and `0.4`.
//!
//! (b) Isentropic lines at `E_S = 0.3`: for each LLC-way budget, the
//! minimum core count each strategy needs to reach that entropy.

use ahq_core::{resource_equivalence, EntropySeries};

use crate::error::{classify_reachability, Reachability};
use crate::exec::{ExpContext, RunSpec};
use crate::fig2::budget_spec;
use crate::report::{f2, f3, ExperimentReport, TextTable};
use crate::runs::ExpConfig;
use crate::strategy::StrategyKind;

/// The core budgets sampled for the `E_S(cores)` series.
fn series_core_points(cfg: &ExpConfig) -> Vec<u32> {
    if cfg.quick {
        vec![4, 5, 6, 8, 10]
    } else {
        (4..=10).collect()
    }
}

/// Builds the `E_S(cores)` series for one strategy at 20 ways.
pub fn entropy_series(cfg: &ExpContext, strategy: StrategyKind) -> EntropySeries {
    let core_points = series_core_points(cfg);
    let specs: Vec<RunSpec> = core_points
        .iter()
        .map(|&c| budget_spec(cfg, c, 20, strategy))
        .collect();
    let results = cfg.engine().run_all(&specs);
    let points = core_points
        .iter()
        .zip(results.iter())
        .map(|(&c, r)| (c as f64, r.steady_entropy(cfg.steady())))
        .collect();
    EntropySeries::from_points(strategy.name(), points)
}

/// Regenerates Fig. 3.
pub fn run(cfg: &ExpContext) -> ExperimentReport {
    let mut report = ExperimentReport::new("fig3", "Fig 3: resource equivalence");

    // --- (a) E_S vs cores + equivalence --------------------------------
    let unmanaged = entropy_series(cfg, StrategyKind::Unmanaged);
    let arq = entropy_series(cfg, StrategyKind::Arq);

    let mut table_a = TextTable::new(
        "Fig 3(a): E_S vs cores (20 ways)",
        &["cores", "unmanaged", "arq"],
    );
    for ((c, eu), (_, ea)) in unmanaged.points().iter().zip(arq.points().iter()) {
        table_a.push_row(vec![format!("{c:.0}"), f3(*eu), f3(*ea)]);
    }
    report.tables.push(table_a);

    let mut table_eq = TextTable::new(
        "Resource equivalence of ARQ vs Unmanaged",
        &["target E_S", "unmanaged cores", "arq cores", "saved"],
    );
    for target in [0.25, 0.4] {
        match classify_reachability(&unmanaged, &arq, target) {
            Ok(Reachability::Both { .. }) => {
                let eq = resource_equivalence(&unmanaged, &arq, target)
                    .expect("both series reach the target");
                table_eq.push_row(vec![
                    f2(target),
                    f2(eq.baseline_resource),
                    f2(eq.candidate_resource),
                    f2(eq.saved),
                ]);
                report.note(format!(
                    "E_S = {target}: ARQ saves {:.2} cores (paper: 2.0 at 0.25, 1.83 at 0.4)",
                    eq.saved
                ));
            }
            Ok(Reachability::CandidateOnly { candidate }) => {
                table_eq.push_row(vec![f2(target), ">10".into(), f2(candidate), "n/a".into()]);
                report.note(format!(
                    "E_S = {target}: only ARQ reaches it in the sampled 4-10 core range \
                     (an unquantifiable saving)"
                ));
            }
            Ok(Reachability::Neither) => {
                table_eq.push_row(vec![f2(target), "n/a".into(), "n/a".into(), "n/a".into()]);
                report.note(format!(
                    "E_S = {target}: not reachable within the sampled 4-10 core range"
                ));
            }
            Err(err) => {
                // One bad cell degrades into a recorded error; the rest of
                // the figure (and any surrounding `repro all`) still runs.
                table_eq.push_row(vec![f2(target), "err".into(), "err".into(), "err".into()]);
                report.error(err);
            }
        }
    }
    report.tables.push(table_eq);

    // --- (b) isentropic lines at E_S = 0.3 -----------------------------
    let strategies = [
        StrategyKind::Unmanaged,
        StrategyKind::Parties,
        StrategyKind::Clite,
        StrategyKind::Arq,
    ];
    let way_points: Vec<u32> = if cfg.quick {
        vec![6, 10, 14, 20]
    } else {
        vec![4, 6, 8, 10, 12, 16, 20]
    };
    let core_points = series_core_points(cfg);

    // The whole (ways x strategies x cores) grid as one batch; the cache
    // dedups the 20-way column already measured for part (a).
    let mut specs = Vec::new();
    for &w in &way_points {
        for strategy in strategies {
            for &c in &core_points {
                specs.push(budget_spec(cfg, c, w, strategy));
            }
        }
    }
    let results = cfg.engine().run_all(&specs);
    let mut entropies = results.iter().map(|r| r.steady_entropy(cfg.steady()));

    let mut table_b = TextTable::new(
        "Fig 3(b): min cores for E_S <= 0.3, per LLC-way budget",
        &["ways", "unmanaged", "parties", "clite", "arq"],
    );
    for &w in &way_points {
        let mut row = vec![w.to_string()];
        for strategy in strategies {
            let pts: Vec<(f64, f64)> = core_points
                .iter()
                .map(|&c| (c as f64, entropies.next().expect("job per cell")))
                .collect();
            let series = EntropySeries::from_points(strategy.name(), pts);
            match series.resource_for_entropy(0.3) {
                Some(cores) => row.push(f2(cores)),
                None => row.push(">10".into()),
            }
        }
        table_b.push_row(row);
    }
    report.tables.push(table_b);
    report.note(
        "Paper shape: with ample ways the lines converge; under way scarcity (< 10 ways) \
         ARQ needs visibly fewer cores than PARTIES/CLITE for the same E_S."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arq_series_sits_below_unmanaged_when_scarce() {
        let cfg = ExpContext::new(ExpConfig {
            quick: true,
            seed: 5,
        });
        let unmanaged = entropy_series(&cfg, StrategyKind::Unmanaged);
        let arq = entropy_series(&cfg, StrategyKind::Arq);
        // At the scarce end of the sweep ARQ must need no more cores for
        // E_S = 0.3 than Unmanaged. The classifier turns the one illegal
        // combination (only Unmanaged reaching it) into a typed error.
        let target = 0.3;
        match classify_reachability(&unmanaged, &arq, target).expect("arq must not regress") {
            Reachability::Both {
                baseline: u,
                candidate: a,
            } => assert!(a <= u + 0.25, "arq {a:.2} vs unmanaged {u:.2}"),
            Reachability::CandidateOnly { .. } => {} // strict improvement: fine
            Reachability::Neither => panic!("E_S = {target} unreachable for both strategies"),
        }
    }
}
