//! The five strategies under evaluation, as a value type the experiment
//! harness can enumerate.

use ahq_sched::{Arq, Clite, Heracles, LcFirst, Parties, Scheduler, Unmanaged};
use serde::{Deserialize, Serialize};

/// One of the paper's five scheduling strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StrategyKind {
    /// OS default, everything shared fairly.
    Unmanaged,
    /// Everything shared, LC real-time priority.
    LcFirst,
    /// PARTIES: strict partitioning, slack-driven FSM.
    Parties,
    /// CLITE: strict partitioning via Bayesian optimization.
    Clite,
    /// ARQ: the paper's isolated+shared region strategy.
    Arq,
    /// Heracles-style threshold controller (extra baseline, not part of
    /// the paper's five-strategy comparison grids).
    Heracles,
}

impl StrategyKind {
    /// The paper's five strategies, in its presentation order. The extra
    /// [`StrategyKind::Heracles`] baseline is excluded so the figure grids
    /// match the paper's columns; use [`StrategyKind::extended`] for all
    /// six.
    pub fn all() -> [StrategyKind; 5] {
        [
            StrategyKind::Unmanaged,
            StrategyKind::LcFirst,
            StrategyKind::Parties,
            StrategyKind::Clite,
            StrategyKind::Arq,
        ]
    }

    /// All implemented strategies, including the extra Heracles baseline.
    pub fn extended() -> [StrategyKind; 6] {
        [
            StrategyKind::Unmanaged,
            StrategyKind::LcFirst,
            StrategyKind::Parties,
            StrategyKind::Clite,
            StrategyKind::Arq,
            StrategyKind::Heracles,
        ]
    }

    /// The strategy's display name.
    pub fn name(&self) -> &'static str {
        match self {
            StrategyKind::Unmanaged => "unmanaged",
            StrategyKind::LcFirst => "lc-first",
            StrategyKind::Parties => "parties",
            StrategyKind::Clite => "clite",
            StrategyKind::Arq => "arq",
            StrategyKind::Heracles => "heracles",
        }
    }

    /// Instantiates a fresh scheduler.
    pub fn build(&self) -> Box<dyn Scheduler> {
        match self {
            StrategyKind::Unmanaged => Box::new(Unmanaged),
            StrategyKind::LcFirst => Box::new(LcFirst),
            StrategyKind::Parties => Box::new(Parties::new()),
            StrategyKind::Clite => Box::new(Clite::new()),
            StrategyKind::Arq => Box::new(Arq::new()),
            StrategyKind::Heracles => Box::new(Heracles::new()),
        }
    }

    /// Parses a strategy from its display name.
    pub fn parse(name: &str) -> Option<StrategyKind> {
        StrategyKind::extended()
            .into_iter()
            .find(|k| k.name() == name.to_ascii_lowercase())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for kind in StrategyKind::extended() {
            assert_eq!(StrategyKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.build().name(), kind.name());
        }
        assert_eq!(StrategyKind::parse("nope"), None);
    }
}
