//! `repro` — regenerate the Ah-Q paper's tables and figures.
//!
//! ```text
//! repro [--quick] [--seed N] [--out DIR] [--json FILE] [all | <ids>...]
//! repro --list
//! ```
//!
//! Each experiment prints aligned text tables; with `--out DIR` the tables
//! are additionally written as CSV files (`<id>_<n>.csv`), and with
//! `--json FILE` all reports are dumped as one JSON document.

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use ahq_experiments::{all_experiments, ExpConfig};

fn main() -> ExitCode {
    let mut quick = false;
    let mut seed = 42u64;
    let mut out: Option<PathBuf> = None;
    let mut json: Option<PathBuf> = None;
    let mut picks: Vec<String> = Vec::new();
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--seed" => match args.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = s,
                None => return usage("--seed needs an integer"),
            },
            "--out" => match args.next() {
                Some(dir) => out = Some(PathBuf::from(dir)),
                None => return usage("--out needs a directory"),
            },
            "--json" => match args.next() {
                Some(file) => json = Some(PathBuf::from(file)),
                None => return usage("--json needs a file path"),
            },
            "--list" => {
                for (id, title, _) in all_experiments() {
                    println!("{id:<10} {title}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => return usage(""),
            other if other.starts_with('-') => {
                return usage(&format!("unknown flag {other:?}"))
            }
            other => picks.push(other.to_string()),
        }
    }

    let experiments = all_experiments();
    let selected: Vec<_> = if picks.is_empty() || picks.iter().any(|p| p == "all") {
        experiments
    } else {
        let known: Vec<&str> = experiments.iter().map(|(id, _, _)| *id).collect();
        for p in &picks {
            if !known.contains(&p.as_str()) {
                return usage(&format!("unknown experiment {p:?}; try --list"));
            }
        }
        experiments
            .into_iter()
            .filter(|(id, _, _)| picks.iter().any(|p| p == id))
            .collect()
    };

    let cfg = ExpConfig { quick, seed };
    if let Some(dir) = &out {
        if let Err(e) = fs::create_dir_all(dir) {
            eprintln!("cannot create {dir:?}: {e}");
            return ExitCode::FAILURE;
        }
    }

    let mut reports = Vec::new();
    for (id, title, runner) in selected {
        eprintln!(">>> running {id} ({title}){}", if quick { " [quick]" } else { "" });
        let t0 = Instant::now();
        let report = runner(&cfg);
        println!("{}", report.render());
        eprintln!("<<< {id} done in {:.1?}\n", t0.elapsed());
        if let Some(dir) = &out {
            for (i, table) in report.tables.iter().enumerate() {
                let path = dir.join(format!("{id}_{i}.csv"));
                if let Err(e) = fs::write(&path, table.to_csv()) {
                    eprintln!("cannot write {path:?}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        reports.push(report);
    }
    if let Some(file) = &json {
        match serde_json::to_string_pretty(&reports) {
            Ok(body) => {
                if let Err(e) = fs::write(file, body) {
                    eprintln!("cannot write {file:?}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            Err(e) => {
                eprintln!("cannot serialize reports: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn usage(error: &str) -> ExitCode {
    if !error.is_empty() {
        eprintln!("error: {error}");
    }
    eprintln!("usage: repro [--quick] [--seed N] [--out DIR] [--json FILE] [all | <ids>...]");
    eprintln!("       repro --list");
    if error.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
