//! `repro` — regenerate the Ah-Q paper's tables and figures.
//!
//! ```text
//! repro [--quick] [--seed N] [--jobs N] [--out DIR] [--json FILE]
//!       [--timings FILE] [--cache-dir DIR] [--cache-max-mb N]
//!       [--nodes N] [--rounds N] [--fidelity MODE]
//!       [--pop N] [--gens N] [--eval MODE] [--train-out FILE]
//!       [--artifact FILE] [all | <ids>...]
//! repro --list
//! ```
//!
//! Each experiment prints aligned text tables; with `--out DIR` the tables
//! are additionally written as CSV files (`<id>_<n>.csv`), and with
//! `--json FILE` all reports are dumped as one JSON document.
//!
//! `--jobs N` sets the worker count of the deterministic run engine
//! (default: one per available core; output is byte-identical for any N).
//! `--timings FILE` writes a JSON timing/cache profile of the invocation.
//!
//! `--cache-dir DIR` attaches the persistent tier-2 run cache (DESIGN.md
//! §14): results are content-addressed on disk and survive the process,
//! so a rerun of the same experiments warm-starts. `--cache-max-mb N`
//! bounds the store; the budget is enforced (oldest entries first) when
//! the invocation finishes. Output bytes are identical with the cache
//! off, cold, or warm.
//!
//! `--nodes N` switches the `cluster` experiment from its placement grid
//! to one scaled scenario at `N` nodes (`--rounds` rounds, default 1000);
//! `--fidelity ladder` enables the HI-FI/LO-FI fidelity ladder
//! (DESIGN.md §8), which is what makes `--nodes 10000` tractable.
//!
//! `--pop N` / `--gens N` size the `train` experiment's search budget;
//! `--eval full|ladder` forces full-fidelity evaluation or the
//! successive-halving screening ladder (the default);
//! `--train-out FILE` saves the trained policy artifact, and
//! `--artifact FILE` is what the `replay` experiment loads back.

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use ahq_cluster::FidelityMode;
use ahq_core::json::{JsonValue, ToJson};
use ahq_experiments::{
    all_experiments, extra_experiments, ClusterOpts, ExpConfig, ExpContext, Metric, TrainOpts,
};

/// One experiment's wall-clock entry in the `--timings` report.
#[derive(Debug)]
struct ExperimentTiming {
    id: String,
    seconds: f64,
    /// Deterministic scalar metrics the experiment exported (e.g. the
    /// cluster experiment's HI-FI/LO-FI node-window split).
    metrics: Vec<Metric>,
}

impl ToJson for ExperimentTiming {
    fn to_json(&self) -> JsonValue {
        let mut fields = vec![
            ("id", self.id.to_json()),
            ("seconds", self.seconds.to_json()),
        ];
        if !self.metrics.is_empty() {
            fields.push((
                "metrics",
                JsonValue::Array(
                    self.metrics
                        .iter()
                        .map(|m| {
                            JsonValue::object(vec![
                                ("name", m.name.to_json()),
                                ("value", m.value.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        JsonValue::object(fields)
    }
}

/// The `--timings FILE` document.
#[derive(Debug)]
struct TimingsReport {
    jobs: usize,
    quick: bool,
    seed: u64,
    total_seconds: f64,
    cache_hits: u64,
    cache_misses: u64,
    cache_hit_rate: f64,
    /// Discrete simulator events processed across every executed run.
    simulated_events: u64,
    /// `simulated_events / total_seconds` — the throughput headline.
    events_per_second: f64,
    /// Fluid-rate-cache lookups answered from memory inside the
    /// simulators.
    rate_cache_hits: u64,
    /// Fluid-rate-cache lookups that ran the contention solver.
    rate_cache_misses: u64,
    /// `rate_cache_hits / (hits + misses)`, in `[0, 1]`.
    rate_cache_hit_rate: f64,
    /// Tier-2 (persistent disk) cache counters; present only when
    /// `--cache-dir` was given.
    disk: Option<ahq_experiments::DiskCacheStats>,
    experiments: Vec<ExperimentTiming>,
}

impl ToJson for TimingsReport {
    fn to_json(&self) -> JsonValue {
        let mut fields = vec![
            ("jobs", self.jobs.to_json()),
            ("quick", self.quick.to_json()),
            ("seed", self.seed.to_json()),
            ("total_seconds", self.total_seconds.to_json()),
            ("cache_hits", self.cache_hits.to_json()),
            ("cache_misses", self.cache_misses.to_json()),
            ("cache_hit_rate", self.cache_hit_rate.to_json()),
            ("simulated_events", self.simulated_events.to_json()),
            ("events_per_second", self.events_per_second.to_json()),
            ("rate_cache_hits", self.rate_cache_hits.to_json()),
            ("rate_cache_misses", self.rate_cache_misses.to_json()),
            ("rate_cache_hit_rate", self.rate_cache_hit_rate.to_json()),
        ];
        if let Some(disk) = &self.disk {
            fields.extend([
                ("disk_hits", disk.hits.to_json()),
                ("disk_misses", disk.misses.to_json()),
                ("disk_hit_rate", disk.hit_rate().to_json()),
                ("disk_bytes_read", disk.bytes_read.to_json()),
                ("disk_bytes_written", disk.bytes_written.to_json()),
                ("disk_evicted_files", disk.evicted_files.to_json()),
                ("disk_evicted_bytes", disk.evicted_bytes.to_json()),
            ]);
        }
        fields.push(("experiments", self.experiments.to_json()));
        JsonValue::object(fields)
    }
}

fn main() -> ExitCode {
    let mut quick = false;
    let mut seed = 42u64;
    let mut jobs = 0usize; // 0 = one worker per available core
    let mut out: Option<PathBuf> = None;
    let mut json: Option<PathBuf> = None;
    let mut timings: Option<PathBuf> = None;
    let mut cache_dir: Option<PathBuf> = None;
    let mut cache_max_mb: Option<u64> = None;
    let mut cluster = ClusterOpts::default();
    let mut train = TrainOpts::default();
    let mut picks: Vec<String> = Vec::new();
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--nodes" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => cluster.nodes = Some(n),
                _ => return usage("--nodes needs a positive integer"),
            },
            "--rounds" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => cluster.rounds = Some(n),
                _ => return usage("--rounds needs a positive integer"),
            },
            "--fidelity" => match args.next().as_deref().and_then(FidelityMode::parse) {
                Some(mode) => cluster.fidelity = mode,
                None => return usage("--fidelity needs 'full' or 'ladder'"),
            },
            "--seed" => match args.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = s,
                None => return usage("--seed needs an integer"),
            },
            "--jobs" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) => jobs = n,
                None => return usage("--jobs needs an integer (0 = auto)"),
            },
            "--out" => match args.next() {
                Some(dir) => out = Some(PathBuf::from(dir)),
                None => return usage("--out needs a directory"),
            },
            "--json" => match args.next() {
                Some(file) => json = Some(PathBuf::from(file)),
                None => return usage("--json needs a file path"),
            },
            "--timings" => match args.next() {
                Some(file) => timings = Some(PathBuf::from(file)),
                None => return usage("--timings needs a file path"),
            },
            "--cache-dir" => match args.next() {
                Some(dir) => cache_dir = Some(PathBuf::from(dir)),
                None => return usage("--cache-dir needs a directory"),
            },
            "--cache-max-mb" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) => cache_max_mb = Some(n),
                None => return usage("--cache-max-mb needs an integer (MiB)"),
            },
            "--pop" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) if n >= 2 => train.population = Some(n),
                _ => return usage("--pop needs an integer >= 2"),
            },
            "--gens" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => train.generations = Some(n),
                _ => return usage("--gens needs a positive integer"),
            },
            "--eval" => match args.next().as_deref() {
                Some("full") => train.ladder = Some(false),
                Some("ladder") => train.ladder = Some(true),
                _ => return usage("--eval needs a mode: full | ladder"),
            },
            "--train-out" => match args.next() {
                Some(file) => train.out = Some(PathBuf::from(file)),
                None => return usage("--train-out needs a file path"),
            },
            "--artifact" => match args.next() {
                Some(file) => train.artifact = Some(PathBuf::from(file)),
                None => return usage("--artifact needs a file path"),
            },
            "--list" => {
                for (id, title, _) in all_experiments() {
                    println!("{id:<10} {title}");
                }
                for (id, title, _) in extra_experiments() {
                    println!("{id:<10} {title} [not in 'all']");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => return usage(""),
            other if other.starts_with('-') => return usage(&format!("unknown flag {other:?}")),
            other => picks.push(other.to_string()),
        }
    }

    // `all` regenerates the pinned paper set; families in
    // `extra_experiments` (e.g. `gctrl`) run only when picked by id, so
    // the byte-pinned `repro all` output never moves when one lands.
    let experiments = all_experiments();
    let selected: Vec<_> = if picks.is_empty() || picks.iter().any(|p| p == "all") {
        experiments
    } else {
        let mut pool = experiments;
        pool.extend(extra_experiments());
        let known: Vec<&str> = pool.iter().map(|(id, _, _)| *id).collect();
        for p in &picks {
            if !known.contains(&p.as_str()) {
                return usage(&format!("unknown experiment {p:?}; try --list"));
            }
        }
        pool.into_iter()
            .filter(|(id, _, _)| picks.iter().any(|p| p == id))
            .collect()
    };

    // One context for the whole invocation: the run cache is shared across
    // experiments, so a configuration measured by fig8 is free for
    // headline, fig3 reuses fig2's budget points, and so on.
    let mut cfg = ExpContext::with_jobs(ExpConfig { quick, seed }, jobs);
    cfg.cluster = cluster;
    cfg.train = train;
    if let Some(dir) = &cache_dir {
        let max_bytes = cache_max_mb.map(|mb| mb.saturating_mul(1024 * 1024));
        match ahq_experiments::DiskCache::open(dir, max_bytes) {
            Ok(disk) => cfg.engine_mut().set_disk_cache(disk),
            Err(e) => {
                eprintln!("cannot open cache dir {dir:?}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(dir) = &out {
        if let Err(e) = fs::create_dir_all(dir) {
            eprintln!("cannot create {dir:?}: {e}");
            return ExitCode::FAILURE;
        }
    }

    let t_start = Instant::now();
    let mut reports = Vec::new();
    let mut experiment_timings = Vec::new();
    for (id, title, runner) in selected {
        eprintln!(
            ">>> running {id} ({title}){}",
            if quick { " [quick]" } else { "" }
        );
        let t0 = Instant::now();
        let report = runner(&cfg);
        let elapsed = t0.elapsed();
        println!("{}", report.render());
        eprintln!("<<< {id} done in {elapsed:.1?}\n");
        experiment_timings.push(ExperimentTiming {
            id: id.to_string(),
            seconds: elapsed.as_secs_f64(),
            metrics: report.metrics.clone(),
        });
        if let Some(dir) = &out {
            for (i, table) in report.tables.iter().enumerate() {
                let path = dir.join(format!("{id}_{i}.csv"));
                if let Err(e) = fs::write(&path, table.to_csv()) {
                    eprintln!("cannot write {path:?}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        reports.push(report);
    }
    let total = t_start.elapsed();
    let stats = cfg.engine().stats();
    let sim = cfg.engine().sim_stats();
    let rate_lookups = sim.rate_hits + sim.rate_misses;
    let rate_hit_rate = if rate_lookups == 0 {
        0.0
    } else {
        sim.rate_hits as f64 / rate_lookups as f64
    };
    eprintln!(
        "=== total {total:.1?} with {} worker(s); run cache: {} hits / {} misses ({:.1} % hit rate)",
        cfg.engine().jobs(),
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0,
    );
    eprintln!(
        "=== simulated {} events ({:.0} events/s); rate cache: {} hits / {} misses ({:.1} % hit rate)",
        sim.events,
        sim.events as f64 / total.as_secs_f64().max(1e-9),
        sim.rate_hits,
        sim.rate_misses,
        rate_hit_rate * 100.0,
    );
    // Seal the persistent tier: sweep stale tmp files, enforce the byte
    // budget, then report the disk counters (eviction included).
    let disk_stats = cfg.engine().disk_cache().map(|disk| {
        disk.enforce_limit();
        let d = disk.stats();
        eprintln!(
            "=== disk cache {:?}: {} hits / {} misses ({:.1} % hit rate); {} B read, {} B written, {} entries evicted",
            disk.root(),
            d.hits,
            d.misses,
            d.hit_rate() * 100.0,
            d.bytes_read,
            d.bytes_written,
            d.evicted_files,
        );
        d
    });

    if let Some(file) = &json {
        match serde_json::to_string_pretty(&reports) {
            Ok(body) => {
                if let Err(e) = fs::write(file, body) {
                    eprintln!("cannot write {file:?}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            Err(e) => {
                eprintln!("cannot serialize reports: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(file) = &timings {
        let doc = TimingsReport {
            jobs: cfg.engine().jobs(),
            quick,
            seed,
            total_seconds: total.as_secs_f64(),
            cache_hits: stats.hits,
            cache_misses: stats.misses,
            cache_hit_rate: stats.hit_rate(),
            simulated_events: sim.events,
            events_per_second: sim.events as f64 / total.as_secs_f64().max(1e-9),
            rate_cache_hits: sim.rate_hits,
            rate_cache_misses: sim.rate_misses,
            rate_cache_hit_rate: rate_hit_rate,
            disk: disk_stats,
            experiments: experiment_timings,
        };
        if let Err(e) = fs::write(file, ahq_core::json::to_string_pretty(&doc) + "\n") {
            eprintln!("cannot write {file:?}: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn usage(error: &str) -> ExitCode {
    if !error.is_empty() {
        eprintln!("error: {error}");
    }
    eprintln!(
        "usage: repro [--quick] [--seed N] [--jobs N] [--out DIR] [--json FILE] \
         [--timings FILE] [--cache-dir DIR] [--cache-max-mb N] \
         [--nodes N] [--rounds N] [--fidelity full|ladder] \
         [--pop N] [--gens N] [--eval full|ladder] [--train-out FILE] \
         [--artifact FILE] [all | <ids>...]"
    );
    eprintln!("       repro --list");
    if error.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
