//! Rendering experiment output: aligned text tables and CSV.

use serde::{Deserialize, Serialize};

/// A simple column-aligned text table that doubles as a CSV source.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TextTable {
    /// Table caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; each must have `headers.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        TextTable {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("### {}\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths.iter())
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// One scalar metric exported by an experiment into the `repro --timings`
/// profile. Values must be deterministic functions of the experiment's
/// simulation output (never wall-clock), so repeated runs agree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Metric {
    /// Metric name, e.g. `hifi_node_windows`.
    pub name: String,
    /// Metric value.
    pub value: f64,
}

/// The rendered result of one experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// Short identifier (e.g. `fig8`).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Free-form notes: paper-vs-measured comparisons, substitutions, etc.
    pub notes: Vec<String>,
    /// Analysis errors the experiment survived: one grid cell failing an
    /// invariant is recorded here instead of aborting the whole run.
    pub errors: Vec<String>,
    /// The result tables.
    pub tables: Vec<TextTable>,
    /// Scalar metrics surfaced in the `--timings` profile.
    #[serde(default)]
    pub metrics: Vec<Metric>,
}

impl ExperimentReport {
    /// Creates an empty report.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        ExperimentReport {
            id: id.into(),
            title: title.into(),
            notes: Vec::new(),
            errors: Vec::new(),
            tables: Vec::new(),
            metrics: Vec::new(),
        }
    }

    /// Adds a note line.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Records a scalar metric for the `--timings` profile.
    pub fn metric(&mut self, name: impl Into<String>, value: f64) {
        self.metrics.push(Metric {
            name: name.into(),
            value,
        });
    }

    /// Records a survivable analysis error.
    pub fn error(&mut self, error: impl ToString) {
        self.errors.push(error.to_string());
    }

    /// Renders the whole report as text.
    pub fn render(&self) -> String {
        let mut out = format!("== {} — {} ==\n", self.id, self.title);
        for table in &self.tables {
            out.push('\n');
            out.push_str(&table.render());
        }
        if !self.notes.is_empty() {
            out.push_str("\nNotes:\n");
            for n in &self.notes {
                out.push_str(&format!("  * {n}\n"));
            }
        }
        if !self.errors.is_empty() {
            out.push_str("\nErrors:\n");
            for e in &self.errors {
                out.push_str(&format!("  ! {e}\n"));
            }
        }
        out
    }
}

/// Formats a float with three decimals (the standard cell format).
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a float with two decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = TextTable::new("demo", &["name", "value"]);
        t.push_row(vec!["short".into(), "1".into()]);
        t.push_row(vec!["a-much-longer-name".into(), "22".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert!(lines[0].starts_with("### demo"));
        // Both data lines end aligned on the value column.
        assert_eq!(lines[2].len(), lines[4].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = TextTable::new("demo", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = TextTable::new("demo", &["a", "b"]);
        t.push_row(vec!["x,y".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn report_renders_notes() {
        let mut r = ExperimentReport::new("fig0", "demo");
        r.note("paper: 1.0, measured: 1.1");
        assert!(r.render().contains("paper: 1.0"));
        assert!(!r.render().contains("Errors:"));
    }

    #[test]
    fn report_renders_errors() {
        let mut r = ExperimentReport::new("fig0", "demo");
        r.error("cell (4 cores, 20 ways): unexpected reachability");
        let rendered = r.render();
        assert!(rendered.contains("Errors:"));
        assert!(rendered.contains("  ! cell (4 cores, 20 ways)"));
    }
}
