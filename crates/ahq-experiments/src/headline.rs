//! The abstract's headline numbers, aggregated over the Fig. 8 + Fig. 9
//! constant-load grids:
//!
//! * yield improvement of ARQ over PARTIES (+25 %) and CLITE (+20 %),
//! * `E_S` reduction of 36.4 % and 33.3 % respectively,
//! * low-load BE IPC gains of +63.8 % and +37.1 %.

use crate::exec::ExpContext;
use crate::fig8::{sweep, sweep_loads, SweepCell};
use crate::report::{f2, f3, ExperimentReport, TextTable};
use crate::strategy::StrategyKind;

/// Aggregates over both mixes and both background settings.
pub fn collect_cells(cfg: &ExpContext) -> Vec<SweepCell> {
    let loads = sweep_loads(cfg);
    let mut cells = Vec::new();
    for mix in [
        ahq_workloads::mixes::fluidanimate_mix(),
        ahq_workloads::mixes::stream_mix(),
    ] {
        for background in [0.2, 0.4] {
            cells.extend(sweep(cfg, &mix, "xapian", background, &loads));
        }
    }
    cells
}

/// Regenerates the headline table.
pub fn run(cfg: &ExpContext) -> ExperimentReport {
    let mut report = ExperimentReport::new("headline", "Headline numbers (abstract / §VI)");
    let cells = collect_cells(cfg);

    let agg = |strategy: StrategyKind, f: &dyn Fn(&SweepCell) -> f64| -> f64 {
        let vs: Vec<f64> = cells
            .iter()
            .filter(|c| c.strategy == strategy)
            .map(f)
            .collect();
        vs.iter().sum::<f64>() / vs.len().max(1) as f64
    };
    let low_agg = |strategy: StrategyKind, f: &dyn Fn(&SweepCell) -> f64| -> f64 {
        let vs: Vec<f64> = cells
            .iter()
            .filter(|c| c.strategy == strategy && c.primary_load <= 0.5)
            .map(f)
            .collect();
        vs.iter().sum::<f64>() / vs.len().max(1) as f64
    };

    let mut table = TextTable::new(
        "Aggregates over the Fig 8 + Fig 9 grids",
        &["strategy", "mean yield", "mean E_S", "low-load BE IPC"],
    );
    for strategy in StrategyKind::all() {
        table.push_row(vec![
            strategy.name().into(),
            f2(agg(strategy, &|c| c.yield_fraction)),
            f3(agg(strategy, &|c| c.e_s)),
            f2(low_agg(strategy, &|c| c.be_ipc)),
        ]);
    }
    report.tables.push(table);

    let y = |s| agg(s, &|c: &SweepCell| c.yield_fraction);
    let es = |s| agg(s, &|c: &SweepCell| c.e_s);
    let ipc = |s| low_agg(s, &|c: &SweepCell| c.be_ipc);
    report.note(format!(
        "Yield: ARQ {:.2} vs PARTIES {:.2} (+{:.0} pp; paper +25 pp) and CLITE {:.2} \
         (+{:.0} pp; paper +20 pp)",
        y(StrategyKind::Arq),
        y(StrategyKind::Parties),
        (y(StrategyKind::Arq) - y(StrategyKind::Parties)) * 100.0,
        y(StrategyKind::Clite),
        (y(StrategyKind::Arq) - y(StrategyKind::Clite)) * 100.0,
    ));
    report.note(format!(
        "E_S: ARQ {:.3} vs PARTIES {:.3} (-{:.1} %; paper -36.4 %) and CLITE {:.3} \
         (-{:.1} %; paper -33.3 %)",
        es(StrategyKind::Arq),
        es(StrategyKind::Parties),
        (1.0 - es(StrategyKind::Arq) / es(StrategyKind::Parties)) * 100.0,
        es(StrategyKind::Clite),
        (1.0 - es(StrategyKind::Arq) / es(StrategyKind::Clite)) * 100.0,
    ));
    report.note(format!(
        "Low-load BE IPC: ARQ {:.2} vs PARTIES {:.2} (+{:.1} %; paper +63.8 %) and CLITE \
         {:.2} (+{:.1} %; paper +37.1 %)",
        ipc(StrategyKind::Arq),
        ipc(StrategyKind::Parties),
        (ipc(StrategyKind::Arq) / ipc(StrategyKind::Parties) - 1.0) * 100.0,
        ipc(StrategyKind::Clite),
        (ipc(StrategyKind::Arq) / ipc(StrategyKind::Clite) - 1.0) * 100.0,
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_directions_hold() {
        let cfg = ExpContext::new(crate::runs::ExpConfig {
            quick: true,
            seed: 47,
        });
        let cells = collect_cells(&cfg);
        let mean = |strategy: StrategyKind, f: &dyn Fn(&SweepCell) -> f64| -> f64 {
            let vs: Vec<f64> = cells
                .iter()
                .filter(|c| c.strategy == strategy)
                .map(f)
                .collect();
            vs.iter().sum::<f64>() / vs.len() as f64
        };
        // ARQ must beat PARTIES and CLITE on mean E_S and mean yield.
        let es_arq = mean(StrategyKind::Arq, &|c| c.e_s);
        let y_arq = mean(StrategyKind::Arq, &|c| c.yield_fraction);
        for other in [StrategyKind::Parties, StrategyKind::Clite] {
            assert!(es_arq < mean(other, &|c| c.e_s), "E_S vs {}", other.name());
            assert!(
                y_arq >= mean(other, &|c| c.yield_fraction) - 0.02,
                "yield vs {}",
                other.name()
            );
        }
    }
}
