//! Figs. 5 & 6: steady-state resource-allocation snapshots of PARTIES vs
//! ARQ on the STREAM mix, at low (30 %) and high (90 %) Xapian load.
//!
//! The paper's claim: at low load ARQ leaves most resources in the shared
//! region for the BE application; at high load it channels them to the
//! loaded LC application instead of fragmenting them across strict
//! partitions.

use ahq_sim::MachineConfig;
use ahq_workloads::mixes;

use crate::exec::{ExpContext, RunSpec};
use crate::report::{f2, ExperimentReport, TextTable};
use crate::strategy::StrategyKind;

/// The strategies the snapshots contrast.
const STRATEGIES: [StrategyKind; 2] = [StrategyKind::Parties, StrategyKind::Arq];

/// Runs the snapshot experiment at the given Xapian load.
fn snapshot(cfg: &ExpContext, id: &str, title: &str, xapian_load: f64) -> ExperimentReport {
    let mut report = ExperimentReport::new(id, title);
    let mix = mixes::stream_mix();
    let loads = [("xapian", xapian_load), ("moses", 0.2), ("img-dnn", 0.2)];
    let machine = MachineConfig::paper_xeon();

    let mut table = TextTable::new(
        format!(
            "Final partitions (% of machine), Xapian at {:.0} % load",
            xapian_load * 100.0
        ),
        &["strategy", "region", "cores %", "ways %"],
    );

    let specs: Vec<RunSpec> = STRATEGIES
        .iter()
        .map(|&s| RunSpec::strategy(cfg, machine, &mix, &loads, s))
        .collect();
    let results = cfg.engine().run_all(&specs);

    for (strategy, result) in STRATEGIES.into_iter().zip(results.iter()) {
        let partition = result.partitions.last().expect("windows ran").clone();
        for (id, alloc) in partition.iter() {
            let name = mix.apps[id.index()].name();
            table.push_row(vec![
                strategy.name().into(),
                name.into(),
                f2(alloc.cores as f64 / machine.cores as f64 * 100.0),
                f2(alloc.ways as f64 / machine.llc_ways as f64 * 100.0),
            ]);
        }
        table.push_row(vec![
            strategy.name().into(),
            "shared".into(),
            f2(partition.shared_cores(&machine) as f64 / machine.cores as f64 * 100.0),
            f2(partition.shared_ways(&machine) as f64 / machine.llc_ways as f64 * 100.0),
        ]);

        let steady = cfg.steady();
        report.note(format!(
            "{}: E_LC {:.3}, E_BE {:.3}, E_S {:.3}, stream IPC {:.2}",
            strategy.name(),
            result.steady_lc_entropy(steady),
            result.steady_be_entropy(steady),
            result.steady_entropy(steady),
            result.steady_ipc("stream", steady).unwrap_or(f64::NAN),
        ));
    }

    report.tables.push(table);
    report
}

/// Regenerates Fig. 5 (Xapian at 30 %).
pub fn run_fig5(cfg: &ExpContext) -> ExperimentReport {
    let mut r = snapshot(
        cfg,
        "fig5",
        "Fig 5: allocation snapshot at Xapian 30 %",
        0.3,
    );
    r.note(
        "Paper shape: PARTIES fences every app; ARQ keeps a large shared region so the BE \
         application sees far more resources, with E_LC still ~0."
            .to_string(),
    );
    r
}

/// Regenerates Fig. 6 (Xapian at 90 %).
pub fn run_fig6(cfg: &ExpContext) -> ExperimentReport {
    let mut r = snapshot(
        cfg,
        "fig6",
        "Fig 6: allocation snapshot at Xapian 90 %",
        0.9,
    );
    r.note(
        "Paper shape: under high load ARQ lets the other LC apps live off the shared region \
         so the loaded application (Xapian) effectively reaches more resources than under \
         PARTIES' strict split."
            .to_string(),
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arq_keeps_a_larger_shared_region_at_low_load() {
        let cfg = ExpContext::new(crate::runs::ExpConfig {
            quick: true,
            seed: 11,
        });
        let report = run_fig5(&cfg);
        let table = &report.tables[0];
        let shared_cores = |strategy: &str| -> f64 {
            table
                .rows
                .iter()
                .find(|r| r[0] == strategy && r[1] == "shared")
                .and_then(|r| r[2].parse::<f64>().ok())
                .expect("shared row")
        };
        assert_eq!(shared_cores("parties"), 0.0, "PARTIES is strict");
        assert!(
            shared_cores("arq") >= 40.0,
            "ARQ must keep a large shared region at low load, got {}",
            shared_cores("arq")
        );
    }
}
