//! Extra: the full six-strategy comparison (the paper's five plus the
//! Heracles threshold controller) on both headline mixes — where the
//! classic threshold baseline lands relative to the modern ones.

use ahq_sim::MachineConfig;
use ahq_workloads::mixes;

use crate::exec::{ExpContext, RunSpec};
use crate::report::{f2, f3, ExperimentReport, TextTable};
use crate::strategy::StrategyKind;

/// Regenerates the six-strategy comparison.
pub fn run(cfg: &ExpContext) -> ExperimentReport {
    let mut report =
        ExperimentReport::new("baselines", "Extra: six-strategy comparison incl. Heracles");
    let loads = if cfg.quick {
        vec![0.1, 0.9]
    } else {
        vec![0.1, 0.5, 0.9]
    };

    for mix in [mixes::fluidanimate_mix(), mixes::stream_mix()] {
        let be = mix.be_names()[0].to_owned();
        let mut table = TextTable::new(
            format!("{} — steady-state per strategy", mix.name),
            &[
                "xapian load",
                "strategy",
                "E_LC",
                "E_BE",
                "E_S",
                "yield",
                "BE IPC",
            ],
        );
        let mut specs = Vec::new();
        let mut labels = Vec::new();
        for &load in &loads {
            for strategy in StrategyKind::extended() {
                specs.push(RunSpec::strategy(
                    cfg,
                    MachineConfig::paper_xeon(),
                    &mix,
                    &[("xapian", load), ("moses", 0.2), ("img-dnn", 0.2)],
                    strategy,
                ));
                labels.push((load, strategy));
            }
        }
        let results = cfg.engine().run_all(&specs);
        for ((load, strategy), result) in labels.into_iter().zip(results.iter()) {
            let steady = cfg.steady();
            table.push_row(vec![
                f2(load),
                strategy.name().into(),
                f3(result.steady_lc_entropy(steady)),
                f3(result.steady_be_entropy(steady)),
                f3(result.steady_entropy(steady)),
                f2(result.steady_yield(steady)),
                f2(result.steady_ipc(&be, steady).unwrap_or(f64::NAN)),
            ]);
        }
        report.tables.push(table);
    }
    report.note(
        "Heracles (threshold-based, ISCA 2015) is the ancestor the paper's related work cites: \
         it protects LC latency like LC-first while letting BE reclaim slack, but without \
         entropy feedback it cannot trade E_LC against E_BE the way ARQ does."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heracles_protects_lc_but_arq_wins_on_entropy() {
        let cfg = ExpContext::new(crate::runs::ExpConfig {
            quick: true,
            seed: 67,
        });
        let mix = mixes::stream_mix();
        let get = |strategy: StrategyKind| {
            let r = cfg.engine().run_one(&RunSpec::strategy(
                &cfg,
                MachineConfig::paper_xeon(),
                &mix,
                &[("xapian", 0.5), ("moses", 0.2), ("img-dnn", 0.2)],
                strategy,
            ));
            (
                r.steady_lc_entropy(cfg.steady()),
                r.steady_entropy(cfg.steady()),
            )
        };
        let (lc_heracles, es_heracles) = get(StrategyKind::Heracles);
        let (lc_unmanaged, _) = get(StrategyKind::Unmanaged);
        let (_, es_arq) = get(StrategyKind::Arq);
        assert!(
            lc_heracles < lc_unmanaged,
            "heracles must protect LC: {lc_heracles:.3} vs unmanaged {lc_unmanaged:.3}"
        );
        assert!(
            es_arq <= es_heracles + 0.03,
            "ARQ {es_arq:.3} should not lose to heracles {es_heracles:.3}"
        );
    }
}
