//! Fig. 7: the relationship between tail latency and request arrival rate
//! with 1, 2, 4 and 8 processing units, for Xapian, Moses, Img-dnn and
//! Sphinx.
//!
//! Each application runs alone on a machine whose core budget is the
//! curve's parameter. As in the paper, the application is instantiated
//! with as many worker threads as cores under test so the service capacity
//! scales with the budget.

use ahq_sim::{AppSpec, MachineConfig, WindowObservation};
use ahq_workloads::mixes::Mix;
use ahq_workloads::profiles;

use crate::exec::{ExpContext, RunSpec};
use crate::report::{f2, ExperimentReport, TextTable};
use crate::runs::ExpConfig;
use crate::strategy::StrategyKind;

/// The solo-run job for `spec` at `load` on `cores` cores. An Unmanaged
/// run of a one-app mix is observation-identical to a raw windowed run.
fn solo_spec(cfg: &ExpConfig, spec: &AppSpec, cores: u32, load: f64) -> RunSpec {
    let app = spec.clone().with_threads(cores.max(1));
    let name = app.name().to_owned();
    let mix = Mix {
        name: "solo",
        apps: vec![app],
    };
    let machine = MachineConfig::paper_xeon().with_budget(cores, 20);
    RunSpec {
        windows: if cfg.quick { 24 } else { 60 },
        ..RunSpec::strategy(
            cfg,
            machine,
            &mix,
            &[(name.as_str(), load)],
            StrategyKind::Unmanaged,
        )
    }
}

/// Mean steady-state p95 of the (sole) LC app over the trailing windows.
fn solo_mean_p95(obs: &[WindowObservation], steady: usize) -> f64 {
    let vals: Vec<f64> = obs[obs.len() - steady..]
        .iter()
        .filter_map(|o| o.lc[0].p95_ms)
        .collect();
    vals.iter().sum::<f64>() / vals.len().max(1) as f64
}

/// The p95 latency of `spec` running alone at `load` (fraction of its
/// nominal max load) on `cores` cores.
pub fn solo_p95(cfg: &ExpContext, spec: &AppSpec, cores: u32, load: f64) -> f64 {
    let job = solo_spec(cfg, spec, cores, load);
    let steady = job.windows / 2;
    let result = cfg.engine().run_one(&job);
    solo_mean_p95(&result.observations, steady)
}

/// Regenerates Fig. 7.
pub fn run(cfg: &ExpContext) -> ExperimentReport {
    let mut report = ExperimentReport::new("fig7", "Fig 7: load-latency curves");
    let apps = [
        profiles::xapian(),
        profiles::moses(),
        profiles::img_dnn(),
        profiles::sphinx(),
    ];
    let core_counts = [1u32, 2, 4, 8];
    let loads: Vec<f64> = if cfg.quick {
        vec![0.2, 0.5, 0.8, 1.0, 1.2]
    } else {
        (1..=13).map(|i| i as f64 * 0.1).collect()
    };

    // The full (app x load x cores) grid as one parallel batch.
    let mut jobs = Vec::new();
    for spec in &apps {
        for &load in &loads {
            for &cores in &core_counts {
                jobs.push(solo_spec(cfg, spec, cores, load));
            }
        }
    }
    let results = cfg.engine().run_all(&jobs);
    let mut cells = jobs
        .iter()
        .zip(results.iter())
        .map(|(job, r)| solo_mean_p95(&r.observations, job.windows / 2));

    for spec in &apps {
        let mut table = TextTable::new(
            format!(
                "{}: p95 (ms) vs load fraction (M_i = {} ms)",
                spec.name(),
                spec.qos_threshold_ms().expect("LC app")
            ),
            &["load", "1 core", "2 cores", "4 cores", "8 cores"],
        );
        for &load in &loads {
            let mut row = vec![f2(load)];
            for _ in &core_counts {
                row.push(f2(cells.next().expect("job per cell")));
            }
            table.push_row(row);
        }
        report.tables.push(table);
    }

    report.note(
        "Paper shape: latency is flat at low arrival rates and explodes past a knee; the knee \
         scales with the core count (each curve's capacity is roughly cores/mean-service-time, \
         bounded by the thread count)."
            .to_string(),
    );
    report.note(
        "Loads are fractions of each application's calibrated max load (see table4); a load of \
         1.0 sits at the knee on the full machine by construction."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_hockey_stick_and_core_scaling() {
        let cfg = ExpContext::new(ExpConfig {
            quick: true,
            seed: 17,
        });
        let xapian = profiles::xapian();
        // Hockey stick on 2 cores: overload blows past the threshold.
        let low = solo_p95(&cfg, &xapian, 2, 0.3);
        let high = solo_p95(&cfg, &xapian, 2, 1.2);
        assert!(
            high > 2.0 * low,
            "overload p95 {high:.2} must dwarf low-load {low:.2}"
        );
        // More cores push the knee to the right: at the same 0.9 load,
        // 8 cores are comfortable where 1 core is drowning.
        let one = solo_p95(&cfg, &xapian, 1, 0.9);
        let eight = solo_p95(&cfg, &xapian, 8, 0.9);
        assert!(
            one > 2.0 * eight,
            "1-core p95 {one:.2} must dwarf 8-core p95 {eight:.2}"
        );
    }
}
