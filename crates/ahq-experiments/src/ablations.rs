//! Ablation studies of the design choices DESIGN.md calls out — not a
//! paper artifact, but the analysis a reviewer would ask for:
//!
//! 1. **ARQ components** — what each piece of Algorithm 1 buys: the
//!    entropy-feedback rollback, the 60 s blacklist, the LC-priority
//!    shared region, and the ReT hysteresis band.
//! 2. **Relative importance** — how `RI` shifts the ARQ/PARTIES gap
//!    (the paper fixes `RI = 0.8`).
//! 3. **Monitoring interval** — the paper's §IV-B discussion: short
//!    windows react faster but make the tail estimate noisy; long windows
//!    stretch every violation.

use ahq_core::{EntropyModel, RelativeImportance};
use ahq_sched::ArqConfig;
use ahq_sim::{MachineConfig, SharingPolicy};
use ahq_workloads::mixes;

use crate::exec::{ExpContext, RunSpec, SchedSpec};
use crate::report::{f2, f3, ExperimentReport, TextTable};
use crate::runs::ExpConfig;
use crate::strategy::StrategyKind;

/// The ablation workload: the STREAM mix at medium-high Xapian load — the
/// regime where all of ARQ's machinery is exercised.
fn ablation_spec(cfg: &ExpConfig) -> RunSpec {
    let mix = mixes::stream_mix();
    RunSpec::strategy(
        cfg,
        MachineConfig::paper_xeon(),
        &mix,
        &[("xapian", 0.7), ("moses", 0.2), ("img-dnn", 0.2)],
        StrategyKind::Arq,
    )
}

/// The named ARQ variants under ablation.
pub fn arq_variants() -> Vec<(&'static str, ArqConfig)> {
    let base = ArqConfig::default();
    vec![
        ("arq (full)", base),
        (
            "no rollback",
            ArqConfig {
                entropy_epsilon: f64::INFINITY,
                ..base
            },
        ),
        (
            "no blacklist",
            ArqConfig {
                blacklist_secs: 0.0,
                ..base
            },
        ),
        (
            "fair shared region",
            ArqConfig {
                sharing: SharingPolicy::Fair,
                ..base
            },
        ),
        (
            "no hysteresis",
            ArqConfig {
                victim_ret: 0.05,
                beneficiary_ret: 0.05,
                ..base
            },
        ),
    ]
}

/// Regenerates the ablation report.
pub fn run(cfg: &ExpContext) -> ExperimentReport {
    let mut report = ExperimentReport::new("ablations", "Ablations of ARQ's design choices");
    let steady = cfg.steady();

    // --- 1. ARQ component ablation --------------------------------------
    let mut variants = TextTable::new(
        "ARQ variants on the STREAM mix (Xapian 70 %, others 20 %)",
        &[
            "variant",
            "E_LC",
            "E_BE",
            "E_S",
            "yield",
            "adjustments",
            "violations",
        ],
    );
    let variant_specs: Vec<RunSpec> = arq_variants()
        .into_iter()
        .map(|(_, config)| RunSpec {
            sched: SchedSpec::Arq(config),
            ..ablation_spec(cfg)
        })
        .collect();
    let variant_results = cfg.engine().run_all(&variant_specs);
    for ((label, _), result) in arq_variants().into_iter().zip(variant_results.iter()) {
        variants.push_row(vec![
            label.into(),
            f3(result.steady_lc_entropy(steady)),
            f3(result.steady_be_entropy(steady)),
            f3(result.steady_entropy(steady)),
            f2(result.steady_yield(steady)),
            result.adjustments.to_string(),
            result.violations.to_string(),
        ]);
    }
    report.tables.push(variants);

    // --- 2. Relative importance sweep ------------------------------------
    let mut ri_table = TextTable::new(
        "E_S under different RI (same runs rescored + rescheduled)",
        &["RI", "arq E_LC", "arq E_BE", "arq E_S", "parties E_S"],
    );
    let ris = [0.5, 0.8, 0.95];
    let mut ri_specs = Vec::new();
    for &ri in &ris {
        let model = EntropyModel::new(RelativeImportance::new(ri).expect("valid RI"));
        ri_specs.push(RunSpec {
            model,
            ..ablation_spec(cfg)
        });
        ri_specs.push(RunSpec {
            model,
            sched: SchedSpec::Kind(StrategyKind::Parties),
            ..ablation_spec(cfg)
        });
    }
    let ri_results = cfg.engine().run_all(&ri_specs);
    for (i, &ri) in ris.iter().enumerate() {
        let arq_run = &ri_results[2 * i];
        let parties_run = &ri_results[2 * i + 1];
        ri_table.push_row(vec![
            f2(ri),
            f3(arq_run.steady_lc_entropy(steady)),
            f3(arq_run.steady_be_entropy(steady)),
            f3(arq_run.steady_entropy(steady)),
            f3(parties_run.steady_entropy(steady)),
        ]);
    }
    report.tables.push(ri_table);

    // --- 3. Monitoring interval ------------------------------------------
    let mut interval_table = TextTable::new(
        "ARQ vs monitoring interval (same 60 s of simulated time)",
        &[
            "interval (ms)",
            "E_S",
            "yield",
            "adjustments",
            "violations/window",
        ],
    );
    let intervals = [250.0, 500.0, 1000.0, 2000.0];
    let sim_seconds = if cfg.quick { 45.0 } else { 120.0 };
    let window_counts: Vec<usize> = intervals
        .iter()
        .map(|ms| (sim_seconds * 1000.0 / ms) as usize)
        .collect();
    let interval_specs: Vec<RunSpec> = intervals
        .iter()
        .zip(&window_counts)
        .map(|(&interval_ms, &windows)| RunSpec {
            windows,
            window_ms: Some(interval_ms),
            ..ablation_spec(cfg)
        })
        .collect();
    let interval_results = cfg.engine().run_all(&interval_specs);
    for ((&interval_ms, &windows), result) in intervals
        .iter()
        .zip(&window_counts)
        .zip(interval_results.iter())
    {
        interval_table.push_row(vec![
            format!("{interval_ms:.0}"),
            f3(result.steady_entropy(windows / 3)),
            f2(result.steady_yield(windows / 3)),
            result.adjustments.to_string(),
            f2(result.violations as f64 / windows as f64),
        ]);
    }
    report.tables.push(interval_table);

    report.note(
        "Expected shapes: disabling the rollback lets drift accumulate (higher E_S); \
         disabling the blacklist re-penalizes the same region in a tight loop; a fair shared \
         region loses the LC protection (higher E_LC); collapsing the ReT hysteresis band \
         causes donate/receive oscillation (more adjustments). 500 ms is the paper's chosen \
         interval — shorter reacts faster but estimates noisier tails, longer stretches \
         violations."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_arq_is_never_worse_than_crippled_variants() {
        let cfg = ExpContext::new(ExpConfig {
            quick: true,
            seed: 53,
        });
        let report = run(&cfg);
        let table = &report.tables[0];
        let es = |label: &str| -> f64 {
            table
                .rows
                .iter()
                .find(|r| r[0] == label)
                .and_then(|r| r[3].parse().ok())
                .expect("variant row")
        };
        let full = es("arq (full)");
        // The fair shared region must cost LC protection.
        let e_lc = |label: &str| -> f64 {
            table
                .rows
                .iter()
                .find(|r| r[0] == label)
                .and_then(|r| r[1].parse().ok())
                .expect("variant row")
        };
        assert!(
            e_lc("fair shared region") >= e_lc("arq (full)"),
            "LC priority must protect latency"
        );
        // Full ARQ is within noise of the best variant overall.
        for (label, _) in arq_variants() {
            assert!(
                full <= es(label) + 0.05,
                "full ARQ ({full:.3}) should not lose badly to {label} ({:.3})",
                es(label)
            );
        }
    }

    #[test]
    fn ri_extremes_move_the_score() {
        let cfg = ExpContext::new(ExpConfig {
            quick: true,
            seed: 59,
        });
        let report = run(&cfg);
        let ri_table = &report.tables[1];
        assert_eq!(ri_table.rows.len(), 3);
        // Under higher RI, E_S tracks E_LC more closely: with ARQ's low
        // E_LC and high E_BE on this mix, E_S must fall as RI rises.
        let es: Vec<f64> = ri_table
            .rows
            .iter()
            .map(|r| r[3].parse::<f64>().unwrap())
            .collect();
        assert!(es[0] >= es[2] - 0.02, "E_S at RI 0.5 vs 0.95: {es:?}");
    }
}
