//! Fig. 13: the fluctuating-load experiment — Xapian's load follows the
//! 250 s trace of Fig. 13(a) while Moses and Img-dnn sit at 20 %,
//! collocated with STREAM; LC-first, PARTIES and ARQ are compared on the
//! entropy time series, violation counts, and the resource-allocation
//! timeline.

use std::sync::Arc;

use ahq_sched::RunResult;
use ahq_sim::MachineConfig;
use ahq_workloads::load::fig13_xapian_trace;
use ahq_workloads::mixes;

use crate::exec::{ExpContext, RunSpec};
use crate::report::{f2, f3, ExperimentReport, TextTable};
use crate::runs::ExpConfig;
use crate::strategy::StrategyKind;

/// The fluctuating-trace job for one strategy: Xapian's load is re-set at
/// every window from the Fig. 13(a) trace (compressed in quick mode).
fn trace_spec(cfg: &ExpConfig, strategy: StrategyKind) -> RunSpec {
    let mix = mixes::stream_mix();
    let trace = fig13_xapian_trace();
    let windows = if cfg.quick { 200 } else { 500 }; // 100 s / 250 s
    let time_scale = if cfg.quick { 0.4 } else { 1.0 }; // compress the trace in quick mode
    let schedule = (0..windows)
        .map(|w| {
            let t_s = (w as f64 * 0.5) / time_scale;
            (w, "xapian".to_owned(), trace.load_at(t_s))
        })
        .collect();
    RunSpec {
        windows,
        schedule,
        ..RunSpec::strategy(
            cfg,
            MachineConfig::paper_xeon(),
            &mix,
            &[
                ("xapian", trace.load_at(0.0)),
                ("moses", 0.2),
                ("img-dnn", 0.2),
            ],
            strategy,
        )
    }
}

/// Runs one strategy under the fluctuating trace and returns its result.
pub fn run_trace(cfg: &ExpContext, strategy: StrategyKind) -> Arc<RunResult> {
    cfg.engine().run_one(&trace_spec(cfg, strategy))
}

/// Regenerates Fig. 13.
pub fn run(cfg: &ExpContext) -> ExperimentReport {
    let mut report = ExperimentReport::new("fig13", "Fig 13: fluctuating load");
    let strategies = [
        StrategyKind::LcFirst,
        StrategyKind::Parties,
        StrategyKind::Arq,
    ];

    let mut summary = TextTable::new(
        "Violations and adjustments over the trace",
        &[
            "strategy",
            "violations",
            "adjustments",
            "mean E_LC",
            "mean E_BE",
            "mean E_S",
        ],
    );
    let mut series = TextTable::new(
        "E_S time series (10 s buckets)",
        &["t (s)", "xapian load", "lc-first", "parties", "arq"],
    );

    let specs: Vec<RunSpec> = strategies.iter().map(|&s| trace_spec(cfg, s)).collect();
    let mut results = Vec::new();
    for (strategy, result) in strategies.into_iter().zip(cfg.engine().run_all(&specs)) {
        let n = result.entropy.len() as f64;
        summary.push_row(vec![
            strategy.name().into(),
            result.violations.to_string(),
            result.adjustments.to_string(),
            f3(result.entropy.iter().map(|e| e.lc).sum::<f64>() / n),
            f3(result.entropy.iter().map(|e| e.be).sum::<f64>() / n),
            f3(result.entropy.iter().map(|e| e.system).sum::<f64>() / n),
        ]);
        results.push(result);
    }

    // Bucketed E_S series for plotting.
    let bucket = 20; // 20 windows = 10 s
    let windows = results[0].entropy.len();
    for start in (0..windows).step_by(bucket) {
        let end = (start + bucket).min(windows);
        let t_s = results[0].observations[start].start_ms / 1000.0;
        let load = results[0].observations[start]
            .lc_by_name("xapian")
            .map(|s| s.load)
            .unwrap_or(0.0);
        let mut row = vec![f2(t_s), f2(load)];
        for result in &results {
            let es: f64 = result.entropy[start..end]
                .iter()
                .map(|e| e.system)
                .sum::<f64>()
                / (end - start) as f64;
            row.push(f3(es));
        }
        series.push_row(row);
    }

    // ARQ allocation timeline: xapian isolated vs shared cores.
    let arq = &results[2];
    let mut alloc = TextTable::new(
        "ARQ allocation timeline (10 s buckets)",
        &[
            "t (s)",
            "xapian iso cores",
            "xapian iso ways",
            "shared cores",
            "shared ways",
        ],
    );
    let machine = MachineConfig::paper_xeon();
    for start in (0..windows).step_by(bucket) {
        let p = &arq.partitions[start];
        let xapian_alloc = p.isolated(0.into());
        alloc.push_row(vec![
            f2(arq.observations[start].start_ms / 1000.0),
            xapian_alloc.cores.to_string(),
            xapian_alloc.ways.to_string(),
            p.shared_cores(&machine).to_string(),
            p.shared_ways(&machine).to_string(),
        ]);
    }

    report.tables.push(summary);
    report.tables.push(series);
    report.tables.push(alloc);
    report.note(
        "Paper: over the 250 s trace ARQ has 59 tail-latency violations vs PARTIES' 105, \
         avoids PARTIES' downsizing spikes, and at low load keeps a large shared region \
         (7 cores / 15 ways in the paper's snapshot) that the BE application enjoys."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arq_has_fewer_violations_than_parties() {
        let cfg = ExpContext::new(ExpConfig {
            quick: true,
            seed: 43,
        });
        let parties = run_trace(&cfg, StrategyKind::Parties);
        let arq = run_trace(&cfg, StrategyKind::Arq);
        assert!(
            arq.violations < parties.violations,
            "ARQ {} violations vs PARTIES {} (paper: 59 vs 105)",
            arq.violations,
            parties.violations
        );
    }
}
