//! The `cluster` experiment family: a fleet of heterogeneous nodes under
//! workload churn, comparing placement policies (first-fit, least-loaded,
//! entropy-aware) crossed with the local per-node scheduler (unmanaged vs
//! ARQ) at 16/64/256 nodes.
//!
//! The cluster layer lives in `ahq-cluster` and knows nothing about the
//! run engine; [`EngineRunner`] bridges the two by translating each
//! closed [`NodeJob`] into an equivalent [`RunSpec`] and fanning rounds
//! through the invocation-wide [`Engine`]. Node jobs are pure functions
//! of their values and results come back in submission order, so
//! `repro cluster --jobs N` is byte-identical for any `N`.

use ahq_cluster::{
    run_cluster, ChurnConfig, ClusterConfig, ClusterEntropyReport, LocalSched, NodeBatchRunner,
    NodeJob, PlacerKind,
};
use ahq_sched::RunResult;
use ahq_workloads::mixes::Mix;

use crate::exec::{Engine, ExpContext, RunSpec, SchedSpec};
use crate::report::{f2, f3, ExperimentReport, TextTable};
use crate::runs::ExpConfig;
use crate::strategy::StrategyKind;

/// Translates a cluster [`NodeJob`] into the equivalent engine
/// [`RunSpec`]: same machine, apps, load order, scheduler, window count,
/// seed and model, under a synthetic "cluster" mix name. Executing either
/// description yields byte-identical [`RunResult`]s.
fn job_spec(job: &NodeJob) -> RunSpec {
    RunSpec {
        machine: job.machine,
        mix: Mix {
            name: "cluster",
            apps: job.apps.clone(),
        },
        loads: job.loads.clone(),
        sched: SchedSpec::Kind(match job.sched {
            LocalSched::Unmanaged => StrategyKind::Unmanaged,
            LocalSched::Arq => StrategyKind::Arq,
        }),
        windows: job.windows,
        seed: job.seed,
        window_ms: None,
        model: job.model,
        schedule: Vec::new(),
    }
}

/// A [`NodeBatchRunner`] backed by the deterministic parallel [`Engine`]:
/// each round's node jobs fan out over the engine's workers (and share
/// its memoized run cache), so cluster wall-clock scales with `--jobs`
/// without changing a byte of output.
pub struct EngineRunner<'a> {
    engine: &'a Engine,
}

impl<'a> EngineRunner<'a> {
    /// A runner over `engine`.
    pub fn new(engine: &'a Engine) -> Self {
        EngineRunner { engine }
    }
}

impl NodeBatchRunner for EngineRunner<'_> {
    fn run_nodes(&self, jobs: &[NodeJob]) -> Vec<RunResult> {
        let specs: Vec<RunSpec> = jobs.iter().map(job_spec).collect();
        self.engine
            .run_all(&specs)
            .into_iter()
            .map(|r| (*r).clone())
            .collect()
    }
}

/// Fleet sizes of the grid.
fn node_counts(cfg: &ExpConfig) -> Vec<usize> {
    if cfg.quick {
        vec![16, 64]
    } else {
        vec![16, 64, 256]
    }
}

/// The standard churned scenario at `nodes` nodes: the heterogeneous
/// fleet, roughly one app per node initially, and arrivals/departures/
/// load changes scaled to fleet size so every placer faces the same
/// pressure per node regardless of scale.
pub fn scenario(
    cfg: &ExpConfig,
    nodes: usize,
    placer: PlacerKind,
    sched: LocalSched,
) -> ClusterConfig {
    let mut config = ClusterConfig::heterogeneous(nodes, placer, sched);
    config.seed = cfg.seed;
    config.windows_per_round = if cfg.quick { 2 } else { 3 };
    config.rounds = if cfg.quick { 4 } else { 8 };
    config.churn = ChurnConfig {
        initial_apps: nodes,
        arrivals_per_round: nodes as f64 / 4.0,
        departure_prob: 0.05,
        load_change_prob: 0.15,
        be_fraction: 0.4,
    };
    config
}

/// Steady-state windows of a scenario: the last half of the run.
fn steady_windows(config: &ClusterConfig) -> usize {
    (config.rounds * config.windows_per_round) / 2
}

/// Regenerates the cluster grid.
pub fn run(cfg: &ExpContext) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "cluster",
        "Cluster: placement policies under workload churn",
    );
    let runner = EngineRunner::new(cfg.engine());

    let mut table = TextTable::new(
        "Cluster grid: mean/steady E_S by fleet size, placer and local scheduler",
        &[
            "nodes",
            "placer",
            "sched",
            "mean E_S",
            "steady E_S",
            "steady p95",
            "viol",
            "placed",
            "migr",
            "occup",
        ],
    );
    let mut steady: Vec<(usize, PlacerKind, LocalSched, f64)> = Vec::new();
    for nodes in node_counts(cfg) {
        for placer in PlacerKind::all() {
            for sched in LocalSched::all() {
                let config = scenario(cfg, nodes, placer, sched);
                let n = steady_windows(&config);
                let result: ClusterEntropyReport = run_cluster(config, &runner);
                table.push_row(vec![
                    nodes.to_string(),
                    placer.name().into(),
                    sched.name().into(),
                    f3(result.mean_entropy()),
                    f3(result.steady_mean_entropy(n)),
                    f3(result.steady_p95_entropy(n)),
                    result.violations.to_string(),
                    result.placements.to_string(),
                    result.migrations.to_string(),
                    f2(result.mean_occupancy()),
                ]);
                steady.push((nodes, placer, sched, result.steady_mean_entropy(n)));
            }
        }
    }
    report.tables.push(table);

    for nodes in node_counts(cfg) {
        for sched in LocalSched::all() {
            let pick = |placer: PlacerKind| -> Option<f64> {
                steady
                    .iter()
                    .find(|(n, p, s, _)| *n == nodes && *p == placer && *s == sched)
                    .map(|(_, _, _, es)| *es)
            };
            if let (Some(ff), Some(ea)) =
                (pick(PlacerKind::FirstFit), pick(PlacerKind::EntropyAware))
            {
                report.note(format!(
                    "{nodes} nodes / {}: entropy-aware steady E_S {ea:.3} vs first-fit {ff:.3}",
                    sched.name()
                ));
            }
        }
    }
    report.note(
        "Entropy-aware placement spreads BE pressure away from nodes with hot entropy \
         history; first-fit packs low indices and concentrates interference."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahq_cluster::SequentialRunner;

    fn tiny(cfg: &ExpContext, placer: PlacerKind) -> ClusterConfig {
        let mut config = scenario(cfg, 8, placer, LocalSched::Unmanaged);
        config.rounds = 2;
        config.churn.initial_apps = 6;
        config.churn.arrivals_per_round = 1.0;
        config
    }

    #[test]
    fn engine_runner_matches_sequential() {
        let cfg = ExpContext::new(ExpConfig {
            quick: true,
            seed: 13,
        });
        let engine_side = run_cluster(
            tiny(&cfg, PlacerKind::EntropyAware),
            &EngineRunner::new(cfg.engine()),
        );
        let sequential = run_cluster(tiny(&cfg, PlacerKind::EntropyAware), &SequentialRunner);
        assert_eq!(
            serde_json::to_string(&engine_side).expect("serializable"),
            serde_json::to_string(&sequential).expect("serializable"),
        );
    }

    #[test]
    fn engine_caches_repeated_rounds() {
        let cfg = ExpContext::new(ExpConfig {
            quick: true,
            seed: 13,
        });
        let runner = EngineRunner::new(cfg.engine());
        let first = run_cluster(tiny(&cfg, PlacerKind::FirstFit), &runner);
        let again = run_cluster(tiny(&cfg, PlacerKind::FirstFit), &runner);
        assert_eq!(first, again);
        let stats = cfg.engine().stats();
        assert_eq!(
            stats.hits, stats.misses,
            "an identical rerun must be answered entirely from the cache"
        );
    }
}
