//! The `cluster` experiment family: a fleet of heterogeneous nodes under
//! workload churn, comparing placement policies (first-fit, least-loaded,
//! entropy-aware) crossed with the local per-node scheduler (unmanaged vs
//! ARQ) at 16/64/256 nodes.
//!
//! The cluster layer lives in `ahq-cluster` and knows nothing about the
//! run engine; [`EngineRunner`] bridges the two by translating each
//! closed [`NodeJob`] into an equivalent [`RunSpec`] and fanning rounds
//! through the invocation-wide [`Engine`]. Node jobs are pure functions
//! of their values and results come back in submission order, so
//! `repro cluster --jobs N` is byte-identical for any `N`.

use ahq_cluster::{
    run_cluster, static_placers, ChurnConfig, ClusterConfig, ClusterEntropyReport, FidelityMode,
    JobFidelity, LocalSched, NodeBatchRunner, NodeJob, PlacerKind, MIGRATION_WARMUP_MS,
};
use ahq_sched::RunResult;
use ahq_sim::SimPerfStats;
use ahq_workloads::mixes::Mix;

use crate::exec::{Engine, ExpContext, RunSpec, SchedSpec};
use crate::report::{f2, f3, ExperimentReport, TextTable};
use crate::runs::ExpConfig;
use crate::strategy::StrategyKind;

/// Command-line overrides for the cluster experiment — the
/// `repro cluster --nodes N --rounds N --fidelity ladder|full` surface.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClusterOpts {
    /// Fleet-size override: run one scaled scenario instead of the grid.
    pub nodes: Option<usize>,
    /// Round-count override for the scaled scenario (default 1000).
    pub rounds: Option<usize>,
    /// Fidelity mode applied to every cluster scenario.
    pub fidelity: FidelityMode,
}

/// Translates a cluster [`NodeJob`] into the equivalent engine
/// [`RunSpec`]: same machine, apps, load order, scheduler, window count,
/// seed and model, under a synthetic "cluster" mix name. Executing either
/// description yields byte-identical [`RunResult`]s.
fn job_spec(job: &NodeJob) -> RunSpec {
    RunSpec {
        machine: job.machine,
        mix: Mix {
            name: "cluster",
            apps: (*job.apps).clone(),
        },
        loads: job.loads.clone(),
        sched: match (job.sched, job.arq) {
            // A tuned job carries its explicit ARQ configuration into the
            // cache key; untuned jobs keep the original `Kind` keys so
            // existing memoized entries stay shared.
            (LocalSched::Arq, Some(config)) => SchedSpec::Arq(config),
            (LocalSched::Arq, None) => SchedSpec::Kind(StrategyKind::Arq),
            (LocalSched::Unmanaged, _) => SchedSpec::Kind(StrategyKind::Unmanaged),
        },
        windows: job.windows,
        seed: job.seed,
        window_ms: None,
        model: job.model,
        schedule: Vec::new(),
        cold: job
            .cold
            .iter()
            .map(|name| (name.clone(), MIGRATION_WARMUP_MS))
            .collect(),
    }
}

/// A [`NodeBatchRunner`] backed by the deterministic parallel [`Engine`]:
/// each round's node jobs fan out over the engine's workers (and share
/// its memoized run cache), so cluster wall-clock scales with `--jobs`
/// without changing a byte of output.
pub struct EngineRunner<'a> {
    engine: &'a Engine,
}

impl<'a> EngineRunner<'a> {
    /// A runner over `engine`.
    pub fn new(engine: &'a Engine) -> Self {
        EngineRunner { engine }
    }
}

impl NodeBatchRunner for EngineRunner<'_> {
    fn run_nodes(&self, jobs: &[NodeJob]) -> Vec<RunResult> {
        // HI-FI jobs fan out over the engine; LO-FI jobs (closed-form, no
        // event loop) are cheaper than a cache lookup and run inline. The
        // ladder never actually submits LO-FI jobs — it replays cached
        // rounds on the coordinator — but the split keeps the runner
        // correct for any caller.
        let mut results: Vec<Option<RunResult>> = (0..jobs.len()).map(|_| None).collect();
        let mut hifi: Vec<usize> = Vec::new();
        let mut specs: Vec<RunSpec> = Vec::new();
        for (i, job) in jobs.iter().enumerate() {
            if matches!(job.fidelity, JobFidelity::HiFi) {
                hifi.push(i);
                specs.push(job_spec(job));
            } else {
                results[i] = Some(job.execute());
            }
        }
        for (i, result) in hifi.into_iter().zip(self.engine.run_all(&specs)) {
            results[i] = Some((*result).clone());
        }
        results
            .into_iter()
            .map(|r| r.expect("every job answered"))
            .collect()
    }

    fn perf_stats(&self) -> Option<SimPerfStats> {
        Some(self.engine.sim_stats())
    }
}

/// Fleet sizes of the grid.
fn node_counts(cfg: &ExpConfig) -> Vec<usize> {
    if cfg.quick {
        vec![16, 64]
    } else {
        vec![16, 64, 256]
    }
}

/// The standard churned scenario at `nodes` nodes: the heterogeneous
/// fleet, roughly one app per node initially, and arrivals/departures/
/// load changes scaled to fleet size so every placer faces the same
/// pressure per node regardless of scale.
pub fn scenario(
    cfg: &ExpConfig,
    nodes: usize,
    placer: PlacerKind,
    sched: LocalSched,
) -> ClusterConfig {
    let mut config = ClusterConfig::heterogeneous(nodes, placer, sched);
    config.seed = cfg.seed;
    config.windows_per_round = if cfg.quick { 2 } else { 3 };
    config.rounds = if cfg.quick { 4 } else { 8 };
    config.churn = ChurnConfig {
        initial_apps: nodes,
        arrivals_per_round: nodes as f64 / 4.0,
        departure_prob: 0.05,
        load_change_prob: 0.15,
        be_fraction: 0.4,
    };
    config
}

/// The scaled single-cell scenario behind `repro cluster --nodes N`: the
/// heterogeneous fleet at half occupancy under gentle churn, sized so the
/// per-node pressure stays flat as the fleet grows. Long-horizon by
/// default (1000 rounds) — the fidelity ladder is what makes that
/// tractable at 10k nodes.
pub fn scaled_scenario(cfg: &ExpConfig, nodes: usize, opts: &ClusterOpts) -> ClusterConfig {
    let mut config = ClusterConfig::heterogeneous(nodes, PlacerKind::EntropyAware, LocalSched::Arq);
    config.seed = cfg.seed;
    config.windows_per_round = if cfg.quick { 2 } else { 3 };
    config.rounds = opts.rounds.unwrap_or(1000);
    config.fidelity = opts.fidelity;
    config.churn = ChurnConfig {
        initial_apps: (nodes / 2).max(1),
        arrivals_per_round: (nodes as f64 / 256.0).max(1.0),
        departure_prob: 0.005,
        load_change_prob: 0.01,
        be_fraction: 0.4,
    };
    config
}

/// Steady-state windows of a scenario: the last half of the run.
fn steady_windows(config: &ClusterConfig) -> usize {
    (config.rounds * config.windows_per_round) / 2
}

/// Records a run's fidelity split as `--timings` metrics: node-windows
/// simulated at each rung, plus the total windows for normalisation.
fn fidelity_metrics(report: &mut ExperimentReport, result: &ClusterEntropyReport) {
    let hifi: usize = result.window_stats.iter().map(|w| w.hifi_nodes).sum();
    let lofi: usize = result.window_stats.iter().map(|w| w.lofi_nodes).sum();
    report.metric("hifi_node_windows", hifi as f64);
    report.metric("lofi_node_windows", lofi as f64);
    report.metric("cluster_windows", result.windows() as f64);
}

/// The scaled single-cell run behind `repro cluster --nodes N`.
fn run_scaled(cfg: &ExpContext, nodes: usize) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "cluster",
        format!(
            "Cluster: {nodes}-node fleet, {} fidelity",
            cfg.cluster.fidelity.name()
        ),
    );
    let runner = EngineRunner::new(cfg.engine());
    let config = scaled_scenario(&cfg.cfg, nodes, &cfg.cluster);
    let rounds = config.rounds;
    let n = steady_windows(&config);
    let result = run_cluster(config, &runner);

    let mut table = TextTable::new(
        format!("Scaled cluster: {nodes} nodes x {rounds} rounds"),
        &[
            "fidelity",
            "mean E_S",
            "steady E_S",
            "steady p95",
            "viol",
            "placed",
            "migr",
            "occup",
        ],
    );
    table.push_row(vec![
        cfg.cluster.fidelity.name().into(),
        f3(result.mean_entropy()),
        f3(result.steady_mean_entropy(n)),
        f3(result.steady_p95_entropy(n)),
        result.violations.to_string(),
        result.placements.to_string(),
        result.migrations.to_string(),
        f2(result.mean_occupancy()),
    ]);
    report.tables.push(table);

    let hifi: usize = result.window_stats.iter().map(|w| w.hifi_nodes).sum();
    let lofi: usize = result.window_stats.iter().map(|w| w.lofi_nodes).sum();
    let active = hifi + lofi;
    report.note(format!(
        "fidelity split: {hifi} HI-FI / {lofi} LO-FI node-windows ({:.1} % LO-FI)",
        if active == 0 {
            0.0
        } else {
            lofi as f64 / active as f64 * 100.0
        }
    ));
    fidelity_metrics(&mut report, &result);
    report
}

/// Regenerates the cluster grid (or, with `--nodes N`, one scaled cell).
pub fn run(cfg: &ExpContext) -> ExperimentReport {
    if let Some(nodes) = cfg.cluster.nodes {
        return run_scaled(cfg, nodes);
    }
    let mut report = ExperimentReport::new(
        "cluster",
        "Cluster: placement policies under workload churn",
    );
    let runner = EngineRunner::new(cfg.engine());

    let mut table = TextTable::new(
        "Cluster grid: mean/steady E_S by fleet size, placer and local scheduler",
        &[
            "nodes",
            "placer",
            "sched",
            "mean E_S",
            "steady E_S",
            "steady p95",
            "viol",
            "placed",
            "migr",
            "occup",
        ],
    );
    let mut steady: Vec<(usize, PlacerKind, LocalSched, f64)> = Vec::new();
    let mut fidelity_split = (0usize, 0usize);
    for nodes in node_counts(cfg) {
        // The learned placer only differs under a controller; this family
        // pins the static-policy tables, so it iterates the static trio.
        for placer in static_placers() {
            for sched in LocalSched::all() {
                let mut config = scenario(cfg, nodes, placer, sched);
                config.fidelity = cfg.cluster.fidelity;
                let n = steady_windows(&config);
                let result: ClusterEntropyReport = run_cluster(config, &runner);
                fidelity_split.0 += result
                    .window_stats
                    .iter()
                    .map(|w| w.hifi_nodes)
                    .sum::<usize>();
                fidelity_split.1 += result
                    .window_stats
                    .iter()
                    .map(|w| w.lofi_nodes)
                    .sum::<usize>();
                table.push_row(vec![
                    nodes.to_string(),
                    placer.name().into(),
                    sched.name().into(),
                    f3(result.mean_entropy()),
                    f3(result.steady_mean_entropy(n)),
                    f3(result.steady_p95_entropy(n)),
                    result.violations.to_string(),
                    result.placements.to_string(),
                    result.migrations.to_string(),
                    f2(result.mean_occupancy()),
                ]);
                steady.push((nodes, placer, sched, result.steady_mean_entropy(n)));
            }
        }
    }
    report.tables.push(table);

    for nodes in node_counts(cfg) {
        for sched in LocalSched::all() {
            let pick = |placer: PlacerKind| -> Option<f64> {
                steady
                    .iter()
                    .find(|(n, p, s, _)| *n == nodes && *p == placer && *s == sched)
                    .map(|(_, _, _, es)| *es)
            };
            if let (Some(ff), Some(ea)) =
                (pick(PlacerKind::FirstFit), pick(PlacerKind::EntropyAware))
            {
                report.note(format!(
                    "{nodes} nodes / {}: entropy-aware steady E_S {ea:.3} vs first-fit {ff:.3}",
                    sched.name()
                ));
            }
        }
    }
    report.note(
        "Entropy-aware placement spreads BE pressure away from nodes with hot entropy \
         history; first-fit packs low indices and concentrates interference."
            .to_string(),
    );
    report.metric("hifi_node_windows", fidelity_split.0 as f64);
    report.metric("lofi_node_windows", fidelity_split.1 as f64);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahq_cluster::SequentialRunner;

    fn tiny(cfg: &ExpContext, placer: PlacerKind) -> ClusterConfig {
        let mut config = scenario(cfg, 8, placer, LocalSched::Unmanaged);
        config.rounds = 2;
        config.churn.initial_apps = 6;
        config.churn.arrivals_per_round = 1.0;
        config
    }

    #[test]
    fn engine_runner_matches_sequential() {
        let cfg = ExpContext::new(ExpConfig {
            quick: true,
            seed: 13,
        });
        let engine_side = run_cluster(
            tiny(&cfg, PlacerKind::EntropyAware),
            &EngineRunner::new(cfg.engine()),
        );
        let sequential = run_cluster(
            tiny(&cfg, PlacerKind::EntropyAware),
            &SequentialRunner::default(),
        );
        assert_eq!(
            serde_json::to_string(&engine_side).expect("serializable"),
            serde_json::to_string(&sequential).expect("serializable"),
        );
    }

    #[test]
    fn engine_caches_repeated_rounds() {
        let cfg = ExpContext::new(ExpConfig {
            quick: true,
            seed: 13,
        });
        let runner = EngineRunner::new(cfg.engine());
        let first = run_cluster(tiny(&cfg, PlacerKind::FirstFit), &runner);
        let again = run_cluster(tiny(&cfg, PlacerKind::FirstFit), &runner);
        assert_eq!(first, again);
        let stats = cfg.engine().stats();
        assert_eq!(
            stats.hits, stats.misses,
            "an identical rerun must be answered entirely from the cache"
        );
    }

    #[test]
    fn scaled_run_reports_fidelity_metrics() {
        let mut cfg = ExpContext::new(ExpConfig {
            quick: true,
            seed: 13,
        });
        cfg.cluster = ClusterOpts {
            nodes: Some(8),
            rounds: Some(2),
            fidelity: FidelityMode::Ladder,
        };
        let report = run(&cfg);
        assert_eq!(report.tables.len(), 1);
        assert!(report.metrics.iter().any(|m| m.name == "hifi_node_windows"));
        assert!(report.metrics.iter().any(|m| m.name == "lofi_node_windows"));
    }
}
