//! Typed errors for experiment-level analysis failures.
//!
//! Experiments run as grids; one pathological cell must degrade into a
//! recorded error on the [`crate::ExperimentReport`], never a panic that
//! aborts a whole `repro all` invocation.

use std::fmt;

use ahq_core::EntropySeries;

/// An analysis step of an experiment failed in a way worth reporting.
#[derive(Debug, Clone, PartialEq)]
pub enum ExperimentError {
    /// A resource-equivalence comparison found the *baseline* strategy
    /// reaching a target entropy that the supposedly better candidate
    /// never reaches within the sampled resource range — the one
    /// combination the analysis cannot express as a saving.
    UnexpectedReachability {
        /// The target entropy being equated.
        target: f64,
        /// Name of the baseline series.
        baseline: String,
        /// Resources the baseline needs to reach the target.
        baseline_resource: f64,
        /// Name of the candidate series that never reaches it.
        candidate: String,
    },
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::UnexpectedReachability {
                target,
                baseline,
                baseline_resource,
                candidate,
            } => write!(
                f,
                "unexpected reachability at E_S = {target}: {baseline} reaches it with \
                 {baseline_resource:.2} resources but {candidate} never does in the sampled range"
            ),
        }
    }
}

impl std::error::Error for ExperimentError {}

/// How two entropy series relate at one target entropy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Reachability {
    /// Both strategies reach the target; the equivalence is well-defined.
    Both {
        /// Resources the baseline needs.
        baseline: f64,
        /// Resources the candidate needs.
        candidate: f64,
    },
    /// Only the candidate reaches the target — a strict improvement the
    /// equivalence cannot quantify as a finite saving.
    CandidateOnly {
        /// Resources the candidate needs.
        candidate: f64,
    },
    /// Neither strategy reaches the target in the sampled range.
    Neither,
}

/// Classifies how `baseline` and `candidate` relate at `target` entropy.
///
/// # Errors
///
/// Returns [`ExperimentError::UnexpectedReachability`] when the baseline
/// reaches the target but the candidate does not — for a candidate meant
/// to dominate the baseline this is an experiment-level anomaly, reported
/// on the result rather than panicking the run.
pub fn classify_reachability(
    baseline: &EntropySeries,
    candidate: &EntropySeries,
    target: f64,
) -> Result<Reachability, ExperimentError> {
    match (
        baseline.resource_for_entropy(target),
        candidate.resource_for_entropy(target),
    ) {
        (Some(b), Some(c)) => Ok(Reachability::Both {
            baseline: b,
            candidate: c,
        }),
        (None, Some(c)) => Ok(Reachability::CandidateOnly { candidate: c }),
        (None, None) => Ok(Reachability::Neither),
        (Some(b), None) => Err(ExperimentError::UnexpectedReachability {
            target,
            baseline: baseline.name().to_owned(),
            baseline_resource: b,
            candidate: candidate.name().to_owned(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(name: &str, points: &[(f64, f64)]) -> EntropySeries {
        EntropySeries::from_points(name, points.to_vec())
    }

    #[test]
    fn both_reachable_reports_resources() {
        let base = series("unmanaged", &[(4.0, 0.8), (8.0, 0.2)]);
        let cand = series("arq", &[(4.0, 0.6), (8.0, 0.1)]);
        match classify_reachability(&base, &cand, 0.4).unwrap() {
            Reachability::Both {
                baseline,
                candidate,
            } => assert!(candidate < baseline),
            other => panic!("expected Both, got {other:?}"),
        }
    }

    #[test]
    fn candidate_only_and_neither_are_ok() {
        let base = series("unmanaged", &[(4.0, 0.8), (8.0, 0.5)]);
        let cand = series("arq", &[(4.0, 0.6), (8.0, 0.1)]);
        assert!(matches!(
            classify_reachability(&base, &cand, 0.3).unwrap(),
            Reachability::CandidateOnly { .. }
        ));
        assert_eq!(
            classify_reachability(&base, &cand, 0.01).unwrap(),
            Reachability::Neither
        );
    }

    #[test]
    fn baseline_only_is_the_typed_error() {
        let base = series("unmanaged", &[(4.0, 0.8), (8.0, 0.1)]);
        let cand = series("arq", &[(4.0, 0.9), (8.0, 0.5)]);
        let err = classify_reachability(&base, &cand, 0.3).unwrap_err();
        let ExperimentError::UnexpectedReachability {
            target,
            baseline,
            candidate,
            ..
        } = &err;
        assert_eq!(*target, 0.3);
        assert_eq!(baseline, "unmanaged");
        assert_eq!(candidate, "arq");
        assert!(err.to_string().contains("unexpected reachability"));
    }
}
