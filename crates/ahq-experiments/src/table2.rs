//! Table II: per-application entropy quantities under the Unmanaged
//! strategy as the core budget shrinks from 8 to 6 cores.
//!
//! Workload: Xapian + Moses + Img-dnn at 20 % load with Fluidanimate, as
//! in §III-A of the paper.

use ahq_core::{BeMeasurement, LcMeasurement};
use ahq_sim::MachineConfig;
use ahq_workloads::mixes;

use crate::exec::{ExpContext, RunSpec};
use crate::report::{f2, f3, ExperimentReport, TextTable};
use crate::strategy::StrategyKind;

/// Paper values of `E_LC` per core count, for the notes section.
const PAPER_E_LC: [(u32, f64); 3] = [(6, 0.64), (7, 0.23), (8, 0.0)];

/// Regenerates Table II.
pub fn run(cfg: &ExpContext) -> ExperimentReport {
    let mut report = ExperimentReport::new("table2", "Table II: entropy vs core count (Unmanaged)");
    let mix = mixes::fluidanimate_mix();
    let loads = [("xapian", 0.2), ("moses", 0.2), ("img-dnn", 0.2)];

    let mut table = TextTable::new(
        "LC/BE/system entropy under Unmanaged, 20 LLC ways",
        &[
            "cores", "app", "TL_i0", "TL_i1", "M_i", "A_i", "R_i", "ReT_i", "Q_i", "E_LC", "E_BE",
            "E_S",
        ],
    );

    let core_budgets = [6u32, 7, 8];
    let specs: Vec<RunSpec> = core_budgets
        .iter()
        .map(|&cores| {
            let machine = MachineConfig::paper_xeon().with_budget(cores, 20);
            RunSpec::strategy(cfg, machine, &mix, &loads, StrategyKind::Unmanaged)
        })
        .collect();
    let results = cfg.engine().run_all(&specs);

    for (cores, result) in core_budgets.into_iter().zip(results.iter()) {
        let steady = cfg.steady().min(result.observations.len());
        // Average the steady-state window latencies per app, then derive
        // the Table II quantities from the averaged measurement.
        let model = cfg.model();
        let mut lc_rows: Vec<LcMeasurement> = Vec::new();
        for app in ["xapian", "moses", "img-dnn"] {
            let p95 = result.steady_p95(app, steady).expect("app observed");
            let obs = result.observations.last().expect("windows ran");
            let stats = obs.lc_by_name(app).expect("LC app present");
            lc_rows
                .push(LcMeasurement::new(app, stats.ideal_ms, p95, stats.qos_ms).expect("valid"));
        }
        let ipc = result.steady_ipc("fluidanimate", steady).expect("BE app");
        let be = vec![BeMeasurement::new(
            "fluidanimate",
            mix.apps
                .iter()
                .find(|a| a.name() == "fluidanimate")
                .and_then(|a| a.ipc_solo())
                .expect("BE profile"),
            ipc,
        )
        .expect("valid")];
        let entropy = model.evaluate(&lc_rows, &be);

        for m in &lc_rows {
            table.push_row(vec![
                cores.to_string(),
                m.name().to_owned(),
                f2(m.ideal()),
                f2(m.observed()),
                f2(m.threshold()),
                f2(m.tolerance()),
                f2(m.interference()),
                f2(m.remaining_tolerance()),
                f2(m.intolerable()),
                String::new(),
                String::new(),
                String::new(),
            ]);
        }
        table.push_row(vec![
            cores.to_string(),
            "system".into(),
            String::new(),
            String::new(),
            String::new(),
            f2(lc_rows.iter().map(LcMeasurement::tolerance).sum::<f64>() / 3.0),
            f2(lc_rows.iter().map(LcMeasurement::interference).sum::<f64>() / 3.0),
            f2(lc_rows
                .iter()
                .map(LcMeasurement::remaining_tolerance)
                .sum::<f64>()
                / 3.0),
            String::new(),
            f3(entropy.lc),
            f3(entropy.be),
            f3(entropy.system),
        ]);

        let paper = PAPER_E_LC.iter().find(|(c, _)| *c == cores).expect("row");
        report.note(format!(
            "{cores} cores: measured E_LC {:.3} (paper {:.2})",
            entropy.lc, paper.1
        ));
    }

    report.tables.push(table);
    report.note(
        "Property verified: E_LC decreases monotonically as cores grow, reaching ~0 at 8 cores."
            .to_string(),
    );
    report.note(
        "Magnitudes are smaller than the paper's: the fluid core-sharing model lacks the \
         CFS scheduling latency that inflates the testbed's 6-core tail latencies (their \
         TL_i1 reaches 24 ms); the ordering and the zero point match."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_decreases_with_cores() {
        let cfg = ExpContext::new(crate::runs::ExpConfig {
            quick: true,
            seed: 7,
        });
        let report = run(&cfg);
        let table = &report.tables[0];
        // Collect E_LC from the "system" rows (cores 6, 7, 8 in order).
        let e_lc: Vec<f64> = table
            .rows
            .iter()
            .filter(|r| r[1] == "system")
            .map(|r| r[9].parse::<f64>().unwrap())
            .collect();
        assert_eq!(e_lc.len(), 3);
        assert!(
            e_lc[0] > e_lc[1] && e_lc[1] >= e_lc[2],
            "E_LC must fall with more cores: {e_lc:?}"
        );
        assert!(e_lc[0] > 0.04, "6 cores must be visibly contended");
        assert!(e_lc[2] < 0.04, "8 cores must be nearly satisfied");
    }
}
