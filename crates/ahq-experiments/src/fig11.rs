//! Fig. 11: another collocation — Img-dnn (swept) + Moses + Sphinx with
//! STREAM.

use crate::exec::ExpContext;
use crate::fig8::{entropy_tables, sweep, sweep_loads};
use crate::report::ExperimentReport;
use crate::strategy::StrategyKind;

/// Regenerates Fig. 11.
pub fn run(cfg: &ExpContext) -> ExperimentReport {
    let mut report = ExperimentReport::new("fig11", "Fig 11: Img-dnn + Moses + Sphinx with STREAM");
    let mix = ahq_workloads::mixes::sphinx_mix();
    let loads = sweep_loads(cfg);

    for background in [0.2, 0.4] {
        let cells = sweep(cfg, &mix, "img-dnn", background, &loads);
        report
            .tables
            .extend(entropy_tables(&cells, "img-dnn", background));

        // The paper's claim: at high load ARQ cuts E_S vs PARTIES by
        // ~40.9 % on average.
        let high: Vec<f64> = loads.iter().copied().filter(|&l| l >= 0.7).collect();
        let mean_es = |strategy: StrategyKind| -> f64 {
            let vs: Vec<f64> = cells
                .iter()
                .filter(|c| c.strategy == strategy && high.contains(&c.primary_load))
                .map(|c| c.e_s)
                .collect();
            vs.iter().sum::<f64>() / vs.len().max(1) as f64
        };
        let pa = mean_es(StrategyKind::Parties);
        let arq = mean_es(StrategyKind::Arq);
        report.note(format!(
            "background {:.0} %: high-load mean E_S — PARTIES {:.3}, ARQ {:.3} \
             ({:.1} % reduction; paper reports 40.9 % on this mix)",
            background * 100.0,
            pa,
            arq,
            (1.0 - arq / pa) * 100.0
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arq_beats_parties_at_high_imgdnn_load() {
        let cfg = ExpContext::new(crate::runs::ExpConfig {
            quick: true,
            seed: 37,
        });
        let mix = ahq_workloads::mixes::sphinx_mix();
        let cells = sweep(&cfg, &mix, "img-dnn", 0.2, &[0.9]);
        let get = |s: StrategyKind| cells.iter().find(|c| c.strategy == s).unwrap();
        assert!(
            get(StrategyKind::Arq).e_s < get(StrategyKind::Parties).e_s + 1e-9,
            "ARQ {:.3} vs PARTIES {:.3}",
            get(StrategyKind::Arq).e_s,
            get(StrategyKind::Parties).e_s
        );
    }
}
