//! Fig. 2: impact of the amount of available resources on `E_S`, for the
//! Unmanaged and ARQ strategies.
//!
//! Two sweeps, as in the figure: the core budget from 4 to 10 (at the full
//! 20 ways), and the LLC-way budget from 4 to 20 (at the full 10 cores).
//! Workload: Xapian/Moses/Img-dnn at 20 % with Fluidanimate.

use ahq_sim::MachineConfig;
use ahq_workloads::mixes;

use crate::exec::{ExpContext, RunSpec};
use crate::report::{f3, ExperimentReport, TextTable};
use crate::runs::ExpConfig;
use crate::strategy::StrategyKind;

/// The strategies Fig. 2 compares.
const STRATEGIES: [StrategyKind; 2] = [StrategyKind::Unmanaged, StrategyKind::Arq];

/// The job measuring one machine budget under one strategy — shared with
/// Fig. 3 so identical budget points hit the run cache across figures.
pub(crate) fn budget_spec(
    cfg: &ExpConfig,
    cores: u32,
    ways: u32,
    strategy: StrategyKind,
) -> RunSpec {
    let mix = mixes::fluidanimate_mix();
    let loads = [("xapian", 0.2), ("moses", 0.2), ("img-dnn", 0.2)];
    let machine = MachineConfig::paper_xeon().with_budget(cores, ways);
    RunSpec::strategy(cfg, machine, &mix, &loads, strategy)
}

/// Measures `E_S` for one machine budget under one strategy.
pub fn entropy_at_budget(cfg: &ExpContext, cores: u32, ways: u32, strategy: StrategyKind) -> f64 {
    let result = cfg
        .engine()
        .run_one(&budget_spec(cfg, cores, ways, strategy));
    result.steady_entropy(cfg.steady())
}

/// Regenerates Fig. 2.
pub fn run(cfg: &ExpContext) -> ExperimentReport {
    let mut report = ExperimentReport::new("fig2", "Fig 2: E_S vs available resources");

    let core_points: Vec<u32> = if cfg.quick {
        vec![4, 6, 8, 10]
    } else {
        (4..=10).collect()
    };
    let way_points: Vec<u32> = if cfg.quick {
        vec![4, 8, 12, 16, 20]
    } else {
        (2..=10).map(|w| w * 2).collect()
    };

    // Both sweeps as one batch; the engine dedups the shared rich point
    // (10 cores, 20 ways) and fans the rest out in parallel.
    let mut specs = Vec::new();
    for &c in &core_points {
        for strategy in STRATEGIES {
            specs.push(budget_spec(cfg, c, 20, strategy));
        }
    }
    for &w in &way_points {
        for strategy in STRATEGIES {
            specs.push(budget_spec(cfg, 10, w, strategy));
        }
    }
    let results = cfg.engine().run_all(&specs);
    let mut entropies = results.iter().map(|r| r.steady_entropy(cfg.steady()));

    let mut cores_table = TextTable::new(
        "E_S vs processing units (20 LLC ways)",
        &["cores", "unmanaged", "arq"],
    );
    for &c in &core_points {
        let mut row = vec![c.to_string()];
        for _ in STRATEGIES {
            row.push(f3(entropies.next().expect("job per cell")));
        }
        cores_table.push_row(row);
    }

    let mut ways_table =
        TextTable::new("E_S vs LLC ways (10 cores)", &["ways", "unmanaged", "arq"]);
    for &w in &way_points {
        let mut row = vec![w.to_string()];
        for _ in STRATEGIES {
            row.push(f3(entropies.next().expect("job per cell")));
        }
        ways_table.push_row(row);
    }

    // Paper reference points.
    let rich_unmanaged = cores_table
        .rows
        .last()
        .and_then(|r| r[1].parse::<f64>().ok())
        .unwrap_or(f64::NAN);
    let poor_unmanaged = cores_table
        .rows
        .iter()
        .find(|r| r[0] == "6")
        .and_then(|r| r[1].parse::<f64>().ok())
        .unwrap_or(f64::NAN);
    report.note(format!(
        "Unmanaged with ample resources (10 cores, 20 ways): E_S {:.3} (paper 0.006); \
         with 6 cores: {:.3} (paper 0.53)",
        rich_unmanaged, poor_unmanaged
    ));
    report.note(
        "Property ② verified: E_S rises monotonically (modulo noise) as either budget shrinks, \
         for both strategies; ARQ stays below Unmanaged once resources are scarce."
            .to_string(),
    );

    report.tables.push(cores_table);
    report.tables.push(ways_table);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_rises_when_cores_shrink() {
        let cfg = ExpContext::new(ExpConfig {
            quick: true,
            seed: 3,
        });
        let poor = entropy_at_budget(&cfg, 5, 20, StrategyKind::Unmanaged);
        let rich = entropy_at_budget(&cfg, 10, 20, StrategyKind::Unmanaged);
        assert!(
            poor > rich + 0.05,
            "5 cores (E_S {poor:.3}) must be visibly worse than 10 ({rich:.3})"
        );
    }

    #[test]
    fn arq_beats_unmanaged_under_scarcity() {
        let cfg = ExpContext::new(ExpConfig {
            quick: true,
            seed: 3,
        });
        let unmanaged = entropy_at_budget(&cfg, 6, 20, StrategyKind::Unmanaged);
        let arq = entropy_at_budget(&cfg, 6, 20, StrategyKind::Arq);
        assert!(
            arq < unmanaged,
            "ARQ ({arq:.3}) must beat Unmanaged ({unmanaged:.3}) at 6 cores"
        );
    }
}
