//! Shared run machinery: building simulations from mixes, steady-state
//! windows, and the experiment configuration.

use ahq_core::EntropyModel;
use ahq_sched::{run, RunResult};
use ahq_sim::{MachineConfig, NodeSim};
use ahq_workloads::mixes::Mix;
use serde::{Deserialize, Serialize};

use crate::exec::{ExpContext, RunSpec};
use crate::strategy::StrategyKind;

/// The audited per-replica/per-job seed derivation shared by the executor,
/// the replication helpers and the cluster layer — now hosted in
/// [`ahq_core`] so every crate draws from the same stream function.
/// Re-exported here to keep the historical
/// `ahq_experiments::runs::derive_seed` path working.
pub use ahq_core::derive_seed;

/// Experiment-wide configuration.
#[derive(Debug, Clone, Copy)]
pub struct ExpConfig {
    /// Shorter runs and coarser sweeps (CI-friendly).
    pub quick: bool,
    /// Base RNG seed; every run derives a per-configuration seed from it.
    pub seed: u64,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            quick: false,
            seed: 42,
        }
    }
}

impl ExpConfig {
    /// Monitoring windows per run (500 ms each).
    pub fn windows(&self) -> usize {
        if self.quick {
            90
        } else {
            240
        }
    }

    /// Steady-state windows used for reported averages.
    pub fn steady(&self) -> usize {
        if self.quick {
            30
        } else {
            80
        }
    }

    /// The entropy model every experiment scores with (paper settings:
    /// `RI = 0.8`, 5 % elasticity).
    pub fn model(&self) -> EntropyModel {
        EntropyModel::default()
    }
}

/// Builds a simulation of `mix` on `machine` (normalised against the full
/// paper machine) with the given per-LC-app loads.
///
/// # Panics
///
/// Panics on invalid mixes/loads — experiment inputs are static and a
/// mistake is a bug, not a runtime condition.
pub fn build_sim(machine: MachineConfig, mix: &Mix, loads: &[(&str, f64)], seed: u64) -> NodeSim {
    let mut sim =
        NodeSim::with_reference(machine, MachineConfig::paper_xeon(), mix.apps.clone(), seed)
            .expect("experiment mixes are valid");
    for (name, load) in loads {
        sim.set_load(name, *load).expect("load targets an LC app");
    }
    sim
}

/// Runs one `(mix, loads, strategy)` configuration to steady state.
pub fn run_strategy(
    cfg: &ExpConfig,
    machine: MachineConfig,
    mix: &Mix,
    loads: &[(&str, f64)],
    strategy: StrategyKind,
) -> RunResult {
    let mut sim = build_sim(machine, mix, loads, cfg.seed);
    let mut sched = strategy.build();
    run(&mut sim, sched.as_mut(), cfg.windows(), &cfg.model())
}

/// Mean and spread of a replicated measurement — every headline number in
/// the paper is a single run on real hardware; the simulator can afford
/// replication across seeds to quantify run-to-run noise.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplicatedStats {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (0 for n = 1).
    pub std_dev: f64,
    /// Number of replicas.
    pub n: usize,
}

impl ReplicatedStats {
    /// Summarises a sample.
    pub fn from_samples(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        Some(ReplicatedStats {
            mean,
            std_dev: var.sqrt(),
            n,
        })
    }
}

/// Replicates one configuration's steady-state `E_S` across `n` seeds,
/// fanning the replicas out over the context's engine. Replica `i` runs
/// with [`derive_seed`]`(cfg.seed, i)`.
pub fn replicate_entropy(
    cfg: &ExpContext,
    machine: MachineConfig,
    mix: &Mix,
    loads: &[(&str, f64)],
    strategy: StrategyKind,
    n: usize,
) -> ReplicatedStats {
    let specs: Vec<RunSpec> = (0..n.max(1))
        .map(|i| RunSpec {
            seed: derive_seed(cfg.seed, i as u64),
            ..RunSpec::strategy(cfg, machine, mix, loads, strategy)
        })
        .collect();
    let samples: Vec<f64> = cfg
        .engine()
        .run_all(&specs)
        .iter()
        .map(|r| r.steady_entropy(cfg.steady()))
        .collect();
    ReplicatedStats::from_samples(&samples).expect("n >= 1")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahq_workloads::mixes;

    #[test]
    fn quick_mode_shrinks_runs() {
        let quick = ExpConfig {
            quick: true,
            ..ExpConfig::default()
        };
        let full = ExpConfig::default();
        assert!(quick.windows() < full.windows());
        assert!(quick.steady() < full.steady());
    }

    #[test]
    fn replicated_stats_math() {
        let s = ReplicatedStats::from_samples(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(s.mean, 2.0);
        assert!((s.std_dev - 1.0).abs() < 1e-12);
        assert_eq!(s.n, 3);
        let single = ReplicatedStats::from_samples(&[5.0]).unwrap();
        assert_eq!(single.std_dev, 0.0);
        assert!(ReplicatedStats::from_samples(&[]).is_none());
    }

    #[test]
    fn replication_bounds_run_to_run_noise() {
        let cfg = ExpContext::new(ExpConfig {
            quick: true,
            seed: 71,
        });
        let mix = mixes::fluidanimate_mix();
        let stats = replicate_entropy(
            &cfg,
            MachineConfig::paper_xeon(),
            &mix,
            &[("xapian", 0.5), ("moses", 0.2), ("img-dnn", 0.2)],
            StrategyKind::Unmanaged,
            3,
        );
        assert_eq!(stats.n, 3);
        assert!(stats.mean >= 0.0 && stats.mean <= 1.0);
        assert!(
            stats.std_dev < 0.1,
            "steady-state entropy should be stable across seeds: {stats:?}"
        );
    }

    #[test]
    fn build_and_run_smoke() {
        let cfg = ExpConfig {
            quick: true,
            seed: 1,
        };
        let mix = mixes::fluidanimate_mix();
        let r = run_strategy(
            &cfg,
            MachineConfig::paper_xeon(),
            &mix,
            &[("xapian", 0.2), ("moses", 0.2), ("img-dnn", 0.2)],
            StrategyKind::Unmanaged,
        );
        assert_eq!(r.observations.len(), cfg.windows());
    }
}
