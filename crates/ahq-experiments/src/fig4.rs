//! Fig. 4: the space-time resource-utilization model — one resource slice
//! over eight time slices under three ownership disciplines.

use ahq_sim::spacetime::{evaluate, figure4_patterns, Discipline, SliceOutcome};

use crate::exec::ExpContext;
use crate::report::{f2, ExperimentReport, TextTable};

fn glyph(outcome: SliceOutcome) -> &'static str {
    match outcome {
        SliceOutcome::Idle => ".",
        SliceOutcome::Served => "v",
        SliceOutcome::ServedWithOverhead => "^",
        SliceOutcome::Denied => "x",
    }
}

/// Regenerates Fig. 4.
pub fn run(_cfg: &ExpContext) -> ExperimentReport {
    let mut report = ExperimentReport::new("fig4", "Fig 4: space-time model");
    let patterns = figure4_patterns();

    let scenarios = [
        ("(a) unmanaged", Discipline::NoManagement),
        ("(b) isolated to LC1", Discipline::IsolatedTo(0)),
        ("(c) shared, LC priority", Discipline::SharedLcPriority),
    ];

    let mut grid = TextTable::new(
        "Per-slice outcomes (v = served, ^ = served w/ transfer overhead, x = denied)",
        &[
            "scenario", "app", "t1", "t2", "t3", "t4", "t5", "t6", "t7", "t8",
        ],
    );
    let mut summary = TextTable::new(
        "Cross/tick/triangle accounting",
        &["scenario", "crosses", "ticks", "triangles", "utilization"],
    );

    for (label, discipline) in scenarios {
        let out = evaluate(&patterns, discipline);
        for (app, row) in patterns.iter().zip(out.outcomes.iter()) {
            let mut cells = vec![label.to_string(), app.name.clone()];
            cells.extend(row.iter().map(|&o| glyph(o).to_string()));
            grid.push_row(cells);
        }
        summary.push_row(vec![
            label.to_string(),
            out.crosses.to_string(),
            out.ticks.to_string(),
            out.triangles.to_string(),
            f2(out.utilization),
        ]);
    }

    report.tables.push(grid);
    report.tables.push(summary);
    report.note(
        "Paper: sharing with LC priority cuts crosses from 10 (isolation) to 6, adds 4 \
         triangles, and almost doubles utilization — reproduced exactly."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_matches_paper_counts() {
        let report = run(&ExpContext::default());
        let summary = &report.tables[1];
        let row = |label: &str| {
            summary
                .rows
                .iter()
                .find(|r| r[0].starts_with(label))
                .expect("scenario present")
                .clone()
        };
        assert_eq!(row("(b)")[1], "10"); // crosses under isolation
        assert_eq!(row("(c)")[1], "6"); // crosses under sharing
        assert_eq!(row("(c)")[3], "4"); // triangles
        assert_eq!(row("(b)")[4], "0.50");
        assert_eq!(row("(c)")[4], "1.00");
    }
}
