//! Fig. 9: Xapian + Moses + Img-dnn collocated with the 10-thread STREAM
//! hog — severe interference on cores, LLC *and* memory bandwidth.

use crate::exec::ExpContext;
use crate::fig8::{detail_table, entropy_tables, sweep, sweep_loads};
use crate::report::ExperimentReport;
use crate::strategy::StrategyKind;

/// Regenerates Fig. 9.
pub fn run(cfg: &ExpContext) -> ExperimentReport {
    let mut report = ExperimentReport::new("fig9", "Fig 9: collocation with STREAM");
    let mix = ahq_workloads::mixes::stream_mix();
    let loads = sweep_loads(cfg);

    for background in [0.2, 0.4] {
        let cells = sweep(cfg, &mix, "xapian", background, &loads);
        report
            .tables
            .extend(entropy_tables(&cells, "xapian", background));
        if background == 0.4 {
            report.tables.push(detail_table(&cells, "xapian"));
            // The paper's extreme-case claim: Xapian 90 %, others 40 %.
            let at = |strategy: StrategyKind| {
                cells
                    .iter()
                    .find(|c| c.strategy == strategy && (c.primary_load - 0.9).abs() < 1e-9)
            };
            if let (Some(un), Some(pa), Some(cl), Some(arq)) = (
                at(StrategyKind::Unmanaged),
                at(StrategyKind::Parties),
                at(StrategyKind::Clite),
                at(StrategyKind::Arq),
            ) {
                let red = |x: f64| (1.0 - x / un.e_s) * 100.0;
                report.note(format!(
                    "Extreme case (Xapian 90 %, others 40 %): E_S reduction vs Unmanaged — \
                     ARQ {:.1} %, CLITE {:.1} %, PARTIES {:.1} % (paper: 73.4 / 53.2 / 22.3 %); \
                     ARQ E_LC {:.3} (paper ~0.06)",
                    red(arq.e_s),
                    red(cl.e_s),
                    red(pa.e_s),
                    arq.e_lc,
                ));
            }
        }
    }
    report.note(
        "Paper shape: with STREAM even low LC load cannot be satisfied by Unmanaged (the hog \
         saturates cache and bandwidth); isolation-capable strategies hold E_LC down, and \
         ARQ achieves the lowest E_S."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmanaged_cannot_protect_lc_from_the_hog() {
        let cfg = ExpContext::new(crate::runs::ExpConfig {
            quick: true,
            seed: 29,
        });
        let mix = ahq_workloads::mixes::stream_mix();
        let cells = sweep(&cfg, &mix, "xapian", 0.2, &[0.5]);
        let get = |s: StrategyKind| cells.iter().find(|c| c.strategy == s).unwrap();
        let unmanaged = get(StrategyKind::Unmanaged);
        let arq = get(StrategyKind::Arq);
        assert!(
            unmanaged.e_lc > 0.1,
            "the STREAM hog must hurt unmanaged LC latency, E_LC {:.3}",
            unmanaged.e_lc
        );
        assert!(
            arq.e_lc < 0.05,
            "ARQ must protect the LC applications, E_LC {:.3}",
            arq.e_lc
        );
        assert!(arq.e_s < unmanaged.e_s);
    }
}
