//! Fig. 8: Xapian + Moses + Img-dnn collocated with Fluidanimate.
//!
//! Xapian's load sweeps 10–90 % while Moses and Img-dnn sit at 20 % (left
//! column of the figure) or 40 % (right column); all five strategies are
//! compared on `E_LC` / `E_BE` / `E_S`, and the 40 % setting additionally
//! reports the per-strategy mean tail latency and BE IPC.

use ahq_sched::RunResult;
use ahq_sim::MachineConfig;
use ahq_workloads::mixes::Mix;

use crate::exec::{ExpContext, RunSpec};
use crate::report::{f2, f3, ExperimentReport, TextTable};
use crate::runs::ExpConfig;
use crate::strategy::StrategyKind;

/// One cell of a load-sweep result.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Strategy that produced the cell.
    pub strategy: StrategyKind,
    /// The swept application's load.
    pub primary_load: f64,
    /// The background LC applications' load.
    pub background_load: f64,
    /// Steady-state entropies and yield.
    pub e_lc: f64,
    /// BE entropy.
    pub e_be: f64,
    /// System entropy.
    pub e_s: f64,
    /// Steady-state yield.
    pub yield_fraction: f64,
    /// Steady-state p95 of the swept application (ms).
    pub primary_p95: f64,
    /// Steady-state IPC of the first BE application.
    pub be_ipc: f64,
}

/// Runs the standard Fig. 8/9/11-style sweep: `primary` swept over
/// `loads`, the other LC apps pinned at `background`, all five strategies.
pub fn sweep(
    cfg: &ExpContext,
    mix: &Mix,
    primary: &str,
    background: f64,
    loads: &[f64],
) -> Vec<SweepCell> {
    let be_name = mix.be_names()[0].to_owned();
    let background_apps: Vec<&str> = mix
        .lc_names()
        .into_iter()
        .filter(|n| *n != primary)
        .collect();
    // One job per (load, strategy) cell, fanned out through the engine.
    let mut specs = Vec::new();
    let mut labels = Vec::new();
    for &load in loads {
        let mut load_spec: Vec<(&str, f64)> = vec![(primary, load)];
        for app in &background_apps {
            load_spec.push((app, background));
        }
        for strategy in StrategyKind::all() {
            specs.push(RunSpec::strategy(
                cfg,
                MachineConfig::paper_xeon(),
                mix,
                &load_spec,
                strategy,
            ));
            labels.push((load, strategy));
        }
    }
    let results = cfg.engine().run_all(&specs);
    labels
        .into_iter()
        .zip(results.iter())
        .map(|((load, strategy), result)| {
            cell_from(cfg, result, strategy, primary, &be_name, load, background)
        })
        .collect()
}

fn cell_from(
    cfg: &ExpConfig,
    result: &RunResult,
    strategy: StrategyKind,
    primary: &str,
    be_name: &str,
    load: f64,
    background: f64,
) -> SweepCell {
    let steady = cfg.steady();
    SweepCell {
        strategy,
        primary_load: load,
        background_load: background,
        e_lc: result.steady_lc_entropy(steady),
        e_be: result.steady_be_entropy(steady),
        e_s: result.steady_entropy(steady),
        yield_fraction: result.steady_yield(steady),
        primary_p95: result.steady_p95(primary, steady).unwrap_or(f64::NAN),
        be_ipc: result.steady_ipc(be_name, steady).unwrap_or(f64::NAN),
    }
}

/// Renders one background-load setting's sweep as entropy tables.
pub fn entropy_tables(cells: &[SweepCell], primary: &str, background: f64) -> Vec<TextTable> {
    let loads: Vec<f64> = {
        let mut ls: Vec<f64> = cells.iter().map(|c| c.primary_load).collect();
        ls.dedup();
        ls
    };
    let mut tables = Vec::new();
    for (metric, pick) in [("E_LC", 0usize), ("E_BE", 1), ("E_S", 2)] {
        let mut t = TextTable::new(
            format!(
                "{metric} vs {primary} load (others at {:.0} %)",
                background * 100.0
            ),
            &["load", "unmanaged", "lc-first", "parties", "clite", "arq"],
        );
        for &load in &loads {
            let mut row = vec![f2(load)];
            for strategy in StrategyKind::all() {
                let c = cells
                    .iter()
                    .find(|c| c.primary_load == load && c.strategy == strategy)
                    .expect("cell exists");
                row.push(f3(match pick {
                    0 => c.e_lc,
                    1 => c.e_be,
                    _ => c.e_s,
                }));
            }
            t.push_row(row);
        }
        tables.push(t);
    }
    tables
}

/// Renders the tail-latency / IPC detail table (Fig. 8(b) style).
pub fn detail_table(cells: &[SweepCell], primary: &str) -> TextTable {
    let mut t = TextTable::new(
        format!("{primary} p95 (ms) and BE IPC per strategy"),
        &["load", "strategy", "p95 (ms)", "BE IPC", "yield"],
    );
    for c in cells {
        t.push_row(vec![
            f2(c.primary_load),
            c.strategy.name().into(),
            f2(c.primary_p95),
            f2(c.be_ipc),
            f2(c.yield_fraction),
        ]);
    }
    t
}

/// The sweep loads used by Figs. 8, 9 and 11.
pub fn sweep_loads(cfg: &ExpConfig) -> Vec<f64> {
    if cfg.quick {
        vec![0.1, 0.5, 0.9]
    } else {
        vec![0.1, 0.3, 0.5, 0.7, 0.9]
    }
}

/// Regenerates Fig. 8.
pub fn run(cfg: &ExpContext) -> ExperimentReport {
    let mut report = ExperimentReport::new("fig8", "Fig 8: collocation with Fluidanimate");
    let mix = ahq_workloads::mixes::fluidanimate_mix();
    let loads = sweep_loads(cfg);

    for background in [0.2, 0.4] {
        let cells = sweep(cfg, &mix, "xapian", background, &loads);
        report
            .tables
            .extend(entropy_tables(&cells, "xapian", background));
        if background == 0.4 {
            report.tables.push(detail_table(&cells, "xapian"));
            summarize_claims(&mut report, &cells);
        }
    }
    report.note(
        "Paper shape: Unmanaged wins at the lowest loads (sharing maximises utilization); as \
         load grows its E_LC explodes; PARTIES/CLITE protect QoS but depress the BE \
         application; ARQ tracks the best of both and has the lowest E_S overall."
            .to_string(),
    );
    report
}

/// Quantifies the paper's §VI-A claims on the 40 % setting.
fn summarize_claims(report: &mut ExperimentReport, cells: &[SweepCell]) {
    let mean = |strategy: StrategyKind, f: &dyn Fn(&SweepCell) -> f64, lo: f64, hi: f64| -> f64 {
        let vals: Vec<f64> = cells
            .iter()
            .filter(|c| c.strategy == strategy && c.primary_load >= lo && c.primary_load <= hi)
            .map(f)
            .collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    };
    let p95 = |s| mean(s, &|c: &SweepCell| c.primary_p95, 0.0, 1.0);
    let tail_red = |s| (1.0 - p95(s) / p95(StrategyKind::Unmanaged)) * 100.0;
    report.note(format!(
        "Mean Xapian p95 reduction vs Unmanaged: ARQ {:.1} %, CLITE {:.1} %, PARTIES {:.1} % \
         (paper: 66.5 / 43.6 / 37.2 %)",
        tail_red(StrategyKind::Arq),
        tail_red(StrategyKind::Clite),
        tail_red(StrategyKind::Parties),
    ));
    let low_ipc = |s| mean(s, &|c: &SweepCell| c.be_ipc, 0.0, 0.5);
    report.note(format!(
        "Low-load (<= 50 %) BE IPC: ARQ {:.2} vs PARTIES {:.2} (+{:.1} %) and CLITE {:.2} \
         (+{:.1} %) (paper: +63.8 % and +37.1 %)",
        low_ipc(StrategyKind::Arq),
        low_ipc(StrategyKind::Parties),
        (low_ipc(StrategyKind::Arq) / low_ipc(StrategyKind::Parties) - 1.0) * 100.0,
        low_ipc(StrategyKind::Clite),
        (low_ipc(StrategyKind::Arq) / low_ipc(StrategyKind::Clite) - 1.0) * 100.0,
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arq_has_lowest_mean_entropy_and_unmanaged_wins_low_load() {
        let cfg = ExpContext::new(ExpConfig {
            quick: true,
            seed: 23,
        });
        let mix = ahq_workloads::mixes::fluidanimate_mix();
        let cells = sweep(&cfg, &mix, "xapian", 0.2, &[0.1, 0.9]);
        let mean_es = |strategy: StrategyKind| -> f64 {
            let vs: Vec<f64> = cells
                .iter()
                .filter(|c| c.strategy == strategy)
                .map(|c| c.e_s)
                .collect();
            vs.iter().sum::<f64>() / vs.len() as f64
        };
        let arq = mean_es(StrategyKind::Arq);
        for other in [StrategyKind::Parties, StrategyKind::Clite] {
            assert!(
                arq < mean_es(other),
                "ARQ mean E_S {arq:.3} must beat {} ({:.3})",
                other.name(),
                mean_es(other)
            );
        }
        // Unmanaged is competitive at the lowest load (sharing wins).
        let low_unmanaged = cells
            .iter()
            .find(|c| c.strategy == StrategyKind::Unmanaged && c.primary_load == 0.1)
            .unwrap();
        assert!(low_unmanaged.e_s < 0.1);
    }
}
